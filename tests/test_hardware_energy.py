"""Unit tests for the energy model."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.energy import EnergyModel


def test_mac_energy_scales_linearly():
    model = EnergyModel(mac_pj=0.1)
    assert model.mac_energy_j(10) == pytest.approx(1e-12)
    assert model.mac_energy_j(20) == pytest.approx(2 * model.mac_energy_j(10))


def test_dram_energy_dominates_gbuf_energy_per_byte():
    model = EnergyModel()
    assert model.dram_energy_j(100) > model.gbuf_energy_j(100) > model.l0_energy_j(100)


def test_vector_energy():
    model = EnergyModel(vector_op_pj=0.5)
    assert model.vector_energy_j(4) == pytest.approx(2e-12)


def test_zero_counts_give_zero_energy():
    model = EnergyModel()
    assert model.mac_energy_j(0) == 0.0
    assert model.gbuf_energy_j(0) == 0.0
    assert model.dram_energy_j(0) == 0.0


def test_negative_unit_energy_rejected():
    with pytest.raises(ConfigurationError):
        EnergyModel(mac_pj=-0.1)
