"""Tests for the Core Array mapper (intra-tile scheduler & evaluator)."""

import pytest

from repro.core.core_array import CoreArrayMapper
from repro.notation.lfa import LFA
from repro.notation.parser import parse_lfa
from repro.tiling.partition import tile_flg
from repro.workloads.builder import GraphBuilder


def _single_conv(size=32, channels=64, kernel=3, batch=1):
    builder = GraphBuilder("one", batch=batch)
    builder.conv("conv", [], channels, kernel=kernel, input_shape=(16, size, size))
    return builder.build()


def _tiling(graph, tiles=1):
    return tile_flg(graph, graph.layer_names(), tiles)["conv"]


def test_tile_cost_is_positive(tiny_accelerator):
    graph = _single_conv()
    mapper = CoreArrayMapper(tiny_accelerator)
    cost = mapper.evaluate_tile(graph.layer("conv"), _tiling(graph))
    assert cost.seconds > 0
    assert cost.energy_j > 0
    assert cost.gbuf_traffic_bytes > 0


def test_tile_time_never_beats_peak_compute(tiny_accelerator):
    graph = _single_conv(size=64, channels=128)
    mapper = CoreArrayMapper(tiny_accelerator)
    layer = graph.layer("conv")
    cost = mapper.evaluate_tile(layer, _tiling(graph))
    ideal_seconds = layer.macs / (
        tiny_accelerator.core_array.total_macs_per_cycle * tiny_accelerator.frequency_hz
    )
    assert cost.seconds >= ideal_seconds


def test_large_tile_approaches_peak_efficiency(tiny_accelerator):
    graph = _single_conv(size=64, channels=128)
    mapper = CoreArrayMapper(tiny_accelerator)
    layer = graph.layer("conv")
    cost = mapper.evaluate_tile(layer, _tiling(graph))
    ideal_seconds = layer.macs / (
        tiny_accelerator.core_array.total_macs_per_cycle * tiny_accelerator.frequency_hz
    )
    assert cost.seconds <= 3 * ideal_seconds


def test_many_small_tiles_cost_more_than_one_large_tile(tiny_accelerator):
    graph = _single_conv(size=32, channels=64)
    mapper = CoreArrayMapper(tiny_accelerator)
    layer = graph.layer("conv")
    single = mapper.evaluate_tile(layer, _tiling(graph, 1))
    fine = _tiling(graph, 16)
    total_fine = fine.num_tiles * mapper.evaluate_tile(layer, fine).seconds
    assert total_fine > single.seconds


def test_gbuf_traffic_at_least_compulsory(tiny_accelerator):
    graph = _single_conv()
    mapper = CoreArrayMapper(tiny_accelerator)
    layer = graph.layer("conv")
    tiling = _tiling(graph)
    cost = mapper.evaluate_tile(layer, tiling)
    compulsory = tiling.ifmap_tile_bytes + tiling.ofmap_tile_bytes
    assert cost.gbuf_traffic_bytes >= compulsory


def test_vector_layer_uses_vector_unit(tiny_accelerator):
    builder = GraphBuilder("v", batch=1)
    a = builder.conv("conv", [], 16, kernel=3, input_shape=(3, 16, 16))
    builder.norm("norm", [a])
    graph = builder.build()
    tilings = tile_flg(graph, graph.layer_names(), 1)
    mapper = CoreArrayMapper(tiny_accelerator)
    cost = mapper.evaluate_tile(graph.layer("norm"), tilings["norm"])
    assert cost.seconds > 0
    assert cost.energy_j > 0


def test_memoisation_reuses_identical_shapes(tiny_accelerator):
    graph = _single_conv()
    mapper = CoreArrayMapper(tiny_accelerator)
    layer = graph.layer("conv")
    tiling = _tiling(graph)
    first = mapper.evaluate_tile(layer, tiling)
    size_after_first = mapper.cache_size()
    second = mapper.evaluate_tile(layer, tiling)
    assert first == second
    assert mapper.cache_size() == size_after_first


def test_bound_label(tiny_accelerator):
    graph = _single_conv(size=64, channels=128)
    mapper = CoreArrayMapper(tiny_accelerator)
    cost = mapper.evaluate_tile(graph.layer("conv"), _tiling(graph))
    assert cost.bound in ("compute", "gbuf")


def test_mapper_shared_through_full_plan(tiny_accelerator, linear_cnn):
    mapper = CoreArrayMapper(tiny_accelerator)
    plan = parse_lfa(linear_cnn, LFA.fully_fused(linear_cnn, tiling_number=2))
    for tile in plan.tiles:
        cost = mapper.evaluate_tile(linear_cnn.layer(tile.layer), plan.layer_tilings[tile.layer])
        assert cost.seconds > 0
    # Five distinct layer shapes at most.
    assert mapper.cache_size() <= len(linear_cnn)


def test_depthwise_and_matmul_have_no_weight_reuse_blocking(tiny_accelerator):
    builder = GraphBuilder("dw", batch=1)
    a = builder.conv("conv", [], 16, kernel=3, input_shape=(3, 16, 16))
    builder.conv("dw", [a], 16, kernel=3, depthwise=True)
    graph = builder.build()
    tilings = tile_flg(graph, graph.layer_names(), 1)
    mapper = CoreArrayMapper(tiny_accelerator)
    cost = mapper.evaluate_tile(graph.layer("dw"), tilings["dw"])
    layer = graph.layer("dw")
    expected_traffic = (
        tilings["dw"].ifmap_tile_bytes + tilings["dw"].ofmap_tile_bytes + layer.weight_bytes
    )
    assert cost.gbuf_traffic_bytes == pytest.approx(expected_traffic)


def test_tile_cache_distinguishes_equal_output_shapes_with_different_halos(tiny_accelerator):
    """Equal out-tiles from different feature maps must not share a memo slot.

    Both convs are 16->32, 3x3, stride 2 with an 8x8 output, but the 16x16
    and 15x15 inputs leave the tiles with different ifmap halo bytes.  A
    mapper shared across graphs (the pipelined stage-2 evaluator cache)
    must return the same costs a fresh mapper would.
    """

    def build(size):
        builder = GraphBuilder(f"halo{size}", batch=1)
        a = builder.conv("pre", [], 16, kernel=1, input_shape=(3, size, size))
        builder.conv("conv", [a], 32, kernel=3, stride=2)
        return builder.build()

    costs = {}
    shared = CoreArrayMapper(tiny_accelerator)
    for size in (16, 15):
        graph = build(size)
        tiling = tile_flg(graph, ["conv"], 1)["conv"]
        layer = graph.layer("conv")
        assert tiling.out_tile.height == tiling.out_tile.width == 8
        shared_cost = shared.evaluate_tile(layer, tiling)
        fresh_cost = CoreArrayMapper(tiny_accelerator).evaluate_tile(layer, tiling)
        assert shared_cost == fresh_cost
        costs[size] = shared_cost
    assert costs[16].gbuf_traffic_bytes != costs[15].gbuf_traffic_bytes
