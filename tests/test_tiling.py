"""Tests for halo arithmetic, tile partitioning and the tiling heuristics."""

import pytest

from repro.errors import WorkloadError
from repro.tiling.halo import propagate_required_extent, required_input_extent
from repro.tiling.partition import (
    effective_tiling_number,
    max_tiling_number,
    overlap_overhead_ratio,
    split_counts,
    tile_flg,
)
from repro.tiling.heuristics import kc_parallelism_tiling_number, next_power_of_two
from repro.workloads.builder import GraphBuilder
from repro.workloads.layer import Layer, OpType


def _conv_layer(name="conv", in_hw=16, out_hw=16, kernel=3, stride=1, channels=8) -> Layer:
    return Layer(
        name=name,
        op_type=OpType.CONV,
        batch=1,
        in_channels=channels,
        out_channels=channels,
        in_height=in_hw,
        in_width=in_hw,
        out_height=out_hw,
        out_width=out_hw,
        kernel_h=kernel,
        kernel_w=kernel,
        stride_h=stride,
        stride_w=stride,
        weight_bytes=channels * channels * kernel * kernel,
    )


# --------------------------------------------------------------------- halo
def test_required_input_extent_conv():
    layer = _conv_layer(kernel=3, stride=1)
    assert required_input_extent(layer, 4, 4) == (6, 6)


def test_required_input_extent_stride_two():
    layer = _conv_layer(in_hw=32, out_hw=16, kernel=3, stride=2)
    assert required_input_extent(layer, 4, 4) == (9, 9)


def test_required_input_extent_clamped_to_input_size():
    layer = _conv_layer(in_hw=8, out_hw=8, kernel=5, stride=1)
    assert required_input_extent(layer, 8, 8) == (8, 8)


def test_required_input_extent_pointwise_passthrough():
    layer = Layer(
        name="add",
        op_type=OpType.ELTWISE,
        batch=1,
        in_channels=8,
        out_channels=8,
        in_height=16,
        in_width=16,
        out_height=16,
        out_width=16,
    )
    assert required_input_extent(layer, 5, 7) == (5, 7)


def test_required_input_extent_rejects_non_positive():
    with pytest.raises(ValueError):
        required_input_extent(_conv_layer(), 0, 4)


def test_propagate_required_extent_clamps_to_producer():
    producer = _conv_layer(name="p", out_hw=6)
    consumer = _conv_layer(name="c", in_hw=6, out_hw=6, kernel=3)
    assert propagate_required_extent(producer, consumer, 6, 6) == (6, 6)


# -------------------------------------------------------------- split_counts
def test_split_counts_prefers_batch_dimension():
    assert split_counts(batch=4, height=8, width=8, num_tiles=4) == (4, 1, 1)


def test_split_counts_spills_into_spatial_dims():
    batch, height, width = split_counts(batch=2, height=8, width=8, num_tiles=8)
    assert batch == 2
    assert batch * height * width == 8


def test_split_counts_capped_by_available_extent():
    batch, height, width = split_counts(batch=1, height=2, width=2, num_tiles=64)
    assert batch * height * width <= 4


def test_split_counts_single_tile():
    assert split_counts(batch=1, height=8, width=8, num_tiles=1) == (1, 1, 1)


def test_split_counts_invalid_tiles_rejected():
    with pytest.raises(WorkloadError):
        split_counts(1, 8, 8, 0)


# ------------------------------------------------------------------- tile_flg
def _chain_graph(depth=3, size=16):
    builder = GraphBuilder("chain", batch=1)
    previous = builder.conv("conv0", [], 8, kernel=3, input_shape=(3, size, size))
    for index in range(1, depth):
        previous = builder.conv(f"conv{index}", [previous], 8, kernel=3)
    return builder.build()


def test_tile_flg_single_tile_covers_whole_layer():
    graph = _chain_graph()
    tilings = tile_flg(graph, graph.layer_names(), tiling_number=1)
    for name, tiling in tilings.items():
        layer = graph.layer(name)
        assert tiling.num_tiles == 1
        assert tiling.out_tile.height == layer.out_height
        assert tiling.ofmap_tile_bytes == layer.ofmap_bytes


def test_tile_flg_halo_grows_towards_earlier_layers():
    graph = _chain_graph(depth=3, size=32)
    tilings = tile_flg(graph, graph.layer_names(), tiling_number=4)
    # The last layer gets its fair share; earlier layers must be strictly larger.
    assert tilings["conv2"].out_tile.height < tilings["conv1"].out_tile.height <= tilings["conv0"].out_tile.height
    assert tilings["conv0"].out_tile.height > graph.layer("conv0").out_height // 2


def test_tile_flg_total_macs_exceed_nominal_with_halo():
    graph = _chain_graph(depth=3, size=32)
    tilings = tile_flg(graph, graph.layer_names(), tiling_number=8)
    assert overlap_overhead_ratio(graph, tilings) > 0.0


def test_tile_flg_no_overhead_for_single_tile():
    graph = _chain_graph()
    tilings = tile_flg(graph, graph.layer_names(), tiling_number=1)
    assert overlap_overhead_ratio(graph, tilings) == pytest.approx(0.0)


def test_tile_flg_finer_tiling_has_more_overhead():
    graph = _chain_graph(depth=4, size=32)
    coarse = tile_flg(graph, graph.layer_names(), tiling_number=2)
    fine = tile_flg(graph, graph.layer_names(), tiling_number=16)
    assert overlap_overhead_ratio(graph, fine) > overlap_overhead_ratio(graph, coarse)


def test_tile_flg_batch_split_has_no_halo_overhead():
    builder = GraphBuilder("batched", batch=4)
    a = builder.conv("a", [], 8, kernel=3, input_shape=(3, 16, 16))
    builder.conv("b", [a], 8, kernel=3)
    graph = builder.build()
    tilings = tile_flg(graph, graph.layer_names(), tiling_number=4)
    assert overlap_overhead_ratio(graph, tilings) == pytest.approx(0.0)
    assert all(t.out_tile.batch == 1 for t in tilings.values())


def test_tile_flg_memoisation_returns_equal_results():
    graph = _chain_graph()
    first = tile_flg(graph, graph.layer_names(), tiling_number=4)
    second = tile_flg(graph, graph.layer_names(), tiling_number=4)
    assert first == second
    assert first is not second  # callers get their own dict


def test_tile_flg_empty_group_rejected():
    graph = _chain_graph()
    with pytest.raises(WorkloadError):
        tile_flg(graph, [], tiling_number=2)


def test_effective_tiling_number_caps_at_available_extent():
    graph = _chain_graph(size=8)
    assert effective_tiling_number(graph, graph.layer_names(), 1024) <= 64


def test_max_tiling_number_positive():
    graph = _chain_graph()
    assert max_tiling_number(graph, graph.layer_names()) >= 1


def test_layer_tiling_ops_per_tile():
    graph = _chain_graph()
    tilings = tile_flg(graph, graph.layer_names(), tiling_number=2)
    tiling = tilings["conv1"]
    assert tiling.ops_per_tile == 2 * tiling.macs_per_tile + tiling.vector_ops_per_tile
    assert tiling.total_macs == tiling.num_tiles * tiling.macs_per_tile


# ----------------------------------------------------------------- heuristics
def test_next_power_of_two():
    assert next_power_of_two(0) == 1
    assert next_power_of_two(1) == 1
    assert next_power_of_two(3) == 4
    assert next_power_of_two(8) == 8
    assert next_power_of_two(9) == 16


def test_kc_heuristic_grows_with_channel_count():
    builder = GraphBuilder("g", batch=1)
    small = builder.conv("small", [], 128, kernel=3, input_shape=(3, 56, 56))
    big = builder.conv("big", [small], 2048, kernel=3)
    graph = builder.build()
    t_small = kc_parallelism_tiling_number(graph, [small], kc_parallel_lanes=128)
    t_big = kc_parallelism_tiling_number(graph, [big], kc_parallel_lanes=128)
    assert t_big > t_small
    assert t_small == 8  # the paper's early-ResNet-50 value
    assert t_big == 16  # the paper's late-ResNet-50 value


def test_kc_heuristic_scales_with_batch():
    builder = GraphBuilder("g", batch=4)
    layer = builder.conv("c", [], 128, kernel=3, input_shape=(3, 56, 56))
    graph = builder.build()
    assert kc_parallelism_tiling_number(graph, [layer], 128) == 32


def test_kc_heuristic_vector_only_group_gets_one_tile():
    builder = GraphBuilder("g", batch=1)
    a = builder.conv("a", [], 8, kernel=3, input_shape=(3, 8, 8))
    n = builder.norm("n", [a])
    graph = builder.build()
    assert kc_parallelism_tiling_number(graph, [n], 128) == 1


def test_kc_heuristic_empty_group_rejected():
    builder = GraphBuilder("g", batch=1)
    builder.conv("a", [], 8, kernel=3, input_shape=(3, 8, 8))
    graph = builder.build()
    with pytest.raises(ValueError):
        kc_parallelism_tiling_number(graph, [], 128)
