"""Tests for the LFA encoding structure and validation."""

import pytest

from repro.errors import EncodingError
from repro.notation.lfa import LFA


def _order(graph):
    return tuple(graph.topological_order())


def test_unfused_lfa_one_group_per_layer(linear_cnn):
    lfa = LFA.unfused(linear_cnn, tiling_number=2)
    lfa.validate(linear_cnn)
    assert lfa.flg_ranges() == [(i, i + 1) for i in range(len(linear_cnn))]
    assert lfa.lg_ranges() == lfa.flg_ranges()
    assert all(t == 2 for t in lfa.tiling_numbers.values())


def test_fully_fused_lfa_single_group(linear_cnn):
    lfa = LFA.fully_fused(linear_cnn, tiling_number=4)
    lfa.validate(linear_cnn)
    assert lfa.flg_ranges() == [(0, len(linear_cnn))]
    assert lfa.lg_ranges() == [(0, len(linear_cnn))]


def test_flg_and_lg_partition(linear_cnn):
    order = _order(linear_cnn)
    lfa = LFA(
        computing_order=order,
        flc_set=frozenset({1, 3}),
        dram_cut_set=frozenset({3}),
        tiling_numbers={0: 2, 1: 1, 3: 2},
    )
    lfa.validate(linear_cnn)
    assert lfa.flg_layers() == [list(order[0:1]), list(order[1:3]), list(order[3:5])]
    assert lfa.lg_layers() == [list(order[0:3]), list(order[3:5])]


def test_flg_of_position_and_tiling_lookup(linear_cnn):
    order = _order(linear_cnn)
    lfa = LFA(
        computing_order=order,
        flc_set=frozenset({2}),
        dram_cut_set=frozenset(),
        tiling_numbers={0: 4, 2: 8},
    )
    assert lfa.flg_of_position(0) == 0
    assert lfa.flg_of_position(1) == 0
    assert lfa.flg_of_position(2) == 1
    assert lfa.tiling_number_of_flg(0) == 4
    assert lfa.tiling_number_of_flg(1) == 8


def test_invalid_computing_order_rejected(branchy_cnn):
    order = list(branchy_cnn.topological_order())
    order[0], order[-1] = order[-1], order[0]
    lfa = LFA(
        computing_order=tuple(order),
        flc_set=frozenset(),
        dram_cut_set=frozenset(),
        tiling_numbers={0: 1},
    )
    with pytest.raises(EncodingError):
        lfa.validate(branchy_cnn)


def test_wrong_layer_count_rejected(linear_cnn):
    lfa = LFA(
        computing_order=_order(linear_cnn)[:-1],
        flc_set=frozenset(),
        dram_cut_set=frozenset(),
        tiling_numbers={0: 1},
    )
    with pytest.raises(EncodingError):
        lfa.validate(linear_cnn)


def test_dram_cut_must_be_subset_of_flc(linear_cnn):
    lfa = LFA(
        computing_order=_order(linear_cnn),
        flc_set=frozenset({2}),
        dram_cut_set=frozenset({3}),
        tiling_numbers={0: 1, 2: 1},
    )
    with pytest.raises(EncodingError):
        lfa.validate(linear_cnn)


def test_cut_position_out_of_range_rejected(linear_cnn):
    lfa = LFA(
        computing_order=_order(linear_cnn),
        flc_set=frozenset({len(linear_cnn)}),
        dram_cut_set=frozenset(),
        tiling_numbers={0: 1, len(linear_cnn): 1},
    )
    with pytest.raises(EncodingError):
        lfa.validate(linear_cnn)


def test_tiling_keys_must_match_group_starts(linear_cnn):
    lfa = LFA(
        computing_order=_order(linear_cnn),
        flc_set=frozenset({2}),
        dram_cut_set=frozenset(),
        tiling_numbers={0: 1},
    )
    with pytest.raises(EncodingError):
        lfa.validate(linear_cnn)


def test_non_positive_tiling_number_rejected(linear_cnn):
    lfa = LFA(
        computing_order=_order(linear_cnn),
        flc_set=frozenset(),
        dram_cut_set=frozenset(),
        tiling_numbers={0: 0},
    )
    with pytest.raises(EncodingError):
        lfa.validate(linear_cnn)


def test_describe_mentions_groups(linear_cnn):
    lfa = LFA.unfused(linear_cnn)
    text = lfa.describe()
    assert "FLGs" in text and "LGs" in text
