"""Shared fixtures: small accelerators and workloads that keep tests fast."""

from __future__ import annotations

import pytest

from repro.core.config import SAParams, SoMaConfig
from repro.hardware.accelerator import AcceleratorConfig
from repro.hardware.core import CoreArrayConfig
from repro.hardware.energy import EnergyModel
from repro.hardware.memory import MB, MemoryConfig
from repro.workloads.builder import GraphBuilder
from repro.workloads.gpt2 import GPT2Config, gpt2_decode, gpt2_prefill


@pytest.fixture
def tiny_accelerator() -> AcceleratorConfig:
    """A small accelerator: 2 cores, 1 MB GBUF, 8 GB/s DRAM, 1 GHz."""
    return AcceleratorConfig(
        name="tiny",
        frequency_hz=1e9,
        core_array=CoreArrayConfig(
            num_cores=2,
            macs_per_core=256,
            vector_lanes_per_core=32,
            al0_bytes=16 * 1024,
            wl0_bytes=16 * 1024,
            ol0_bytes=8 * 1024,
            gbuf_bytes_per_cycle=64.0,
            kc_parallel_lanes=32,
            tile_overhead_cycles=64,
        ),
        memory=MemoryConfig(gbuf_bytes=1 * MB, dram_bandwidth_bytes_per_s=8e9),
        energy=EnergyModel(),
    )


@pytest.fixture
def fast_config() -> SoMaConfig:
    """A very small search budget so scheduler tests stay quick."""
    return SoMaConfig(
        lfa_sa=SAParams(iterations_per_unit=3.0, max_iterations=120, min_iterations=8),
        dlsa_sa=SAParams(iterations_per_unit=2.0, max_iterations=150, min_iterations=8),
        max_allocator_iterations=2,
        allocator_patience=1,
        seed=7,
    )


@pytest.fixture
def linear_cnn() -> "WorkloadGraph":
    """A five-layer convolutional chain on a 32x32 input."""
    builder = GraphBuilder("linear_cnn", batch=1)
    a = builder.conv("conv_a", [], 16, kernel=3, stride=1, input_shape=(3, 32, 32))
    b = builder.conv("conv_b", [a], 32, kernel=3, stride=2)
    c = builder.conv("conv_c", [b], 32, kernel=3, stride=1)
    d = builder.pool("pool_d", [c], kernel=2, stride=2)
    builder.conv("conv_e", [d], 64, kernel=1, stride=1)
    return builder.build()


@pytest.fixture
def branchy_cnn() -> "WorkloadGraph":
    """A residual block: two parallel paths merged by an element-wise add."""
    builder = GraphBuilder("branchy_cnn", batch=1)
    stem = builder.conv("stem", [], 16, kernel=3, stride=1, input_shape=(3, 16, 16))
    left = builder.conv("left_conv1", [stem], 16, kernel=3)
    left = builder.conv("left_conv2", [left], 16, kernel=3)
    right = builder.conv("right_proj", [stem], 16, kernel=1)
    add = builder.eltwise("merge_add", [left, right])
    builder.conv("head", [add], 32, kernel=3, stride=2)
    return builder.build()


@pytest.fixture
def tiny_gpt_prefill() -> "WorkloadGraph":
    """A two-block GPT-2-style prefill workload with a short sequence."""
    config = GPT2Config(name="gpt2-test", num_layers=2, hidden=64, num_heads=4, ffn_hidden=128)
    return gpt2_prefill(config=config, batch=1, seq_len=16)


@pytest.fixture
def tiny_gpt_decode() -> "WorkloadGraph":
    """A two-block GPT-2-style decode workload against a short KV cache."""
    config = GPT2Config(name="gpt2-test", num_layers=2, hidden=64, num_heads=4, ffn_hidden=128)
    return gpt2_decode(config=config, batch=2, context_len=16)
