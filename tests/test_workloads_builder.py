"""Unit tests for the graph builder helpers."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.builder import GraphBuilder, conv_output_size
from repro.workloads.layer import OpType


def test_conv_output_size_same_padding():
    assert conv_output_size(32, kernel=3, stride=1, padding=1) == 32


def test_conv_output_size_stride_two():
    assert conv_output_size(32, kernel=3, stride=2, padding=1) == 16


def test_conv_output_size_invalid_geometry_rejected():
    with pytest.raises(WorkloadError):
        conv_output_size(2, kernel=7, stride=1, padding=0)


def test_conv_layer_shapes_and_weights():
    builder = GraphBuilder("g", batch=1)
    name = builder.conv("c1", [], 8, kernel=3, stride=1, input_shape=(3, 16, 16))
    layer = builder.graph.layer(name)
    assert (layer.out_channels, layer.out_height, layer.out_width) == (8, 16, 16)
    assert layer.weight_bytes == 3 * 8 * 9


def test_depthwise_conv_keeps_channels():
    builder = GraphBuilder("g", batch=1)
    a = builder.conv("c1", [], 8, kernel=3, input_shape=(3, 16, 16))
    d = builder.conv("dw", [a], 999, kernel=3, depthwise=True)
    layer = builder.graph.layer(d)
    assert layer.op_type is OpType.DWCONV
    assert layer.out_channels == 8
    assert layer.groups == 8


def test_chained_shapes_flow_through_builder():
    builder = GraphBuilder("g", batch=1)
    a = builder.conv("c1", [], 8, kernel=3, stride=2, input_shape=(3, 32, 32))
    b = builder.pool("p1", [a], kernel=2)
    assert builder.shape(b) == (8, 8, 8)


def test_global_pool_collapses_spatial_dims():
    builder = GraphBuilder("g", batch=1)
    a = builder.conv("c1", [], 8, kernel=3, input_shape=(3, 16, 16))
    p = builder.pool("gp", [a], global_pool=True)
    assert builder.shape(p) == (8, 1, 1)


def test_eltwise_requires_known_input():
    builder = GraphBuilder("g", batch=1)
    with pytest.raises(WorkloadError):
        builder.eltwise("add", ["missing"])


def test_concat_sums_channels():
    builder = GraphBuilder("g", batch=1)
    a = builder.conv("a", [], 8, kernel=1, input_shape=(3, 8, 8))
    b = builder.conv("b", [], 16, kernel=1, input_shape=(3, 8, 8))
    c = builder.concat("cat", [a, b])
    assert builder.shape(c) == (24, 8, 8)


def test_concat_with_mismatched_spatial_sizes_rejected():
    builder = GraphBuilder("g", batch=1)
    a = builder.conv("a", [], 8, kernel=3, stride=1, input_shape=(3, 8, 8))
    b = builder.conv("b", [], 8, kernel=3, stride=2, input_shape=(3, 8, 8))
    with pytest.raises(WorkloadError):
        builder.concat("cat", [a, b])


def test_gemm_maps_sequence_to_height():
    builder = GraphBuilder("g", batch=2)
    g = builder.gemm(
        "proj", [], out_features=32, in_features=16, seq_len=10, input_shape=(16, 10, 1)
    )
    layer = builder.graph.layer(g)
    assert layer.out_height == 10
    assert layer.weight_bytes == 16 * 32
    assert layer.macs == 2 * 10 * 16 * 32


def test_matmul_untiled_kv_edge():
    builder = GraphBuilder("g", batch=1)
    q = builder.gemm("q", [], out_features=8, in_features=8, seq_len=4, input_shape=(8, 4, 1))
    k = builder.gemm("k", [], out_features=8, in_features=8, seq_len=4, input_shape=(8, 4, 1))
    score = builder.matmul("score", q, k, out_features=16, contraction=2, seq_len=4)
    graph = builder.build()
    assert graph.dependency(q, score).tiled is True
    assert graph.dependency(k, score).tiled is False


def test_matmul_with_kv_bytes_and_no_kv_input():
    builder = GraphBuilder("g", batch=1)
    q = builder.gemm("q", [], out_features=8, in_features=8, seq_len=1, input_shape=(8, 1, 1))
    score = builder.matmul(
        "score", q, None, out_features=16, contraction=2, seq_len=1, kv_bytes=1024
    )
    layer = builder.graph.layer(score)
    assert layer.weight_bytes == 1024
    assert builder.graph.predecessors(score) == [q]


def test_source_layer_requires_explicit_shape():
    builder = GraphBuilder("g", batch=1)
    with pytest.raises(WorkloadError):
        builder.conv("c1", [], 8, kernel=3)


def test_empty_build_rejected():
    with pytest.raises(WorkloadError):
        GraphBuilder("g", batch=1).build()


def test_norm_softmax_activation_preserve_shape():
    builder = GraphBuilder("g", batch=1)
    a = builder.gemm("a", [], out_features=8, in_features=8, seq_len=4, input_shape=(8, 4, 1))
    n = builder.norm("n", [a])
    s = builder.softmax("s", [n])
    act = builder.activation("act", [s])
    assert builder.shape(act) == builder.shape(a)
