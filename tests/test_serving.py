"""Serving layer: protocol round-trips, coalescing, memoisation, bit-identity.

The contract under test: a served schedule is indistinguishable from calling
``SoMaScheduler.schedule`` directly — for any worker count — and every
response says which cache level produced it (memo / coalesced / warm / cold).
"""

from __future__ import annotations

import io
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.analysis.schedule_report import (
    build_schedule_report,
    evaluation_from_payload,
    evaluation_to_payload,
    report_from_payload,
)
from repro.core.caching import cache_size, schedule_request_key
from repro.core.soma import SoMaScheduler
from repro.serving.protocol import (
    ProtocolError,
    ScheduleRequest,
    ScheduleResponse,
    request_from_payload,
    request_to_payload,
    response_from_payload,
    response_to_payload,
)
from repro.serving.server import make_http_server, process_message, serve_stdio
from repro.serving.service import (
    ScheduleService,
    reset_worker_state,
    resolve_serve_workers,
)
from repro.workloads.registry import build_workload

TINY_KWARGS = (("context_len", 16), ("variant", "tiny"))


def tiny_request(seed: int = 7, request_id: str = "", batch: int = 1) -> ScheduleRequest:
    return ScheduleRequest(
        workload="gpt2-decode",
        batch=batch,
        workload_kwargs=TINY_KWARGS,
        seed=seed,
        fast=True,
        request_id=request_id,
    )


@pytest.fixture
def service():
    """A serial service with clean in-process worker state."""
    reset_worker_state()
    with ScheduleService(workers=1) as svc:
        yield svc
    reset_worker_state()


# ------------------------------------------------------------------- protocol
def test_request_payload_round_trip():
    request = tiny_request(seed=11, request_id="client-1")
    assert request_from_payload(request_to_payload(request)) == request


def test_request_payload_accepts_dict_workload_kwargs():
    decoded = request_from_payload(
        {"workload": "gpt2-decode", "workload_kwargs": {"variant": "tiny", "context_len": 16}}
    )
    assert decoded.workload_kwargs == TINY_KWARGS


def test_request_payload_rejects_unknown_fields_and_bad_values():
    with pytest.raises(ProtocolError):
        request_from_payload({"workload": "resnet50", "not_a_field": 1})
    with pytest.raises(ProtocolError):
        request_from_payload({"batch": 1})  # no workload
    with pytest.raises(ProtocolError):
        ScheduleRequest(workload="resnet50", platform="tpu")
    with pytest.raises(ProtocolError):
        ScheduleRequest(workload="resnet50", restarts=0)


def test_response_payload_round_trip():
    response = ScheduleResponse(
        request_id="abc",
        ok=True,
        provenance="memo",
        result={"evaluation": {"latency_s": 1.25e-3}},
        search_seconds=0.5,
        service_seconds=0.001,
        worker_pid=1234,
    )
    assert response_from_payload(response_to_payload(response)) == response


def test_report_payload_round_trip(linear_cnn, tiny_accelerator, fast_config):
    result = SoMaScheduler(tiny_accelerator, fast_config).schedule(linear_cnn, seed=3)
    report = build_schedule_report(result.plan, result.evaluation)
    payload = json.loads(json.dumps(report.to_payload()))
    assert report_from_payload(payload) == report
    evaluation = evaluation_from_payload(payload["evaluation"])
    assert evaluation.latency_s == result.evaluation.latency_s
    assert evaluation.energy_j == result.evaluation.energy_j


def test_evaluation_payload_round_trips_infeasible():
    from repro.core.result import EvaluationResult

    infeasible = EvaluationResult(feasible=False, reason="deadlock")
    rebuilt = evaluation_from_payload(
        json.loads(json.dumps(evaluation_to_payload(infeasible)))
    )
    assert rebuilt == infeasible


def test_schedule_request_key_separates_every_dimension(tiny_accelerator, fast_config):
    base = schedule_request_key("g1", tiny_accelerator, fast_config, 7, 1)
    assert base == schedule_request_key("g1", tiny_accelerator, fast_config, 7, 1)
    assert base != schedule_request_key("g2", tiny_accelerator, fast_config, 7, 1)
    assert base != schedule_request_key("g1", tiny_accelerator, fast_config, 8, 1)
    assert base != schedule_request_key("g1", tiny_accelerator, fast_config, 7, 2)
    assert base != schedule_request_key(
        "g1", tiny_accelerator.with_memory(gbuf_bytes=2 ** 21), fast_config, 7, 1
    )


# ----------------------------------------------------------------- env knobs
def test_resolve_serve_workers_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_SERVE_WORKERS", raising=False)
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    assert resolve_serve_workers(None) == 1
    assert resolve_serve_workers(3) == 3
    monkeypatch.setenv("REPRO_WORKERS", "2")
    assert resolve_serve_workers(None) == 2
    monkeypatch.setenv("REPRO_SERVE_WORKERS", "4")
    assert resolve_serve_workers(None) == 4
    assert resolve_serve_workers(1) == 1


def test_resolve_serve_workers_warns_on_invalid_env(monkeypatch):
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    monkeypatch.setenv("REPRO_SERVE_WORKERS", "many")
    with pytest.warns(RuntimeWarning, match="REPRO_SERVE_WORKERS"):
        assert resolve_serve_workers(None) == 1


def test_cache_size_warns_on_invalid_env(monkeypatch):
    monkeypatch.setenv("REPRO_SERVE_MEMO_CACHE", "lots")
    with pytest.warns(RuntimeWarning, match="REPRO_SERVE_MEMO_CACHE"):
        assert cache_size("SERVE_MEMO", 256) == 256
    monkeypatch.setenv("REPRO_SERVE_MEMO_CACHE", "12")
    assert cache_size("SERVE_MEMO", 256) == 12


# ------------------------------------------------------------------- service
def test_memo_hit_provenance_and_identical_payload(service):
    first = service.schedule(tiny_request(request_id="a"))
    second = service.schedule(tiny_request(request_id="b"))
    assert first.ok and second.ok
    assert first.provenance == "cold"
    assert second.provenance == "memo"
    assert second.result == first.result
    assert second.request_id == "b"
    assert second.search_seconds == 0.0
    stats = service.stats()
    assert stats["provenance"]["memo"] == 1
    assert stats["memo"]["hits"] == 1


def test_memo_can_be_disabled():
    reset_worker_state()
    with ScheduleService(workers=1, memo_size=0) as service:
        first = service.schedule(tiny_request())
        second = service.schedule(tiny_request())
    assert first.provenance == "cold"
    # No memo, but the in-process worker state is still warm.
    assert second.provenance == "warm"
    assert second.result["evaluation"] == first.result["evaluation"]


def test_duplicate_requests_coalesce_onto_one_search(service):
    batch = [tiny_request(request_id=f"r{i}") for i in range(4)]
    responses = service.schedule_many(batch)
    assert [response.request_id for response in responses] == ["r0", "r1", "r2", "r3"]
    provenances = [response.provenance for response in responses]
    assert provenances.count("cold") == 1
    assert provenances.count("coalesced") == 3
    payloads = {id(response.result) for response in responses}
    assert len(payloads) == 1  # one search, one shared payload


def test_warm_worker_provenance_reports_cache_activity(service):
    cold = service.schedule(tiny_request(seed=7))
    warm = service.schedule(tiny_request(seed=8))  # different seed: no memo hit
    assert cold.provenance == "cold"
    assert warm.provenance == "warm"
    # The warm run hit per-graph caches populated by the cold run.
    assert warm.cache_stats is not None
    assert sum(entry["hits"] for entry in warm.cache_stats.values()) > 0


def test_unknown_workload_is_an_error_response(service):
    response = service.schedule(ScheduleRequest(workload="not-a-model"))
    assert not response.ok
    assert response.provenance == "error"
    assert "not-a-model" in response.error
    assert service.stats()["provenance"]["error"] == 1


def test_mixed_batch_keeps_request_order(service):
    batch = [
        tiny_request(request_id="good-1"),
        ScheduleRequest(workload="not-a-model", request_id="bad"),
        tiny_request(request_id="good-2"),
    ]
    responses = service.schedule_many(batch)
    assert [response.request_id for response in responses] == ["good-1", "bad", "good-2"]
    assert [response.ok for response in responses] == [True, False, True]


@pytest.mark.parametrize("workers", [1, 2])
def test_served_results_bit_identical_to_direct(workers):
    reset_worker_state()
    request = tiny_request(seed=13)
    graph = build_workload("gpt2-decode", batch=1, **request.workload_kwargs_dict)
    direct = SoMaScheduler(request.build_accelerator(), request.build_config()).schedule(
        graph, seed=13
    )
    with ScheduleService(workers=workers) as service:
        served = service.schedule(request)
        repeat = service.schedule(tiny_request(seed=13))
    assert served.ok
    assert served.result["evaluation"] == evaluation_to_payload(direct.evaluation)
    assert served.result["stage1"] == evaluation_to_payload(direct.stage1.evaluation)
    assert served.result["stage2"] == evaluation_to_payload(direct.stage2.evaluation)
    expected_report = build_schedule_report(direct.plan, direct.evaluation)
    assert report_from_payload(served.result["report"]) == expected_report
    assert repeat.provenance == "memo"
    assert repeat.result["evaluation"] == served.result["evaluation"]
    reset_worker_state()


def test_seed_sweep_stays_on_one_warm_worker():
    """Affinity routing: same graph -> same worker, warm after the first hit."""
    reset_worker_state()
    with ScheduleService(workers=2) as service:
        responses = [service.schedule(tiny_request(seed=seed)) for seed in (1, 2, 3)]
    pids = {response.worker_pid for response in responses}
    assert len(pids) == 1
    assert [response.provenance for response in responses] == ["cold", "warm", "warm"]


def test_finish_only_retires_its_own_inflight_entry(service):
    """A slow follower of an old search must not retire a newer leader."""
    old_future = object()
    new_future = object()
    service._inflight["key"] = new_future
    service._finish("key", old_future, {"stale": True}, None)
    assert service._inflight["key"] is new_future  # untouched by the stale finisher
    service._finish("key", new_future, {"fresh": True}, None)
    assert "key" not in service._inflight
    assert service._memo.peek("key") == {"fresh": True}


def test_worker_cache_totals_keep_occupancy_not_sums(service):
    """Counters accumulate across requests; size/maxsize stay snapshots."""
    service.schedule(tiny_request(seed=7))
    warm = service.schedule(tiny_request(seed=8))
    assert warm.provenance == "warm"
    totals = service.stats()["worker_caches"]
    for name, entry in warm.cache_stats.items():
        # maxsize must be the cache's actual capacity, not N-requests times it.
        assert totals[name]["maxsize"] == entry["maxsize"]
    assert sum(entry["hits"] for entry in totals.values()) >= sum(
        entry["hits"] for entry in warm.cache_stats.values()
    )


def test_worker_state_is_bounded():
    from repro.serving import service as service_module

    assert service_module._WORKER_GRAPHS.maxsize > 0
    assert service_module._WORKER_SCHEDULERS.maxsize > 0
    reset_worker_state()
    assert service_module.worker_state_sizes() == (0, 0)


# ------------------------------------------------------------------- servers
def test_stdio_server_single_batch_stats_shutdown(service):
    lines = [
        json.dumps(request_to_payload(tiny_request(request_id="one"))),
        json.dumps(
            [request_to_payload(tiny_request(seed=99, request_id=f"b{i}")) for i in range(2)]
        ),
        "not json {",
        json.dumps({"op": "stats"}),
        json.dumps({"op": "nope"}),
        json.dumps({"op": "shutdown"}),
        json.dumps(request_to_payload(tiny_request(request_id="after"))),
    ]
    out = io.StringIO()
    assert serve_stdio(service, io.StringIO("\n".join(lines) + "\n"), out) == 0
    replies = [json.loads(line) for line in out.getvalue().splitlines()]
    # The post-shutdown request was never processed.
    assert len(replies) == 6
    single, batch, bad_json, stats, bad_op, shutdown = replies
    assert single["ok"] and single["provenance"] == "cold"
    # Same graph and config as the first request, so the in-process worker
    # state is already warm; the duplicate coalesces onto the leader.
    assert [reply["provenance"] for reply in batch] == ["warm", "coalesced"]
    assert not bad_json["ok"] and "invalid JSON" in bad_json["error"]
    assert stats["ok"] and stats["stats"]["requests"] == 3
    assert not bad_op["ok"]
    assert shutdown["ok"] and shutdown["shutdown"]


def test_process_message_batch_with_malformed_item(service):
    payload, shutdown = process_message(
        service,
        [
            request_to_payload(tiny_request(request_id="ok")),
            {"workload": "resnet50", "bogus": True, "request_id": "broken"},
        ],
    )
    assert not shutdown
    assert payload[0]["ok"]
    assert not payload[1]["ok"]
    assert payload[1]["request_id"] == "broken"


def test_http_server_round_trip(service):
    server = make_http_server(service, port=0)
    port = server.server_address[1]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        def post(path, payload):
            request = urllib.request.Request(
                f"http://127.0.0.1:{port}{path}",
                data=json.dumps(payload).encode("utf-8"),
                headers={"Content-Type": "application/json"},
            )
            try:
                with urllib.request.urlopen(request) as http_response:
                    return http_response.status, json.loads(http_response.read())
            except urllib.error.HTTPError as error:
                return error.code, json.loads(error.read())

        status, reply = post("/schedule", request_to_payload(tiny_request(request_id="h1")))
        assert status == 200 and reply["ok"] and reply["provenance"] == "cold"
        status, reply = post(
            "/schedule",
            [request_to_payload(tiny_request(seed=42, request_id="h2"))] * 2,
        )
        assert status == 200
        assert [item["provenance"] for item in reply] == ["warm", "coalesced"]

        with urllib.request.urlopen(f"http://127.0.0.1:{port}/healthz") as http_response:
            health = json.loads(http_response.read())
        assert health["ok"] and health["workers"] == 1
        with urllib.request.urlopen(f"http://127.0.0.1:{port}/stats") as http_response:
            stats = json.loads(http_response.read())
        assert stats["stats"]["requests"] == 3

        status, reply = post("/schedule", {"op": "shutdown"})
        assert status == 400
    finally:
        server.shutdown()
        server.server_close()
