"""Serving layer: protocol round-trips, coalescing, memoisation, bit-identity.

The contract under test: a served schedule is indistinguishable from calling
``SoMaScheduler.schedule`` directly — for any worker count — and every
response says which cache level produced it (memo / coalesced / warm / cold).
"""

from __future__ import annotations

import io
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.analysis.schedule_report import (
    build_schedule_report,
    evaluation_from_payload,
    evaluation_to_payload,
    report_from_payload,
)
from repro.core.caching import cache_size, schedule_request_key
from repro.core.soma import SoMaScheduler
from repro.serving.protocol import (
    ProtocolError,
    ScheduleRequest,
    ScheduleResponse,
    request_from_payload,
    request_to_payload,
    response_from_payload,
    response_to_payload,
)
from repro.serving.server import (
    http_status_for,
    make_http_server,
    process_message,
    serve_stdio,
)
from repro.serving.service import (
    ScheduleService,
    reset_worker_state,
    resolve_memo_path,
    resolve_queue_size,
    resolve_serve_workers,
)
from repro.workloads.registry import build_workload

TINY_KWARGS = (("context_len", 16), ("variant", "tiny"))


def tiny_request(seed: int = 7, request_id: str = "", batch: int = 1) -> ScheduleRequest:
    return ScheduleRequest(
        workload="gpt2-decode",
        batch=batch,
        workload_kwargs=TINY_KWARGS,
        seed=seed,
        fast=True,
        request_id=request_id,
    )


@pytest.fixture
def service():
    """A serial service with clean in-process worker state."""
    reset_worker_state()
    with ScheduleService(workers=1) as svc:
        yield svc
    reset_worker_state()


# ------------------------------------------------------------------- protocol
def test_request_payload_round_trip():
    request = tiny_request(seed=11, request_id="client-1")
    assert request_from_payload(request_to_payload(request)) == request


def test_request_payload_accepts_dict_workload_kwargs():
    decoded = request_from_payload(
        {"workload": "gpt2-decode", "workload_kwargs": {"variant": "tiny", "context_len": 16}}
    )
    assert decoded.workload_kwargs == TINY_KWARGS


def test_request_payload_rejects_unknown_fields_and_bad_values():
    with pytest.raises(ProtocolError):
        request_from_payload({"workload": "resnet50", "not_a_field": 1})
    with pytest.raises(ProtocolError):
        request_from_payload({"batch": 1})  # no workload
    with pytest.raises(ProtocolError):
        ScheduleRequest(workload="resnet50", platform="tpu")
    with pytest.raises(ProtocolError):
        ScheduleRequest(workload="resnet50", restarts=0)


def test_response_payload_round_trip():
    response = ScheduleResponse(
        request_id="abc",
        ok=True,
        provenance="memo",
        result={"evaluation": {"latency_s": 1.25e-3}},
        search_seconds=0.5,
        service_seconds=0.001,
        worker_pid=1234,
    )
    assert response_from_payload(response_to_payload(response)) == response


def test_report_payload_round_trip(linear_cnn, tiny_accelerator, fast_config):
    result = SoMaScheduler(tiny_accelerator, fast_config).schedule(linear_cnn, seed=3)
    report = build_schedule_report(result.plan, result.evaluation)
    payload = json.loads(json.dumps(report.to_payload()))
    assert report_from_payload(payload) == report
    evaluation = evaluation_from_payload(payload["evaluation"])
    assert evaluation.latency_s == result.evaluation.latency_s
    assert evaluation.energy_j == result.evaluation.energy_j


def test_evaluation_payload_round_trips_infeasible():
    from repro.core.result import EvaluationResult

    infeasible = EvaluationResult(feasible=False, reason="deadlock")
    rebuilt = evaluation_from_payload(
        json.loads(json.dumps(evaluation_to_payload(infeasible)))
    )
    assert rebuilt == infeasible


def test_schedule_request_key_separates_every_dimension(tiny_accelerator, fast_config):
    base = schedule_request_key("g1", tiny_accelerator, fast_config, 7, 1)
    assert base == schedule_request_key("g1", tiny_accelerator, fast_config, 7, 1)
    assert base != schedule_request_key("g2", tiny_accelerator, fast_config, 7, 1)
    assert base != schedule_request_key("g1", tiny_accelerator, fast_config, 8, 1)
    assert base != schedule_request_key("g1", tiny_accelerator, fast_config, 7, 2)
    assert base != schedule_request_key(
        "g1", tiny_accelerator.with_memory(gbuf_bytes=2 ** 21), fast_config, 7, 1
    )


# ----------------------------------------------------------------- env knobs
def test_resolve_serve_workers_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_SERVE_WORKERS", raising=False)
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    assert resolve_serve_workers(None) == 1
    assert resolve_serve_workers(3) == 3
    monkeypatch.setenv("REPRO_WORKERS", "2")
    assert resolve_serve_workers(None) == 2
    monkeypatch.setenv("REPRO_SERVE_WORKERS", "4")
    assert resolve_serve_workers(None) == 4
    assert resolve_serve_workers(1) == 1


def test_resolve_serve_workers_warns_on_invalid_env(monkeypatch):
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    monkeypatch.setenv("REPRO_SERVE_WORKERS", "many")
    with pytest.warns(RuntimeWarning, match="REPRO_SERVE_WORKERS"):
        assert resolve_serve_workers(None) == 1


def test_cache_size_warns_on_invalid_env(monkeypatch):
    monkeypatch.setenv("REPRO_SERVE_MEMO_CACHE", "lots")
    with pytest.warns(RuntimeWarning, match="REPRO_SERVE_MEMO_CACHE"):
        assert cache_size("SERVE_MEMO", 256) == 256
    monkeypatch.setenv("REPRO_SERVE_MEMO_CACHE", "12")
    assert cache_size("SERVE_MEMO", 256) == 12


# ------------------------------------------------------------------- service
def test_memo_hit_provenance_and_identical_payload(service):
    first = service.schedule(tiny_request(request_id="a"))
    second = service.schedule(tiny_request(request_id="b"))
    assert first.ok and second.ok
    assert first.provenance == "cold"
    assert second.provenance == "memo"
    assert second.result == first.result
    assert second.request_id == "b"
    assert second.search_seconds == 0.0
    stats = service.stats()
    assert stats["provenance"]["memo"] == 1
    assert stats["memo"]["hits"] == 1


def test_memo_can_be_disabled():
    reset_worker_state()
    with ScheduleService(workers=1, memo_size=0) as service:
        first = service.schedule(tiny_request())
        second = service.schedule(tiny_request())
    assert first.provenance == "cold"
    # No memo, but the in-process worker state is still warm.
    assert second.provenance == "warm"
    assert second.result["evaluation"] == first.result["evaluation"]


def test_duplicate_requests_coalesce_onto_one_search(service):
    batch = [tiny_request(request_id=f"r{i}") for i in range(4)]
    responses = service.schedule_many(batch)
    assert [response.request_id for response in responses] == ["r0", "r1", "r2", "r3"]
    provenances = [response.provenance for response in responses]
    assert provenances.count("cold") == 1
    assert provenances.count("coalesced") == 3
    payloads = {id(response.result) for response in responses}
    assert len(payloads) == 1  # one search, one shared payload


def test_warm_worker_provenance_reports_cache_activity(service):
    cold = service.schedule(tiny_request(seed=7))
    warm = service.schedule(tiny_request(seed=8))  # different seed: no memo hit
    assert cold.provenance == "cold"
    assert warm.provenance == "warm"
    # The warm run hit per-graph caches populated by the cold run.
    assert warm.cache_stats is not None
    assert sum(entry["hits"] for entry in warm.cache_stats.values()) > 0


def test_unknown_workload_is_an_error_response(service):
    response = service.schedule(ScheduleRequest(workload="not-a-model"))
    assert not response.ok
    assert response.provenance == "error"
    assert "not-a-model" in response.error
    assert service.stats()["provenance"]["error"] == 1


def test_mixed_batch_keeps_request_order(service):
    batch = [
        tiny_request(request_id="good-1"),
        ScheduleRequest(workload="not-a-model", request_id="bad"),
        tiny_request(request_id="good-2"),
    ]
    responses = service.schedule_many(batch)
    assert [response.request_id for response in responses] == ["good-1", "bad", "good-2"]
    assert [response.ok for response in responses] == [True, False, True]


@pytest.mark.parametrize("workers", [1, 2])
def test_served_results_bit_identical_to_direct(workers):
    reset_worker_state()
    request = tiny_request(seed=13)
    graph = build_workload("gpt2-decode", batch=1, **request.workload_kwargs_dict)
    direct = SoMaScheduler(request.build_accelerator(), request.build_config()).schedule(
        graph, seed=13
    )
    with ScheduleService(workers=workers) as service:
        served = service.schedule(request)
        repeat = service.schedule(tiny_request(seed=13))
    assert served.ok
    assert served.result["evaluation"] == evaluation_to_payload(direct.evaluation)
    assert served.result["stage1"] == evaluation_to_payload(direct.stage1.evaluation)
    assert served.result["stage2"] == evaluation_to_payload(direct.stage2.evaluation)
    expected_report = build_schedule_report(direct.plan, direct.evaluation)
    assert report_from_payload(served.result["report"]) == expected_report
    assert repeat.provenance == "memo"
    assert repeat.result["evaluation"] == served.result["evaluation"]
    reset_worker_state()


def test_idle_pool_fanout_grants_whole_pool_and_stays_bit_identical(monkeypatch):
    """A cold request on a quiet pipelined service fans out, bit for bit.

    With the stage pipeline enabled, an empty queue and a fully idle pool,
    the service runs the request parent-side with the whole pool granted to
    the allocator; the response records the grant and the schedule matches
    a direct call exactly (fan-out moves work between processes, never the
    placements).
    """
    reset_worker_state()
    monkeypatch.setenv("REPRO_STAGE_PIPELINE", "1")
    request = tiny_request(seed=17)
    graph = build_workload("gpt2-decode", batch=1, **request.workload_kwargs_dict)
    direct = SoMaScheduler(request.build_accelerator(), request.build_config()).schedule(
        graph, seed=17
    )
    with ScheduleService(workers=2) as service:
        served = service.schedule(request)
        stats = service.stats()
    assert served.ok
    assert served.fanout_workers == 2
    assert served.result["evaluation"] == evaluation_to_payload(direct.evaluation)
    assert served.result["stage1"] == evaluation_to_payload(direct.stage1.evaluation)
    assert served.result["stage2"] == evaluation_to_payload(direct.stage2.evaluation)
    assert stats["fanout"]["grants"] == 1
    assert stats["fanout"]["enabled"]
    reset_worker_state()


def test_fanout_needs_pipeline_knob_and_a_parallel_pool(service):
    """Serial pools and the default (pipeline off) path never fan out."""
    response = service.schedule(tiny_request(seed=19))
    assert response.ok
    assert response.fanout_workers == 0
    stats = service.stats()
    assert stats["fanout"]["grants"] == 0
    assert not stats["fanout"]["enabled"]


def test_seed_sweep_stays_on_one_warm_worker():
    """Affinity routing: same graph -> same worker, warm after the first hit."""
    reset_worker_state()
    with ScheduleService(workers=2) as service:
        responses = [service.schedule(tiny_request(seed=seed)) for seed in (1, 2, 3)]
    pids = {response.worker_pid for response in responses}
    assert len(pids) == 1
    assert [response.provenance for response in responses] == ["cold", "warm", "warm"]


def test_retire_only_removes_its_own_inflight_entry(service):
    """A stale resolution of an old entry must not retire a newer leader."""
    from repro.serving.service import _QueueEntry

    old_entry = _QueueEntry(tiny_request(request_id="old"), "key", "aff")
    new_entry = _QueueEntry(tiny_request(request_id="new"), "key", "aff")
    service._inflight["key"] = new_entry
    service._resolve_failure(old_entry, _QueueEntry.OUTCOME_ERROR, "boom")
    assert service._inflight["key"] is new_entry  # untouched by the stale entry
    reply = {
        "payload": {"fresh": True},
        "provenance": "cold",
        "pid": 0,
        "search_seconds": 0.0,
        "cache_stats": None,
    }
    service._resolve_done(new_entry, reply)
    assert "key" not in service._inflight
    assert service._memo.peek("key") == {"fresh": True}


def test_worker_cache_totals_keep_occupancy_not_sums(service):
    """Counters accumulate across requests; size/maxsize stay snapshots."""
    service.schedule(tiny_request(seed=7))
    warm = service.schedule(tiny_request(seed=8))
    assert warm.provenance == "warm"
    totals = service.stats()["worker_caches"]
    for name, entry in warm.cache_stats.items():
        # maxsize must be the cache's actual capacity, not N-requests times it.
        assert totals[name]["maxsize"] == entry["maxsize"]
    assert sum(entry["hits"] for entry in totals.values()) >= sum(
        entry["hits"] for entry in warm.cache_stats.values()
    )


def test_worker_state_is_bounded():
    from repro.serving import service as service_module

    assert service_module._WORKER_GRAPHS.maxsize > 0
    assert service_module._WORKER_SCHEDULERS.maxsize > 0
    reset_worker_state()
    assert service_module.worker_state_sizes() == (0, 0)


# ------------------------------------------------------------------- servers
def test_stdio_server_single_batch_stats_shutdown(service):
    lines = [
        json.dumps(request_to_payload(tiny_request(request_id="one"))),
        json.dumps(
            [request_to_payload(tiny_request(seed=99, request_id=f"b{i}")) for i in range(2)]
        ),
        "not json {",
        json.dumps({"op": "stats"}),
        json.dumps({"op": "nope"}),
        json.dumps({"op": "shutdown"}),
        json.dumps(request_to_payload(tiny_request(request_id="after"))),
    ]
    out = io.StringIO()
    assert serve_stdio(service, io.StringIO("\n".join(lines) + "\n"), out) == 0
    replies = [json.loads(line) for line in out.getvalue().splitlines()]
    # The post-shutdown request was never processed.
    assert len(replies) == 6
    single, batch, bad_json, stats, bad_op, shutdown = replies
    assert single["ok"] and single["provenance"] == "cold"
    # Same graph and config as the first request, so the in-process worker
    # state is already warm; the duplicate coalesces onto the leader.
    assert [reply["provenance"] for reply in batch] == ["warm", "coalesced"]
    assert not bad_json["ok"] and "invalid JSON" in bad_json["error"]
    assert stats["ok"] and stats["stats"]["requests"] == 3
    assert not bad_op["ok"]
    assert shutdown["ok"] and shutdown["shutdown"]


def test_process_message_batch_with_malformed_item(service):
    payload, shutdown = process_message(
        service,
        [
            request_to_payload(tiny_request(request_id="ok")),
            {"workload": "resnet50", "bogus": True, "request_id": "broken"},
        ],
    )
    assert not shutdown
    assert payload[0]["ok"]
    assert not payload[1]["ok"]
    assert payload[1]["request_id"] == "broken"


def test_http_server_round_trip(service):
    server = make_http_server(service, port=0)
    port = server.server_address[1]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        def post(path, payload):
            request = urllib.request.Request(
                f"http://127.0.0.1:{port}{path}",
                data=json.dumps(payload).encode("utf-8"),
                headers={"Content-Type": "application/json"},
            )
            try:
                with urllib.request.urlopen(request) as http_response:
                    return http_response.status, json.loads(http_response.read())
            except urllib.error.HTTPError as error:
                return error.code, json.loads(error.read())

        status, reply = post("/schedule", request_to_payload(tiny_request(request_id="h1")))
        assert status == 200 and reply["ok"] and reply["provenance"] == "cold"
        status, reply = post(
            "/schedule",
            [request_to_payload(tiny_request(seed=42, request_id="h2"))] * 2,
        )
        assert status == 200
        assert [item["provenance"] for item in reply] == ["warm", "coalesced"]

        with urllib.request.urlopen(f"http://127.0.0.1:{port}/healthz") as http_response:
            health = json.loads(http_response.read())
        assert health["ok"] and health["workers"] == 1
        with urllib.request.urlopen(f"http://127.0.0.1:{port}/stats") as http_response:
            stats = json.loads(http_response.read())
        assert stats["stats"]["requests"] == 3

        status, reply = post("/schedule", {"op": "shutdown"})
        assert status == 400
    finally:
        server.shutdown()
        server.server_close()


# -------------------------------------------------------- admission queue
class _BlockingExecutor:
    """A monkeypatch stand-in for ``_execute_request`` driven by events.

    ``started`` is set when a dispatcher enters the executor; the executor
    then blocks until ``release`` is set, so a test can deterministically
    hold one request in flight while it fills (or drains) the queue.
    """

    def __init__(self) -> None:
        self.started = threading.Event()
        self.release = threading.Event()
        self.executed_seeds: list[int] = []

    def __call__(self, request: ScheduleRequest) -> dict:
        self.started.set()
        assert self.release.wait(timeout=30), "test never released the executor"
        self.executed_seeds.append(request.seed)
        return {
            "payload": {"fake-seed": request.seed},
            "provenance": "cold",
            "pid": 0,
            "search_seconds": 0.0,
            "cache_stats": None,
        }


@pytest.fixture
def blocking_executor(monkeypatch):
    executor = _BlockingExecutor()
    monkeypatch.setattr("repro.serving.service._execute_request", executor)
    yield executor
    executor.release.set()  # never leave a dispatcher blocked at teardown


def test_full_queue_rejects_with_429_semantics(blocking_executor):
    with ScheduleService(workers=1, queue_size=1) as service:
        leader = service._submit(tiny_request(seed=1, request_id="inflight"))
        assert blocking_executor.started.wait(timeout=10)
        queued = service._submit(tiny_request(seed=2, request_id="queued"))
        rejected = service.schedule(tiny_request(seed=3, request_id="overflow"))
        assert not rejected.ok
        assert rejected.provenance == "rejected"
        assert rejected.error_kind == "overload"
        assert "queue is full" in rejected.error
        stats = service.stats()
        assert stats["queue"]["rejected"] == 1
        assert stats["queue"]["maxsize"] == 1
        blocking_executor.release.set()
        assert leader.result().ok
        assert queued.result().ok


def test_queued_deadline_expires_before_dispatch(blocking_executor):
    with ScheduleService(workers=1, queue_size=4) as service:
        leader = service._submit(tiny_request(seed=1))
        assert blocking_executor.started.wait(timeout=10)
        doomed = service._submit(
            ScheduleRequest(
                workload="gpt2-decode",
                workload_kwargs=TINY_KWARGS,
                seed=2,
                fast=True,
                deadline_ms=20.0,
                request_id="doomed",
            )
        )
        time.sleep(0.08)  # let the queued deadline pass while the leader blocks
        blocking_executor.release.set()
        expired = doomed.result()
        assert not expired.ok
        assert expired.provenance == "expired"
        assert expired.error_kind == "deadline"
        assert "deadline" in expired.error
        assert leader.result().ok
        assert service.stats()["queue"]["expired"] == 1
    # The expired request never reached a worker.
    assert blocking_executor.executed_seeds == [1]


def test_memo_hits_bypass_a_full_queue(blocking_executor):
    """Cheap requests stay cheap under load: memo hits skip admission."""
    with ScheduleService(workers=1, queue_size=0) as service:
        request = tiny_request(seed=5)
        key = service.request_fingerprint(request)
        service._memo.put(key, {"fake-seed": 5})
        served = service.schedule(tiny_request(seed=5, request_id="repeat"))
        assert served.ok and served.provenance == "memo"
        # A cache miss under the same zero-capacity queue is rejected.
        missed = service.schedule(tiny_request(seed=6))
        assert not missed.ok and missed.provenance == "rejected"


def test_coalesced_followers_share_the_leaders_queue_slot(blocking_executor):
    with ScheduleService(workers=1, queue_size=1) as service:
        inflight = service._submit(tiny_request(seed=1))
        assert blocking_executor.started.wait(timeout=10)
        leader = service._submit(tiny_request(seed=2, request_id="leader"))
        follower = service._submit(tiny_request(seed=2, request_id="follower"))
        assert len(service._queue) == 1  # the follower consumed no capacity
        blocking_executor.release.set()
        assert inflight.result().ok
        leader_response, follower_response = leader.result(), follower.result()
        assert leader_response.provenance == "cold"
        assert follower_response.provenance == "coalesced"
        assert follower_response.result == leader_response.result


def test_higher_priority_dispatches_first(blocking_executor):
    with ScheduleService(workers=1, queue_size=8) as service:
        first = service._submit(tiny_request(seed=1))
        assert blocking_executor.started.wait(timeout=10)
        low = service._submit(tiny_request(seed=2))  # priority 0
        high = service._submit(
            ScheduleRequest(
                workload="gpt2-decode",
                workload_kwargs=TINY_KWARGS,
                seed=3,
                fast=True,
                priority=5,
            )
        )
        blocking_executor.release.set()
        for future in (first, low, high):
            assert future.result().ok
    assert blocking_executor.executed_seeds == [1, 3, 2]


def test_search_failure_reports_error_kind_search(monkeypatch, service):
    def explode(_request):
        raise RuntimeError("search exploded")

    monkeypatch.setattr("repro.serving.service._execute_request", explode)
    response = service.schedule(tiny_request(seed=77))
    assert not response.ok
    assert response.provenance == "error"
    assert response.error_kind == "search"
    assert "search exploded" in response.error


def test_close_fails_queued_requests_fast(blocking_executor):
    service = ScheduleService(workers=1, queue_size=4)
    inflight = service._submit(tiny_request(seed=1))
    assert blocking_executor.started.wait(timeout=10)
    queued = service._submit(tiny_request(seed=2))
    closer = threading.Thread(target=service.close)
    closer.start()
    # The queued request is failed by close() before the in-flight one ends.
    cancelled = queued.result()
    assert not cancelled.ok
    assert cancelled.provenance == "rejected"
    assert "shutting down" in cancelled.error
    blocking_executor.release.set()
    closer.join(timeout=30)
    assert not closer.is_alive()
    assert inflight.result().ok  # the in-flight search drained, not died
    # And a post-close request is refused outright.
    late = service.schedule(tiny_request(seed=9))
    assert not late.ok and late.provenance == "rejected"
    assert "closed" in late.error


def test_close_reaps_worker_processes(monkeypatch):
    import multiprocessing

    # Pin the classic one-worker routing: with REPRO_STAGE_PIPELINE=1 a cold
    # request at an idle pool is granted a fan-out and runs parent-side on
    # the allocator's own pool, so the serving pool would never spawn.
    monkeypatch.delenv("REPRO_STAGE_PIPELINE", raising=False)
    reset_worker_state()
    before = set(multiprocessing.active_children())
    service = ScheduleService(workers=2)
    response = service.schedule(tiny_request(seed=21))
    assert response.ok
    spawned = set(multiprocessing.active_children()) - before
    assert spawned  # the persistent pool forked real workers
    service.close()
    assert not (set(multiprocessing.active_children()) & spawned)
    service.close()  # idempotent
    reset_worker_state()


def test_resolve_queue_size_resolution(monkeypatch):
    monkeypatch.delenv("REPRO_SERVE_QUEUE", raising=False)
    assert resolve_queue_size(None) == 64
    assert resolve_queue_size(7) == 7
    assert resolve_queue_size(0) == 0
    monkeypatch.setenv("REPRO_SERVE_QUEUE", "9")
    assert resolve_queue_size(None) == 9
    monkeypatch.setenv("REPRO_SERVE_QUEUE", "soon")
    with pytest.warns(RuntimeWarning, match="REPRO_SERVE_QUEUE"):
        assert resolve_queue_size(None) == 64
    # A negative size would silently become reject-everything; it must warn.
    with pytest.warns(RuntimeWarning, match="negative"):
        assert resolve_queue_size(-5) == 0
    monkeypatch.setenv("REPRO_SERVE_QUEUE", "-2")
    with pytest.warns(RuntimeWarning, match="negative"):
        assert resolve_queue_size(None) == 0


def test_resolve_serve_workers_warns_on_non_positive(monkeypatch):
    monkeypatch.delenv("REPRO_SERVE_WORKERS", raising=False)
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    with pytest.warns(RuntimeWarning, match="not positive"):
        assert resolve_serve_workers(0) == 1
    with pytest.warns(RuntimeWarning, match="not positive"):
        assert resolve_serve_workers(-3) == 1
    monkeypatch.setenv("REPRO_SERVE_WORKERS", "-1")
    with pytest.warns(RuntimeWarning, match="REPRO_SERVE_WORKERS"):
        assert resolve_serve_workers(None) == 1


# ------------------------------------------------------- queue protocol bits
def test_request_round_trips_priority_and_deadline():
    request = ScheduleRequest(
        workload="gpt2-decode",
        workload_kwargs=TINY_KWARGS,
        fast=True,
        priority=3,
        deadline_ms=250.0,
        request_id="urgent",
    )
    payload = json.loads(json.dumps(request_to_payload(request)))
    assert request_from_payload(payload) == request
    assert payload["priority"] == 3
    assert payload["deadline_ms"] == 250.0


def test_request_rejects_non_positive_deadline():
    with pytest.raises(ProtocolError):
        ScheduleRequest(workload="resnet50", deadline_ms=0.0)
    with pytest.raises(ProtocolError):
        ScheduleRequest(workload="resnet50", deadline_ms=-5.0)


def test_response_round_trips_error_kind():
    response = ScheduleResponse(
        request_id="r",
        ok=False,
        provenance="rejected",
        error="queue is full",
        error_kind="overload",
    )
    assert response_from_payload(response_to_payload(response)) == response


def test_priority_and_deadline_do_not_change_the_memo_key(service):
    plain = tiny_request(seed=4)
    urgent = ScheduleRequest(
        workload="gpt2-decode",
        workload_kwargs=TINY_KWARGS,
        seed=4,
        fast=True,
        priority=9,
        deadline_ms=1000.0,
    )
    assert service.request_fingerprint(plain) == service.request_fingerprint(urgent)


# -------------------------------------------------------- HTTP status mapping
def test_http_status_for_maps_failure_classes():
    assert http_status_for([{"ok": False}]) == 200  # batches stay 200
    assert http_status_for({"ok": True, "provenance": "memo"}) == 200
    assert http_status_for({"ok": False, "provenance": "rejected", "error_kind": "overload"}) == 429
    assert http_status_for({"ok": False, "provenance": "expired", "error_kind": "deadline"}) == 504
    assert http_status_for({"ok": False, "provenance": "error", "error_kind": "bad_request"}) == 400
    assert http_status_for({"ok": False, "provenance": "error", "error_kind": "search"}) == 500
    assert http_status_for({"ok": False, "provenance": "error"}) == 500


def _post_schedule(port: int, payload):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/schedule",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request) as http_response:
            return http_response.status, json.loads(http_response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def test_http_front_end_maps_status_codes(blocking_executor):
    blocking_executor.release.set()  # searches run (fake) instantly
    with ScheduleService(workers=1, queue_size=0) as service:
        server = make_http_server(service, port=0)
        port = server.server_address[1]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            status, reply = _post_schedule(port, {"workload": "not-a-model"})
            assert status == 400 and not reply["ok"]
            assert reply["error_kind"] == "bad_request"
            status, reply = _post_schedule(
                port, request_to_payload(tiny_request(seed=31))
            )
            assert status == 429 and reply["provenance"] == "rejected"
            # Mixed batches keep per-item outcomes under one 200.
            status, reply = _post_schedule(
                port,
                [request_to_payload(tiny_request(seed=32)), {"workload": "not-a-model"}],
            )
            assert status == 200
            assert [item["provenance"] for item in reply] == ["rejected", "error"]
        finally:
            server.shutdown()
            server.server_close()


def test_http_search_failure_maps_to_500(monkeypatch, service):
    def explode(_request):
        raise RuntimeError("boom")

    monkeypatch.setattr("repro.serving.service._execute_request", explode)
    server = make_http_server(service, port=0)
    port = server.server_address[1]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        status, reply = _post_schedule(port, request_to_payload(tiny_request(seed=41)))
        assert status == 500
        assert reply["error_kind"] == "search" and "boom" in reply["error"]
    finally:
        server.shutdown()
        server.server_close()


# --------------------------------------------------------- memo persistence
def test_memo_persistence_round_trip(tmp_path):
    path = tmp_path / "memo.json"
    reset_worker_state()
    with ScheduleService(workers=1, memo_path=path) as first_service:
        cold = first_service.schedule(tiny_request(seed=51))
        assert cold.ok and cold.provenance == "cold"
    assert path.exists()  # spilled atomically on shutdown

    with ScheduleService(workers=1, memo_path=path) as second_service:
        stats = second_service.stats()
        assert stats["memo_persistence"]["reloaded_entries"] == 1
        assert stats["memo"]["size"] == 1
        warm_restart = second_service.schedule(tiny_request(seed=51, request_id="again"))
    assert warm_restart.ok
    assert warm_restart.provenance == "memo"
    assert warm_restart.result == cold.result
    assert warm_restart.search_seconds == 0.0
    reset_worker_state()


def test_memo_persistence_ignores_stale_and_corrupt_files(tmp_path, blocking_executor):
    blocking_executor.release.set()
    stale = tmp_path / "stale.json"
    stale.write_text(
        json.dumps(
            {
                "format": "repro-lru-spill",
                "version": 999,
                "key_schema": "ancient",
                "entries": [["k", {"bogus": True}]],
            }
        )
    )
    with pytest.warns(RuntimeWarning, match="stale"):
        with ScheduleService(workers=1, memo_path=stale) as service:
            assert service.stats()["memo_persistence"]["reloaded_entries"] == 0
            assert service.schedule(tiny_request(seed=61)).provenance == "cold"
    # Shutdown rewrote the file under the current stamp: it reloads cleanly.
    with ScheduleService(workers=1, memo_path=stale) as service:
        assert service.stats()["memo_persistence"]["reloaded_entries"] == 1

    corrupt = tmp_path / "corrupt.json"
    corrupt.write_text("{ not json")
    with pytest.warns(RuntimeWarning, match="unreadable"):
        with ScheduleService(workers=1, memo_path=corrupt) as service:
            assert service.stats()["memo_persistence"]["reloaded_entries"] == 0


def test_periodic_memo_flush(tmp_path, blocking_executor):
    blocking_executor.release.set()
    path = tmp_path / "memo.json"
    with ScheduleService(workers=1, memo_path=path, memo_flush_seconds=0.05) as service:
        assert service.schedule(tiny_request(seed=71)).ok
        deadline = time.monotonic() + 10
        while not path.exists() and time.monotonic() < deadline:
            time.sleep(0.02)
        assert path.exists()  # flushed while still serving
        assert service.stats()["memo_persistence"]["flushes"] >= 1


def test_resolve_memo_path_resolution(monkeypatch, tmp_path):
    monkeypatch.delenv("REPRO_SERVE_MEMO_PATH", raising=False)
    assert resolve_memo_path(None) is None
    explicit = tmp_path / "explicit.json"
    assert resolve_memo_path(explicit) == str(explicit)
    monkeypatch.setenv("REPRO_SERVE_MEMO_PATH", str(tmp_path / "env.json"))
    assert resolve_memo_path(None) == str(tmp_path / "env.json")
    monkeypatch.setenv("REPRO_SERVE_MEMO_PATH", "")
    assert resolve_memo_path(None) is None
