"""Unit tests for the memory-system description."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.memory import MB, MemoryConfig


def test_transfer_time_is_bytes_over_bandwidth():
    memory = MemoryConfig(gbuf_bytes=MB, dram_bandwidth_bytes_per_s=16e9)
    assert memory.dram_transfer_seconds(16_000_000_000) == pytest.approx(1.0)


def test_zero_bytes_takes_zero_time():
    memory = MemoryConfig(gbuf_bytes=MB, dram_bandwidth_bytes_per_s=1e9)
    assert memory.dram_transfer_seconds(0) == 0.0


def test_negative_bytes_rejected():
    memory = MemoryConfig(gbuf_bytes=MB, dram_bandwidth_bytes_per_s=1e9)
    with pytest.raises(ValueError):
        memory.dram_transfer_seconds(-1)


def test_with_gbuf_bytes_returns_modified_copy():
    memory = MemoryConfig(gbuf_bytes=MB, dram_bandwidth_bytes_per_s=1e9)
    bigger = memory.with_gbuf_bytes(4 * MB)
    assert bigger.gbuf_bytes == 4 * MB
    assert memory.gbuf_bytes == MB


def test_with_dram_bandwidth_returns_modified_copy():
    memory = MemoryConfig(gbuf_bytes=MB, dram_bandwidth_bytes_per_s=1e9)
    faster = memory.with_dram_bandwidth(2e9)
    assert faster.dram_bandwidth_bytes_per_s == 2e9
    assert memory.dram_bandwidth_bytes_per_s == 1e9


@pytest.mark.parametrize("gbuf,bandwidth", [(0, 1e9), (MB, 0.0), (-1, 1e9), (MB, -5.0)])
def test_invalid_configurations_rejected(gbuf, bandwidth):
    with pytest.raises(ConfigurationError):
        MemoryConfig(gbuf_bytes=gbuf, dram_bandwidth_bytes_per_s=bandwidth)
