"""Tests for the compiler back-end: IR generation and instruction lowering."""

import pytest

from repro.compiler.codegen import generate_instructions, lower_result
from repro.compiler.instructions import InstructionKind
from repro.compiler.ir import IR_VERSION, IRDocument, generate_ir
from repro.core.double_buffer import double_buffer_dlsa
from repro.errors import CompilationError
from repro.notation.lfa import LFA
from repro.notation.parser import parse_lfa


@pytest.fixture
def parsed(linear_cnn):
    plan = parse_lfa(linear_cnn, LFA.fully_fused(linear_cnn, tiling_number=2))
    return plan, double_buffer_dlsa(plan)


# --------------------------------------------------------------------------- IR
def test_ir_counts_match_plan(parsed):
    plan, dlsa = parsed
    ir = generate_ir(plan, dlsa)
    assert ir.num_tiles == plan.num_tiles
    assert ir.num_dram_tensors == plan.num_dram_tensors
    assert ir.document["ir_version"] == IR_VERSION
    assert ir.document["workload"] == plan.graph.name


def test_ir_groups_cover_all_layers(parsed):
    plan, dlsa = parsed
    ir = generate_ir(plan, dlsa)
    layers = [layer for group in ir.document["groups"] for layer in group["layers"]]
    assert sorted(layers) == sorted(plan.graph.layer_names())


def test_ir_dram_tensors_sorted_by_order_position(parsed):
    plan, dlsa = parsed
    ir = generate_ir(plan, dlsa)
    positions = [entry["order_position"] for entry in ir.document["dram_tensors"]]
    assert positions == sorted(positions)


def test_ir_json_round_trip(parsed):
    plan, dlsa = parsed
    ir = generate_ir(plan, dlsa)
    restored = IRDocument.from_json(ir.to_json())
    assert restored.document == ir.document


def test_ir_rejects_unknown_version(parsed):
    plan, dlsa = parsed
    text = generate_ir(plan, dlsa).to_json().replace(IR_VERSION, "99.0")
    with pytest.raises(CompilationError):
        IRDocument.from_json(text)


def test_ir_rejects_infeasible_plan(tiny_gpt_prefill):
    plan = parse_lfa(tiny_gpt_prefill, LFA.fully_fused(tiny_gpt_prefill, tiling_number=4))
    with pytest.raises(CompilationError):
        generate_ir(plan, double_buffer_dlsa(plan))


# ------------------------------------------------------------------- lowering
def test_program_has_one_instruction_per_tile_and_tensor(parsed):
    plan, dlsa = parsed
    program = lower_result(plan, dlsa)
    assert len(program.compute_queue) == plan.num_tiles
    assert len(program.dram_queue) == plan.num_dram_tensors
    assert program.num_instructions == plan.num_tiles + plan.num_dram_tensors


def test_instruction_ids_are_unique(parsed):
    plan, dlsa = parsed
    program = lower_result(plan, dlsa)
    ids = [ins.instruction_id for ins in program.all_instructions()]
    assert len(ids) == len(set(ids))


def test_instruction_kinds_match_tensor_kinds(parsed):
    plan, dlsa = parsed
    program = lower_result(plan, dlsa)
    kinds = {ins.kind for ins in program.dram_queue}
    assert kinds <= {InstructionKind.LOAD, InstructionKind.STORE}
    assert all(ins.kind is InstructionKind.COMPUTE for ins in program.compute_queue)


def test_dependency_graph_is_acyclic_and_schedulable(parsed):
    plan, dlsa = parsed
    program = lower_result(plan, dlsa)
    instructions = {ins.instruction_id: ins for ins in program.all_instructions()}
    completed: set[int] = set()
    remaining = dict(instructions)
    progressed = True
    while remaining and progressed:
        progressed = False
        for instruction_id, instruction in list(remaining.items()):
            if all(dep in completed for dep in instruction.depends_on):
                completed.add(instruction_id)
                del remaining[instruction_id]
                progressed = True
    assert not remaining, "instruction dependencies must be satisfiable"


def test_compute_instructions_wait_for_their_loads(parsed):
    plan, dlsa = parsed
    program = lower_result(plan, dlsa)
    load_ids = {
        ins.tensor_tid: ins.instruction_id
        for ins in program.dram_queue
        if ins.kind is InstructionKind.LOAD
    }
    for compute in program.compute_queue:
        required = plan.tile_required_loads[compute.instruction_id]
        for tid in required:
            assert load_ids[tid] in compute.depends_on


def test_store_instruction_waits_for_producing_tile(parsed):
    plan, dlsa = parsed
    program = lower_result(plan, dlsa)
    for instruction in program.dram_queue:
        if instruction.kind is InstructionKind.STORE:
            tensor = plan.tensor(instruction.tensor_tid)
            assert tensor.produce_tile in instruction.depends_on


def test_cross_lg_load_waits_for_source_stores(linear_cnn):
    plan = parse_lfa(linear_cnn, LFA.unfused(linear_cnn))
    dlsa = double_buffer_dlsa(plan)
    program = lower_result(plan, dlsa)
    store_ids_by_layer: dict[str, set[int]] = {}
    for instruction in program.dram_queue:
        if instruction.kind is InstructionKind.STORE:
            store_ids_by_layer.setdefault(instruction.layer, set()).add(instruction.instruction_id)
    checked = 0
    for instruction in program.dram_queue:
        if instruction.kind is InstructionKind.LOAD:
            tensor = plan.tensor(instruction.tensor_tid)
            if tensor.source_layer is not None:
                assert store_ids_by_layer[tensor.source_layer] <= set(instruction.depends_on)
                checked += 1
    assert checked > 0


def test_program_dump_mentions_workload_and_queues(parsed):
    plan, dlsa = parsed
    program = lower_result(plan, dlsa)
    dump = program.dump()
    assert plan.graph.name in dump
    assert "DRAM queue" in dump and "COMPUTE queue" in dump


def test_generate_instructions_from_serialised_ir(parsed):
    plan, dlsa = parsed
    ir = IRDocument.from_json(generate_ir(plan, dlsa).to_json())
    program = generate_instructions(ir)
    assert program.num_instructions == plan.num_tiles + plan.num_dram_tensors


def test_lower_rejects_infeasible_plan(tiny_gpt_prefill):
    plan = parse_lfa(tiny_gpt_prefill, LFA.fully_fused(tiny_gpt_prefill, tiling_number=4))
    with pytest.raises(CompilationError):
        lower_result(plan, double_buffer_dlsa(plan))
