"""Tests for the model zoo: ResNet, Inception-ResNet, RandWire, GPT-2."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.gpt2 import GPT2_SMALL, GPT2_XL, GPT2Config, gpt2_decode, gpt2_prefill
from repro.workloads.inception_resnet import inception_resnet_v1
from repro.workloads.randwire import randwire
from repro.workloads.registry import available_workloads, build_workload
from repro.workloads.resnet import resnet50, resnet101


# ----------------------------------------------------------------------- ResNet
def test_resnet50_macs_match_published_value():
    # ResNet-50 is ~4.1 GMACs at 224x224 (the paper's batch-1 workload).
    graph = resnet50(batch=1)
    assert graph.total_macs == pytest.approx(4.1e9, rel=0.05)


def test_resnet50_weight_bytes_match_published_value():
    # ~25.5 M parameters, INT8.
    graph = resnet50(batch=1)
    assert graph.total_weight_bytes == pytest.approx(25.5e6, rel=0.05)


def test_resnet101_is_deeper_than_resnet50():
    r50, r101 = resnet50(), resnet101()
    assert len(r101) > len(r50)
    assert r101.total_macs > r50.total_macs
    assert r101.total_weight_bytes > r50.total_weight_bytes


def test_resnet_macs_scale_with_batch():
    assert resnet50(batch=4).total_macs == 4 * resnet50(batch=1).total_macs


def test_resnet50_has_single_input_and_output():
    graph = resnet50()
    assert graph.input_layers() == ["stem_conv"]
    assert graph.output_layers() == ["fc"]


def test_resnet50_residual_adds_have_two_inputs():
    graph = resnet50()
    adds = [n for n in graph.layer_names() if n.endswith("_add")]
    assert len(adds) == 16
    assert all(len(graph.predecessors(a)) == 2 for a in adds)


# ------------------------------------------------------------- Inception-ResNet
def test_inception_resnet_block_counts():
    graph = inception_resnet_v1(batch=1)
    names = graph.layer_names()
    assert sum(1 for n in names if n.startswith("ira") and n.endswith("_add")) == 5
    assert sum(1 for n in names if n.startswith("irb") and n.endswith("_add")) == 10
    assert sum(1 for n in names if n.startswith("irc") and n.endswith("_add")) == 5


def test_inception_resnet_is_wider_than_resnet():
    graph = inception_resnet_v1(batch=1)
    branching = [n for n in graph.layer_names() if len(graph.successors(n)) >= 3]
    assert branching, "Inception blocks should fan out to at least three branches"


def test_inception_resnet_is_valid_dag():
    graph = inception_resnet_v1(batch=1)
    assert graph.is_valid_order(graph.topological_order())


# -------------------------------------------------------------------- RandWire
def test_randwire_is_deterministic_given_seed():
    a = randwire(batch=1, seed=11)
    b = randwire(batch=1, seed=11)
    assert a.layer_names() == b.layer_names()
    assert [d.producer for d in a.dependencies()] == [d.producer for d in b.dependencies()]


def test_randwire_different_seeds_differ():
    a = randwire(batch=1, seed=11)
    b = randwire(batch=1, seed=12)
    assert {(d.producer, d.consumer) for d in a.dependencies()} != {
        (d.producer, d.consumer) for d in b.dependencies()
    }


def test_randwire_has_irregular_fan_in():
    graph = randwire(batch=1)
    fan_ins = [len(graph.predecessors(n)) for n in graph.layer_names()]
    assert max(fan_ins) >= 2


def test_randwire_valid_dag_and_single_classifier():
    graph = randwire(batch=1)
    assert graph.is_valid_order(graph.topological_order())
    assert graph.output_layers() == ["fc"]


# ----------------------------------------------------------------------- GPT-2
def test_gpt2_small_prefill_layer_count():
    graph = gpt2_prefill(GPT2_SMALL, batch=1, seq_len=512)
    # 12 blocks x 14 layers + embedding projection + final norm
    assert len(graph) == 12 * 14 + 2


def test_gpt2_prefill_macs_scale_quadratically_with_sequence():
    short = gpt2_prefill(GPT2_SMALL, batch=1, seq_len=128)
    long = gpt2_prefill(GPT2_SMALL, batch=1, seq_len=256)
    attention_short = sum(
        short.layer(n).macs for n in short.layer_names() if "attn_score" in n
    )
    attention_long = sum(
        long.layer(n).macs for n in long.layer_names() if "attn_score" in n
    )
    assert attention_long == pytest.approx(4 * attention_short)


def test_gpt2_decode_kv_cache_grows_with_batch_and_context():
    small = gpt2_decode(GPT2_SMALL, batch=1, context_len=256)
    big_batch = gpt2_decode(GPT2_SMALL, batch=4, context_len=256)
    long_context = gpt2_decode(GPT2_SMALL, batch=1, context_len=512)

    def kv_bytes(graph):
        return sum(
            graph.layer(n).weight_bytes
            for n in graph.layer_names()
            if "attn_score" in n or "attn_context" in n
        )

    assert kv_bytes(big_batch) == 4 * kv_bytes(small)
    assert kv_bytes(long_context) == 2 * kv_bytes(small)


def test_gpt2_decode_has_low_compute_density():
    prefill = gpt2_prefill(GPT2_SMALL, batch=1, seq_len=512)
    decode = gpt2_decode(GPT2_SMALL, batch=1, context_len=512)
    prefill_density = prefill.total_ops / max(1, prefill.total_weight_bytes)
    decode_density = decode.total_ops / max(1, decode.total_weight_bytes)
    assert decode_density < prefill_density / 50


def test_gpt2_xl_is_larger_than_small():
    assert GPT2_XL.hidden > GPT2_SMALL.hidden
    assert GPT2_XL.num_layers > GPT2_SMALL.num_layers


def test_gpt2_attention_kv_edges_are_untiled():
    graph = gpt2_prefill(GPT2Config("t", 1, 64, 4, 128), batch=1, seq_len=8)
    score = next(n for n in graph.layer_names() if n.endswith("attn_score"))
    k_proj = next(n for n in graph.layer_names() if n.endswith("k_proj"))
    assert graph.dependency(k_proj, score).tiled is False


# -------------------------------------------------------------------- registry
def test_registry_lists_all_paper_workloads():
    names = available_workloads()
    for expected in (
        "resnet50",
        "resnet101",
        "inception_resnet_v1",
        "randwire",
        "gpt2-prefill",
        "gpt2-decode",
    ):
        assert expected in names


def test_registry_builds_by_name_with_batch():
    graph = build_workload("resnet50", batch=4)
    assert graph.batch == 4


def test_registry_gpt2_variant_and_seq_len():
    graph = build_workload("gpt2-prefill", batch=1, variant="tiny", seq_len=32)
    assert "prefill" in graph.name
    assert graph.layer("block1_attn_score").out_height == 32


def test_registry_unknown_name_rejected():
    with pytest.raises(WorkloadError):
        build_workload("not-a-model")


def test_registry_unknown_gpt2_variant_rejected():
    with pytest.raises(WorkloadError):
        build_workload("gpt2-prefill", variant="huge")
