"""Tests for the SA engine, its cooling schedule and the framework config."""

import math
import random

import pytest

from repro.core.config import SAParams, SoMaConfig
from repro.core.sa import SimulatedAnnealing
from repro.errors import ConfigurationError


# -------------------------------------------------------------------- SAParams
def test_iteration_budget_scales_with_units():
    params = SAParams(iterations_per_unit=10, max_iterations=1000, min_iterations=5)
    assert params.num_iterations(3) == 30
    assert params.num_iterations(500) == 1000  # capped
    assert params.num_iterations(0) == 10  # at least one unit


def test_temperature_schedule_matches_paper_formula():
    params = SAParams(iterations_per_unit=1, initial_temperature=1.0, cooling_alpha=2.0)
    n, total = 50, 100
    expected = 1.0 * (1 - n / total) / (1 + 2.0 * n / total)
    assert params.temperature(n, total) == pytest.approx(expected)


def test_temperature_decreases_monotonically():
    params = SAParams(iterations_per_unit=1)
    total = 200
    temperatures = [params.temperature(i, total) for i in range(total + 1)]
    assert all(a >= b for a, b in zip(temperatures, temperatures[1:]))
    assert temperatures[-1] == pytest.approx(0.0)


def test_invalid_sa_params_rejected():
    with pytest.raises(ConfigurationError):
        SAParams(iterations_per_unit=0)
    with pytest.raises(ConfigurationError):
        SAParams(iterations_per_unit=1, initial_temperature=0)
    with pytest.raises(ConfigurationError):
        SAParams(iterations_per_unit=1, max_iterations=4, min_iterations=8)


# ------------------------------------------------------------------ SoMaConfig
def test_objective_exponents():
    config = SoMaConfig(energy_exponent=2.0, delay_exponent=1.0)
    assert config.objective(3.0, 5.0) == pytest.approx(45.0)


def test_default_objective_is_edp():
    assert SoMaConfig().objective(2.0, 4.0) == pytest.approx(8.0)


def test_paper_config_uses_published_budgets():
    paper = SoMaConfig.paper()
    assert paper.lfa_sa.iterations_per_unit == 100.0
    assert paper.dlsa_sa.iterations_per_unit == 1000.0


def test_fast_config_is_cheaper_than_default():
    assert SoMaConfig.fast().lfa_sa.max_iterations < SoMaConfig().lfa_sa.max_iterations


def test_with_seed_returns_copy():
    config = SoMaConfig()
    reseeded = config.with_seed(99)
    assert reseeded.seed == 99
    assert config.seed != 99 or config is not reseeded


def test_invalid_config_rejected():
    with pytest.raises(ConfigurationError):
        SoMaConfig(energy_exponent=0.0, delay_exponent=0.0)
    with pytest.raises(ConfigurationError):
        SoMaConfig(buffer_shrink_fraction=1.5)
    with pytest.raises(ConfigurationError):
        SoMaConfig(max_allocator_iterations=0)
    with pytest.raises(ConfigurationError):
        SoMaConfig(buffer_overflow_penalty=-1)


# ----------------------------------------------------------------- SA engine
def _quadratic_cost(state: int) -> float:
    return float((state - 17) ** 2 + 1)


def _step_neighbor(state: int, rng: random.Random) -> int:
    return state + rng.choice([-3, -2, -1, 1, 2, 3])


def test_sa_minimises_simple_quadratic():
    annealer = SimulatedAnnealing(SAParams(iterations_per_unit=50, max_iterations=2000))
    outcome = annealer.run(
        initial_state=100,
        cost_fn=_quadratic_cost,
        neighbor_fn=_step_neighbor,
        rng=random.Random(3),
        units=20,
    )
    assert outcome.best_cost <= _quadratic_cost(100)
    assert abs(outcome.best_state - 17) <= 3


def test_sa_never_loses_the_best_solution():
    annealer = SimulatedAnnealing(SAParams(iterations_per_unit=20))
    outcome = annealer.run(
        initial_state=0,
        cost_fn=_quadratic_cost,
        neighbor_fn=_step_neighbor,
        rng=random.Random(5),
        units=10,
        trace=True,
    )
    assert list(outcome.cost_trace) == sorted(outcome.cost_trace, reverse=True)
    assert outcome.best_cost == min(outcome.cost_trace)


def test_sa_handles_neighbors_returning_none():
    annealer = SimulatedAnnealing(SAParams(iterations_per_unit=5))
    outcome = annealer.run(
        initial_state=1,
        cost_fn=_quadratic_cost,
        neighbor_fn=lambda state, rng: None,
        rng=random.Random(0),
        units=4,
    )
    assert outcome.best_state == 1
    assert outcome.accepted_moves == 0


def test_sa_never_accepts_infeasible_candidates():
    annealer = SimulatedAnnealing(SAParams(iterations_per_unit=20))

    def cost(state):
        return math.inf if state != 0 else 1.0

    outcome = annealer.run(
        initial_state=0,
        cost_fn=cost,
        neighbor_fn=_step_neighbor,
        rng=random.Random(1),
        units=10,
    )
    assert outcome.best_state == 0
    assert outcome.best_cost == 1.0


def test_sa_escapes_infeasible_initial_state():
    annealer = SimulatedAnnealing(SAParams(iterations_per_unit=30))

    def cost(state):
        return math.inf if state < 0 else float(state + 1)

    outcome = annealer.run(
        initial_state=-5,
        cost_fn=cost,
        neighbor_fn=lambda s, rng: s + rng.choice([1, 2]),
        rng=random.Random(2),
        units=10,
    )
    assert math.isfinite(outcome.best_cost)


def test_sa_is_deterministic_for_fixed_seed():
    annealer = SimulatedAnnealing(SAParams(iterations_per_unit=25))
    outcomes = [
        annealer.run(
            initial_state=40,
            cost_fn=_quadratic_cost,
            neighbor_fn=_step_neighbor,
            rng=random.Random(11),
            units=10,
        )
        for _ in range(2)
    ]
    assert outcomes[0].best_state == outcomes[1].best_state
    assert outcomes[0].best_cost == outcomes[1].best_cost
    assert outcomes[0].accepted_moves == outcomes[1].accepted_moves
