"""Tests for the analysis harnesses (Fig. 3, Fig. 6, Fig. 7, Fig. 8 helpers)."""

import math

import pytest

from repro.analysis.comparison import compare_workload, rows_to_csv, summarize
from repro.analysis.dse import run_dse
from repro.analysis.execution_graph import build_execution_graph
from repro.analysis.imbalance import (
    axis_hugging_fraction,
    layer_imbalance,
    spread_metric,
    tile_imbalance,
)
from repro.analysis.metrics import (
    arithmetic_mean,
    coefficient_of_variation,
    geometric_mean,
    normalize,
    percentage_reduction,
)
from repro.baselines.cocco import CoccoScheduler
from repro.core.double_buffer import double_buffer_dlsa
from repro.core.evaluator import ScheduleEvaluator
from repro.notation.lfa import LFA
from repro.notation.parser import parse_lfa


# -------------------------------------------------------------------- metrics
def test_geometric_mean_basic():
    assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
    assert geometric_mean([]) == 0.0
    with pytest.raises(ValueError):
        geometric_mean([1.0, 0.0])


def test_arithmetic_mean_and_reduction():
    assert arithmetic_mean([1.0, 3.0]) == 2.0
    assert percentage_reduction(10.0, 7.5) == pytest.approx(25.0)
    assert percentage_reduction(0.0, 5.0) == 0.0


def test_normalize_divides_by_max():
    assert normalize([1.0, 2.0, 4.0]) == [0.25, 0.5, 1.0]
    assert normalize([]) == []
    assert normalize([0.0, 0.0]) == [0.0, 0.0]


def test_coefficient_of_variation():
    assert coefficient_of_variation([5.0, 5.0, 5.0]) == 0.0
    assert coefficient_of_variation([1.0, 9.0]) > 0.5


# ------------------------------------------------------------------ imbalance
def test_layer_imbalance_points_normalised(linear_cnn):
    points = layer_imbalance(linear_cnn)
    assert len(points) == len(linear_cnn)
    assert max(p.normalized_dram for p in points) == pytest.approx(1.0)
    assert max(p.normalized_ops for p in points) == pytest.approx(1.0)
    assert all(0 <= p.normalized_dram <= 1 and 0 <= p.normalized_ops <= 1 for p in points)


def test_tile_imbalance_has_one_point_per_tile(linear_cnn):
    plan = parse_lfa(linear_cnn, LFA.fully_fused(linear_cnn, tiling_number=2))
    points = tile_imbalance(plan)
    assert len(points) == plan.num_tiles


def test_fused_tiles_are_more_spread_out_than_layers(linear_cnn, tiny_accelerator, fast_config):
    """The core observation behind Fig. 3(c)/(d)."""
    scheduler = CoccoScheduler(tiny_accelerator, fast_config)
    result = scheduler.schedule(linear_cnn)
    plan, _ = scheduler.parse(linear_cnn, result.encoding.lfa)
    layer_points = layer_imbalance(linear_cnn)
    tile_points = tile_imbalance(plan)
    assert axis_hugging_fraction(tile_points) >= axis_hugging_fraction(layer_points)
    assert spread_metric(tile_points) >= 0.0


def test_spread_metric_empty_input():
    assert spread_metric([]) == 0.0
    assert axis_hugging_fraction([]) == 0.0


# ----------------------------------------------------------------- comparison
def test_compare_workload_produces_consistent_row(linear_cnn, tiny_accelerator, fast_config):
    row = compare_workload(linear_cnn, tiny_accelerator, config=fast_config, seed=1)
    assert row.workload == linear_cnn.name
    assert row.speedup_total >= 0.95  # SoMa should not be meaningfully worse
    assert row.speedup_total == pytest.approx(
        row.cocco.latency_s / row.soma_stage2.latency_s
    )
    assert 0 <= row.theoretical_max_utilization <= 1
    assert row.utilization(row.soma_stage2) <= row.theoretical_max_utilization + 1e-9


def test_comparison_row_normalised_energy_bounded(linear_cnn, tiny_accelerator, fast_config):
    row = compare_workload(linear_cnn, tiny_accelerator, config=fast_config, seed=1)
    for result in (row.cocco, row.soma_stage1, row.soma_stage2):
        core, dram = row.normalized_energy(result)
        assert 0 <= core <= 1 and 0 <= dram <= 1
        assert core + dram <= 1.0 + 1e-9


def test_summarize_and_csv(linear_cnn, branchy_cnn, tiny_accelerator, fast_config):
    rows = [
        compare_workload(linear_cnn, tiny_accelerator, config=fast_config, seed=1),
        compare_workload(branchy_cnn, tiny_accelerator, config=fast_config, seed=1),
    ]
    summary = summarize(rows)
    assert summary.num_rows == 2
    assert summary.avg_speedup_total > 0
    assert "average performance improvement" in summary.describe()
    csv_text = rows_to_csv(rows)
    assert csv_text.count("\n") == 2  # header + two rows
    assert "speedup_total" in csv_text.splitlines()[0]


def test_summarize_rejects_empty_input():
    with pytest.raises(ValueError):
        summarize([])


# ------------------------------------------------------------------------ DSE
def test_run_dse_grid_and_envelope(linear_cnn, tiny_accelerator, fast_config):
    result = run_dse(
        linear_cnn,
        tiny_accelerator,
        dram_bandwidths_gb_s=[4.0, 16.0],
        buffer_sizes_mb=[1.0, 2.0],
        config=fast_config,
        seed=1,
    )
    assert len(result.cells) == 4
    assert math.isfinite(result.min_latency("soma"))
    envelope = result.envelope("soma")
    assert envelope
    assert all(cell.soma_latency_s <= result.min_latency("soma") * 1.02 for cell in envelope)
    # More bandwidth can only help (same buffer).
    slow = result.cell(4.0, 2.0).soma_latency_s
    fast = result.cell(16.0, 2.0).soma_latency_s
    assert fast <= slow * 1.05
    table = result.to_table("soma")
    assert "latency(ms)" in table


def test_dse_cell_lookup_and_advantage(linear_cnn, tiny_accelerator, fast_config):
    result = run_dse(
        linear_cnn,
        tiny_accelerator,
        dram_bandwidths_gb_s=[8.0],
        buffer_sizes_mb=[1.0],
        config=fast_config,
        seed=1,
    )
    cell = result.cell(8.0, 1.0)
    assert cell.soma_advantage >= 0.9
    with pytest.raises(KeyError):
        result.cell(99.0, 1.0)


# ------------------------------------------------------------ execution graph
def test_build_execution_graph(linear_cnn, tiny_accelerator):
    evaluator = ScheduleEvaluator(tiny_accelerator)
    plan = parse_lfa(linear_cnn, LFA.fully_fused(linear_cnn, tiling_number=2))
    dlsa = double_buffer_dlsa(plan)
    evaluation = evaluator.evaluate(plan, dlsa, include_trace=True)
    graph = build_execution_graph(plan, dlsa, evaluation, scheme_name="double-buffer")
    assert len(graph.compute_segments) == plan.num_tiles
    assert len(graph.dram_segments) == plan.num_dram_tensors
    assert 0 < graph.dram_busy_fraction <= 1
    assert 0 < graph.compute_busy_fraction <= 1
    assert graph.compute_stall_s >= 0
    rendered = graph.render_ascii(width=60)
    assert "COMPUTE" in rendered and "DRAM" in rendered
    assert len(graph.groups) == plan.num_flgs


def test_build_execution_graph_requires_trace(linear_cnn, tiny_accelerator):
    evaluator = ScheduleEvaluator(tiny_accelerator)
    plan = parse_lfa(linear_cnn, LFA.fully_fused(linear_cnn))
    dlsa = double_buffer_dlsa(plan)
    evaluation = evaluator.evaluate(plan, dlsa, include_trace=False)
    with pytest.raises(ValueError):
        build_execution_graph(plan, dlsa, evaluation, scheme_name="x")
