"""Tests for the stable fingerprints of LFA, DLSA and ComputePlan.

Fingerprints key every search-wide cache (parse LRU, per-plan contexts,
static costs, stage-1 cost memo), so they must be content-based — equal for
equal attributes regardless of construction order — and must differ whenever
any attribute differs.
"""

from __future__ import annotations

from repro.core.lfa_stage import initial_lfa
from repro.notation.dlsa import DLSA
from repro.notation.lfa import LFA, stable_digest
from repro.notation.parser import parse_lfa


def test_stable_digest_is_deterministic_and_content_based():
    assert stable_digest("a", 1, (2, 3)) == stable_digest("a", 1, (2, 3))
    assert stable_digest("a", 1) != stable_digest("a", 2)
    assert len(stable_digest("x")) == 32  # blake2b/16 hex


def test_lfa_fingerprint_ignores_set_and_dict_order(linear_cnn):
    order = tuple(linear_cnn.topological_order())
    cuts = [1, 2, 3, 4]
    first = LFA(
        computing_order=order,
        flc_set=frozenset(cuts),
        dram_cut_set=frozenset(cuts),
        tiling_numbers={0: 1, 1: 2, 2: 1, 3: 1, 4: 1},
    )
    second = LFA(
        computing_order=order,
        flc_set=frozenset(reversed(cuts)),
        dram_cut_set=frozenset(reversed(cuts)),
        tiling_numbers={4: 1, 3: 1, 2: 1, 1: 2, 0: 1},
    )
    assert first.fingerprint() == second.fingerprint()


def test_lfa_fingerprint_separates_distinct_schemes(linear_cnn):
    base = initial_lfa(linear_cnn, kc_parallel_lanes=32)
    tilings = dict(base.tiling_numbers)
    tilings[0] *= 2
    changed = LFA(
        computing_order=base.computing_order,
        flc_set=base.flc_set,
        dram_cut_set=base.dram_cut_set,
        tiling_numbers=tilings,
    )
    assert base.fingerprint() != changed.fingerprint()
    # Demoting a DRAM Cut (same FLC set) must also change the fingerprint.
    cut = next(iter(base.dram_cut_set))
    demoted = LFA(
        computing_order=base.computing_order,
        flc_set=base.flc_set,
        dram_cut_set=base.dram_cut_set - {cut},
        tiling_numbers=dict(base.tiling_numbers),
    )
    assert base.fingerprint() != demoted.fingerprint()


def test_dlsa_fingerprint_tracks_order_and_living():
    base = DLSA(order=(0, 1, 2), living={0: (0, 1), 1: (0, 2), 2: (1, 3)})
    same = DLSA(order=(0, 1, 2), living={2: (1, 3), 0: (0, 1), 1: (0, 2)})
    reordered = DLSA(order=(1, 0, 2), living=dict(base.living))
    stretched = DLSA(order=(0, 1, 2), living={0: (0, 1), 1: (0, 2), 2: (1, 4)})
    assert base.fingerprint() == same.fingerprint()
    assert base.fingerprint() != reordered.fingerprint()
    assert base.fingerprint() != stretched.fingerprint()


def test_plan_fingerprint_follows_graph_and_lfa(linear_cnn, branchy_cnn):
    lfa_a = initial_lfa(linear_cnn, kc_parallel_lanes=32)
    plan_a = parse_lfa(linear_cnn, lfa_a)
    plan_b = parse_lfa(linear_cnn, lfa_a)
    assert plan_a.fingerprint() == plan_b.fingerprint()

    fused = LFA.fully_fused(linear_cnn)
    assert parse_lfa(linear_cnn, fused).fingerprint() != plan_a.fingerprint()

    other_graph = parse_lfa(branchy_cnn, initial_lfa(branchy_cnn, kc_parallel_lanes=32))
    assert other_graph.fingerprint() != plan_a.fingerprint()


def test_fingerprints_are_memoised_on_the_instance(linear_cnn):
    lfa = initial_lfa(linear_cnn, kc_parallel_lanes=32)
    assert lfa.fingerprint() is lfa.fingerprint()
    dlsa = DLSA(order=(0,), living={0: (0, 1)})
    assert dlsa.fingerprint() is dlsa.fingerprint()


def _two_layer_graph(tiled: bool):
    from repro.workloads.builder import GraphBuilder

    builder = GraphBuilder("net", batch=1)
    first = builder.conv("a", [], 8, kernel=3, input_shape=(3, 8, 8))
    builder.conv("b", [first], 8, kernel=1)
    graph = builder.build()
    # Re-adding the existing edge updates its tiled flag (same public call
    # the builder used), giving two same-name graphs that differ only in
    # edge structure.
    graph.add_dependency("a", "b", tiled=tiled)
    return graph


def test_graph_fingerprint_tracks_structure_not_just_name():
    """Graphs with equal names/aggregates but different edges must differ."""
    assert _two_layer_graph(True).fingerprint() == _two_layer_graph(True).fingerprint()

    mutated = _two_layer_graph(True)
    before = mutated.fingerprint()
    version = mutated.version
    mutated.add_dependency("a", "b", tiled=False)
    assert mutated.fingerprint() != before
    assert mutated.version > version


def test_plan_fingerprint_separates_structurally_different_graphs():
    """Same-name graphs with different edge flags must not share contexts."""
    tiled_graph = _two_layer_graph(True)
    untiled_graph = _two_layer_graph(False)
    assert tiled_graph.fingerprint() != untiled_graph.fingerprint()

    plan_a = parse_lfa(tiled_graph, initial_lfa(tiled_graph, kc_parallel_lanes=32))
    plan_b = parse_lfa(untiled_graph, initial_lfa(untiled_graph, kc_parallel_lanes=32))
    assert plan_a.fingerprint() != plan_b.fingerprint()
