"""Properties of the batched DLSA move engine and its roofline screen.

Three families of guarantees keep the vectorised engine honest:

* the structural feasibility criterion must agree with the co-operative
  simulator's deadlock verdict *exactly* (it replaces the simulation for
  infeasible candidates);
* the roofline latency bound must never exceed the true simulated latency —
  at every escalation round — or pruning could change the search trajectory;
* a fixed-seed DLSA search must be bit-identical (cost, accepted moves,
  final state, RNG stream) with the prefilter on or off, for any batch
  size, and under the pure-Python fallback used when numpy is absent.
"""

from __future__ import annotations

import math
import random

import pytest

import repro.core.eval_context as eval_context_module
import repro.core.roofline as roofline_module
from repro.core.dlsa_stage import DLSAStage, propose_dlsa_move
from repro.core.double_buffer import double_buffer_dlsa
from repro.core.evaluator import ScheduleEvaluator
from repro.core.lfa_stage import initial_lfa
from repro.core.roofline import MoveScreen, prefilter_enabled
from repro.notation.parser import parse_lfa


def _plan_for(graph):
    return parse_lfa(graph, initial_lfa(graph, kc_parallel_lanes=32))


def _move_stream(plan, context, rng, count=120):
    """(base, move) pairs along a random walk over non-deadlocked bases."""
    base = double_buffer_dlsa(plan)
    pairs = []
    while len(pairs) < count:
        move = propose_dlsa_move(plan, base, rng)
        if move is None:
            continue
        pairs.append((base, move))
        if rng.random() < 0.3:  # advance the base sometimes, staying live
            candidate = move.apply(base)
            if not context.evaluate(candidate).reason.startswith("deadlock"):
                base = candidate
    return pairs


@pytest.mark.parametrize("graph_fixture", ["linear_cnn", "branchy_cnn", "tiny_gpt_decode"])
def test_feasibility_criterion_matches_simulator(request, tiny_accelerator, graph_fixture):
    """The structural deadlock verdict equals the simulator's, move by move."""
    graph = request.getfixturevalue(graph_fixture)
    plan = _plan_for(graph)
    evaluator = ScheduleEvaluator(tiny_accelerator)
    context = evaluator.context(plan)
    screen = MoveScreen(context)
    rng = random.Random(11)
    deadlocks = 0
    for base, move in _move_stream(plan, context, rng):
        screen.rebase(base)
        feasible, _pruned = screen.assess(move)
        result = context.evaluate(move.apply(base))
        simulated_deadlock = result.reason.startswith("deadlock")
        assert feasible == (not simulated_deadlock)
        deadlocks += simulated_deadlock
    assert deadlocks > 0  # the stream actually exercised both verdicts


@pytest.mark.parametrize("graph_fixture", ["linear_cnn", "branchy_cnn", "tiny_gpt_decode"])
def test_bound_never_exceeds_simulated_latency(request, tiny_accelerator, graph_fixture):
    """Every escalation round's bound is conservative vs the true latency."""
    graph = request.getfixturevalue(graph_fixture)
    plan = _plan_for(graph)
    evaluator = ScheduleEvaluator(tiny_accelerator)
    context = evaluator.context(plan)
    screen = MoveScreen(context)
    rng = random.Random(23)
    checked = 0
    for base, move in _move_stream(plan, context, rng):
        screen.rebase(base)
        bounds: list[float] = []
        feasible, pruned = screen.assess(move, prune_check=lambda b: bounds.append(b) or False)
        assert not pruned  # the capture predicate never prunes
        if not feasible:
            continue
        result = context.evaluate(move.apply(base))
        assert result.latency_s > 0
        for bound in bounds:
            assert bound <= result.latency_s
        assert bounds and bounds[-1] >= bounds[0] * 0.5  # sanity: bounds are real numbers
        checked += 1
    assert checked > 20


def _explore_key(accelerator, graph, config, seed=1234):
    """Everything a trajectory comparison needs from one DLSA search."""
    plan = _plan_for(graph)
    evaluator = ScheduleEvaluator(accelerator)
    stage = DLSAStage(evaluator, config)
    rng = random.Random(seed)
    lfa = initial_lfa(graph, kc_parallel_lanes=32)
    outcome = stage.explore(
        lfa, plan, double_buffer_dlsa(plan), accelerator.gbuf_bytes, rng
    )
    stage_result = outcome.stage_result
    stats = evaluator.context(plan).cache_stats()
    return (
        stage_result.cost,
        stage_result.accepted_moves,
        stage_result.encoding.dlsa.fingerprint(),
        rng.getstate(),
    ), stats


def test_prefilter_does_not_change_the_trajectory(
    monkeypatch, tiny_accelerator, branchy_cnn, fast_config
):
    """Fixed-seed searches accept the same moves with pruning on or off."""
    monkeypatch.setenv("REPRO_ROOFLINE_PREFILTER", "1")
    assert prefilter_enabled()
    key_on, stats_on = _explore_key(tiny_accelerator, branchy_cnn, fast_config)
    monkeypatch.setenv("REPRO_ROOFLINE_PREFILTER", "0")
    assert not prefilter_enabled()
    key_off, stats_off = _explore_key(tiny_accelerator, branchy_cnn, fast_config)
    assert key_on == key_off
    assert stats_off["batch_pruned"] == 0
    # Pruning must replace simulations, not merely add bookkeeping.
    assert stats_on["batch_sims"] + stats_on["batch_pruned"] == stats_off["batch_sims"]


def test_batch_size_does_not_change_the_trajectory(
    monkeypatch, tiny_accelerator, branchy_cnn, fast_config
):
    """The speculative window size is invisible in the search results."""
    keys = []
    for batch in (1, 8, 32):
        monkeypatch.setenv("REPRO_DLSA_BATCH", str(batch))
        key, _stats = _explore_key(tiny_accelerator, branchy_cnn, fast_config)
        keys.append(key)
    assert keys[0] == keys[1] == keys[2]


def test_pure_python_fallback_is_bit_identical(
    monkeypatch, tiny_accelerator, branchy_cnn, fast_config
):
    """Without numpy the engine takes the same trajectory, bit for bit."""
    monkeypatch.setenv("REPRO_DLSA_BATCH", "8")
    key_np, _ = _explore_key(tiny_accelerator, branchy_cnn, fast_config)
    monkeypatch.setattr(roofline_module, "_np", None)
    monkeypatch.setattr(eval_context_module, "_np", None)
    key_py, _ = _explore_key(tiny_accelerator, branchy_cnn, fast_config)
    assert key_np == key_py


def test_prefilter_knob_parsing(monkeypatch):
    for value, expected in [
        ("1", True),
        ("yes", True),
        ("0", False),
        ("false", False),
        ("off", False),
        ("", False),
    ]:
        monkeypatch.setenv("REPRO_ROOFLINE_PREFILTER", value)
        assert prefilter_enabled() is expected
    monkeypatch.delenv("REPRO_ROOFLINE_PREFILTER")
    assert prefilter_enabled() is True  # default on


def test_batch_counters_flow_into_cache_stats(tiny_accelerator, branchy_cnn, fast_config):
    """The engine's screening activity is observable via cache_stats."""
    key, stats = _explore_key(tiny_accelerator, branchy_cnn, fast_config)
    assert stats["batch_calls"] > 0
    assert stats["batch_moves"] >= stats["batch_calls"]
    assert (
        stats["batch_deadlocks"] + stats["batch_pruned"] + stats["batch_sims"]
        == stats["batch_moves"]
    )
    assert math.isfinite(key[0])


def _window_stream(plan, context, rng, windows=6, width=16):
    """(base, moves) speculation windows along a live random walk."""
    base = double_buffer_dlsa(plan)
    stream = []
    for _ in range(windows):
        moves = []
        while len(moves) < width:
            move = propose_dlsa_move(plan, base, rng)
            if move is not None:
                moves.append(move)
        stream.append((base, tuple(moves)))
        for move in moves:
            candidate = move.apply(base)
            if not context.evaluate(candidate).reason.startswith("deadlock"):
                base = candidate
                break
    return stream


@pytest.mark.parametrize("graph_fixture", ["branchy_cnn", "tiny_gpt_decode"])
def test_assess_batch_matches_per_move_assess(request, tiny_accelerator, graph_fixture):
    """Whole-batch screening verdicts equal the serial per-move verdicts.

    Each window is judged twice: once move by move through ``assess`` and
    once through ``assess_batch``, with a mix of absent and real prune
    predicates.  The cutoff is the window's own median bound so both the
    pruned and the surviving branch are exercised, and the verdict lists
    must match exactly (the batch backend reproduces the per-move
    arithmetic op for op).
    """
    graph = request.getfixturevalue(graph_fixture)
    plan = _plan_for(graph)
    context = ScheduleEvaluator(tiny_accelerator).context(plan)
    screen = MoveScreen(context)
    rng = random.Random(5)
    pruned_total = 0
    feasible_total = 0
    for base, moves in _window_stream(plan, context, rng):
        screen.rebase(base)
        bounds = []
        for move in moves:
            captured: list[float] = []
            screen.assess(move, prune_check=lambda b: captured.append(b) or False)
            bounds.append(captured[-1] if captured else None)
        finite = sorted(b for b in bounds if b is not None)
        cutoff = finite[len(finite) // 2] if finite else 0.0
        prune_checks = [
            None if index % 3 == 0 else (lambda b, _c=cutoff: b >= _c)
            for index in range(len(moves))
        ]
        expected = [
            screen.assess(move, prune_check=check)
            for move, check in zip(moves, prune_checks)
        ]
        assert screen.assess_batch(moves, prune_checks) == expected
        pruned_total += sum(1 for _feasible, pruned in expected if pruned)
        feasible_total += sum(1 for feasible, _pruned in expected if feasible)
    assert pruned_total > 0
    assert feasible_total > 0


# ---------------------------------------------------------- per-budget floor
@pytest.mark.parametrize("graph_fixture", ["tiny_gpt_prefill", "tiny_gpt_decode"])
def test_budget_floor_is_sound_monotone_and_anchored_at_gbuf(
    request, tiny_accelerator, fast_config, graph_fixture
):
    """The per-budget floor is a true lower bound and behaves like one.

    At a budget no untiled ofmap exceeds, it charges nothing beyond the
    graph-global floor; shrinking the budget only ever raises it (more
    producers are forced to spill); and it never exceeds the cost of a real
    schedule evaluated at that schedule's own buffer peak — the soundness
    the allocator's pruning rests on, pinned here for the soft-budget
    search too.
    """
    from repro.core.roofline import budget_schedule_floor, schedule_floor
    from repro.core.soma import SoMaScheduler
    from repro.notation.segments import forced_spill_profile

    graph = request.getfixturevalue(graph_fixture)
    profile = forced_spill_profile(graph)
    assert profile, "fixture must exercise the forced-spill term"
    assert all(spill in (ofmap, 2 * ofmap) for ofmap, spill in profile)
    assert list(profile) == sorted(profile, reverse=True)

    gbuf = tiny_accelerator.gbuf_bytes
    base = schedule_floor(graph, tiny_accelerator, fast_config)
    assert budget_schedule_floor(graph, tiny_accelerator, fast_config, gbuf) == base

    budgets = [gbuf, gbuf // 4, profile[0][0], profile[0][0] - 1, 16, 1]
    floors = [
        budget_schedule_floor(graph, tiny_accelerator, fast_config, budget)
        for budget in budgets
    ]
    for wider, tighter in zip(floors, floors[1:]):
        assert tighter >= wider  # shrinking the budget never lowers the floor
    assert floors[-1] > base  # below every threshold the forced term bites

    result = SoMaScheduler(tiny_accelerator, fast_config).schedule(graph, seed=13)
    assert result.evaluation.feasible
    peak = result.evaluation.max_buffer_bytes
    achieved = fast_config.objective(
        result.evaluation.energy_j, result.evaluation.latency_s
    )
    assert budget_schedule_floor(graph, tiny_accelerator, fast_config, peak) <= achieved
    assert budget_schedule_floor(graph, tiny_accelerator, fast_config, peak) <= result.best.cost
