"""Property-based tests (hypothesis) for the core data structures and invariants."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.metrics import normalize
from repro.core.config import SAParams
from repro.core.double_buffer import double_buffer_dlsa
from repro.core.evaluator import ScheduleEvaluator
from repro.core.lfa_stage import LFA_OPERATORS, initial_lfa
from repro.notation.lfa import LFA
from repro.notation.parser import parse_lfa
from repro.tiling.heuristics import next_power_of_two
from repro.tiling.partition import split_counts, tile_flg
from repro.workloads.builder import GraphBuilder

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)


# --------------------------------------------------------------------- tiling
@given(
    batch=st.integers(min_value=1, max_value=64),
    height=st.integers(min_value=1, max_value=256),
    width=st.integers(min_value=1, max_value=256),
    num_tiles=st.integers(min_value=1, max_value=1024),
)
@_SETTINGS
def test_split_counts_product_never_exceeds_request_or_extent(batch, height, width, num_tiles):
    b, h, w = split_counts(batch, height, width, num_tiles)
    assert 1 <= b <= batch
    assert 1 <= h <= height
    assert 1 <= w <= width
    assert b * h * w <= max(num_tiles, 1) * 2  # power-of-two rounding slack
    assert b * h * w <= batch * height * width


@given(value=st.integers(min_value=0, max_value=1_000_000))
@_SETTINGS
def test_next_power_of_two_properties(value):
    result = next_power_of_two(value)
    assert result >= max(1, value)
    assert result & (result - 1) == 0
    if value > 1:
        assert result < 2 * value


def _chain_graph(depth: int, size: int, kernel: int, batch: int):
    builder = GraphBuilder("prop_chain", batch=batch)
    previous = builder.conv(
        "conv0", [], 8, kernel=kernel, input_shape=(3, size, size)
    )
    for index in range(1, depth):
        previous = builder.conv(f"conv{index}", [previous], 8, kernel=kernel)
    return builder.build()


@given(
    depth=st.integers(min_value=1, max_value=4),
    size=st.sampled_from([8, 16, 32]),
    kernel=st.sampled_from([1, 3, 5]),
    tiling=st.sampled_from([1, 2, 4, 8]),
)
@_SETTINGS
def test_tile_flg_macs_cover_nominal_work(depth, size, kernel, tiling):
    graph = _chain_graph(depth, size, kernel, batch=1)
    tilings = tile_flg(graph, graph.layer_names(), tiling)
    for name, layer_tiling in tilings.items():
        layer = graph.layer(name)
        # Halo recomputation can only add work, never lose it.
        assert layer_tiling.total_macs >= layer.macs
        assert layer_tiling.out_tile.height <= layer.out_height
        assert layer_tiling.out_tile.width <= layer.out_width
        assert layer_tiling.ifmap_tile_bytes <= layer.ifmap_bytes
        assert layer_tiling.num_tiles <= tiling


# -------------------------------------------------------------------- parser
@given(
    depth=st.integers(min_value=2, max_value=5),
    tiling=st.sampled_from([1, 2, 4]),
    cut_seed=st.integers(min_value=0, max_value=10_000),
)
@_SETTINGS
def test_parser_invariants_on_random_cuts(depth, tiling, cut_seed):
    graph = _chain_graph(depth, 16, 3, batch=1)
    rng = random.Random(cut_seed)
    order = tuple(graph.topological_order())
    positions = list(range(1, len(order)))
    flc = frozenset(p for p in positions if rng.random() < 0.5)
    dram = frozenset(p for p in flc if rng.random() < 0.5)
    tilings = {0: tiling, **{p: tiling for p in flc}}
    lfa = LFA(computing_order=order, flc_set=flc, dram_cut_set=dram, tiling_numbers=tilings)
    plan = parse_lfa(graph, lfa)
    assert plan.feasible
    # Tile indices are dense and every layer appears the right number of times.
    assert [t.index for t in plan.tiles] == list(range(plan.num_tiles))
    for name in graph.layer_names():
        assert len(plan.tiles_of_layer(name)) == plan.layer_tilings[name].num_tiles
    # Loads precede or meet their users; stores anchor at their producers.
    for tensor in plan.dram_tensors:
        assert 0 <= tensor.first_use <= tensor.last_use < plan.num_tiles
    # Weight bytes through DRAM equal the network's weights exactly.
    weight_bytes = sum(
        t.num_bytes for t in plan.dram_tensors if t.kind.value == "weight"
    )
    assert weight_bytes == graph.total_weight_bytes
    # The number of LGs matches the DRAM cut count.
    assert plan.num_lgs == len(dram) + 1
    assert plan.num_flgs == len(flc) + 1


@given(
    depth=st.integers(min_value=2, max_value=4),
    tiling=st.sampled_from([1, 2, 4]),
    cut_seed=st.integers(min_value=0, max_value=10_000),
)
@_SETTINGS
def test_evaluator_latency_bounds_on_random_cuts(depth, tiling, cut_seed, tiny_accelerator):
    graph = _chain_graph(depth, 16, 3, batch=1)
    rng = random.Random(cut_seed)
    order = tuple(graph.topological_order())
    positions = list(range(1, len(order)))
    flc = frozenset(p for p in positions if rng.random() < 0.5)
    dram = frozenset(p for p in flc if rng.random() < 0.5)
    tilings = {0: tiling, **{p: tiling for p in flc}}
    lfa = LFA(computing_order=order, flc_set=flc, dram_cut_set=dram, tiling_numbers=tilings)
    plan = parse_lfa(graph, lfa)
    dlsa = double_buffer_dlsa(plan)
    evaluator = ScheduleEvaluator(tiny_accelerator)
    result = evaluator.evaluate(plan, dlsa, buffer_budget_bytes=10**12)
    assert result.feasible
    assert result.latency_s >= max(result.compute_time_sum_s, result.dram_time_sum_s) - 1e-12
    assert result.latency_s <= result.compute_time_sum_s + result.dram_time_sum_s + 1e-12
    assert result.energy_j > 0
    assert result.max_buffer_bytes > 0


# ---------------------------------------------------------------- LFA moves
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    steps=st.integers(min_value=1, max_value=25),
)
@_SETTINGS
def test_random_operator_walks_preserve_encoding_validity(seed, steps):
    builder = GraphBuilder("walk", batch=1)
    stem = builder.conv("stem", [], 8, kernel=3, input_shape=(3, 16, 16))
    left = builder.conv("left", [stem], 8, kernel=3)
    right = builder.conv("right", [stem], 8, kernel=1)
    merge = builder.eltwise("merge", [left, right])
    builder.conv("head", [merge], 16, kernel=3)
    graph = builder.build()

    rng = random.Random(seed)
    lfa = initial_lfa(graph, kc_parallel_lanes=32)
    for _ in range(steps):
        operator = rng.choice(LFA_OPERATORS)
        move = operator(lfa, graph, rng)
        if move is None:
            continue
        candidate = move.lfa
        candidate.validate(graph)
        plan = parse_lfa(graph, candidate)
        if plan.feasible:
            assert plan.num_tiles > 0
        lfa = candidate


# ------------------------------------------------------------------- metrics
@given(st.lists(st.floats(min_value=0, max_value=1e9, allow_nan=False), max_size=40))
@_SETTINGS
def test_normalize_output_in_unit_interval(values):
    normalised = normalize(values)
    assert len(normalised) == len(values)
    assert all(0.0 <= v <= 1.0 for v in normalised)
    if values and max(values) > 0:
        assert max(normalised) == 1.0


# ---------------------------------------------------------------------- SA
@given(
    alpha=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    t0=st.floats(min_value=1e-3, max_value=5.0, allow_nan=False),
    total=st.integers(min_value=1, max_value=500),
)
@_SETTINGS
def test_cooling_schedule_bounded_and_decreasing(alpha, t0, total):
    params = SAParams(iterations_per_unit=1, initial_temperature=t0, cooling_alpha=alpha)
    temperatures = [params.temperature(i, total) for i in range(total + 1)]
    assert all(0.0 <= t <= t0 for t in temperatures)
    assert all(a >= b - 1e-12 for a, b in zip(temperatures, temperatures[1:]))
