"""Tests for the end-to-end schedulers: SoMa, Cocco, Unfused, Buffer Allocator."""

import random

import pytest

from repro.baselines.cocco import CoccoScheduler
from repro.baselines.unfused import UnfusedScheduler
from repro.core.buffer_allocator import BufferAllocator
from repro.core.core_array import CoreArrayMapper
from repro.core.evaluator import ScheduleEvaluator
from repro.core.soma import SoMaScheduler
from repro.notation.parser import parse_lfa


# ---------------------------------------------------------------------- SoMa
def test_soma_schedules_linear_cnn(linear_cnn, tiny_accelerator, fast_config):
    result = SoMaScheduler(tiny_accelerator, fast_config).schedule(linear_cnn)
    assert result.stage1.evaluation.feasible
    assert result.stage2.evaluation.feasible
    assert result.evaluation.latency_s > 0
    assert result.evaluation.max_buffer_bytes <= tiny_accelerator.gbuf_bytes


def test_soma_stage2_never_worse_than_stage1(linear_cnn, tiny_accelerator, fast_config):
    result = SoMaScheduler(tiny_accelerator, fast_config).schedule(linear_cnn)
    assert result.stage2.evaluation.latency_s <= result.stage1.evaluation.latency_s * 1.0001


def test_soma_beats_unfused_baseline(linear_cnn, tiny_accelerator, fast_config):
    soma = SoMaScheduler(tiny_accelerator, fast_config).schedule(linear_cnn)
    unfused = UnfusedScheduler(tiny_accelerator, fast_config).schedule(linear_cnn)
    assert soma.evaluation.objective() <= unfused.evaluation.objective() * 1.0001


def test_soma_result_structure(linear_cnn, tiny_accelerator, fast_config):
    result = SoMaScheduler(tiny_accelerator, fast_config).schedule(linear_cnn)
    assert result.workload_name == linear_cnn.name
    assert result.accelerator_name == tiny_accelerator.name
    assert result.allocator_iterations >= 1
    assert result.plan.feasible
    assert result.dlsa is not None
    assert result.best in (result.stage1, result.stage2)
    assert "SoMa result" in result.describe()
    assert result.speedup_over(result.evaluation.latency_s * 2) == pytest.approx(2.0)


def test_soma_is_deterministic_given_seed(linear_cnn, tiny_accelerator, fast_config):
    first = SoMaScheduler(tiny_accelerator, fast_config).schedule(linear_cnn, seed=5)
    second = SoMaScheduler(tiny_accelerator, fast_config).schedule(linear_cnn, seed=5)
    assert first.evaluation.latency_s == second.evaluation.latency_s
    assert first.evaluation.energy_j == second.evaluation.energy_j


def test_soma_different_seeds_both_feasible(branchy_cnn, tiny_accelerator, fast_config):
    for seed in (1, 2):
        result = SoMaScheduler(tiny_accelerator, fast_config).schedule(branchy_cnn, seed=seed)
        assert result.evaluation.feasible


def test_soma_handles_attention_workload(tiny_gpt_prefill, tiny_accelerator, fast_config):
    result = SoMaScheduler(tiny_accelerator, fast_config).schedule(tiny_gpt_prefill)
    assert result.evaluation.feasible


def test_soma_handles_decode_workload(tiny_gpt_decode, tiny_accelerator, fast_config):
    result = SoMaScheduler(tiny_accelerator, fast_config).schedule(tiny_gpt_decode)
    assert result.evaluation.feasible
    # Decode is bandwidth-bound: DRAM busy nearly all the time.
    assert result.evaluation.dram_time_sum_s > result.evaluation.compute_time_sum_s


def test_evaluate_encoding_round_trip(linear_cnn, tiny_accelerator, fast_config):
    scheduler = SoMaScheduler(tiny_accelerator, fast_config)
    result = scheduler.schedule(linear_cnn)
    re_evaluated = scheduler.evaluate_encoding(linear_cnn, result.encoding)
    assert re_evaluated.latency_s == pytest.approx(result.evaluation.latency_s)
    assert re_evaluated.energy_j == pytest.approx(result.evaluation.energy_j)


# ----------------------------------------------------------- Buffer Allocator
def test_allocator_runs_at_most_configured_iterations(linear_cnn, tiny_accelerator, fast_config):
    evaluator = ScheduleEvaluator(tiny_accelerator)
    allocator = BufferAllocator(linear_cnn, evaluator, fast_config)
    result = allocator.run(random.Random(0))
    assert 1 <= result.allocator_iterations <= fast_config.max_allocator_iterations
    assert len(result.history) == result.allocator_iterations


def test_allocator_stage1_budget_not_above_gbuf(linear_cnn, tiny_accelerator, fast_config):
    evaluator = ScheduleEvaluator(tiny_accelerator)
    result = BufferAllocator(linear_cnn, evaluator, fast_config).run(random.Random(0))
    assert result.stage1_buffer_budget_bytes <= tiny_accelerator.gbuf_bytes


def test_allocator_infeasible_first_iteration_still_shrinks_budget(
    linear_cnn, tiny_accelerator, fast_config
):
    """An infeasible first iteration must not freeze the stage-1 budget.

    Infeasible evaluations report ``max_buffer_bytes=0``; the allocator used
    to capture that as the buffer peak (clamped to 1 byte), making the
    shrink step ``int(0.1 * 1) == 0`` — every remaining iteration replayed
    the full-GBUF budget.  With no feasible peak yet, the shrink must fall
    back to a fraction of the GBUF so each round explores a new split.
    """
    import dataclasses
    import math

    from repro.core import buffer_allocator as ba_module
    from repro.core.result import EvaluationResult, StageResult
    from repro.errors import SchedulingError

    config = dataclasses.replace(
        fast_config, max_allocator_iterations=4, allocator_patience=10
    )
    evaluator = ScheduleEvaluator(tiny_accelerator)
    allocator = BufferAllocator(linear_cnn, evaluator, config)

    infeasible_stage = StageResult(
        encoding=None,
        evaluation=EvaluationResult(feasible=False, reason="forced by test"),
        cost=math.inf,
        iterations=0,
        accepted_moves=0,
    )
    seen_budgets = []

    def forced_infeasible(stage1_budget, rng):
        seen_budgets.append(stage1_budget)
        return ba_module._IterationOutcome(
            stage1=infeasible_stage,
            stage2=infeasible_stage,
            stage1_budget=stage1_budget,
            cost=math.inf,
        )

    allocator._run_iteration = forced_infeasible
    with pytest.raises(SchedulingError):
        allocator.run(random.Random(0))

    assert len(seen_budgets) == config.max_allocator_iterations
    assert seen_budgets[0] == tiny_accelerator.gbuf_bytes
    # Regression: the budget must strictly shrink between iterations.
    assert all(later < earlier for earlier, later in zip(seen_budgets, seen_budgets[1:]))


def test_allocator_peak_comes_from_first_feasible_iteration(
    linear_cnn, tiny_accelerator, fast_config
):
    """After an infeasible round, the first feasible stage-1 sets the peak."""
    import dataclasses
    import math

    from repro.core import buffer_allocator as ba_module
    from repro.core.result import EvaluationResult, StageResult

    config = dataclasses.replace(
        fast_config, max_allocator_iterations=3, allocator_patience=10
    )
    evaluator = ScheduleEvaluator(tiny_accelerator)
    allocator = BufferAllocator(linear_cnn, evaluator, config)

    infeasible_stage = StageResult(
        encoding=None,
        evaluation=EvaluationResult(feasible=False, reason="forced by test"),
        cost=math.inf,
        iterations=0,
        accepted_moves=0,
    )
    real_run_iteration = allocator._run_iteration
    seen_budgets = []
    outcomes = []

    def infeasible_then_real(stage1_budget, rng):
        seen_budgets.append(stage1_budget)
        if not outcomes:
            outcome = ba_module._IterationOutcome(
                stage1=infeasible_stage,
                stage2=infeasible_stage,
                stage1_budget=stage1_budget,
                cost=math.inf,
            )
        else:
            outcome = real_run_iteration(stage1_budget, rng)
        outcomes.append(outcome)
        return outcome

    allocator._run_iteration = infeasible_then_real
    result = allocator.run(random.Random(0))
    assert result.evaluation.feasible
    # The infeasible round shrank by a GBUF fraction; the first feasible
    # round's observed peak drives the shrink after that.
    assert seen_budgets[1] < seen_budgets[0]
    assert outcomes[1].stage1.feasible
    peak = max(1, outcomes[1].stage1.evaluation.max_buffer_bytes)
    if len(seen_budgets) > 2:
        expected = int(seen_budgets[1] - config.buffer_shrink_fraction * peak)
        assert seen_budgets[2] == expected


# ---------------------------------------------------------------------- Cocco
def test_cocco_schedules_linear_cnn(linear_cnn, tiny_accelerator, fast_config):
    result = CoccoScheduler(tiny_accelerator, fast_config).schedule(linear_cnn)
    assert result.evaluation.feasible
    assert result.evaluation.max_buffer_bytes <= tiny_accelerator.gbuf_bytes


def test_cocco_flc_set_equals_dram_cut_set(linear_cnn, tiny_accelerator, fast_config):
    result = CoccoScheduler(tiny_accelerator, fast_config).schedule(linear_cnn)
    lfa = result.encoding.lfa
    assert lfa.flc_set == lfa.dram_cut_set


def test_cocco_tilings_follow_heuristic(linear_cnn, tiny_accelerator, fast_config):
    scheduler = CoccoScheduler(tiny_accelerator, fast_config)
    result = scheduler.schedule(linear_cnn)
    rebuilt = scheduler._with_heuristic_tilings(
        linear_cnn, result.encoding.lfa.computing_order, result.encoding.lfa.dram_cut_set
    )
    assert rebuilt.tiling_numbers == result.encoding.lfa.tiling_numbers


def test_cocco_uses_double_buffer_dlsa(linear_cnn, tiny_accelerator, fast_config):
    result = CoccoScheduler(tiny_accelerator, fast_config).schedule(linear_cnn)
    assert result.encoding.dlsa is None  # double-buffer default


def test_soma_not_worse_than_cocco_on_objective(branchy_cnn, tiny_accelerator, fast_config):
    mapper = CoreArrayMapper(tiny_accelerator)
    cocco = CoccoScheduler(tiny_accelerator, fast_config, mapper=mapper).schedule(branchy_cnn)
    soma = SoMaScheduler(tiny_accelerator, fast_config, mapper=mapper).schedule(branchy_cnn)
    assert soma.evaluation.objective() <= cocco.evaluation.objective() * 1.05


def test_cocco_parse_helper(linear_cnn, tiny_accelerator, fast_config):
    scheduler = CoccoScheduler(tiny_accelerator, fast_config)
    result = scheduler.schedule(linear_cnn)
    plan, dlsa = scheduler.parse(linear_cnn, result.encoding.lfa)
    assert plan.feasible
    dlsa.validate(plan.dram_tensors)


# -------------------------------------------------------------------- Unfused
def test_unfused_builds_one_group_per_layer(linear_cnn, tiny_accelerator):
    scheduler = UnfusedScheduler(tiny_accelerator)
    lfa = scheduler.build_lfa(linear_cnn)
    plan = parse_lfa(linear_cnn, lfa)
    assert plan.num_lgs == len(linear_cnn)


def test_unfused_schedule_is_feasible(linear_cnn, tiny_accelerator):
    stage = UnfusedScheduler(tiny_accelerator).schedule(linear_cnn)
    assert stage.evaluation.feasible
    assert stage.iterations == 0
