"""Tests for the static invariant checkers (``python -m repro lint``).

Each rule gets a positive fixture (a tiny tree that must be flagged) and a
negative fixture (the approved idiom, which must stay clean); on top of
that the suppression and baseline mechanisms are round-tripped, the knob
registry's validation semantics are pinned, and a self-lint test asserts
the repo itself is strict-clean — which is exactly what the CI lint gate
runs.
"""

from __future__ import annotations

import io
import json
import warnings
from pathlib import Path

import pytest

from repro.cli import main
from repro.core import knobs
from repro.statics.model import Baseline, parse_suppressions
from repro.statics.runner import CHECKERS, run_lint

REPO_ROOT = Path(__file__).resolve().parents[1]


def _write(root: Path, rel: str, text: str) -> Path:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text, encoding="utf-8")
    return path


def _lint(root: Path, rules=None, baseline=None, readme=None):
    return run_lint([root], root, rules=rules, baseline=baseline, readme=readme)


def _messages(report) -> str:
    return "\n".join(finding.message for finding in report.findings)


# ------------------------------------------------------------- determinism
class TestDeterminismRule:
    def test_flags_clock_rng_and_identity_in_engine_dirs(self, tmp_path):
        _write(
            tmp_path,
            "core/engine.py",
            "import random\nimport time\nimport os\n"
            "def f():\n"
            "    rng = random.Random()\n"
            "    x = random.random()\n"
            "    t = time.perf_counter()\n"
            "    u = os.urandom(8)\n"
            "    k = id(object())\n",
        )
        report = _lint(tmp_path, rules=["determinism"])
        text = _messages(report)
        assert len(report.findings) == 5
        assert "unseeded random.Random()" in text
        assert "module-global RNG" in text
        assert "wall clock" in text
        assert "os.urandom" in text
        assert "process-local address" in text

    def test_seeded_rng_and_non_engine_dirs_are_clean(self, tmp_path):
        _write(
            tmp_path,
            "core/engine.py",
            "import random\n"
            "def f(seed):\n"
            "    return random.Random(seed).random()\n",
        )
        # The same nondeterminism outside the engine-pure dirs is allowed.
        _write(
            tmp_path,
            "serving/clocky.py",
            "import time\n\ndef now():\n    return time.perf_counter()\n",
        )
        report = _lint(tmp_path, rules=["determinism"])
        assert report.findings == []


# ------------------------------------------------------------------- knobs
class TestKnobsRule:
    def test_flags_direct_env_read_and_unregistered_name(self, tmp_path):
        _write(
            tmp_path,
            "core/bad.py",
            "import os\n"
            "def f():\n"
            "    a = os.environ.get('REPRO_WORKERS')\n"
            "    b = os.getenv('REPRO_WORKERS')\n"
            "    c = os.environ['REPRO_NOT_A_KNOB']\n",  # repro: lint-ok[knobs]
        )
        report = _lint(tmp_path, rules=["knobs"])
        text = _messages(report)
        assert text.count("bypasses the knob registry") == 3
        assert "REPRO_NOT_A_KNOB is not registered" in text  # repro: lint-ok[knobs]

    def test_env_writes_and_registry_reads_are_clean(self, tmp_path):
        _write(
            tmp_path,
            "core/good.py",
            "import os\n"
            "from repro.core.knobs import read_int\n"
            "def f():\n"
            "    os.environ['REPRO_POOL_WORKER'] = '1'\n"
            "    return read_int('REPRO_WORKERS', 'serial')\n",
        )
        report = _lint(tmp_path, rules=["knobs"])
        assert report.findings == []

    def test_readme_must_document_registered_knobs(self, tmp_path):
        readme = _write(tmp_path, "README.md", "# nothing documented here\n")
        report = _lint(tmp_path, rules=["knobs"], readme=readme)
        undocumented = {
            finding.message.split()[2] for finding in report.findings
        }
        assert "REPRO_WORKERS" in undocumented
        # Internal knobs are exempt from the documentation requirement...
        # (REPRO_POOL_WORKER *is* documented in the real README, but a bare
        # fixture README must not demand it.)
        internal = {
            name for name, knob in knobs.REGISTRY.items() if knob.internal
        }
        assert not (undocumented & internal)


# ------------------------------------------------------------- pool-purity
class TestPoolPurityRule:
    def test_flags_lambda_nested_def_and_bound_method(self, tmp_path):
        _write(
            tmp_path,
            "jobs.py",
            "from repro.experiments.parallel import PersistentPool\n"
            "class Driver:\n"
            "    def __init__(self):\n"
            "        self.pool = PersistentPool(4)\n"
            "    def run(self, task):\n"
            "        def local(t):\n"
            "            return t\n"
            "        self.pool.submit(lambda t: t, task)\n"
            "        self.pool.submit(local, task)\n"
            "        self.pool.submit(self.handle, task)\n"
            "    def handle(self, t):\n"
            "        return t\n",
        )
        report = _lint(tmp_path, rules=["pool-purity"])
        text = _messages(report)
        assert len(report.findings) == 3
        assert "lambda" in text
        assert "nested function local()" in text
        assert "bound method self.handle" in text

    def test_flags_import_time_pool_unless_guarded(self, tmp_path):
        _write(
            tmp_path,
            "eager.py",
            "from repro.experiments.parallel import PersistentPool\n"
            "POOL = PersistentPool(4)\n",
        )
        _write(
            tmp_path,
            "guarded.py",
            "import os\n"
            "from repro.experiments.parallel import PersistentPool\n"
            "from repro.core.knobs import read_flag\n"
            "if not read_flag('REPRO_POOL_WORKER', default=False):\n"
            "    POOL = PersistentPool(4)\n",
        )
        report = _lint(tmp_path, rules=["pool-purity"])
        assert len(report.findings) == 1
        assert report.findings[0].path.endswith("eager.py")
        assert "import time" in report.findings[0].message

    def test_module_level_task_function_is_clean(self, tmp_path):
        _write(
            tmp_path,
            "jobs.py",
            "from repro.experiments.parallel import PersistentPool\n"
            "def task_fn(t):\n"
            "    return t\n"
            "def run(pool, task):\n"
            "    return pool.submit(task_fn, task)\n",
        )
        report = _lint(tmp_path, rules=["pool-purity"])
        assert report.findings == []


# --------------------------------------------------------- lock-discipline
class TestLockDisciplineRule:
    def test_flags_half_guarded_attribute(self, tmp_path):
        _write(
            tmp_path,
            "svc.py",
            "import threading\n"
            "class Service:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._count = 0\n"
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            self._count += 1\n"
            "    def reset(self):\n"
            "        self._count = 0\n"
            "    def peek(self):\n"
            "        return self._count\n",
        )
        report = _lint(tmp_path, rules=["lock-discipline"])
        writes = [f for f in report.findings if "written in reset()" in f.message]
        reads = [f for f in report.findings if "read in peek()" in f.message]
        assert len(writes) == 1 and writes[0].severity == "error"
        assert len(reads) == 1 and reads[0].severity == "warning"

    def test_consistently_guarded_class_is_clean(self, tmp_path):
        _write(
            tmp_path,
            "svc.py",
            "import threading\n"
            "class Service:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._count = 0\n"
            "    def bump(self):\n"
            "        with self._lock:\n"
            "            self._count += 1\n"
            "    def peek(self):\n"
            "        with self._lock:\n"
            "            return self._count\n",
        )
        report = _lint(tmp_path, rules=["lock-discipline"])
        assert report.findings == []


# ------------------------------------------------------------- fingerprint
class TestFingerprintRule:
    def test_flags_unstable_key_components(self, tmp_path):
        _write(
            tmp_path,
            "keys.py",
            "from repro.core.caching import LRUCache\n"
            "from repro.experiments.parallel import derive_seed\n"
            "cache = LRUCache(8)\n"
            "def f(obj, attempt):\n"
            "    cache.get((id(obj), attempt))\n"
            "    cache.put([obj.name], 1)\n"
            "    return derive_seed(hash(obj), attempt)\n",
        )
        report = _lint(tmp_path, rules=["fingerprint"])
        text = _messages(report)
        assert len(report.findings) == 3
        assert "process-local address" in text
        assert "mutable container display" in text
        assert "salted per process" in text

    def test_fingerprint_and_primitive_keys_are_clean(self, tmp_path):
        _write(
            tmp_path,
            "keys.py",
            "from repro.core.caching import LRUCache\n"
            "from repro.experiments.parallel import derive_seed\n"
            "cache = LRUCache(8)\n"
            "def f(graph, attempt):\n"
            "    cache.get((graph.fingerprint(), attempt))\n"
            "    cache.get_or_compute(graph.fingerprint(), lambda: attempt)\n"
            "    return derive_seed(graph.fingerprint(), 'retry', attempt)\n",
        )
        report = _lint(tmp_path, rules=["fingerprint"])
        # The lambda is the *computed value*, not the key: must not be flagged.
        assert report.findings == []


# --------------------------------------------- suppressions, baseline, CLI
class TestSuppressionsAndBaseline:
    def test_parse_suppressions(self):
        text = (
            "x = 1  # repro: lint-ok[determinism]\n"
            "y = 2  # repro: lint-ok[knobs, fingerprint] because reasons\n"
            "z = 3  # repro: lint-ok\n"
            "w = 4\n"
        )
        parsed = parse_suppressions(text)
        assert parsed[1] == frozenset({"determinism"})
        assert parsed[2] == frozenset({"knobs", "fingerprint"})
        assert parsed[3] is None
        assert 4 not in parsed

    def test_inline_suppression_silences_only_its_rule(self, tmp_path):
        _write(
            tmp_path,
            "core/engine.py",
            "import time\n"
            "def f():\n"
            "    return time.perf_counter()  # repro: lint-ok[determinism] budget\n",
        )
        report = _lint(tmp_path, rules=["determinism"])
        assert report.findings == []
        assert report.suppressed == 1

        _write(
            tmp_path,
            "core/engine.py",
            "import time\n"
            "def f():\n"
            "    return time.perf_counter()  # repro: lint-ok[knobs]\n",
        )
        report = _lint(tmp_path, rules=["determinism"])
        assert len(report.findings) == 1

    def test_baseline_round_trip_and_staleness(self, tmp_path):
        source = _write(
            tmp_path,
            "core/engine.py",
            "import time\n\ndef f():\n    return time.time()\n",
        )
        first = _lint(tmp_path, rules=["determinism"])
        assert len(first.findings) == 1

        baseline_path = tmp_path / "baseline.json"
        Baseline.from_findings(first.findings).save(baseline_path)
        baseline = Baseline.load(baseline_path)
        second = _lint(tmp_path, rules=["determinism"], baseline=baseline)
        assert second.findings == []
        assert second.baselined == 1
        assert second.stale_baseline == []
        assert not second.failed(strict=True)

        # Fix the violation: the baseline entry goes stale, strict fails.
        source.write_text("def f():\n    return 0\n", encoding="utf-8")
        third = _lint(
            tmp_path, rules=["determinism"], baseline=Baseline.load(baseline_path)
        )
        assert third.findings == []
        assert len(third.stale_baseline) == 1
        assert third.failed(strict=True)
        assert not third.failed(strict=False)

    def test_malformed_baseline_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"format": "something-else"}', encoding="utf-8")
        with pytest.raises(ValueError, match="regenerate"):
            Baseline.load(path)

    def test_unknown_rule_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown lint rule"):
            run_lint([tmp_path], tmp_path, rules=["no-such-rule"])


class TestLintCli:
    def test_json_report_on_violation_tree(self, tmp_path):
        _write(
            tmp_path,
            "core/engine.py",
            "import time\n\ndef f():\n    return time.time()\n",
        )
        out = io.StringIO()
        code = main(
            ["lint", str(tmp_path), "--no-baseline", "--json", "--strict"], out=out
        )
        assert code == 1
        payload = json.loads(out.getvalue())
        assert payload["counts"]["error"] == 1
        assert payload["findings"][0]["rule"] == "determinism"

    def test_list_rules_names_every_checker(self):
        out = io.StringIO()
        assert main(["lint", "--list-rules"], out=out) == 0
        text = out.getvalue()
        for rule_id in CHECKERS:
            assert rule_id in text

    def test_knobs_table_lists_registry(self):
        out = io.StringIO()
        assert main(["lint", "--knobs"], out=out) == 0
        text = out.getvalue()
        for name, knob in knobs.REGISTRY.items():
            if not knob.internal:
                assert name in text


# ------------------------------------------------------------ self-lint
class TestSelfLint:
    def test_repo_is_strict_clean(self):
        """The CI gate: the repo lints clean against its own baseline."""
        out = io.StringIO()
        code = main(["lint", "--strict"], out=out)
        assert code == 0, out.getvalue()

    def test_repo_has_no_unregistered_knob_strings(self):
        report = run_lint(
            [REPO_ROOT / "src", REPO_ROOT / "benchmarks", REPO_ROOT / "tests"],
            REPO_ROOT,
            rules=["knobs"],
        )
        assert report.findings == [], _messages(report)


# --------------------------------------------------- knob registry semantics
class TestKnobRegistry:
    def test_unregistered_name_raises(self, monkeypatch):
        with pytest.raises(LookupError, match="not registered"):
            knobs.read_int("REPRO_NOT_A_KNOB", "noop")  # repro: lint-ok[knobs]

    def test_kind_mismatch_raises(self):
        with pytest.raises(TypeError, match="matching accessor"):
            knobs.read_str("REPRO_WORKERS")

    def test_read_int_warns_on_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_DLSA_BATCH", "many")
        with pytest.warns(RuntimeWarning, match="REPRO_DLSA_BATCH"):
            value = knobs.read_int("REPRO_DLSA_BATCH", "using the default")
        assert value is None

    def test_read_flag_warns_on_unrecognized_spelling(self, monkeypatch):
        monkeypatch.setenv("REPRO_ROOFLINE_PREFILTER", "maybe")
        with pytest.warns(RuntimeWarning, match="REPRO_ROOFLINE_PREFILTER"):
            value = knobs.read_flag("REPRO_ROOFLINE_PREFILTER", default=True)
        assert value is True

    def test_dlsa_batch_warns_and_defaults_on_non_positive(self, monkeypatch):
        from repro.core.dlsa_stage import dlsa_batch_size

        monkeypatch.setenv("REPRO_DLSA_BATCH", "0")
        with pytest.warns(RuntimeWarning, match="non-positive"):
            assert dlsa_batch_size() == 32

    def test_roofline_prefilter_reads_through_registry(self, monkeypatch):
        from repro.core.roofline import prefilter_enabled

        monkeypatch.delenv("REPRO_ROOFLINE_PREFILTER", raising=False)
        assert prefilter_enabled() is True
        monkeypatch.setenv("REPRO_ROOFLINE_PREFILTER", "off")
        assert prefilter_enabled() is False
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # recognized spellings never warn
            monkeypatch.setenv("REPRO_ROOFLINE_PREFILTER", "yes")
            assert prefilter_enabled() is True

    def test_every_registered_knob_has_doc_and_valid_kind(self):
        for name, knob in knobs.REGISTRY.items():
            assert name.startswith("REPRO_")
            assert knob.kind in ("int", "flag", "str")
            assert knob.doc
