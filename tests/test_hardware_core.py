"""Unit tests for the core-array hardware description."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.core import CoreArrayConfig


def _config(**overrides) -> CoreArrayConfig:
    defaults = dict(
        num_cores=4,
        macs_per_core=256,
        vector_lanes_per_core=32,
        al0_bytes=1024,
        wl0_bytes=1024,
        ol0_bytes=512,
        gbuf_bytes_per_cycle=64.0,
        kc_parallel_lanes=64,
        tile_overhead_cycles=16,
    )
    defaults.update(overrides)
    return CoreArrayConfig(**defaults)


def test_total_macs_per_cycle():
    assert _config().total_macs_per_cycle == 4 * 256


def test_total_vector_lanes():
    assert _config().total_vector_lanes == 4 * 32


def test_l0_bytes_per_core():
    assert _config().l0_bytes_per_core == 1024 + 1024 + 512


def test_zero_tile_overhead_is_allowed():
    assert _config(tile_overhead_cycles=0).tile_overhead_cycles == 0


@pytest.mark.parametrize(
    "field",
    [
        "num_cores",
        "macs_per_core",
        "vector_lanes_per_core",
        "al0_bytes",
        "wl0_bytes",
        "ol0_bytes",
        "gbuf_bytes_per_cycle",
        "kc_parallel_lanes",
    ],
)
def test_non_positive_fields_rejected(field):
    with pytest.raises(ConfigurationError):
        _config(**{field: 0})


def test_negative_tile_overhead_rejected():
    with pytest.raises(ConfigurationError):
        _config(tile_overhead_cycles=-1)
