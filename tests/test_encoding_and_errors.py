"""Tests for ScheduleEncoding round trips and the exception hierarchy."""

import pytest

from repro import errors
from repro.core.double_buffer import double_buffer_dlsa
from repro.notation.dlsa import DLSA
from repro.notation.encoding import ScheduleEncoding
from repro.notation.lfa import LFA
from repro.notation.parser import parse_lfa


# ----------------------------------------------------------------- exceptions
def test_all_errors_derive_from_repro_error():
    for name in ("ConfigurationError", "WorkloadError", "EncodingError", "SchedulingError", "CompilationError"):
        error_type = getattr(errors, name)
        assert issubclass(error_type, errors.ReproError)
        assert issubclass(error_type, Exception)


def test_errors_can_carry_messages():
    with pytest.raises(errors.ReproError, match="details"):
        raise errors.SchedulingError("details")


# ------------------------------------------------------------------- encoding
def test_encoding_parse_without_dlsa_uses_double_buffer(linear_cnn):
    encoding = ScheduleEncoding(lfa=LFA.fully_fused(linear_cnn, tiling_number=2))
    plan, dlsa = encoding.parse(linear_cnn)
    assert plan.feasible
    assert dlsa == double_buffer_dlsa(plan)


def test_encoding_parse_with_explicit_dlsa(linear_cnn):
    lfa = LFA.fully_fused(linear_cnn, tiling_number=2)
    plan = parse_lfa(linear_cnn, lfa)
    explicit = double_buffer_dlsa(plan)
    encoding = ScheduleEncoding(lfa=lfa, dlsa=explicit)
    _, parsed_dlsa = encoding.parse(linear_cnn)
    assert parsed_dlsa is explicit


def test_encoding_with_dlsa_returns_new_object(linear_cnn):
    lfa = LFA.fully_fused(linear_cnn, tiling_number=2)
    plan = parse_lfa(linear_cnn, lfa)
    encoding = ScheduleEncoding(lfa=lfa)
    replaced = encoding.with_dlsa(double_buffer_dlsa(plan))
    assert replaced.dlsa is not None
    assert encoding.dlsa is None


def test_encoding_parse_infeasible_returns_no_dlsa(tiny_gpt_prefill):
    encoding = ScheduleEncoding(lfa=LFA.fully_fused(tiny_gpt_prefill, tiling_number=4))
    plan, dlsa = encoding.parse(tiny_gpt_prefill)
    assert not plan.feasible
    assert dlsa is None


def test_encoding_describe_mentions_dlsa_mode(linear_cnn):
    lfa = LFA.fully_fused(linear_cnn)
    assert "double-buffer" in ScheduleEncoding(lfa=lfa).describe()
    plan = parse_lfa(linear_cnn, lfa)
    explicit = ScheduleEncoding(lfa=lfa, dlsa=double_buffer_dlsa(plan))
    assert "explored DLSA" in explicit.describe()


def test_encoding_rejects_mismatched_dlsa(linear_cnn, branchy_cnn):
    # A DLSA built for one workload cannot be parsed against another.
    lfa_a = LFA.fully_fused(linear_cnn, tiling_number=2)
    plan_a = parse_lfa(linear_cnn, lfa_a)
    dlsa_a = double_buffer_dlsa(plan_a)
    encoding = ScheduleEncoding(lfa=LFA.fully_fused(branchy_cnn, tiling_number=2), dlsa=dlsa_a)
    with pytest.raises(errors.EncodingError):
        encoding.parse(branchy_cnn)


def test_dlsa_equality_and_reuse(linear_cnn):
    lfa = LFA.fully_fused(linear_cnn, tiling_number=2)
    plan = parse_lfa(linear_cnn, lfa)
    first = DLSA.from_defaults(plan.dram_tensors)
    second = DLSA.from_defaults(plan.dram_tensors)
    assert first == second
