"""Equivalence tests: segment-based plan assembly vs the reference parser.

The stage-1 hot path builds plans by stitching cached per-LG segments
(:mod:`repro.notation.segments`) instead of re-running
:func:`~repro.notation.parser.parse_lfa`.  These tests drive long random LFA
operator sequences — the exact move distribution the annealer uses — and
require the assembled plan to be *bit-identical* to a full parse:
fingerprints, tiles, DRAM tensors, lifetimes, the prefilled evaluator arrays
and the evaluation result itself.
"""

from __future__ import annotations

import random

import pytest

from repro.core.double_buffer import double_buffer_dlsa
from repro.core.evaluator import ScheduleEvaluator
from repro.core.lfa_stage import LFA_OPERATORS, LFAStage, initial_lfa
from repro.notation.lfa import LFA
from repro.notation.parser import parse_lfa
from repro.notation.segments import (
    PlanAssembler,
    build_plan_cached,
    parse_segment,
    segment_cache,
    segment_key,
)


def _assert_plans_identical(assembled, reference):
    assert assembled.feasible == reference.feasible
    assert assembled.infeasibility_reason == reference.infeasibility_reason
    assert assembled.fingerprint() == reference.fingerprint()
    if not reference.feasible:
        return
    assert assembled.tiles == reference.tiles
    assert assembled.dram_tensors == reference.dram_tensors
    assert assembled.onchip_intervals == reference.onchip_intervals
    assert assembled.layer_tilings == reference.layer_tilings
    assert assembled.tile_required_loads == reference.tile_required_loads
    assert assembled.flg_of_layer == reference.flg_of_layer
    assert assembled.lg_of_layer == reference.lg_of_layer
    assert assembled.num_flgs == reference.num_flgs
    assert assembled.num_lgs == reference.num_lgs
    assert assembled.tensor_arrays == reference.tensor_arrays
    assert assembled.store_structure == reference.store_structure


@pytest.mark.parametrize(
    "graph_fixture", ["linear_cnn", "branchy_cnn", "tiny_gpt_prefill", "tiny_gpt_decode"]
)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_operator_walk_assembly_matches_full_parse(request, graph_fixture, seed):
    """Every candidate of a long random operator walk assembles identically.

    Both the delta-driven path (the move's LFADelta) and the cache-only path
    (no delta) are checked against the reference parse for every move,
    including infeasible candidates (the GPT graphs reach them through
    untiled attention operands fused at Tiling Number > 1).
    """
    graph = request.getfixturevalue(graph_fixture)
    rng = random.Random(seed)
    lfa = initial_lfa(graph, kc_parallel_lanes=32)
    assembler = PlanAssembler(graph)
    build_plan_cached(graph, lfa)

    checked = 0
    for _ in range(120):
        operator = rng.choice(LFA_OPERATORS)
        move = operator(lfa, graph, rng)
        if move is None:
            continue
        reference = parse_lfa(graph, move.lfa)
        _assert_plans_identical(assembler.assemble(move.lfa, move.delta), reference)
        _assert_plans_identical(assembler.assemble(move.lfa), reference)
        _assert_plans_identical(build_plan_cached(graph, move.lfa, move.delta), reference)
        checked += 1
        if reference.feasible:
            lfa = move.lfa
    assert checked > 30


def test_assembled_plan_evaluates_identically(tiny_accelerator, branchy_cnn):
    """Evaluation of an assembled plan is bit-identical to the parsed plan's."""
    rng = random.Random(11)
    lfa = initial_lfa(branchy_cnn, kc_parallel_lanes=32)
    for _ in range(40):
        move = rng.choice(LFA_OPERATORS)(lfa, branchy_cnn, rng)
        if move is not None and parse_lfa(branchy_cnn, move.lfa).feasible:
            lfa = move.lfa

    reference = parse_lfa(branchy_cnn, lfa)
    assembled = PlanAssembler(branchy_cnn).assemble(lfa)
    dlsa = double_buffer_dlsa(assembled)
    assert dlsa.order == double_buffer_dlsa(reference).order
    assert dlsa.living == double_buffer_dlsa(reference).living

    # Separate evaluators: the context LRU is keyed by plan fingerprint, so a
    # shared evaluator would hand both plans the same context.
    result_ref = ScheduleEvaluator(tiny_accelerator).evaluate(reference, dlsa)
    result_inc = ScheduleEvaluator(tiny_accelerator).evaluate(assembled, dlsa)
    assert result_inc.feasible == result_ref.feasible
    assert result_inc.latency_s == result_ref.latency_s
    assert result_inc.energy_j == result_ref.energy_j
    assert result_inc.core_energy_j == result_ref.core_energy_j
    assert result_inc.dram_energy_j == result_ref.dram_energy_j
    assert result_inc.max_buffer_bytes == result_ref.max_buffer_bytes
    assert result_inc.avg_buffer_bytes == result_ref.avg_buffer_bytes


def test_infeasible_reason_matches_reference(tiny_gpt_prefill):
    """The assembler reports the seed parser's (first-dep) infeasibility reason."""
    lfa = LFA.fully_fused(tiny_gpt_prefill, tiling_number=4)
    reference = parse_lfa(tiny_gpt_prefill, lfa)
    assembled = PlanAssembler(tiny_gpt_prefill).assemble(lfa)
    assert not reference.feasible
    assert not assembled.feasible
    assert assembled.infeasibility_reason == reference.infeasibility_reason


def test_segments_are_shared_across_plans(linear_cnn):
    """Content-equal LGs of different LFAs resolve to one cached segment."""
    from repro.core.caching import cache_size

    if cache_size("SEGMENT", 4096) == 0:
        pytest.skip("segment cache disabled via REPRO_SEGMENT_CACHE=0")
    order = tuple(linear_cnn.topological_order())
    n = len(order)
    cut = n // 2
    base = LFA(
        computing_order=order,
        flc_set=frozenset({cut}),
        dram_cut_set=frozenset({cut}),
        tiling_numbers={0: 1, cut: 1},
    )
    # Same second LG, different first-LG Tiling Number.
    variant = LFA(
        computing_order=order,
        flc_set=frozenset({cut}),
        dram_cut_set=frozenset({cut}),
        tiling_numbers={0: 2, cut: 1},
    )
    assembler = PlanAssembler(linear_cnn)
    plan_a = assembler.assemble(base)
    plan_b = assembler.assemble(variant)
    assert plan_a.segment_view[1][0] is plan_b.segment_view[1][0]
    assert plan_a.segment_view[0][0] is not plan_b.segment_view[0][0]


def test_segment_parse_is_deterministic(branchy_cnn):
    """parse_segment is a pure function of (graph, spec)."""
    lfa = initial_lfa(branchy_cnn, kc_parallel_lanes=32)
    spec = lfa.segment_specs()[0]
    first = parse_segment(branchy_cnn, spec)
    second = parse_segment(branchy_cnn, spec)
    assert first.key == second.key == segment_key(spec)
    assert first.tiles == second.tiles
    assert first.specs == second.specs
    assert first.onchip == second.onchip


def test_wrong_delta_degrades_to_cache_not_wrong_plan(linear_cnn):
    """A bogus segment map must never produce a wrong plan."""
    from repro.notation.lfa import LFADelta

    rng = random.Random(3)
    lfa = initial_lfa(linear_cnn, kc_parallel_lanes=32)
    build_plan_cached(linear_cnn, lfa)
    move = None
    while move is None:
        move = rng.choice(LFA_OPERATORS)(lfa, linear_cnn, rng)
    bogus = LFADelta(
        operator="bogus",
        parent=lfa,
        # Claim every segment is unchanged (map i -> i), which is false for
        # the touched one; spec verification must reject the stale segments.
        segment_map=tuple(range(len(move.lfa.lg_ranges()))),
    )
    reference = parse_lfa(linear_cnn, move.lfa)
    _assert_plans_identical(PlanAssembler(linear_cnn).assemble(move.lfa, bogus), reference)


def test_evaluator_reuse_across_graphs_keeps_segment_costs_separate(tiny_accelerator):
    """One evaluator serving two shape-differing graphs must not mix costs.

    The two GPT variants below share every layer *name*, cut structure and
    Tiling Number — so their segment digests collide — but differ in shape.
    The per-segment static-cost cache must still keep them apart.
    """
    from repro.workloads.gpt2 import GPT2Config, gpt2_prefill

    config = GPT2Config(name="gpt2-test", num_layers=2, hidden=64, num_heads=4, ffn_hidden=128)
    graph_short = gpt2_prefill(config=config, batch=1, seq_len=16)
    graph_long = gpt2_prefill(config=config, batch=1, seq_len=64)

    shared = ScheduleEvaluator(tiny_accelerator)
    results = []
    for graph in (graph_short, graph_long):
        lfa = initial_lfa(graph, tiny_accelerator.core_array.kc_parallel_lanes)
        plan = PlanAssembler(graph).assemble(lfa)
        results.append(shared.evaluate(plan, double_buffer_dlsa(plan)))

    fresh = ScheduleEvaluator(tiny_accelerator)
    lfa = initial_lfa(graph_long, tiny_accelerator.core_array.kc_parallel_lanes)
    plan = PlanAssembler(graph_long).assemble(lfa)
    expected = fresh.evaluate(plan, double_buffer_dlsa(plan))
    assert results[1].latency_s == expected.latency_s
    assert results[1].energy_j == expected.energy_j
    assert results[1].max_buffer_bytes == expected.max_buffer_bytes


def test_stage_evaluate_uses_segment_path(tiny_accelerator, fast_config, linear_cnn):
    """LFAStage.evaluate builds plans through the (shared) plan LRU."""
    evaluator = ScheduleEvaluator(tiny_accelerator)
    stage = LFAStage(linear_cnn, evaluator, fast_config)
    lfa = initial_lfa(linear_cnn, tiny_accelerator.core_array.kc_parallel_lanes)
    result = stage.evaluate(lfa, tiny_accelerator.gbuf_bytes)
    assert result.feasible
    plan = build_plan_cached(linear_cnn, lfa)
    assert plan.segment_view is not None
    assert len(plan.segment_view) == plan.num_lgs
    assert segment_cache(linear_cnn).stats()["misses"] >= 1


@pytest.mark.parametrize("graph_fixture", ["branchy_cnn", "tiny_gpt_prefill"])
@pytest.mark.parametrize("seed", [0, 1])
def test_lfa_dlsa_walk_offset_resolution_matches_full_rebuild(
    request, tiny_accelerator, graph_fixture, seed
):
    """Offset-indirect plans stay bit-identical to full rebuilds over a long
    interleaved LFA/DLSA walk.

    Every accepted LFA move re-assembles the plan through the indirection
    table; before the global lists materialise, single-element resolution
    (``tile``/``tensor``) and the stitched numpy views must equal the
    reference parser's, then the fully materialised plan must be identical,
    and a short DLSA sub-walk on the schedule must evaluate bit-identically
    through both plans.
    """
    from repro.core.dlsa_stage import DLSA_OPERATORS

    graph = request.getfixturevalue(graph_fixture)
    rng = random.Random(seed)
    lfa = initial_lfa(graph, kc_parallel_lanes=32)
    assembler = PlanAssembler(graph)
    checked = 0
    for _ in range(60):
        move = None
        for _attempt in range(10):
            move = rng.choice(LFA_OPERATORS)(lfa, graph, rng)
            if move is not None:
                break
        if move is None:
            continue
        reference = parse_lfa(graph, move.lfa)
        assembled = assembler.assemble(move.lfa, move.delta)
        if not reference.feasible:
            _assert_plans_identical(assembled, reference)
            continue

        # Single-element resolution through the offset table (runs before
        # _assert_plans_identical forces the materialised global lists).
        for index in {0, assembled.num_tiles - 1, rng.randrange(assembled.num_tiles)}:
            assert assembled.tile(index) == reference.tiles[index]
        if assembled.num_dram_tensors:
            for tid in {
                0,
                assembled.num_dram_tensors - 1,
                rng.randrange(assembled.num_dram_tensors),
            }:
                assert assembled.tensor(tid) == reference.dram_tensors[tid]
        # Stitched evaluator arrays vs arrays derived from the full parse.
        for stitched, parsed in zip(assembled.tensor_np, reference.tensor_np):
            assert stitched.tolist() == parsed.tolist()
        for stitched, parsed in zip(assembled.req_csr, reference.req_csr):
            assert list(stitched) == list(parsed)
        for stitched, parsed in zip(assembled.onchip_np, reference.onchip_np):
            assert stitched.tolist() == parsed.tolist()
        _assert_plans_identical(assembled, reference)

        # DLSA sub-walk: both plans drive the evaluator bit-identically.
        dlsa = double_buffer_dlsa(assembled)
        assert dlsa.order == double_buffer_dlsa(reference).order
        assert dlsa.living == double_buffer_dlsa(reference).living
        context_a = ScheduleEvaluator(tiny_accelerator).context(assembled)
        context_r = ScheduleEvaluator(tiny_accelerator).context(reference)
        for _step in range(5):
            result_a = context_a.evaluate(dlsa)
            result_r = context_r.evaluate(dlsa)
            assert result_a.feasible == result_r.feasible
            assert result_a.latency_s == result_r.latency_s
            assert result_a.energy_j == result_r.energy_j
            assert result_a.max_buffer_bytes == result_r.max_buffer_bytes
            for operator in DLSA_OPERATORS:
                candidate = operator(assembled, dlsa, rng)
                if candidate is not None:
                    dlsa = candidate
                    break
        checked += 1
        lfa = move.lfa
    assert checked >= 10
