"""Integration tests: the full flow from workload to instructions.

These tests use small-but-real workloads and the fast search configuration,
so they exercise every subsystem together (workload zoo -> notation ->
search -> evaluator -> analysis -> compiler) while staying quick enough for
a normal pytest run.
"""

import pytest

from repro.analysis.comparison import compare_workload
from repro.analysis.execution_graph import build_execution_graph
from repro.baselines.cocco import CoccoScheduler
from repro.compiler.codegen import lower_result
from repro.compiler.ir import generate_ir
from repro.core.config import SAParams, SoMaConfig
from repro.core.core_array import CoreArrayMapper
from repro.core.soma import SoMaScheduler
from repro.hardware.accelerator import edge_accelerator
from repro.hardware.memory import MB
from repro.workloads.builder import GraphBuilder
from repro.workloads.registry import build_workload


@pytest.fixture(scope="module")
def search_config():
    return SoMaConfig(
        lfa_sa=SAParams(iterations_per_unit=20.0, max_iterations=400, min_iterations=60),
        dlsa_sa=SAParams(iterations_per_unit=4.0, max_iterations=400, min_iterations=40),
        max_allocator_iterations=2,
        allocator_patience=1,
        seed=11,
    )


@pytest.fixture(scope="module")
def small_edge():
    """A scaled-down edge platform that still exhibits buffer pressure."""
    return edge_accelerator(gbuf_bytes=2 * MB, dram_bandwidth_gb_per_s=8.0)


def _deep_cnn(batch=1, blocks=6):
    """A VGG-ish CNN that is large enough for fusion choices to matter."""
    builder = GraphBuilder("deep_cnn", batch=batch)
    current = builder.conv("conv_in", [], 32, kernel=3, stride=2, input_shape=(3, 64, 64))
    channels = 32
    for index in range(blocks):
        stride = 2 if index % 2 == 1 else 1
        channels = min(256, channels * (2 if stride == 2 else 1))
        current = builder.conv(f"block{index}_conv", [current], channels, kernel=3, stride=stride)
    pooled = builder.pool("gap", [current], global_pool=True)
    builder.gemm("fc", [pooled], out_features=100)
    return builder.build()


def test_full_flow_workload_to_instructions(small_edge, search_config):
    graph = _deep_cnn()
    soma = SoMaScheduler(small_edge, search_config)
    result = soma.schedule(graph)
    assert result.evaluation.feasible

    ir = generate_ir(result.plan, result.dlsa)
    program = lower_result(result.plan, result.dlsa)
    assert ir.num_tiles == result.plan.num_tiles
    assert program.num_instructions == result.plan.num_tiles + result.plan.num_dram_tensors

    trace = soma.evaluate_encoding(graph, result.encoding, include_trace=True)
    graph_view = build_execution_graph(result.plan, result.dlsa, trace, scheme_name="soma")
    assert graph_view.latency_s == pytest.approx(result.evaluation.latency_s, rel=1e-6)


def test_soma_beats_cocco_under_buffer_pressure(small_edge, search_config):
    graph = _deep_cnn(batch=4)
    mapper = CoreArrayMapper(small_edge)
    cocco = CoccoScheduler(small_edge, search_config, mapper=mapper).schedule(graph)
    soma = SoMaScheduler(small_edge, search_config, mapper=mapper).schedule(graph)
    assert soma.evaluation.latency_s <= cocco.evaluation.latency_s * 1.02
    assert soma.evaluation.energy_j <= cocco.evaluation.energy_j * 1.05


def test_stage2_matches_or_beats_stage1_on_deep_cnn(small_edge, search_config):
    graph = _deep_cnn(batch=2)
    result = SoMaScheduler(small_edge, search_config).schedule(graph)
    assert result.stage2.evaluation.latency_s <= result.stage1.evaluation.latency_s + 1e-12
    assert result.stage2.evaluation.energy_j <= result.stage1.evaluation.energy_j * 1.0001


def test_gpt2_tiny_prefill_and_decode_schedulable(small_edge, search_config):
    prefill = build_workload("gpt2-prefill", batch=1, variant="tiny", seq_len=32)
    decode = build_workload("gpt2-decode", batch=2, variant="tiny", context_len=32)
    prefill_result = SoMaScheduler(small_edge, search_config).schedule(prefill)
    decode_result = SoMaScheduler(small_edge, search_config).schedule(decode)
    assert prefill_result.evaluation.feasible
    assert decode_result.evaluation.feasible
    # Decode has far lower compute density, hence far lower utilisation.
    assert decode_result.evaluation.compute_utilization(small_edge) < (
        prefill_result.evaluation.compute_utilization(small_edge)
    )


def test_comparison_row_on_deep_cnn(small_edge, search_config):
    graph = _deep_cnn(batch=2)
    row = compare_workload(graph, small_edge, config=search_config, seed=3)
    assert row.speedup_total > 0.9
    assert row.gap_to_bound_percent < 100.0


def test_larger_buffer_never_hurts(search_config):
    graph = _deep_cnn(batch=2)
    small = edge_accelerator(gbuf_bytes=1 * MB, dram_bandwidth_gb_per_s=8.0)
    large = edge_accelerator(gbuf_bytes=8 * MB, dram_bandwidth_gb_per_s=8.0)
    result_small = SoMaScheduler(small, search_config).schedule(graph)
    result_large = SoMaScheduler(large, search_config).schedule(graph)
    assert result_large.evaluation.latency_s <= result_small.evaluation.latency_s * 1.05
