"""Tests for the detailed schedule report and the SA time-limit option."""

import random
import time

import pytest

from repro.analysis.schedule_report import build_schedule_report
from repro.core.config import SAParams
from repro.core.double_buffer import double_buffer_dlsa
from repro.core.evaluator import ScheduleEvaluator
from repro.core.sa import SimulatedAnnealing
from repro.errors import ConfigurationError
from repro.notation.dram_tensor import TensorKind
from repro.notation.lfa import LFA
from repro.notation.parser import parse_lfa


# -------------------------------------------------------------- report content
def _report(graph, accelerator, lfa=None):
    plan = parse_lfa(graph, lfa if lfa is not None else LFA.fully_fused(graph, tiling_number=2))
    dlsa = double_buffer_dlsa(plan)
    evaluation = ScheduleEvaluator(accelerator).evaluate(plan, dlsa)
    return plan, build_schedule_report(plan, evaluation)


def test_report_group_structure(linear_cnn, tiny_accelerator):
    plan, report = _report(linear_cnn, tiny_accelerator)
    assert report.num_flgs == plan.num_flgs
    assert report.num_lgs == plan.num_lgs
    assert report.num_tiles == plan.num_tiles
    covered = [layer for group in report.groups for layer in group.layers]
    assert sorted(covered) == sorted(linear_cnn.layer_names())


def test_report_traffic_matches_plan(linear_cnn, tiny_accelerator):
    plan, report = _report(linear_cnn, tiny_accelerator)
    assert report.traffic.total_bytes == plan.total_dram_bytes
    assert report.traffic.weight_bytes == sum(
        t.num_bytes for t in plan.tensors_by_kind(TensorKind.WEIGHT)
    )


def test_report_group_weights_and_macs(linear_cnn, tiny_accelerator):
    _, report = _report(linear_cnn, tiny_accelerator)
    assert sum(g.weight_bytes for g in report.groups) == linear_cnn.total_weight_bytes
    assert sum(g.macs for g in report.groups) == linear_cnn.total_macs


def test_report_render_mentions_groups_and_traffic(linear_cnn, tiny_accelerator):
    _, report = _report(linear_cnn, tiny_accelerator)
    text = report.render()
    assert "schedule report" in text
    assert "DRAM traffic" in text
    assert "FLG0" in text


def test_report_carries_cache_stats(linear_cnn, tiny_accelerator):
    from repro.core.caching import collect_search_cache_stats

    plan = parse_lfa(linear_cnn, LFA.fully_fused(linear_cnn, tiling_number=2))
    evaluator = ScheduleEvaluator(tiny_accelerator)
    evaluation = evaluator.evaluate(plan, double_buffer_dlsa(plan))
    stats = collect_search_cache_stats(linear_cnn, evaluator)
    report = build_schedule_report(plan, evaluation, cache_stats=stats)
    assert report.cache_stats is stats
    text = report.render()
    assert "search caches:" in text
    for cache_name in ("parse", "segment", "tiling", "plan", "result"):
        assert cache_name in text
    # Without stats the section is absent entirely.
    assert "search caches:" not in build_schedule_report(plan, evaluation).render()


def test_report_rejects_infeasible_plan(tiny_gpt_prefill, tiny_accelerator):
    plan = parse_lfa(tiny_gpt_prefill, LFA.fully_fused(tiny_gpt_prefill, tiling_number=4))
    evaluation = ScheduleEvaluator(tiny_accelerator).evaluate(
        plan, double_buffer_dlsa(plan)
    )
    with pytest.raises(ValueError):
        build_schedule_report(plan, evaluation)


def test_report_on_unfused_scheme_has_one_group_per_layer(linear_cnn, tiny_accelerator):
    _, report = _report(linear_cnn, tiny_accelerator, lfa=LFA.unfused(linear_cnn))
    assert len(report.groups) == len(linear_cnn)
    assert {g.lg_index for g in report.groups} == set(range(len(linear_cnn)))


# ------------------------------------------------------------- SA time limit
def test_time_limit_validation():
    with pytest.raises(ConfigurationError):
        SAParams(iterations_per_unit=1, time_limit_s=0)
    assert SAParams(iterations_per_unit=1, time_limit_s=0.5).time_limit_s == 0.5


def test_time_limit_stops_annealing_early():
    params = SAParams(
        iterations_per_unit=1_000_000,
        max_iterations=1_000_000,
        time_limit_s=0.05,
        greedy_fraction=0.0,
    )
    annealer = SimulatedAnnealing(params)

    def slow_cost(state):
        time.sleep(0.001)
        return float(abs(state))

    start = time.perf_counter()
    outcome = annealer.run(
        initial_state=50,
        cost_fn=slow_cost,
        neighbor_fn=lambda s, rng: s + rng.choice([-1, 1]),
        rng=random.Random(0),
        units=1_000_000,
    )
    elapsed = time.perf_counter() - start
    assert elapsed < 2.0
    assert outcome.best_cost <= 50.0


def test_greedy_fraction_adds_iterations():
    base = SAParams(iterations_per_unit=10, greedy_fraction=0.0)
    polished = SAParams(iterations_per_unit=10, greedy_fraction=0.5)
    assert base.num_greedy_iterations(10) == 0
    assert polished.num_greedy_iterations(10) == 50


def test_greedy_phase_counts_towards_iterations_and_improves():
    params = SAParams(
        iterations_per_unit=1, min_iterations=20, max_iterations=20, greedy_fraction=1.0
    )
    annealer = SimulatedAnnealing(params)
    outcome = annealer.run(
        initial_state=30,
        cost_fn=lambda s: float(abs(s)),
        neighbor_fn=lambda s, rng: s + rng.choice([-1, 1]),
        rng=random.Random(1),
        units=20,
        trace=True,
    )
    assert outcome.iterations == 20 + 20  # annealing + greedy polishing
    assert outcome.best_cost <= 30.0
    # The best-cost trace never regresses, even through the greedy phase.
    assert list(outcome.cost_trace) == sorted(outcome.cost_trace, reverse=True)
