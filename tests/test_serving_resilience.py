"""Self-healing serving: fault injection, crash retry, breakers, deadlines.

The contract under test: no failure mode hangs a client.  A crashed worker
fails its search with a typed error and is respawned; the service retries
crashed searches (only crashes, only within the deadline); coalesced
followers expire on their *own* deadlines; a broken memo disk never stops
serving; and the injected-fault harness is deterministic, so every one of
these behaviours is reproducible bit-for-bit.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import WorkerCrashError
from repro.serving.faults import (
    FAULT_CRASH_EXIT_CODE,
    FaultSpecError,
    active_fault_plan,
    parse_fault_spec,
)
from repro.serving.protocol import ScheduleRequest, response_to_payload
from repro.serving.server import http_status_for
from repro.serving.service import (
    RETRY_BACKOFF_CAP_SECONDS,
    ScheduleService,
    reset_worker_state,
    resolve_retries,
    retry_backoff_seconds,
)

TINY_KWARGS = (("context_len", 16), ("variant", "tiny"))


def tiny_request(seed: int = 7, request_id: str = "", **kwargs) -> ScheduleRequest:
    return ScheduleRequest(
        workload="gpt2-decode",
        workload_kwargs=TINY_KWARGS,
        seed=seed,
        fast=True,
        request_id=request_id,
        **kwargs,
    )


# ----------------------------------------------------------- fault-spec grammar
def test_fault_spec_grammar_parses_crash_and_delay():
    plan = parse_fault_spec("crash:0.1@seed=7; delay:500ms:p=0.2, delay:2s")
    kinds = [(clause.kind, clause.probability) for clause in plan.clauses]
    assert kinds == [("crash", 0.1), ("delay", 0.2), ("delay", 1.0)]
    assert plan.clauses[0].seed == 7
    assert plan.clauses[1].delay_seconds == pytest.approx(0.5)
    assert plan.clauses[2].delay_seconds == pytest.approx(2.0)
    # Bare numbers are milliseconds.
    assert parse_fault_spec("delay:250").clauses[0].delay_seconds == pytest.approx(0.25)


@pytest.mark.parametrize(
    "spec",
    [
        "",
        ";",
        "crash",
        "crash:lots",
        "crash:1.5",
        "crash:-0.1",
        "crash:0.1:p=0.2",
        "delay:abc",
        "delay:100ms:q=0.2",
        "crash:0.1@sneed=7",
        "crash:0.1@seed=x",
        "explode:0.5",
    ],
)
def test_fault_spec_rejects_malformed(spec):
    with pytest.raises(FaultSpecError):
        parse_fault_spec(spec)


def test_fault_draws_are_deterministic_and_key_sensitive():
    clause = parse_fault_spec("crash:0.3@seed=1").clauses[0]
    keys = [("gpt2-decode", "edge", 7, f"r{i}", attempt) for i in range(64) for attempt in (0, 1)]
    first = [clause.fires(key) for key in keys]
    assert first == [clause.fires(key) for key in keys]  # bit-for-bit repeatable
    rate = sum(first) / len(first)
    assert 0.1 < rate < 0.5  # roughly the requested probability
    # The attempt number is part of the key: retries get fresh draws.
    assert any(
        clause.fires(("w", "edge", 7, rid, 0)) != clause.fires(("w", "edge", 7, rid, 1))
        for rid in (f"r{i}" for i in range(64))
    )
    # A different seed reshuffles the pattern.
    other = parse_fault_spec("crash:0.3@seed=2").clauses[0]
    assert [other.fires(key) for key in keys] != first


def test_probability_edges_never_hash():
    always = parse_fault_spec("crash:1.0").clauses[0]
    never = parse_fault_spec("crash:0.0").clauses[0]
    assert always.fires(("any", "key"))
    assert not never.fires(("any", "key"))


def test_delay_clause_sleeps(monkeypatch):
    plan = parse_fault_spec("delay:30ms")
    started = time.perf_counter()
    plan.apply(("w", "edge", 1, "r", 0))
    assert time.perf_counter() - started >= 0.03


def test_in_process_crash_raises_instead_of_exiting():
    plan = parse_fault_spec("crash:1.0")
    with pytest.raises(WorkerCrashError):
        plan.apply(("w", "edge", 1, "r", 0))  # this process is not a pool worker


def test_active_fault_plan_tracks_environment(monkeypatch):
    monkeypatch.delenv("REPRO_FAULT_SPEC", raising=False)
    assert active_fault_plan() is None
    monkeypatch.setenv("REPRO_FAULT_SPEC", "crash:0.25@seed=9")
    plan = active_fault_plan()
    assert plan is not None and plan.clauses[0].probability == 0.25
    assert active_fault_plan() is plan  # cached on the spec text
    monkeypatch.setenv("REPRO_FAULT_SPEC", "crash:0.5")
    assert active_fault_plan().clauses[0].probability == 0.5


def test_service_rejects_malformed_fault_spec_at_startup(monkeypatch):
    monkeypatch.setenv("REPRO_FAULT_SPEC", "crash:often")
    with pytest.raises(FaultSpecError):
        ScheduleService(workers=1)


# ------------------------------------------------------------- retry plumbing
def test_resolve_retries_precedence(monkeypatch):
    monkeypatch.delenv("REPRO_SERVE_RETRIES", raising=False)
    assert resolve_retries(None) == 1
    assert resolve_retries(3) == 3
    assert resolve_retries(0) == 0
    monkeypatch.setenv("REPRO_SERVE_RETRIES", "4")
    assert resolve_retries(None) == 4
    monkeypatch.setenv("REPRO_SERVE_RETRIES", "several")
    with pytest.warns(RuntimeWarning, match="REPRO_SERVE_RETRIES"):
        assert resolve_retries(None) == 1
    with pytest.warns(RuntimeWarning, match="negative"):
        assert resolve_retries(-2) == 0


def test_retry_backoff_is_deterministic_capped_and_jittered():
    assert retry_backoff_seconds("key", 1) == retry_backoff_seconds("key", 1)
    assert retry_backoff_seconds("key", 1) != retry_backoff_seconds("other", 1)
    for attempt in range(1, 12):
        delay = retry_backoff_seconds("key", attempt)
        assert 0.0 < delay <= RETRY_BACKOFF_CAP_SECONDS


class _CrashNTimesExecutor:
    """Stand-in for ``_execute_request``: crash the first ``n`` calls."""

    def __init__(self, crashes: int, exception=WorkerCrashError) -> None:
        self.remaining = crashes
        self.exception = exception
        self.calls = 0

    def __call__(self, request: ScheduleRequest) -> dict:
        self.calls += 1
        if self.remaining > 0:
            self.remaining -= 1
            raise self.exception(f"injected failure #{self.calls}")
        return {
            "payload": {"seed": request.seed},
            "provenance": "cold",
            "pid": 0,
            "search_seconds": 0.0,
            "cache_stats": None,
        }


def test_crashed_search_is_retried_and_reports_retries(monkeypatch):
    executor = _CrashNTimesExecutor(crashes=1)
    monkeypatch.setattr("repro.serving.service._execute_request", executor)
    with ScheduleService(workers=1, retries=2) as service:
        response = service.schedule(tiny_request(seed=1, request_id="saved"))
        assert response.ok
        assert response.retries == 1
        assert executor.calls == 2
        supervision = service.stats()["supervision"]
        assert supervision["worker_crashes"] == 1
        assert supervision["retries"] == 1
        assert supervision["retry_budget"] == 2
    assert response_to_payload(response)["retries"] == 1  # on the wire too


def test_retry_budget_exhaustion_fails_with_worker_crash_kind(monkeypatch):
    executor = _CrashNTimesExecutor(crashes=99)
    monkeypatch.setattr("repro.serving.service._execute_request", executor)
    with ScheduleService(workers=1, retries=1) as service:
        response = service.schedule(tiny_request(seed=2))
        assert not response.ok
        assert response.provenance == "error"
        assert response.error_kind == "worker_crash"
        assert response.retries == 1
        assert "retry budget" in response.error
        assert executor.calls == 2  # initial attempt + 1 retry
    assert http_status_for(response_to_payload(response)) == 503


def test_search_errors_are_never_retried(monkeypatch):
    executor = _CrashNTimesExecutor(crashes=99, exception=RuntimeError)
    monkeypatch.setattr("repro.serving.service._execute_request", executor)
    with ScheduleService(workers=1, retries=5) as service:
        response = service.schedule(tiny_request(seed=3))
        assert not response.ok
        assert response.error_kind == "search"
        assert response.retries == 0
        assert executor.calls == 1  # deterministic failure: one attempt only
        assert service.stats()["supervision"]["retries"] == 0


def test_bad_requests_are_never_retried():
    with ScheduleService(workers=1, retries=5) as service:
        response = service.schedule(ScheduleRequest(workload="not-a-model"))
        assert not response.ok
        assert response.error_kind == "bad_request"
        assert response.retries == 0
        assert service.stats()["supervision"]["retries"] == 0


def test_retries_never_extend_past_the_deadline(monkeypatch):
    executor = _CrashNTimesExecutor(crashes=999)
    monkeypatch.setattr("repro.serving.service._execute_request", executor)
    with ScheduleService(workers=1, retries=50) as service:
        started = time.monotonic()
        response = service.schedule(tiny_request(seed=4, deadline_ms=200.0))
        elapsed = time.monotonic() - started
    assert not response.ok
    assert response.provenance == "expired"
    assert response.error_kind == "timeout"
    assert elapsed < 5.0  # bounded by the deadline, not by 50 backoffs
    assert 1 <= executor.calls < 50


# --------------------------------------------------------- in-flight deadlines
class _BlockingExecutor:
    """Event-driven ``_execute_request`` stand-in (see tests/test_serving.py)."""

    def __init__(self) -> None:
        self.started = threading.Event()
        self.release = threading.Event()

    def __call__(self, request: ScheduleRequest) -> dict:
        self.started.set()
        assert self.release.wait(timeout=30), "test never released the executor"
        return {
            "payload": {"seed": request.seed},
            "provenance": "cold",
            "pid": 0,
            "search_seconds": 0.0,
            "cache_stats": None,
        }


@pytest.fixture
def blocking_executor(monkeypatch):
    executor = _BlockingExecutor()
    monkeypatch.setattr("repro.serving.service._execute_request", executor)
    yield executor
    executor.release.set()


def test_inflight_deadline_expires_with_timeout_kind(blocking_executor):
    with ScheduleService(workers=1) as service:
        pending = service._submit(tiny_request(seed=5, deadline_ms=80.0))
        assert blocking_executor.started.wait(timeout=10)  # search is in flight
        response = pending.result()
        assert not response.ok
        assert response.provenance == "expired"
        assert response.error_kind == "timeout"  # not "deadline": it was running
        assert "in flight" in response.error
        blocking_executor.release.set()


def test_coalesced_follower_expires_on_its_own_deadline(blocking_executor):
    with ScheduleService(workers=1) as service:
        leader = service._submit(tiny_request(seed=6, request_id="leader"))
        assert blocking_executor.started.wait(timeout=10)
        follower = service._submit(
            tiny_request(seed=6, request_id="follower", deadline_ms=60.0)
        )
        expired = follower.result()  # leader still blocked: follower expires alone
        assert not expired.ok
        assert expired.provenance == "expired"
        assert expired.error_kind == "timeout"
        assert "follower" in expired.error
        blocking_executor.release.set()
        completed = leader.result()
        assert completed.ok and completed.provenance == "cold"
    # The leader's late result still landed in the memo for future requests.
    assert service._memo.peek(service.request_fingerprint(tiny_request(seed=6))) is not None


# ------------------------------------------------------------ circuit breaker
def test_breaker_opens_after_threshold_and_degrades_in_process(monkeypatch):
    executor = _CrashNTimesExecutor(crashes=3)
    monkeypatch.setattr("repro.serving.service._execute_request", executor)
    with ScheduleService(
        workers=1, retries=0, breaker_threshold=3, breaker_cooldown_seconds=600.0
    ) as service:
        for seed in (10, 11, 12):  # three consecutive crashes trip the breaker
            assert service.schedule(tiny_request(seed=seed)).error_kind == "worker_crash"
        health = service.health()
        assert not health["ok"] and health["degraded"]
        assert health["worker_health"][0]["breaker"]["state"] == "open"
        assert health["worker_health"][0]["breaker"]["trips"] == 1
        # The whole pool is unhealthy: execution degrades in-process and the
        # request is still answered.
        response = service.schedule(tiny_request(seed=13))
        assert response.ok
        assert service.stats()["supervision"]["degraded_executions"] == 1


def test_breaker_half_open_probe_closes_on_success(monkeypatch):
    executor = _CrashNTimesExecutor(crashes=2)
    monkeypatch.setattr("repro.serving.service._execute_request", executor)
    with ScheduleService(
        workers=1, retries=0, breaker_threshold=2, breaker_cooldown_seconds=0.05
    ) as service:
        for seed in (20, 21):
            assert not service.schedule(tiny_request(seed=seed)).ok
        assert not service.health()["ok"]
        time.sleep(0.08)  # past the cooldown: half-open allows a trial
        probe = service.schedule(tiny_request(seed=22))
        assert probe.ok
        health = service.health()
        assert health["ok"]
        assert health["worker_health"][0]["breaker"]["state"] == "closed"
        assert service.stats()["supervision"]["degraded_executions"] == 0


# ----------------------------------------------------- real pool, real crashes
def test_injected_crash_kills_respawns_and_retry_saves_the_request(monkeypatch):
    """End-to-end self-healing: a real worker process dies and the request
    still succeeds, deterministically, because the fault draw depends on the
    attempt number."""
    spec = "crash:0.5@seed=3"
    clause = parse_fault_spec(spec).clauses[0]

    def fires(request_id: str, attempt: int) -> bool:
        return clause.fires(("gpt2-decode", "edge", 7, request_id, attempt))

    crashy = next(
        f"victim-{i}" for i in range(512) if fires(f"victim-{i}", 0) and not fires(f"victim-{i}", 1)
    )
    clean = next(f"clean-{i}" for i in range(512) if not fires(f"clean-{i}", 0))

    reset_worker_state()
    monkeypatch.setenv("REPRO_FAULT_SPEC", spec)
    with ScheduleService(workers=2, retries=1) as service:
        saved = service.schedule(tiny_request(seed=7, request_id=crashy))
        assert saved.ok
        assert saved.retries == 1  # attempt 0 died with the worker, attempt 1 ran
        untouched = service.schedule(tiny_request(seed=7, request_id=clean))
        assert untouched.ok and untouched.provenance == "memo"
        supervision = service.stats()["supervision"]
        assert supervision["worker_crashes"] == 1
        assert supervision["pool_crashes"] == 1
        assert supervision["pool_respawns"] >= 1
        health = service.health()
        assert health["ok"]  # the pool respawned back to full health
        assert all(row["alive"] for row in health["worker_health"])
    reset_worker_state()


def test_fault_crash_exit_code_is_visible_in_pool_errors(monkeypatch):
    """The injected-crash exit code is distinctive in the crash error text."""
    from repro.experiments.parallel import PersistentPool
    from repro.serving.faults import FAULT_SPEC_ENV
    from repro.serving.service import _execute_attempt

    monkeypatch.setenv(FAULT_SPEC_ENV, "crash:1.0")
    with PersistentPool(workers=2) as pool:
        future = pool.submit(_execute_attempt, (tiny_request(seed=8), 0))
        with pytest.raises(WorkerCrashError) as excinfo:
            future.result()
    assert excinfo.value.exitcode == FAULT_CRASH_EXIT_CODE


# --------------------------------------------------------- memo-flush failures
def test_flush_loop_survives_unwritable_memo_path(monkeypatch, tmp_path):
    executor = _CrashNTimesExecutor(crashes=0)
    monkeypatch.setattr("repro.serving.service._execute_request", executor)
    # A directory at the memo path makes every spill's final rename fail.
    bad_path = tmp_path / "memo-as-a-directory"
    bad_path.mkdir()
    with pytest.warns(RuntimeWarning, match="memo"):
        with ScheduleService(
            workers=1, memo_path=bad_path, memo_flush_seconds=0.05
        ) as service:
            assert service.schedule(tiny_request(seed=30)).ok
            deadline = time.monotonic() + 10
            while (
                service.stats()["memo_persistence"]["flushes"] == 0
                and time.monotonic() < deadline
            ):
                time.sleep(0.02)
            assert service.stats()["memo_persistence"]["flushes"] >= 1
            assert service._flusher.is_alive()  # the failed flush did not kill it
            # ... and the service keeps serving.
            assert service.schedule(tiny_request(seed=31)).ok
    assert (tmp_path / "memo-as-a-directory").is_dir()  # nothing clobbered it
