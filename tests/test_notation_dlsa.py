"""Tests for DRAM tensors and the DLSA encoding."""

import pytest

from repro.errors import EncodingError
from repro.notation.dlsa import DLSA
from repro.notation.dram_tensor import DRAMTensor, TensorKind


def _load(tid=0, first=2, last=4, source=None, kind=TensorKind.WEIGHT) -> DRAMTensor:
    return DRAMTensor(
        tid=tid,
        kind=kind,
        layer="conv",
        tile_id=None,
        num_bytes=1024,
        first_use=first,
        last_use=last,
        source_layer=source,
    )


def _store(tid=1, produce=3) -> DRAMTensor:
    return DRAMTensor(
        tid=tid,
        kind=TensorKind.OFMAP,
        layer="conv",
        tile_id=0,
        num_bytes=2048,
        first_use=produce,
        last_use=produce,
    )


# ----------------------------------------------------------------- DRAMTensor
def test_load_and_store_classification():
    assert _load().is_load and not _load().is_store
    assert _store().is_store and not _store().is_load
    assert TensorKind.IFMAP.is_load
    assert not TensorKind.OFMAP.is_load


def test_default_living_duration_of_load():
    tensor = _load(first=3, last=5)
    assert tensor.default_start == 2
    assert tensor.default_end == 6


def test_default_living_duration_of_first_tile_load():
    tensor = _load(first=0, last=0)
    assert tensor.default_start == 0


def test_default_living_duration_of_store():
    tensor = _store(produce=4)
    assert tensor.default_start == 4
    assert tensor.default_end == 5


def test_invalid_use_range_rejected():
    with pytest.raises(ValueError):
        DRAMTensor(
            tid=0,
            kind=TensorKind.WEIGHT,
            layer="x",
            tile_id=None,
            num_bytes=1,
            first_use=4,
            last_use=2,
        )


def test_negative_bytes_rejected():
    with pytest.raises(ValueError):
        DRAMTensor(
            tid=0,
            kind=TensorKind.WEIGHT,
            layer="x",
            tile_id=None,
            num_bytes=-1,
            first_use=0,
            last_use=0,
        )


def test_describe_prefixes():
    assert _load(kind=TensorKind.WEIGHT).describe().startswith("W[")
    assert _load(kind=TensorKind.IFMAP).describe().startswith("I[")
    assert _store().describe().startswith("O[")


# ----------------------------------------------------------------------- DLSA
def test_from_defaults_orders_loads_before_dependent_uses():
    tensors = [_load(tid=0, first=2, last=4), _store(tid=1, produce=3)]
    dlsa = DLSA.from_defaults(tensors)
    dlsa.validate(tensors)
    assert set(dlsa.order) == {0, 1}
    assert dlsa.living[0] == (1, 5)
    assert dlsa.living[1] == (3, 4)


def test_from_defaults_places_cross_lg_load_after_source_stores():
    store = DRAMTensor(
        tid=0,
        kind=TensorKind.OFMAP,
        layer="producer",
        tile_id=0,
        num_bytes=10,
        first_use=5,
        last_use=5,
    )
    load = DRAMTensor(
        tid=1,
        kind=TensorKind.IFMAP,
        layer="consumer",
        tile_id=0,
        num_bytes=10,
        first_use=6,
        last_use=6,
        source_layer="producer",
    )
    dlsa = DLSA.from_defaults([load, store])
    assert dlsa.order.index(0) < dlsa.order.index(1)


def test_validate_rejects_non_permutation():
    tensors = [_load(tid=0), _store(tid=1)]
    dlsa = DLSA(order=(0, 0), living={0: (1, 5), 1: (3, 4)})
    with pytest.raises(EncodingError):
        dlsa.validate(tensors)


def test_validate_rejects_missing_living_duration():
    tensors = [_load(tid=0), _store(tid=1)]
    dlsa = DLSA(order=(0, 1), living={0: (1, 5)})
    with pytest.raises(EncodingError):
        dlsa.validate(tensors)


def test_validate_rejects_changed_load_end():
    tensors = [_load(tid=0, first=2, last=4)]
    dlsa = DLSA(order=(0,), living={0: (1, 7)})
    with pytest.raises(EncodingError):
        dlsa.validate(tensors)


def test_validate_rejects_late_load_start():
    tensors = [_load(tid=0, first=2, last=4)]
    dlsa = DLSA(order=(0,), living={0: (3, 5)})
    with pytest.raises(EncodingError):
        dlsa.validate(tensors)


def test_validate_rejects_changed_store_start():
    tensors = [_store(tid=0, produce=3)]
    dlsa = DLSA(order=(0,), living={0: (2, 4)})
    with pytest.raises(EncodingError):
        dlsa.validate(tensors)


def test_validate_rejects_store_deadline_at_or_before_produce():
    tensors = [_store(tid=0, produce=3)]
    dlsa = DLSA(order=(0,), living={0: (3, 3)})
    with pytest.raises(EncodingError):
        dlsa.validate(tensors)


def test_validate_accepts_early_prefetch_and_late_drain():
    tensors = [_load(tid=0, first=2, last=4), _store(tid=1, produce=3)]
    dlsa = DLSA(order=(1, 0), living={0: (0, 5), 1: (3, 9)})
    dlsa.validate(tensors)
    assert dlsa.start(0) == 0
    assert dlsa.end(1) == 9
