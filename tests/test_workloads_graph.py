"""Unit tests for the workload graph."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.graph import WorkloadGraph
from repro.workloads.layer import Layer, OpType


def _layer(name: str, batch: int = 1) -> Layer:
    return Layer(
        name=name,
        op_type=OpType.ELTWISE,
        batch=batch,
        in_channels=4,
        out_channels=4,
        in_height=4,
        in_width=4,
        out_height=4,
        out_width=4,
    )


def _diamond() -> WorkloadGraph:
    graph = WorkloadGraph("diamond", batch=1)
    for name in ("a", "b", "c", "d"):
        graph.add_layer(_layer(name))
    graph.add_dependency("a", "b")
    graph.add_dependency("a", "c")
    graph.add_dependency("b", "d")
    graph.add_dependency("c", "d")
    return graph


def test_topological_order_respects_dependencies():
    graph = _diamond()
    order = graph.topological_order()
    assert order.index("a") < order.index("b") < order.index("d")
    assert order.index("a") < order.index("c") < order.index("d")


def test_predecessors_and_successors():
    graph = _diamond()
    assert graph.predecessors("d") == ["b", "c"]
    assert graph.successors("a") == ["b", "c"]
    assert graph.predecessors("a") == []
    assert graph.successors("d") == []


def test_input_and_output_layers():
    graph = _diamond()
    assert graph.input_layers() == ["a"]
    assert graph.output_layers() == ["d"]


def test_is_valid_order():
    graph = _diamond()
    assert graph.is_valid_order(["a", "b", "c", "d"])
    assert graph.is_valid_order(["a", "c", "b", "d"])
    assert not graph.is_valid_order(["b", "a", "c", "d"])
    assert not graph.is_valid_order(["a", "b", "c"])


def test_dependency_flag_round_trip():
    graph = WorkloadGraph("g", batch=1)
    graph.add_layer(_layer("x"))
    graph.add_layer(_layer("y"))
    graph.add_dependency("x", "y", tiled=False)
    assert graph.dependency("x", "y").tiled is False


def test_unknown_dependency_rejected():
    graph = _diamond()
    with pytest.raises(WorkloadError):
        graph.dependency("b", "c")


def test_duplicate_layer_rejected():
    graph = WorkloadGraph("g", batch=1)
    graph.add_layer(_layer("x"))
    with pytest.raises(WorkloadError):
        graph.add_layer(_layer("x"))


def test_cycle_rejected():
    graph = WorkloadGraph("g", batch=1)
    graph.add_layer(_layer("x"))
    graph.add_layer(_layer("y"))
    graph.add_dependency("x", "y")
    with pytest.raises(WorkloadError):
        graph.add_dependency("y", "x")


def test_self_dependency_rejected():
    graph = WorkloadGraph("g", batch=1)
    graph.add_layer(_layer("x"))
    with pytest.raises(WorkloadError):
        graph.add_dependency("x", "x")


def test_batch_mismatch_rejected():
    graph = WorkloadGraph("g", batch=2)
    with pytest.raises(WorkloadError):
        graph.add_layer(_layer("x", batch=1))


def test_unknown_layer_lookup_rejected():
    graph = _diamond()
    with pytest.raises(WorkloadError):
        graph.layer("missing")


def test_statistics_sum_over_layers():
    graph = _diamond()
    assert graph.total_ops == sum(graph.layer(n).ops for n in graph.layer_names())
    assert graph.total_weight_bytes == 0
    assert len(graph) == 4


def test_caches_invalidation_after_adding_layer():
    graph = _diamond()
    assert graph.topological_order()  # warm the caches
    graph.add_layer(_layer("e"))
    graph.add_dependency("d", "e")
    assert graph.topological_order()[-1] == "e"
    assert graph.successors("d") == ["e"]


def test_describe_contains_layer_count():
    assert "4 layers" in _diamond().describe()


def test_empty_name_rejected():
    with pytest.raises(WorkloadError):
        WorkloadGraph("", batch=1)


def test_non_positive_batch_rejected():
    with pytest.raises(WorkloadError):
        WorkloadGraph("g", batch=0)
