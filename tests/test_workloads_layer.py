"""Unit tests for the Layer data model."""

import pytest

from repro.workloads.layer import Layer, OpType


def _conv(**overrides) -> Layer:
    defaults = dict(
        name="conv",
        op_type=OpType.CONV,
        batch=1,
        in_channels=8,
        out_channels=16,
        in_height=8,
        in_width=8,
        out_height=8,
        out_width=8,
        kernel_h=3,
        kernel_w=3,
        weight_bytes=8 * 16 * 9,
    )
    defaults.update(overrides)
    return Layer(**defaults)


def test_conv_macs_formula():
    layer = _conv()
    expected = 1 * 16 * 8 * 8 * (3 * 3 * 8)
    assert layer.macs == expected
    assert layer.ops == 2 * expected


def test_gemm_macs_formula():
    layer = Layer(
        name="fc",
        op_type=OpType.GEMM,
        batch=2,
        in_channels=64,
        out_channels=10,
        in_height=1,
        in_width=1,
        out_height=1,
        out_width=1,
        weight_bytes=640,
    )
    assert layer.macs == 2 * 10 * 64


def test_depthwise_macs_formula():
    layer = Layer(
        name="dw",
        op_type=OpType.DWCONV,
        batch=1,
        in_channels=16,
        out_channels=16,
        in_height=8,
        in_width=8,
        out_height=8,
        out_width=8,
        kernel_h=3,
        kernel_w=3,
        groups=16,
        weight_bytes=16 * 9,
    )
    assert layer.macs == 16 * 8 * 8 * 9


def test_matmul_macs_use_contraction_length():
    layer = Layer(
        name="attn",
        op_type=OpType.MATMUL,
        batch=1,
        in_channels=32,
        out_channels=64,
        in_height=16,
        in_width=1,
        out_height=16,
        out_width=1,
    )
    assert layer.macs == 16 * 64 * 32


def test_pool_uses_vector_unit():
    layer = Layer(
        name="pool",
        op_type=OpType.POOL,
        batch=1,
        in_channels=8,
        out_channels=8,
        in_height=8,
        in_width=8,
        out_height=4,
        out_width=4,
        kernel_h=2,
        kernel_w=2,
        stride_h=2,
        stride_w=2,
    )
    assert layer.macs == 0
    assert layer.vector_ops == 8 * 4 * 4 * 4


def test_eltwise_vector_ops_equal_elements():
    layer = Layer(
        name="add",
        op_type=OpType.ELTWISE,
        batch=1,
        in_channels=8,
        out_channels=8,
        in_height=4,
        in_width=4,
        out_height=4,
        out_width=4,
    )
    assert layer.vector_ops == 8 * 16


def test_fmap_sizes_respect_bytes_per_element():
    layer = _conv(bytes_per_element=2)
    assert layer.ifmap_bytes == 2 * 8 * 8 * 8
    assert layer.ofmap_bytes == 2 * 16 * 8 * 8


def test_weighted_layer_without_weights_rejected():
    with pytest.raises(ValueError):
        _conv(weight_bytes=0)


def test_negative_weight_bytes_rejected():
    with pytest.raises(ValueError):
        _conv(weight_bytes=-1)


def test_empty_name_rejected():
    with pytest.raises(ValueError):
        _conv(name="")


def test_non_positive_dimension_rejected():
    with pytest.raises(ValueError):
        _conv(out_height=0)


def test_has_weights_property():
    assert OpType.CONV.has_weights
    assert OpType.GEMM.has_weights
    assert not OpType.MATMUL.has_weights
    assert not OpType.POOL.has_weights


def test_has_spatial_window_property():
    assert OpType.CONV.has_spatial_window
    assert OpType.POOL.has_spatial_window
    assert not OpType.GEMM.has_spatial_window
    assert not OpType.ELTWISE.has_spatial_window


def test_describe_mentions_name_and_type():
    description = _conv().describe()
    assert "conv" in description
    assert "k=3x3" in description
