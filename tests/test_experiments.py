"""Tests for the artifact-style experiment drivers."""

import pytest

from repro.experiments.overall import (
    ExperimentCell,
    default_cells,
    run_overall_experiment,
)
from repro.experiments.sweep import run_dse_experiment
from repro.workloads.registry import available_workloads


def test_experiment_cell_builders():
    cell = ExperimentCell("resnet50", "edge", 2)
    accelerator = cell.build_accelerator()
    graph = cell.build_graph()
    assert accelerator.name.startswith("edge")
    assert graph.batch == 2
    assert "resnet50" in cell.describe()


def test_experiment_cell_cloud_platform():
    cell = ExperimentCell("resnet50", "cloud", 1)
    assert cell.build_accelerator().name.startswith("cloud")


def test_experiment_cell_unknown_platform_rejected():
    with pytest.raises(ValueError):
        ExperimentCell("resnet50", "tpu", 1).build_accelerator()


def test_experiment_cell_workload_kwargs():
    cell = ExperimentCell(
        "gpt2-decode", "edge", 1, (("variant", "tiny"), ("context_len", 16))
    )
    graph = cell.build_graph()
    assert "decode" in graph.name


def test_default_cells_are_buildable():
    for cell in default_cells():
        assert cell.workload in available_workloads()


def test_run_overall_experiment_small_grid(tiny_accelerator, fast_config):
    # Use tiny custom cells so the driver stays fast in unit tests.
    cells = [
        ExperimentCell("gpt2-decode", "edge", 1, (("variant", "tiny"), ("context_len", 16))),
        ExperimentCell("gpt2-prefill", "edge", 1, (("variant", "tiny"), ("seq_len", 16))),
    ]
    messages = []
    experiment = run_overall_experiment(
        cells=cells, config=fast_config, seed=3, progress=messages.append
    )
    assert len(experiment.rows) == 2
    assert len(messages) == 2

    csv_text = experiment.to_csv()
    assert csv_text.count("\n") == 2
    assert "speedup_total" in csv_text.splitlines()[0]

    stats = experiment.stats_log()
    assert "aggregate statistics" in stats
    assert "gpt2-decode" in stats


def test_run_dse_experiment_csv_and_tables(fast_config):
    experiment = run_dse_experiment(
        workload="gpt2-decode",
        batches=[1],
        dram_bandwidths_gb_s=[8.0, 16.0],
        buffer_sizes_mb=[4.0],
        config=fast_config,
        seed=1,
        workload_kwargs={"variant": "tiny", "context_len": 16},
    )
    csv_text = experiment.to_csv()
    lines = csv_text.splitlines()
    assert lines[0].startswith("workload,batch,dram_bandwidth_gb_s")
    assert len(lines) == 1 + 2  # header + 2 design points
    tables = experiment.tables()
    assert "scheduler=cocco" in tables and "scheduler=soma" in tables
