"""Seed-determinism tests for the parallel runner and its wiring.

The invariant: for a fixed seed, every parallel entry point returns results
identical to a serial run regardless of worker count — tasks carry explicit
seeds and share no mutable state.
"""

from __future__ import annotations

import dataclasses
import math
import os
import time

import pytest

from repro.analysis.dse import run_dse
from repro.core.soma import SoMaScheduler
from repro.experiments import parallel
from repro.experiments.parallel import (
    ParallelRunner,
    PersistentPool,
    derive_seed,
    multi_restart_schedule,
    resolve_workers,
)


def _double(value: int) -> int:
    return 2 * value


def _pid(_task) -> int:
    return os.getpid()


def test_resolve_workers_prefers_argument_then_env(monkeypatch):
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    assert resolve_workers(None) == 1
    assert resolve_workers(3) == 3
    monkeypatch.setenv("REPRO_WORKERS", "4")
    assert resolve_workers(None) == 4
    assert resolve_workers(2) == 2


def test_resolve_workers_warns_on_invalid_env(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "not-a-number")
    with pytest.warns(RuntimeWarning, match="REPRO_WORKERS"):
        assert resolve_workers(None) == 1
    # An explicit argument never consults the environment, so no warning.
    monkeypatch.setenv("REPRO_WORKERS", "still-bad")
    assert resolve_workers(2) == 2


def test_derive_seed_is_stable_and_decorrelated():
    assert derive_seed(2025, "chain", 0) == derive_seed(2025, "chain", 0)
    seeds = {derive_seed(2025, "chain", i) for i in range(32)}
    assert len(seeds) == 32  # no collisions across chains
    assert derive_seed(1, "chain", 0) != derive_seed(2, "chain", 0)
    assert all(0 <= seed < 2**31 for seed in seeds)


def test_map_preserves_order_serial_and_parallel():
    tasks = list(range(7))
    serial = ParallelRunner(workers=1).map(_double, tasks)
    parallel = ParallelRunner(workers=2).map(_double, tasks)
    assert serial == parallel == [2 * t for t in tasks]


@pytest.mark.parametrize("workers", [2, 4])
def test_dse_results_identical_across_worker_counts(
    tiny_accelerator, linear_cnn, fast_config, workers
):
    kwargs = dict(
        dram_bandwidths_gb_s=[4.0, 8.0],
        buffer_sizes_mb=[0.5, 1.0],
        config=fast_config,
        seed=11,
    )
    serial = run_dse(linear_cnn, tiny_accelerator, workers=1, **kwargs)
    fanned = run_dse(linear_cnn, tiny_accelerator, workers=workers, **kwargs)
    assert serial.cells == fanned.cells


def test_compare_cells_intra_cell_split_identical_to_serial(fast_config):
    """The baseline/SoMa role split must reproduce the serial rows exactly.

    In parallel mode ``compare_cells`` fans :class:`ScheduleRoleTask`s (two
    per cell) instead of whole cells; the rows must stay bit-identical to
    the serial ``compare_workload`` path, whose only sharing between the two
    schedulers is a memoising mapper.
    """
    from repro.analysis.comparison import ComparisonTask, compare_cells

    tasks = [
        ComparisonTask(
            workload="gpt2-decode",
            platform="edge",
            batch=1,
            workload_kwargs=(("variant", "tiny"), ("context_len", 16)),
            config=fast_config,
            seed=13,
        )
    ]
    serial = compare_cells(tasks, workers=1)
    split = compare_cells(tasks, workers=2)  # intra-cell role fanning
    explicit = compare_cells(tasks, workers=2, intra_cell=False)
    for row in (split[0], explicit[0]):
        assert row.workload == serial[0].workload
        assert row.accelerator == serial[0].accelerator
        assert row.batch == serial[0].batch
        assert row.peak_ops_per_s == serial[0].peak_ops_per_s
        assert row.cocco == serial[0].cocco
        assert row.soma_stage1 == serial[0].soma_stage1
        assert row.soma_stage2 == serial[0].soma_stage2


def test_multi_restart_identical_across_worker_counts(tiny_accelerator, linear_cnn, fast_config):
    results = [
        multi_restart_schedule(
            tiny_accelerator, linear_cnn, config=fast_config, seed=5, restarts=3, workers=workers
        )
        for workers in (1, 2, 4)
    ]
    latencies = {result.evaluation.latency_s for result in results}
    energies = {result.evaluation.energy_j for result in results}
    assert len(latencies) == 1
    assert len(energies) == 1


def test_multi_restart_single_chain_equals_plain_schedule(
    tiny_accelerator, linear_cnn, fast_config
):
    plain = SoMaScheduler(tiny_accelerator, fast_config).schedule(linear_cnn, seed=5)
    single = multi_restart_schedule(
        tiny_accelerator, linear_cnn, config=fast_config, seed=5, restarts=1
    )
    assert single.evaluation.latency_s == plain.evaluation.latency_s
    assert single.evaluation.energy_j == plain.evaluation.energy_j


def test_multi_restart_never_loses_to_its_chains(tiny_accelerator, branchy_cnn, fast_config):
    best = multi_restart_schedule(
        tiny_accelerator, branchy_cnn, config=fast_config, seed=9, restarts=3, workers=1
    )
    best_cost = fast_config.objective(best.evaluation.energy_j, best.evaluation.latency_s)
    for chain in range(3):
        chain_result = SoMaScheduler(tiny_accelerator, fast_config).schedule(
            branchy_cnn, seed=derive_seed(9, "chain", chain)
        )
        chain_cost = fast_config.objective(
            chain_result.evaluation.energy_j, chain_result.evaluation.latency_s
        )
        assert best_cost <= chain_cost


def test_multi_restart_nan_cost_chain_never_wins(
    monkeypatch, tiny_accelerator, linear_cnn, fast_config
):
    """A NaN-cost first chain must not beat a finite later chain.

    ``cost < best_cost`` is never True against NaN, so before the
    ``isfinite`` guard the first chain won unconditionally whatever came
    after it.
    """
    good = SoMaScheduler(tiny_accelerator, fast_config).schedule(linear_cnn, seed=5)
    poisoned_stage = dataclasses.replace(
        good.stage2,
        evaluation=dataclasses.replace(good.stage2.evaluation, energy_j=float("nan")),
    )
    poisoned = dataclasses.replace(good, stage1=poisoned_stage, stage2=poisoned_stage)
    assert math.isnan(
        fast_config.objective(poisoned.evaluation.energy_j, poisoned.evaluation.latency_s)
    )

    chains = iter([poisoned, good])
    monkeypatch.setattr(parallel, "_run_restart", lambda task: next(chains))
    best = multi_restart_schedule(
        tiny_accelerator, linear_cnn, config=fast_config, seed=5, restarts=2, workers=1
    )
    assert best is good

    # All chains non-finite: the first chain is returned so the caller sees
    # the same failure a single run would report.
    chains = iter([poisoned, poisoned])
    monkeypatch.setattr(parallel, "_run_restart", lambda task: next(chains))
    all_bad = multi_restart_schedule(
        tiny_accelerator, linear_cnn, config=fast_config, seed=5, restarts=2, workers=1
    )
    assert all_bad is not None
    assert math.isnan(all_bad.evaluation.energy_j)


@pytest.mark.parametrize("workers", [1, 2])
def test_multi_restart_cache_stats_aggregation(
    tiny_accelerator, linear_cnn, fast_config, workers
):
    """``collect_cache_stats`` surfaces worker-side LRU activity to the parent.

    Before the persistent-stats plumbing, ``--cache-stats`` under
    ``--workers > 1`` read the parent-process LRUs, which never see worker
    activity — the table was all-miss/empty.
    """
    plain = multi_restart_schedule(
        tiny_accelerator, linear_cnn, config=fast_config, seed=5, restarts=2, workers=workers
    )
    result, stats = multi_restart_schedule(
        tiny_accelerator,
        linear_cnn,
        config=fast_config,
        seed=5,
        restarts=2,
        workers=workers,
        collect_cache_stats=True,
    )
    assert result.evaluation.latency_s == plain.evaluation.latency_s
    assert result.evaluation.energy_j == plain.evaluation.energy_j
    for name in ("parse", "tiling", "plan", "result"):
        assert name in stats
    activity = sum(entry["hits"] + entry["misses"] for entry in stats.values())
    assert activity > 0
    from repro.core.caching import format_cache_stats

    table = format_cache_stats(stats)
    assert "parse" in table and "tiling" in table


# ------------------------------------------------------------ persistent pool
_CALL_COUNTER = {"calls": 0}


def _count_calls(_task) -> tuple[int, int]:
    _CALL_COUNTER["calls"] += 1
    return os.getpid(), _CALL_COUNTER["calls"]


def test_persistent_pool_map_matches_serial():
    tasks = list(range(7))
    with PersistentPool(workers=2) as pool:
        assert pool.map(_double, tasks) == [2 * t for t in tasks]
    assert PersistentPool(workers=1).map(_double, tasks) == [2 * t for t in tasks]


def test_persistent_pool_keeps_worker_state_warm_across_submissions():
    with PersistentPool(workers=2) as pool:
        first_pid, first_count = pool.submit(_count_calls, None, affinity="graph-a").result()
        second_pid, second_count = pool.submit(_count_calls, None, affinity="graph-a").result()
    # Same affinity key -> same worker process, whose module state survived
    # between submissions (a fresh one-shot pool would restart the counter).
    assert first_pid == second_pid
    assert second_count == first_count + 1


def test_persistent_pool_affinity_is_stable():
    with PersistentPool(workers=3) as pool:
        pids = {pool.submit(_count_calls, None, affinity="key-x").result()[0] for _ in range(4)}
    assert len(pids) == 1


def test_persistent_pool_serial_runs_in_process_and_close_is_final():
    pool = PersistentPool(workers=1)
    pid, _count = pool.submit(_count_calls, None).result()
    assert pid == os.getpid()
    pool.close()
    with pytest.raises(RuntimeError):
        pool.submit(_count_calls, None)


def _slow_double(task: int) -> int:
    time.sleep(0.2)
    return 2 * task


def test_persistent_pool_close_drains_in_flight_tasks():
    """``close()`` must let dispatched tasks finish and deliver results —
    terminating mid-flight would leave their futures hanging forever."""
    pool = PersistentPool(workers=2)
    futures = [pool.submit(_slow_double, task) for task in range(4)]
    pool.close()  # called with all four tasks (potentially) still in flight
    assert [future.result() for future in futures] == [0, 2, 4, 6]


def _sleep_forever(_task) -> None:
    time.sleep(600)


def _touch_then_sleep(path: str) -> None:
    with open(path, "w") as handle:
        handle.write("running")
    time.sleep(600)


def _sleep_briefly(seconds: float) -> float:
    time.sleep(seconds)
    return seconds


def _touch_then_wait_for(paths: tuple) -> str:
    started, release = paths
    with open(started, "w") as handle:
        handle.write("running")
    deadline = time.monotonic() + 60
    while not os.path.exists(release) and time.monotonic() < deadline:
        time.sleep(0.01)
    return "released"


def test_worker_kill9_raises_within_bounded_interval_instead_of_hanging(tmp_path):
    """The no-hang property: ``kill -9`` on a busy worker fails its future
    with a typed :class:`WorkerCrashError` within a bounded interval, and the
    pool respawns the worker so later submissions still run."""
    import signal

    from repro.errors import WorkerCrashError

    sentinel = tmp_path / "task-started"
    with PersistentPool(workers=2) as pool:
        victim_pid, _count = pool.submit(_count_calls, None, affinity="victim").result()
        future = pool.submit(_touch_then_sleep, str(sentinel), affinity="victim")
        deadline = time.monotonic() + 10
        while not sentinel.exists():  # kill only once the task is running
            assert time.monotonic() < deadline, "task never started in the worker"
            time.sleep(0.02)
        os.kill(victim_pid, signal.SIGKILL)

        started = time.monotonic()
        with pytest.raises(WorkerCrashError) as excinfo:
            future.result()
        elapsed = time.monotonic() - started
        assert elapsed < 5.0, f"crash detection took {elapsed:.1f}s — effectively a hang"
        assert excinfo.value.worker_index is not None
        assert excinfo.value.exitcode is not None

        # The pool healed: the same affinity key routes to a fresh process
        # that serves new tasks, and the crash/respawn counters recorded it.
        new_pid, _count = pool.submit(_count_calls, None, affinity="victim").result()
        assert new_pid != victim_pid
        stats = pool.supervision_stats()
        assert stats["crashes"] >= 1
        assert stats["respawns"] >= 1
        assert all(row["alive"] for row in pool.worker_health())


def test_submit_timeout_kills_and_respawns_the_worker():
    """A runaway task is cancelled by killing its worker; the pool survives."""
    from repro.errors import WorkerTimeoutError

    with PersistentPool(workers=2) as pool:
        future = pool.submit(_sleep_forever, None, affinity="runaway", timeout=0.3)
        started = time.monotonic()
        with pytest.raises(WorkerTimeoutError):
            future.result()
        assert time.monotonic() - started < 5.0
        # A well-behaved task under the same timeout still completes.
        assert pool.submit(_sleep_briefly, 0.05, timeout=5.0).result() == 0.05
        assert pool.supervision_stats()["respawns"] >= 1


def test_worker_death_between_tasks_respawns_silently():
    """An idle worker death loses no task: the next submission respawns."""
    import signal

    with PersistentPool(workers=2) as pool:
        pid, _count = pool.submit(_count_calls, None, affinity="idle-death").result()
        os.kill(pid, signal.SIGKILL)
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if not any(
                row["pid"] == pid and row["alive"] for row in pool.worker_health()
            ):
                break
            time.sleep(0.02)
        new_pid, _count = pool.submit(_count_calls, None, affinity="idle-death").result()
        assert new_pid != pid
        # No in-flight task was lost, so this is a respawn but not a crash.
        assert pool.supervision_stats()["respawns"] >= 1


def test_explicit_worker_index_overrides_affinity_routing():
    with PersistentPool(workers=3) as pool:
        base = pool.route_index("key-y")
        override = (base + 1) % 3
        routed_pid, _ = pool.submit(_count_calls, None, affinity="key-y").result()
        overridden_pid, _ = pool.submit(
            _count_calls, None, affinity="key-y", worker=override
        ).result()
    assert routed_pid != overridden_pid


def test_worker_health_reports_serial_and_unstarted_pools():
    serial = PersistentPool(workers=1)
    [row] = serial.worker_health()
    assert row["alive"] and row["pid"] == os.getpid()
    serial.close()
    assert not serial.worker_health()[0]["alive"]

    lazy = PersistentPool(workers=2)
    assert all(row["pid"] is None for row in lazy.worker_health())
    lazy.close()


def test_idle_workers_tracks_queued_and_running_tasks(tmp_path):
    """A task counts against its worker from submit until resolution.

    The serving layer's idle-pool fan-out policy keys off this count, so it
    must be exact: a serial pool exposes its one in-process pseudo-worker,
    an unstarted parallel pool is fully idle, a busy slot drops out of the
    count while its task runs, and a closed pool reports zero.
    """
    serial = PersistentPool(workers=1)
    assert serial.idle_workers() == 1
    serial.close()
    assert serial.idle_workers() == 0

    pool = PersistentPool(workers=2)
    with pool:
        assert pool.idle_workers() == 2  # unstarted, fully idle
        started = tmp_path / "started"
        release = tmp_path / "release"
        future = pool.submit(
            _touch_then_wait_for, (str(started), str(release)), worker=0
        )
        deadline = time.monotonic() + 10
        while not started.exists():
            assert time.monotonic() < deadline, "task never started in the worker"
            time.sleep(0.02)
        assert pool.idle_workers() == 1
        release.write_text("go")
        assert future.result() == "released"
        # The decrement lands right after the future resolves; poll briefly.
        deadline = time.monotonic() + 10
        while pool.idle_workers() != 2:
            assert time.monotonic() < deadline, "slot never returned to idle"
            time.sleep(0.02)
    assert pool.idle_workers() == 0


def test_resolve_workers_warns_on_non_positive(monkeypatch):
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    with pytest.warns(RuntimeWarning, match="not positive"):
        assert resolve_workers(0) == 1
    with pytest.warns(RuntimeWarning, match="not positive"):
        assert resolve_workers(-4) == 1
    monkeypatch.setenv("REPRO_WORKERS", "0")
    with pytest.warns(RuntimeWarning, match="REPRO_WORKERS"):
        assert resolve_workers(None) == 1
    # Positive values stay silent.
    assert resolve_workers(2) == 2


def test_workers_env_does_not_change_results(monkeypatch, tiny_accelerator, linear_cnn, fast_config):
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    serial = run_dse(
        linear_cnn,
        tiny_accelerator,
        dram_bandwidths_gb_s=[8.0],
        buffer_sizes_mb=[1.0],
        config=fast_config,
        seed=3,
    )
    monkeypatch.setenv("REPRO_WORKERS", "2")
    fanned = run_dse(
        linear_cnn,
        tiny_accelerator,
        dram_bandwidths_gb_s=[8.0],
        buffer_sizes_mb=[1.0],
        config=fast_config,
        seed=3,
    )
    assert serial.cells == fanned.cells
