"""Tests for LFA parsing: tile sequences, DRAM tensors and buffer lifetimes."""

import pytest

from repro.notation.dram_tensor import TensorKind
from repro.notation.lfa import LFA
from repro.notation.parser import parse_lfa
from repro.workloads.builder import GraphBuilder


def _chain(depth=3, size=16, batch=1):
    builder = GraphBuilder("chain", batch=batch)
    previous = builder.conv("conv0", [], 8, kernel=3, input_shape=(3, size, size))
    for index in range(1, depth):
        previous = builder.conv(f"conv{index}", [previous], 8, kernel=3)
    return builder.build()


def _weights(plan):
    return plan.tensors_by_kind(TensorKind.WEIGHT)


def _ifmaps(plan):
    return plan.tensors_by_kind(TensorKind.IFMAP)


def _ofmaps(plan):
    return plan.tensors_by_kind(TensorKind.OFMAP)


# ----------------------------------------------------------- basic structure
def test_unfused_plan_has_one_lg_per_layer(linear_cnn):
    plan = parse_lfa(linear_cnn, LFA.unfused(linear_cnn))
    assert plan.feasible
    assert plan.num_lgs == len(linear_cnn)
    assert plan.num_flgs == len(linear_cnn)
    assert plan.num_tiles == len(linear_cnn)


def test_fully_fused_plan_has_single_lg(linear_cnn):
    plan = parse_lfa(linear_cnn, LFA.fully_fused(linear_cnn))
    assert plan.num_lgs == 1
    assert plan.num_flgs == 1


def test_tile_sequence_interleaves_layers_within_flg():
    graph = _chain(depth=3, size=32)
    plan = parse_lfa(graph, LFA.fully_fused(graph, tiling_number=2))
    sequence = [(tile.layer, tile.tile_id) for tile in plan.tiles]
    assert sequence == [
        ("conv0", 0),
        ("conv1", 0),
        ("conv2", 0),
        ("conv0", 1),
        ("conv1", 1),
        ("conv2", 1),
    ]


def test_tile_indices_are_consecutive(linear_cnn):
    plan = parse_lfa(linear_cnn, LFA.unfused(linear_cnn, tiling_number=2))
    assert [tile.index for tile in plan.tiles] == list(range(plan.num_tiles))


# ------------------------------------------------------------- DRAM tensors
def test_every_weighted_layer_has_exactly_one_weight_tensor(linear_cnn):
    plan = parse_lfa(linear_cnn, LFA.unfused(linear_cnn))
    weighted = [
        name for name in linear_cnn.layer_names() if linear_cnn.layer(name).weight_bytes > 0
    ]
    weights = _weights(plan)
    assert sorted(t.layer for t in weights) == sorted(weighted)
    for tensor in weights:
        assert tensor.num_bytes == linear_cnn.layer(tensor.layer).weight_bytes


def test_unfused_plan_round_trips_every_intermediate_fmap(linear_cnn):
    plan = parse_lfa(linear_cnn, LFA.unfused(linear_cnn))
    # Every layer stores its ofmap; every non-input layer loads its ifmap back.
    assert {t.layer for t in _ofmaps(plan)} == set(linear_cnn.layer_names())
    loaders = {t.layer for t in _ifmaps(plan)}
    assert loaders == set(linear_cnn.layer_names())


def test_fully_fused_plan_only_touches_network_boundary(linear_cnn):
    plan = parse_lfa(linear_cnn, LFA.fully_fused(linear_cnn))
    assert {t.layer for t in _ifmaps(plan)} == set(linear_cnn.input_layers())
    assert {t.layer for t in _ofmaps(plan)} == set(linear_cnn.output_layers())
    assert len(_weights(plan)) == len(
        [n for n in linear_cnn.layer_names() if linear_cnn.layer(n).weight_bytes > 0]
    )


def test_fused_plan_moves_less_dram_traffic_than_unfused(linear_cnn):
    unfused = parse_lfa(linear_cnn, LFA.unfused(linear_cnn))
    fused = parse_lfa(linear_cnn, LFA.fully_fused(linear_cnn))
    assert fused.total_dram_bytes < unfused.total_dram_bytes
    # Weights are incompressible: both plans carry them in full.
    assert sum(t.num_bytes for t in _weights(fused)) == sum(
        t.num_bytes for t in _weights(unfused)
    )


def test_cross_lg_load_records_source_layer(linear_cnn):
    plan = parse_lfa(linear_cnn, LFA.unfused(linear_cnn))
    for tensor in _ifmaps(plan):
        if tensor.layer in linear_cnn.input_layers():
            assert tensor.source_layer is None
        else:
            assert tensor.source_layer in linear_cnn.predecessors(tensor.layer)


def test_store_bytes_sum_to_fair_share_of_ofmap():
    graph = _chain(depth=2, size=16)
    order = tuple(graph.topological_order())
    lfa = LFA(
        computing_order=order,
        flc_set=frozenset({1}),
        dram_cut_set=frozenset({1}),
        tiling_numbers={0: 4, 1: 4},
    )
    plan = parse_lfa(graph, lfa)
    conv0_stores = [t for t in _ofmaps(plan) if t.layer == "conv0"]
    total = sum(t.num_bytes for t in conv0_stores)
    assert total == pytest.approx(graph.layer("conv0").ofmap_bytes, rel=0.05)


def test_canonical_tensor_ids_are_dense_and_sorted(linear_cnn):
    plan = parse_lfa(linear_cnn, LFA.unfused(linear_cnn, tiling_number=2))
    tids = [t.tid for t in plan.dram_tensors]
    assert tids == list(range(len(tids)))
    anchors = [t.first_use for t in plan.dram_tensors]
    assert anchors == sorted(anchors)


def test_tile_required_loads_reference_first_use(linear_cnn):
    plan = parse_lfa(linear_cnn, LFA.unfused(linear_cnn))
    for tile_index, tids in enumerate(plan.tile_required_loads):
        for tid in tids:
            assert plan.tensor(tid).first_use == tile_index
            assert plan.tensor(tid).is_load


def test_weight_tensor_spans_all_tiles_of_its_layer():
    graph = _chain(depth=2, size=32)
    plan = parse_lfa(graph, LFA.fully_fused(graph, tiling_number=4))
    weight = next(t for t in _weights(plan) if t.layer == "conv1")
    layer_tiles = [t.index for t in plan.tiles_of_layer("conv1")]
    assert weight.first_use == layer_tiles[0]
    assert weight.last_use == layer_tiles[-1]


# -------------------------------------------------------- untiled dependencies
def test_untiled_dependency_within_tiled_flg_is_infeasible(tiny_gpt_prefill):
    lfa = LFA.fully_fused(tiny_gpt_prefill, tiling_number=4)
    plan = parse_lfa(tiny_gpt_prefill, lfa)
    assert not plan.feasible
    assert "untiled dependency" in plan.infeasibility_reason


def test_untiled_dependency_with_tiling_one_is_feasible(tiny_gpt_prefill):
    plan = parse_lfa(tiny_gpt_prefill, LFA.fully_fused(tiny_gpt_prefill, tiling_number=1))
    assert plan.feasible


def test_untiled_cross_lg_dependency_becomes_single_layer_load(tiny_gpt_prefill):
    # Cut right before the first attention score layer so its K operand
    # crosses the DRAM cut as one whole-layer load.
    order = tuple(tiny_gpt_prefill.topological_order())
    score_position = order.index("block1_attn_score")
    cuts = frozenset({score_position})
    lfa = LFA(
        computing_order=order,
        flc_set=cuts,
        dram_cut_set=cuts,
        tiling_numbers={0: 1, score_position: 1},
    )
    plan = parse_lfa(tiny_gpt_prefill, lfa)
    assert plan.feasible
    k_loads = [
        t for t in _ifmaps(plan) if t.layer == "block1_attn_score" and t.source_layer == "block1_k_proj"
    ]
    assert len(k_loads) == 1
    assert k_loads[0].tile_id is None
    assert k_loads[0].num_bytes == tiny_gpt_prefill.layer("block1_k_proj").ofmap_bytes


# ----------------------------------------------------------- buffer lifetimes
def test_onchip_intervals_only_for_intra_lg_dependencies(linear_cnn):
    unfused = parse_lfa(linear_cnn, LFA.unfused(linear_cnn))
    fused = parse_lfa(linear_cnn, LFA.fully_fused(linear_cnn))
    assert unfused.onchip_intervals == []
    assert len(fused.onchip_intervals) >= len(linear_cnn) - 1


def test_onchip_interval_spans_producer_to_consumer():
    graph = _chain(depth=2, size=16)
    plan = parse_lfa(graph, LFA.fully_fused(graph, tiling_number=1))
    interval = next(i for i in plan.onchip_intervals if i.label.startswith("conv0"))
    producer_tile = plan.tiles_of_layer("conv0")[0].index
    consumer_tile = plan.tiles_of_layer("conv1")[0].index
    assert interval.start_tile == producer_tile
    assert interval.end_tile == consumer_tile


def test_cross_flg_dependency_holds_whole_fmap_until_consumer_done():
    graph = _chain(depth=2, size=32)
    order = tuple(graph.topological_order())
    lfa = LFA(
        computing_order=order,
        flc_set=frozenset({1}),
        dram_cut_set=frozenset(),
        tiling_numbers={0: 2, 1: 2},
    )
    plan = parse_lfa(graph, lfa)
    conv0_intervals = [i for i in plan.onchip_intervals if i.label.startswith("conv0")]
    last_consumer_tile = plan.tiles_of_layer("conv1")[-1].index
    assert len(conv0_intervals) == 2
    assert all(i.end_tile == last_consumer_tile for i in conv0_intervals)


def test_plan_statistics_and_describe(linear_cnn):
    plan = parse_lfa(linear_cnn, LFA.fully_fused(linear_cnn))
    assert plan.total_ops > 0
    assert plan.total_dram_load_bytes + plan.total_dram_store_bytes == plan.total_dram_bytes
    assert "LGs" in plan.describe()


def test_infeasible_plan_describe(tiny_gpt_prefill):
    plan = parse_lfa(tiny_gpt_prefill, LFA.fully_fused(tiny_gpt_prefill, tiling_number=4))
    assert "infeasible" in plan.describe()


def test_parser_caches_invalidate_on_graph_mutation():
    """parse_lfa (and its caches) must see dependencies added after a parse."""
    from repro.core.lfa_stage import initial_lfa
    from repro.notation.parser import parse_lfa_cached
    from repro.workloads.builder import GraphBuilder

    builder = GraphBuilder("mutating", batch=1)
    a = builder.conv("a", [], 8, kernel=3, input_shape=(3, 8, 8))
    b = builder.conv("b", [a], 8, kernel=1)
    builder.conv("c", [], 8, kernel=3, input_shape=(3, 8, 8))
    graph = builder.build()

    before = parse_lfa(graph, initial_lfa(graph, kc_parallel_lanes=32))
    assert all(t.source_layer != "b" for t in before.dram_tensors)

    graph.add_dependency("b", "c")
    lfa = initial_lfa(graph, kc_parallel_lanes=32)
    for parse in (parse_lfa, parse_lfa_cached):
        after = parse(graph, lfa)
        # c now consumes b's stored ofmap across the LG cut: the parser must
        # emit an ifmap load sourced from b, not treat c as a network input.
        assert any(
            t.layer == "c" and t.source_layer == "b" and t.is_load
            for t in after.dram_tensors
        )
