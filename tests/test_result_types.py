"""Focused tests for the result dataclasses and report helpers."""

import math

import pytest

from repro.core.result import EvaluationResult, SoMaResult, StageResult, TileRecord, TransferRecord
from repro.hardware.accelerator import edge_accelerator
from repro.notation.dlsa import DLSA
from repro.notation.encoding import ScheduleEncoding
from repro.notation.lfa import LFA
from repro.notation.parser import parse_lfa


def _feasible_result(latency=1e-3, energy=2e-3, **overrides) -> EvaluationResult:
    fields = dict(
        feasible=True,
        latency_s=latency,
        energy_j=energy,
        core_energy_j=energy * 0.6,
        dram_energy_j=energy * 0.4,
        compute_time_sum_s=latency * 0.7,
        dram_time_sum_s=latency * 0.9,
        total_ops=int(1e9),
        total_dram_bytes=int(1e7),
        max_buffer_bytes=1 << 20,
        avg_buffer_bytes=1 << 19,
        num_tiles=10,
        num_dram_tensors=12,
        num_lgs=2,
        num_flgs=3,
    )
    fields.update(overrides)
    return EvaluationResult(**fields)


def test_infeasible_default_is_infinite():
    result = EvaluationResult(feasible=False, reason="why not")
    assert math.isinf(result.latency_s)
    assert math.isinf(result.objective())
    assert result.describe().startswith("infeasible")
    assert result.theoretical_max_utilization(edge_accelerator()) == 0.0
    assert result.buffer_utilization(edge_accelerator()) == 0.0


def test_feasible_describe_contains_numbers():
    text = _feasible_result().describe()
    assert "latency=" in text and "energy=" in text and "peak_buffer=" in text


def test_utilization_capped_and_positive():
    accelerator = edge_accelerator()
    result = _feasible_result()
    assert 0 < result.compute_utilization(accelerator) <= 1.0
    assert 0 < result.dram_utilization() <= 1.0
    assert 0 < result.buffer_utilization(accelerator)


def test_theoretical_bound_uses_slower_engine():
    accelerator = edge_accelerator()
    compute_bound = _feasible_result(compute_time_sum_s=9e-4, dram_time_sum_s=1e-4)
    dram_bound = _feasible_result(compute_time_sum_s=1e-4, dram_time_sum_s=9e-4)
    assert compute_bound.theoretical_max_utilization(accelerator) == pytest.approx(
        dram_bound.theoretical_max_utilization(accelerator)
    )


def test_records_are_plain_value_objects():
    tile = TileRecord(index=3, start_s=0.1, finish_s=0.2)
    transfer = TransferRecord(tid=5, start_s=0.0, finish_s=0.3)
    assert tile.finish_s > tile.start_s
    assert transfer.tid == 5


def _stage_result(graph, latency, cost):
    lfa = LFA.fully_fused(graph)
    plan = parse_lfa(graph, lfa)
    dlsa = DLSA.from_defaults(plan.dram_tensors)
    return StageResult(
        encoding=ScheduleEncoding(lfa=lfa, dlsa=dlsa),
        evaluation=_feasible_result(latency=latency),
        cost=cost,
        iterations=10,
        accepted_moves=5,
    )


def test_soma_result_best_prefers_stage2(linear_cnn):
    stage1 = _stage_result(linear_cnn, latency=2e-3, cost=2.0)
    stage2 = _stage_result(linear_cnn, latency=1e-3, cost=1.0)
    plan = parse_lfa(linear_cnn, stage2.encoding.lfa)
    result = SoMaResult(
        workload_name=linear_cnn.name,
        accelerator_name="edge",
        stage1=stage1,
        stage2=stage2,
        allocator_iterations=1,
        stage1_buffer_budget_bytes=1 << 20,
        plan=plan,
        dlsa=stage2.encoding.dlsa,
    )
    assert result.best is stage2
    assert result.evaluation.latency_s == pytest.approx(1e-3)
    assert result.speedup_over(2e-3) == pytest.approx(2.0)


def test_soma_result_falls_back_to_stage1_when_stage2_worse(linear_cnn):
    stage1 = _stage_result(linear_cnn, latency=1e-3, cost=1.0)
    stage2 = _stage_result(linear_cnn, latency=2e-3, cost=2.0)
    plan = parse_lfa(linear_cnn, stage1.encoding.lfa)
    result = SoMaResult(
        workload_name=linear_cnn.name,
        accelerator_name="edge",
        stage1=stage1,
        stage2=stage2,
        allocator_iterations=1,
        stage1_buffer_budget_bytes=1 << 20,
        plan=plan,
        dlsa=stage1.encoding.dlsa,
    )
    assert result.best is stage1


def test_stage_result_feasibility_passthrough(linear_cnn):
    stage = _stage_result(linear_cnn, latency=1e-3, cost=1.0)
    assert stage.feasible
