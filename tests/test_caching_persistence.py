"""LRU spill/reload: atomic JSON persistence with a staleness stamp.

The contract: a reload after a spill reproduces both the contents and the
recency (eviction) order of the original cache, and any file that cannot be
trusted — corrupt, truncated, or stamped under a different format version or
key schema — is ignored loudly rather than partially loaded.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core.caching import (
    LRU_SPILL_VERSION,
    LRUCache,
    SCHEDULE_KEY_SCHEMA,
    reload_lru,
    spill_lru,
)

SCHEMA = "test-schema:v1"


def _filled(entries) -> LRUCache:
    cache = LRUCache(16)
    for key, value in entries:
        cache.put(key, value)
    return cache


def test_spill_reload_round_trip_preserves_order(tmp_path):
    path = tmp_path / "memo.json"
    cache = _filled([("a", {"x": 1}), ("b", {"x": 2}), ("c", {"x": 3})])
    cache.get("a")  # refresh: eviction order becomes b, c, a
    spill_lru(cache, path, SCHEMA)

    restored = LRUCache(16)
    assert reload_lru(restored, path, SCHEMA) == 3
    assert restored.items() == cache.items()
    # Overflowing by one must evict "b" (the least recent) in both caches.
    restored.put("d", {"x": 4})
    restored.maxsize = 3
    restored.put("e", {"x": 5})
    assert "b" not in restored


def test_reload_into_smaller_cache_keeps_most_recent_entries(tmp_path):
    path = tmp_path / "memo.json"
    spill_lru(_filled([(f"k{i}", i) for i in range(6)]), path, SCHEMA)
    small = LRUCache(2)
    assert reload_lru(small, path, SCHEMA) == 6
    assert small.items() == [("k4", 4), ("k5", 5)]


def test_reload_missing_file_is_silent_noop(tmp_path):
    cache = LRUCache(4)
    assert reload_lru(cache, tmp_path / "absent.json", SCHEMA) == 0
    assert len(cache) == 0


@pytest.mark.parametrize(
    "document",
    [
        {"format": "repro-lru-spill", "version": LRU_SPILL_VERSION + 1, "key_schema": SCHEMA, "entries": []},
        {"format": "repro-lru-spill", "version": LRU_SPILL_VERSION, "key_schema": "other", "entries": [["k", 1]]},
        {"format": "something-else", "version": LRU_SPILL_VERSION, "key_schema": SCHEMA, "entries": []},
        {"entries": [["k", 1]]},
        [],
    ],
)
def test_reload_rejects_stale_or_mismatched_stamps(tmp_path, document):
    path = tmp_path / "memo.json"
    path.write_text(json.dumps(document))
    cache = LRUCache(4)
    with pytest.warns(RuntimeWarning, match="stale"):
        assert reload_lru(cache, path, SCHEMA) == 0
    assert len(cache) == 0  # never partially loaded


def test_reload_rejects_corrupt_json_and_bad_entries(tmp_path):
    corrupt = tmp_path / "corrupt.json"
    corrupt.write_text("{ definitely not json")
    with pytest.warns(RuntimeWarning, match="unreadable"):
        assert reload_lru(LRUCache(4), corrupt, SCHEMA) == 0

    bad_entries = tmp_path / "bad.json"
    bad_entries.write_text(
        json.dumps(
            {
                "format": "repro-lru-spill",
                "version": LRU_SPILL_VERSION,
                "key_schema": SCHEMA,
                "entries": [["only-a-key"]],
            }
        )
    )
    with pytest.warns(RuntimeWarning, match="malformed"):
        assert reload_lru(LRUCache(4), bad_entries, SCHEMA) == 0


def test_spill_is_atomic_no_temp_file_left_behind(tmp_path):
    path = tmp_path / "nested" / "memo.json"
    spill_lru(_filled([("a", 1)]), path, SCHEMA)
    assert path.exists()  # parent directory created on demand
    spill_lru(_filled([("b", 2)]), path, SCHEMA)  # overwrite in place
    assert reload_lru(LRUCache(4), path, SCHEMA) == 1
    leftovers = [name for name in os.listdir(path.parent) if name != "memo.json"]
    assert leftovers == []


def test_schedule_key_schema_is_stamped_into_service_spills(tmp_path):
    """The serving memo must be spilled under the published key schema."""
    path = tmp_path / "memo.json"
    spill_lru(_filled([("deadbeef", {"ok": True})]), path, SCHEDULE_KEY_SCHEMA)
    document = json.loads(path.read_text())
    assert document["key_schema"] == SCHEDULE_KEY_SCHEMA
    assert document["version"] == LRU_SPILL_VERSION
