"""Tests for the schedule evaluator (timing, energy, buffer accounting)."""

import math

import pytest

from repro.core.double_buffer import double_buffer_dlsa
from repro.core.evaluator import ScheduleEvaluator
from repro.notation.dlsa import DLSA
from repro.notation.lfa import LFA
from repro.notation.parser import parse_lfa


def _evaluate(graph, accelerator, lfa=None, dlsa=None, **kwargs):
    evaluator = ScheduleEvaluator(accelerator)
    plan = parse_lfa(graph, lfa if lfa is not None else LFA.fully_fused(graph))
    if dlsa is None:
        dlsa = double_buffer_dlsa(plan)
    return plan, dlsa, evaluator.evaluate(plan, dlsa, **kwargs)


# ----------------------------------------------------------------- basic laws
def test_latency_at_least_each_engine_sum(linear_cnn, tiny_accelerator):
    _, _, result = _evaluate(linear_cnn, tiny_accelerator)
    assert result.feasible
    assert result.latency_s >= result.compute_time_sum_s - 1e-12
    assert result.latency_s >= result.dram_time_sum_s - 1e-12


def test_latency_at_most_fully_serialised(linear_cnn, tiny_accelerator):
    _, _, result = _evaluate(linear_cnn, tiny_accelerator)
    assert result.latency_s <= result.compute_time_sum_s + result.dram_time_sum_s + 1e-12


def test_energy_is_core_plus_dram(linear_cnn, tiny_accelerator):
    _, _, result = _evaluate(linear_cnn, tiny_accelerator)
    assert result.energy_j == pytest.approx(result.core_energy_j + result.dram_energy_j)


def test_dram_energy_proportional_to_traffic(linear_cnn, tiny_accelerator):
    plan, _, result = _evaluate(linear_cnn, tiny_accelerator)
    expected = tiny_accelerator.energy.dram_energy_j(plan.total_dram_bytes)
    assert result.dram_energy_j == pytest.approx(expected)


def test_fused_scheme_beats_unfused_on_dram_energy(linear_cnn, tiny_accelerator):
    _, _, unfused = _evaluate(linear_cnn, tiny_accelerator, lfa=LFA.unfused(linear_cnn))
    _, _, fused = _evaluate(linear_cnn, tiny_accelerator, lfa=LFA.fully_fused(linear_cnn))
    assert fused.dram_energy_j < unfused.dram_energy_j
    assert fused.latency_s <= unfused.latency_s * 1.05


def test_evaluation_is_deterministic(linear_cnn, tiny_accelerator):
    _, _, first = _evaluate(linear_cnn, tiny_accelerator)
    _, _, second = _evaluate(linear_cnn, tiny_accelerator)
    assert first.latency_s == second.latency_s
    assert first.energy_j == second.energy_j


def test_energy_does_not_depend_on_dlsa(linear_cnn, tiny_accelerator):
    plan = parse_lfa(linear_cnn, LFA.fully_fused(linear_cnn, tiling_number=2))
    evaluator = ScheduleEvaluator(tiny_accelerator)
    base = double_buffer_dlsa(plan)
    eager_living = {
        tid: ((0, end) if plan.tensor(tid).is_load else (start, end))
        for tid, (start, end) in base.living.items()
    }
    eager = DLSA(order=base.order, living=eager_living)
    result_base = evaluator.evaluate(plan, base)
    result_eager = evaluator.evaluate(plan, eager)
    assert result_base.energy_j == pytest.approx(result_eager.energy_j)


# -------------------------------------------------------------------- metrics
def test_utilization_below_theoretical_maximum(linear_cnn, tiny_accelerator):
    _, _, result = _evaluate(linear_cnn, tiny_accelerator)
    util = result.compute_utilization(tiny_accelerator)
    bound = result.theoretical_max_utilization(tiny_accelerator)
    assert 0 < util <= bound <= 1.0


def test_dram_utilization_in_unit_range(linear_cnn, tiny_accelerator):
    _, _, result = _evaluate(linear_cnn, tiny_accelerator)
    assert 0 < result.dram_utilization() <= 1.0


def test_objective_matches_energy_delay_product(linear_cnn, tiny_accelerator):
    _, _, result = _evaluate(linear_cnn, tiny_accelerator)
    assert result.objective() == pytest.approx(result.energy_j * result.latency_s)
    assert result.objective(2.0, 1.0) == pytest.approx(result.energy_j**2 * result.latency_s)


def test_infeasible_result_has_infinite_objective(tiny_gpt_prefill, tiny_accelerator):
    plan = parse_lfa(tiny_gpt_prefill, LFA.fully_fused(tiny_gpt_prefill, tiling_number=4))
    evaluator = ScheduleEvaluator(tiny_accelerator)
    result = evaluator.evaluate(plan, DLSA(order=(), living={}))
    assert not result.feasible
    assert math.isinf(result.objective())
    assert result.compute_utilization(tiny_accelerator) == 0.0


# ------------------------------------------------------------ buffer handling
def test_buffer_budget_violation_reported(linear_cnn, tiny_accelerator):
    _, _, result = _evaluate(linear_cnn, tiny_accelerator, buffer_budget_bytes=1024)
    assert not result.feasible
    assert "exceeds budget" in result.reason
    assert math.isfinite(result.latency_s)
    assert result.max_buffer_bytes > 1024


def test_generous_budget_is_feasible(linear_cnn, tiny_accelerator):
    _, _, result = _evaluate(
        linear_cnn, tiny_accelerator, buffer_budget_bytes=tiny_accelerator.gbuf_bytes * 100
    )
    assert result.feasible


def test_max_buffer_at_least_largest_single_item(linear_cnn, tiny_accelerator):
    plan, _, result = _evaluate(linear_cnn, tiny_accelerator)
    largest_tensor = max(t.num_bytes for t in plan.dram_tensors)
    assert result.max_buffer_bytes >= largest_tensor
    assert result.avg_buffer_bytes <= result.max_buffer_bytes


def test_finer_tiling_lowers_peak_buffer(tiny_accelerator):
    from repro.workloads.builder import GraphBuilder

    builder = GraphBuilder("wide", batch=1)
    a = builder.conv("a", [], 32, kernel=3, input_shape=(16, 64, 64))
    builder.conv("b", [a], 32, kernel=3)
    graph = builder.build()
    evaluator = ScheduleEvaluator(tiny_accelerator)
    coarse = parse_lfa(graph, LFA.fully_fused(graph, tiling_number=1))
    fine = parse_lfa(graph, LFA.fully_fused(graph, tiling_number=8))
    coarse_result = evaluator.evaluate(coarse, double_buffer_dlsa(coarse))
    fine_result = evaluator.evaluate(fine, double_buffer_dlsa(fine))
    assert fine_result.max_buffer_bytes < coarse_result.max_buffer_bytes


# --------------------------------------------------------- DLSA interactions
def test_prefetching_weights_earlier_never_hurts_latency(linear_cnn, tiny_accelerator):
    plan = parse_lfa(linear_cnn, LFA.unfused(linear_cnn))
    evaluator = ScheduleEvaluator(tiny_accelerator)
    base = double_buffer_dlsa(plan)
    eager_living = dict(base.living)
    for tensor in plan.dram_tensors:
        if tensor.is_load:
            eager_living[tensor.tid] = (0, tensor.default_end)
    eager = DLSA(order=base.order, living=eager_living)
    base_result = evaluator.evaluate(plan, base)
    eager_result = evaluator.evaluate(plan, eager)
    assert eager_result.latency_s <= base_result.latency_s + 1e-12
    # ... but it costs buffer capacity: everything is resident from tile 0.
    assert eager_result.max_buffer_bytes >= base_result.max_buffer_bytes


def test_relaxing_store_deadline_never_hurts_latency(linear_cnn, tiny_accelerator):
    plan = parse_lfa(linear_cnn, LFA.unfused(linear_cnn))
    evaluator = ScheduleEvaluator(tiny_accelerator)
    base = double_buffer_dlsa(plan)
    relaxed_living = dict(base.living)
    for tensor in plan.dram_tensors:
        if tensor.is_store:
            relaxed_living[tensor.tid] = (tensor.produce_tile, plan.num_tiles)
    relaxed = DLSA(order=base.order, living=relaxed_living)
    assert (
        evaluator.evaluate(plan, relaxed).latency_s
        <= evaluator.evaluate(plan, base).latency_s + 1e-12
    )


def test_load_ordered_before_its_source_store_deadlocks(linear_cnn, tiny_accelerator):
    plan = parse_lfa(linear_cnn, LFA.unfused(linear_cnn))
    evaluator = ScheduleEvaluator(tiny_accelerator)
    base = double_buffer_dlsa(plan)
    dependent_load = next(t for t in plan.dram_tensors if t.source_layer is not None)
    blocking_store = next(
        t for t in plan.dram_tensors if t.is_store and t.layer == dependent_load.source_layer
    )
    order = list(base.order)
    order.remove(dependent_load.tid)
    order.insert(order.index(blocking_store.tid), dependent_load.tid)
    broken = DLSA(order=tuple(order), living=dict(base.living))
    result = evaluator.evaluate(plan, broken)
    assert not result.feasible
    assert "deadlock" in result.reason


def test_store_deadline_blocks_following_tile(tiny_accelerator, linear_cnn):
    plan = parse_lfa(linear_cnn, LFA.unfused(linear_cnn))
    evaluator = ScheduleEvaluator(tiny_accelerator)
    base = double_buffer_dlsa(plan)
    result = evaluator.evaluate(plan, base, include_trace=True)
    # With the double-buffer policy every store must finish before the next
    # tile; therefore each tile's start is >= every earlier-deadline store end.
    store_end = {}
    for record in result.transfer_records:
        tensor = plan.tensor(record.tid)
        if tensor.is_store:
            store_end[base.end(tensor.tid)] = max(
                store_end.get(base.end(tensor.tid), 0.0), record.finish_s
            )
    tile_start = {r.index: r.start_s for r in result.tile_records}
    for deadline_tile, finish in store_end.items():
        if deadline_tile < plan.num_tiles:
            assert tile_start[deadline_tile] >= finish - 1e-12


# ----------------------------------------------------------------- trace data
def test_trace_records_cover_all_items(linear_cnn, tiny_accelerator):
    plan, _, result = _evaluate(linear_cnn, tiny_accelerator, include_trace=True)
    assert len(result.tile_records) == plan.num_tiles
    assert len(result.transfer_records) == plan.num_dram_tensors


def test_trace_engines_are_serialised(linear_cnn, tiny_accelerator):
    plan, dlsa, result = _evaluate(linear_cnn, tiny_accelerator, include_trace=True)
    compute_finish = 0.0
    for record in sorted(result.tile_records, key=lambda r: r.index):
        assert record.start_s >= compute_finish - 1e-12
        compute_finish = record.finish_s
    order_position = {tid: i for i, tid in enumerate(dlsa.order)}
    dram_finish = 0.0
    for record in sorted(result.transfer_records, key=lambda r: order_position[r.tid]):
        assert record.start_s >= dram_finish - 1e-12
        dram_finish = record.finish_s


def test_trace_disabled_by_default(linear_cnn, tiny_accelerator):
    _, _, result = _evaluate(linear_cnn, tiny_accelerator)
    assert result.tile_records == ()
    assert result.transfer_records == ()
