"""Tests for the LFA exploration stage and its operators."""

import math
import random

import pytest

from repro.core.config import SoMaConfig
from repro.core.evaluator import ScheduleEvaluator
from repro.core.lfa_stage import (
    LFA_OPERATORS,
    LFAStage,
    initial_lfa,
    op_add_dram_cut,
    op_add_flc,
    op_change_computing_order,
    op_change_tiling_number,
    op_delete_dram_cut,
    op_delete_flc,
)
from repro.notation.lfa import LFA
from repro.notation.parser import parse_lfa


def test_initial_lfa_is_unfused_and_valid(linear_cnn):
    lfa = initial_lfa(linear_cnn, kc_parallel_lanes=32)
    lfa.validate(linear_cnn)
    assert len(lfa.flg_ranges()) == len(linear_cnn)
    assert lfa.dram_cut_set == lfa.flc_set


def test_initial_lfa_uses_parallelism_tilings(linear_cnn):
    lfa = initial_lfa(linear_cnn, kc_parallel_lanes=32)
    assert all(t >= 1 for t in lfa.tiling_numbers.values())


@pytest.mark.parametrize("operator", LFA_OPERATORS)
def test_operators_produce_valid_encodings(branchy_cnn, operator):
    rng = random.Random(0)
    lfa = initial_lfa(branchy_cnn, kc_parallel_lanes=32)
    produced_any = False
    for _ in range(30):
        move = operator(lfa, branchy_cnn, rng)
        if move is None:
            continue
        produced_any = True
        candidate = move.lfa
        candidate.validate(branchy_cnn)
        plan = parse_lfa(branchy_cnn, candidate)
        assert plan is not None
        # The delta names the new LFA's parent and covers every new LG.
        assert move.delta.parent is lfa
        assert len(move.delta.segment_map) == len(candidate.lg_ranges())
    # From the fully-unfused initial solution the "add" operators have nothing
    # to add (every position is already an FLC / DRAM cut).
    assert produced_any or operator in (op_add_flc, op_delete_flc, op_add_dram_cut)


def test_change_order_preserves_dependencies(branchy_cnn):
    rng = random.Random(1)
    lfa = initial_lfa(branchy_cnn, kc_parallel_lanes=32)
    for _ in range(50):
        move = op_change_computing_order(lfa, branchy_cnn, rng)
        if move is not None:
            assert branchy_cnn.is_valid_order(move.lfa.computing_order)
            lfa = move.lfa


def test_change_tiling_number_multiplies_or_halves(linear_cnn):
    rng = random.Random(2)
    lfa = LFA.fully_fused(linear_cnn, tiling_number=4)
    seen = set()
    for _ in range(40):
        move = op_change_tiling_number(lfa, linear_cnn, rng)
        if move is not None:
            seen.add(move.lfa.tiling_numbers[0])
    assert seen <= {2, 8}
    assert seen


def test_add_then_delete_flc_round_trip(linear_cnn):
    rng = random.Random(3)
    lfa = LFA.fully_fused(linear_cnn, tiling_number=2)
    added_move = op_add_flc(lfa, linear_cnn, rng)
    assert added_move is not None
    added = added_move.lfa
    assert len(added.flc_set) == 1
    new_cut = next(iter(added.flc_set))
    assert added.tiling_numbers[new_cut] == 2  # split inherits the tiling number
    removed_move = op_delete_flc(added, linear_cnn, rng)
    assert removed_move is not None
    removed = removed_move.lfa
    assert removed.flc_set == frozenset()
    removed.validate(linear_cnn)


def test_delete_flc_never_removes_a_dram_cut(linear_cnn):
    rng = random.Random(4)
    order = tuple(linear_cnn.topological_order())
    lfa = LFA(
        computing_order=order,
        flc_set=frozenset({2}),
        dram_cut_set=frozenset({2}),
        tiling_numbers={0: 1, 2: 1},
    )
    assert op_delete_flc(lfa, linear_cnn, rng) is None


def test_add_dram_cut_requires_existing_flc(linear_cnn):
    rng = random.Random(5)
    lfa = LFA.fully_fused(linear_cnn)
    assert op_add_dram_cut(lfa, linear_cnn, rng) is None
    with_flc = op_add_flc(lfa, linear_cnn, rng).lfa
    promoted_move = op_add_dram_cut(with_flc, linear_cnn, rng)
    assert promoted_move is not None
    promoted = promoted_move.lfa
    assert promoted.dram_cut_set <= promoted.flc_set


def test_delete_dram_cut_keeps_flc(linear_cnn):
    rng = random.Random(6)
    lfa = initial_lfa(linear_cnn, kc_parallel_lanes=32)
    demoted_move = op_delete_dram_cut(lfa, linear_cnn, rng)
    assert demoted_move is not None
    demoted = demoted_move.lfa
    assert len(demoted.dram_cut_set) == len(lfa.dram_cut_set) - 1
    assert demoted.flc_set == lfa.flc_set


def test_stage_cost_penalises_buffer_overflow(linear_cnn, tiny_accelerator, fast_config):
    evaluator = ScheduleEvaluator(tiny_accelerator)
    stage = LFAStage(linear_cnn, evaluator, fast_config)
    lfa = LFA.fully_fused(linear_cnn, tiling_number=1)
    generous = stage.cost(lfa, tiny_accelerator.gbuf_bytes * 1000)
    tight = stage.cost(lfa, 1024)
    assert math.isfinite(generous)
    assert tight > generous


def test_stage_explore_improves_over_initial_solution(linear_cnn, tiny_accelerator, fast_config):
    evaluator = ScheduleEvaluator(tiny_accelerator)
    stage = LFAStage(linear_cnn, evaluator, fast_config)
    rng = random.Random(fast_config.seed)
    initial_cost = stage.cost(
        initial_lfa(linear_cnn, tiny_accelerator.core_array.kc_parallel_lanes),
        tiny_accelerator.gbuf_bytes,
    )
    outcome = stage.explore(tiny_accelerator.gbuf_bytes, rng)
    assert outcome.stage_result.cost <= initial_cost
    assert outcome.stage_result.evaluation.feasible
    assert outcome.buffer_peak_bytes > 0


def test_stage_explore_respects_budget_in_reported_peak(branchy_cnn, tiny_accelerator, fast_config):
    evaluator = ScheduleEvaluator(tiny_accelerator)
    stage = LFAStage(branchy_cnn, evaluator, fast_config)
    outcome = stage.explore(tiny_accelerator.gbuf_bytes, random.Random(0))
    assert outcome.buffer_peak_bytes <= tiny_accelerator.gbuf_bytes


def test_stage_is_deterministic_given_seed(linear_cnn, tiny_accelerator, fast_config):
    evaluator = ScheduleEvaluator(tiny_accelerator)
    stage = LFAStage(linear_cnn, evaluator, fast_config)
    first = stage.explore(tiny_accelerator.gbuf_bytes, random.Random(42)).stage_result
    second = stage.explore(tiny_accelerator.gbuf_bytes, random.Random(42)).stage_result
    assert first.cost == second.cost
    assert first.encoding.lfa == second.encoding.lfa


def test_change_order_never_returns_the_same_order(branchy_cnn):
    """The operator's exclusion is exactly the no-op re-insertion position.

    Removing a layer and re-inserting it at its old index reproduces the
    input order; every other dependency-valid position is a real move, so the
    operator must never hand the annealer an unchanged computing order.
    """
    lfa = initial_lfa(branchy_cnn, kc_parallel_lanes=32)
    rng = random.Random(123)
    produced = 0
    for _ in range(200):
        move = op_change_computing_order(lfa, branchy_cnn, rng)
        if move is None:
            continue
        produced += 1
        assert move.lfa.computing_order != lfa.computing_order
        move.lfa.validate(branchy_cnn)
    assert produced > 0


def test_change_order_reaches_every_valid_position(linear_cnn):
    """All dependency-valid destinations stay reachable after the fix.

    In a pure chain no layer can move, so the operator must always decline;
    this guards against an exclusion that is accidentally too wide.
    """
    lfa = initial_lfa(linear_cnn, kc_parallel_lanes=32)
    rng = random.Random(7)
    for _ in range(50):
        assert op_change_computing_order(lfa, linear_cnn, rng) is None
