"""Tests for the DLSA exploration stage and its operators."""

import random

import pytest

from repro.core.config import SoMaConfig
from repro.core.dlsa_stage import (
    DLSAStage,
    op_change_living_duration,
    op_change_tensor_order,
)
from repro.core.double_buffer import double_buffer_dlsa
from repro.core.evaluator import ScheduleEvaluator
from repro.notation.lfa import LFA
from repro.notation.parser import parse_lfa


@pytest.fixture
def fused_plan(linear_cnn):
    return parse_lfa(linear_cnn, LFA.fully_fused(linear_cnn, tiling_number=2))


def test_change_tensor_order_is_a_permutation(fused_plan):
    rng = random.Random(0)
    dlsa = double_buffer_dlsa(fused_plan)
    for _ in range(30):
        candidate = op_change_tensor_order(fused_plan, dlsa, rng)
        if candidate is None:
            continue
        assert sorted(candidate.order) == sorted(dlsa.order)
        assert candidate.living == dlsa.living
        dlsa = candidate


def test_change_living_duration_stays_valid(fused_plan):
    rng = random.Random(1)
    dlsa = double_buffer_dlsa(fused_plan)
    changed = 0
    for _ in range(60):
        candidate = op_change_living_duration(fused_plan, dlsa, rng)
        if candidate is None:
            continue
        candidate.validate(fused_plan.dram_tensors)
        changed += 1
        dlsa = candidate
    assert changed > 0


def test_living_duration_operator_only_moves_free_endpoint(fused_plan):
    rng = random.Random(2)
    base = double_buffer_dlsa(fused_plan)
    for _ in range(60):
        candidate = op_change_living_duration(fused_plan, base, rng)
        if candidate is None:
            continue
        for tensor in fused_plan.dram_tensors:
            start, end = candidate.living[tensor.tid]
            if tensor.is_load:
                assert end == tensor.default_end
                assert start <= tensor.first_use
            else:
                assert start == tensor.produce_tile
                assert end > tensor.produce_tile


def test_stage_explore_never_worse_than_double_buffer(linear_cnn, tiny_accelerator, fast_config):
    evaluator = ScheduleEvaluator(tiny_accelerator)
    stage = DLSAStage(evaluator, fast_config)
    lfa = LFA.fully_fused(linear_cnn, tiling_number=2)
    plan = parse_lfa(linear_cnn, lfa)
    initial = double_buffer_dlsa(plan)
    initial_cost = stage.cost(plan, initial, tiny_accelerator.gbuf_bytes)
    outcome = stage.explore(
        lfa=lfa,
        plan=plan,
        initial_dlsa=initial,
        buffer_budget_bytes=tiny_accelerator.gbuf_bytes,
        rng=random.Random(fast_config.seed),
    )
    assert outcome.stage_result.cost <= initial_cost
    assert outcome.stage_result.evaluation.feasible
    assert outcome.stage_result.encoding.dlsa is not None


def test_stage_keeps_lfa_fixed(linear_cnn, tiny_accelerator, fast_config):
    evaluator = ScheduleEvaluator(tiny_accelerator)
    stage = DLSAStage(evaluator, fast_config)
    lfa = LFA.fully_fused(linear_cnn, tiling_number=2)
    plan = parse_lfa(linear_cnn, lfa)
    outcome = stage.explore(
        lfa=lfa,
        plan=plan,
        initial_dlsa=double_buffer_dlsa(plan),
        buffer_budget_bytes=tiny_accelerator.gbuf_bytes,
        rng=random.Random(3),
    )
    assert outcome.stage_result.encoding.lfa == lfa


def test_stage_is_deterministic_given_seed(linear_cnn, tiny_accelerator, fast_config):
    evaluator = ScheduleEvaluator(tiny_accelerator)
    stage = DLSAStage(evaluator, fast_config)
    lfa = LFA.fully_fused(linear_cnn, tiling_number=2)
    plan = parse_lfa(linear_cnn, lfa)

    def run():
        return stage.explore(
            lfa=lfa,
            plan=plan,
            initial_dlsa=double_buffer_dlsa(plan),
            buffer_budget_bytes=tiny_accelerator.gbuf_bytes,
            rng=random.Random(9),
        ).stage_result

    first, second = run(), run()
    assert first.cost == second.cost
    assert first.encoding.dlsa == second.encoding.dlsa
