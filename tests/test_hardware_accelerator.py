"""Unit tests for the accelerator presets and helpers."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.accelerator import cloud_accelerator, edge_accelerator
from repro.hardware.memory import MB


def test_edge_peak_throughput_is_16_tops():
    assert edge_accelerator().peak_tops == pytest.approx(16.384, rel=0.05)


def test_cloud_peak_throughput_is_128_tops():
    assert cloud_accelerator().peak_tops == pytest.approx(131.072, rel=0.05)


def test_edge_default_memory_matches_paper():
    accelerator = edge_accelerator()
    assert accelerator.gbuf_bytes == 8 * MB
    assert accelerator.dram_bandwidth_bytes_per_s == pytest.approx(16e9)


def test_cloud_default_memory_matches_paper():
    accelerator = cloud_accelerator()
    assert accelerator.gbuf_bytes == 32 * MB
    assert accelerator.dram_bandwidth_bytes_per_s == pytest.approx(128e9)


def test_with_memory_overrides_only_requested_fields():
    accelerator = edge_accelerator()
    modified = accelerator.with_memory(gbuf_bytes=16 * MB)
    assert modified.gbuf_bytes == 16 * MB
    assert modified.dram_bandwidth_bytes_per_s == accelerator.dram_bandwidth_bytes_per_s
    assert accelerator.gbuf_bytes == 8 * MB


def test_with_memory_can_override_bandwidth():
    modified = edge_accelerator().with_memory(dram_bandwidth_bytes_per_s=64e9)
    assert modified.dram_bandwidth_bytes_per_s == pytest.approx(64e9)


def test_cycle_conversion_round_trip():
    accelerator = edge_accelerator()
    assert accelerator.seconds_to_cycles(accelerator.cycles_to_seconds(12345)) == pytest.approx(12345)


def test_invalid_frequency_rejected(tiny_accelerator):
    with pytest.raises(ConfigurationError):
        type(tiny_accelerator)(
            name="bad",
            frequency_hz=0.0,
            core_array=tiny_accelerator.core_array,
            memory=tiny_accelerator.memory,
            energy=tiny_accelerator.energy,
        )


def test_empty_name_rejected(tiny_accelerator):
    with pytest.raises(ConfigurationError):
        type(tiny_accelerator)(
            name="",
            frequency_hz=1e9,
            core_array=tiny_accelerator.core_array,
            memory=tiny_accelerator.memory,
            energy=tiny_accelerator.energy,
        )
