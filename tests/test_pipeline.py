"""Pipelined two-stage search: determinism and equivalence guarantees.

The buffer allocator has two execution modes.  With ``REPRO_STAGE_PIPELINE``
off (the default) it runs the historical serial loop — one shared RNG,
stage 1 then stage 2 per shrink iteration — and must reproduce the seed
trajectories exactly.  With the pipeline on, stage 2 refines each incumbent
while stage 1 keeps exploring the next budget; every (iteration, stage)
task draws from its own seed-derived stream, so the trajectory is a pure
function of ``(graph, config, seed)`` regardless of *where* the tasks run.
These tests pin down the guarantees that make the pipeline safe to ship:

* pipeline off (default) == the plain serial allocator run, bit for bit;
* pipelined in-process == pipelined across pool workers, bit for bit;
* same seed -> same pipelined result (run-to-run determinism);
* the roofline schedule floor used as the branch-and-bound cutoff never
  exceeds the cost of any real feasible schedule;
* pool workers never spawn nested pools.
"""

from __future__ import annotations

import math
import random

import pytest

import repro.core.buffer_allocator as buffer_allocator_module
from repro.core.buffer_allocator import (
    ALLOC_WORKERS_ENV,
    PIPELINE_ENV,
    POOL_WORKER_ENV,
    BufferAllocator,
    alloc_workers,
    stage_pipeline_enabled,
)
from repro.core.double_buffer import double_buffer_dlsa
from repro.core.evaluator import ScheduleEvaluator
from repro.core.lfa_stage import (
    LFA_BATCH_ENV,
    initial_lfa,
    lfa_batch_size,
    speculation_stats,
)
from repro.core.roofline import schedule_floor
from repro.core.soma import SoMaScheduler
from repro.notation.parser import parse_lfa

_SEED = 9


def _encoding_key(encoding):
    dlsa = encoding.dlsa
    return (encoding.lfa.fingerprint(), dlsa.fingerprint() if dlsa is not None else None)


def _trajectory(result):
    """Everything a bit-identity comparison needs from one SoMaResult."""
    return (
        result.history,
        result.allocator_iterations,
        result.stage1_buffer_budget_bytes,
        result.stage1.cost,
        result.stage1.iterations,
        _encoding_key(result.stage1.encoding),
        result.stage2.cost,
        result.stage2.iterations,
        _encoding_key(result.stage2.encoding),
        result.best.cost,
        result.evaluation.latency_s,
        result.evaluation.energy_j,
    )


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    """Every test starts from the default (pipeline off, no workers)."""
    monkeypatch.delenv(PIPELINE_ENV, raising=False)
    monkeypatch.delenv(ALLOC_WORKERS_ENV, raising=False)
    monkeypatch.delenv(POOL_WORKER_ENV, raising=False)
    monkeypatch.delenv(LFA_BATCH_ENV, raising=False)


def test_pipeline_is_off_by_default_and_matches_plain_serial_run(
    tiny_accelerator, fast_config, branchy_cnn
):
    """Default mode is the historical serial loop, reached both ways."""
    assert not stage_pipeline_enabled()
    scheduled = SoMaScheduler(tiny_accelerator, fast_config).schedule(
        branchy_cnn, seed=_SEED
    )
    allocator = BufferAllocator(
        branchy_cnn, ScheduleEvaluator(tiny_accelerator), fast_config
    )
    # No seed argument -> unconditionally the serial path.
    serial = allocator.run(random.Random(_SEED))
    assert _trajectory(scheduled) == _trajectory(serial)


def test_pipelined_in_process_is_deterministic(
    monkeypatch, tiny_accelerator, fast_config, branchy_cnn
):
    """Same (graph, config, seed) -> same pipelined trajectory, run to run."""
    monkeypatch.setenv(PIPELINE_ENV, "1")
    assert stage_pipeline_enabled()
    first = SoMaScheduler(tiny_accelerator, fast_config).schedule(branchy_cnn, seed=_SEED)
    second = SoMaScheduler(tiny_accelerator, fast_config).schedule(branchy_cnn, seed=_SEED)
    assert _trajectory(first) == _trajectory(second)
    assert first.evaluation.feasible


@pytest.mark.parametrize("graph_fixture", ["branchy_cnn", "tiny_gpt_prefill"])
def test_pipelined_pool_matches_in_process(
    monkeypatch, request, tiny_accelerator, fast_config, graph_fixture
):
    """Handing the stage tasks to pool workers changes nothing, bit for bit.

    Each (iteration, stage) task is a pure function of
    ``(graph, config, budget, derived seed)``, so running stage 1 and
    stage 2 on separate persistent workers must reproduce the in-process
    pipelined trajectory exactly.
    """
    graph = request.getfixturevalue(graph_fixture)
    monkeypatch.setenv(PIPELINE_ENV, "1")
    in_process = SoMaScheduler(tiny_accelerator, fast_config).schedule(graph, seed=_SEED)
    monkeypatch.setenv(ALLOC_WORKERS_ENV, "2")
    assert alloc_workers() == 2
    pooled = SoMaScheduler(tiny_accelerator, fast_config).schedule(graph, seed=_SEED)
    assert _trajectory(pooled) == _trajectory(in_process)


def test_schedule_floor_never_exceeds_a_real_schedule_cost(
    tiny_accelerator, fast_config, branchy_cnn, tiny_gpt_prefill
):
    """The branch-and-bound cutoff is a true lower bound.

    The floor only charges compulsory DRAM traffic and perfectly overlapped
    peak compute, so it must sit at or below the objective of *any* feasible
    schedule: the double-buffered starting point and the annealed result.
    """
    for graph in (branchy_cnn, tiny_gpt_prefill):
        floor = schedule_floor(graph, tiny_accelerator, fast_config)
        assert math.isfinite(floor) and floor > 0

        plan = parse_lfa(
            graph, initial_lfa(graph, tiny_accelerator.core_array.kc_parallel_lanes)
        )
        start = ScheduleEvaluator(tiny_accelerator).evaluate(
            plan, double_buffer_dlsa(plan)
        )
        if start.feasible:
            assert floor <= fast_config.objective(start.energy_j, start.latency_s)

        result = SoMaScheduler(tiny_accelerator, fast_config).schedule(graph, seed=_SEED)
        assert result.evaluation.feasible
        assert floor <= fast_config.objective(
            result.evaluation.energy_j, result.evaluation.latency_s
        )
        assert floor <= result.best.cost


@pytest.mark.parametrize(
    "batch, workers",
    [(3, None), (3, "2"), (7, "3")],
)
def test_speculative_stage1_is_bit_identical_across_batch_and_workers(
    monkeypatch, tiny_accelerator, fast_config, branchy_cnn, batch, workers
):
    """Any batch size x worker count reproduces the batch=1 trajectory.

    The draw-ahead protocol commits exactly the move the one-at-a-time
    batched walk would accept, and the speculative candidate evaluations
    are pure, so fanning them across pool workers (or not) and widening
    the window must never change the schedule — only the counters.
    """
    monkeypatch.setenv(PIPELINE_ENV, "1")
    monkeypatch.setenv(LFA_BATCH_ENV, "1")
    reference = SoMaScheduler(tiny_accelerator, fast_config).schedule(
        branchy_cnn, seed=_SEED
    )
    monkeypatch.setenv(LFA_BATCH_ENV, str(batch))
    if workers is not None:
        monkeypatch.setenv(ALLOC_WORKERS_ENV, workers)
    speculated = SoMaScheduler(tiny_accelerator, fast_config).schedule(
        branchy_cnn, seed=_SEED
    )
    assert _trajectory(speculated) == _trajectory(reference)
    stats = speculation_stats(branchy_cnn)
    assert stats["proposed"] >= stats["committed"] > 0
    # Rejected candidates are neither committed nor rolled back, so the
    # decided moves can only account for part of the speculated ones.
    assert stats["proposed"] >= stats["committed"] + stats["rolled_back"]


def test_speculative_serial_path_matches_across_batch_sizes(
    monkeypatch, tiny_accelerator, fast_config, tiny_gpt_prefill
):
    """Without the pipeline the batched walk is still batch-size invariant."""
    monkeypatch.setenv(LFA_BATCH_ENV, "1")
    narrow = SoMaScheduler(tiny_accelerator, fast_config).schedule(
        tiny_gpt_prefill, seed=_SEED
    )
    monkeypatch.setenv(LFA_BATCH_ENV, "6")
    wide = SoMaScheduler(tiny_accelerator, fast_config).schedule(
        tiny_gpt_prefill, seed=_SEED
    )
    assert _trajectory(wide) == _trajectory(narrow)


def test_pooled_stage1_ignores_stale_worker_environment(
    monkeypatch, tiny_accelerator, fast_config, branchy_cnn
):
    """The stage-1 walk is task state, never worker-environment state.

    The allocator's persistent pool outlives knob changes in the submitting
    process: workers forked while ``REPRO_LFA_BATCH`` was set keep it in
    their inherited environment forever.  A later non-speculative pooled
    run must still match the non-speculative in-process trajectory — the
    batch size travels inside :class:`Stage1Task`, so whatever the worker's
    stale environment says is irrelevant.
    """
    monkeypatch.setenv(PIPELINE_ENV, "1")
    monkeypatch.setenv(ALLOC_WORKERS_ENV, "2")
    monkeypatch.setenv(LFA_BATCH_ENV, "8")
    # Retire any pool a previous test spawned so this schedule call forks
    # fresh workers while the knob is set: they inherit REPRO_LFA_BATCH=8
    # in their environment permanently.
    stale = buffer_allocator_module._POOLS.pop(2, None)
    if stale is not None:
        stale.close()
    SoMaScheduler(tiny_accelerator, fast_config).schedule(branchy_cnn, seed=_SEED)

    monkeypatch.delenv(LFA_BATCH_ENV)
    pooled = SoMaScheduler(tiny_accelerator, fast_config).schedule(
        branchy_cnn, seed=_SEED
    )
    monkeypatch.delenv(ALLOC_WORKERS_ENV)
    in_process = SoMaScheduler(tiny_accelerator, fast_config).schedule(
        branchy_cnn, seed=_SEED
    )
    assert _trajectory(pooled) == _trajectory(in_process)


def test_lfa_batch_knob_parsing(monkeypatch):
    assert lfa_batch_size() == 0
    monkeypatch.setenv(LFA_BATCH_ENV, "0")
    assert lfa_batch_size() == 0
    monkeypatch.setenv(LFA_BATCH_ENV, "4")
    assert lfa_batch_size() == 4
    monkeypatch.setenv(LFA_BATCH_ENV, "-2")
    with pytest.warns(RuntimeWarning, match="REPRO_LFA_BATCH"):
        assert lfa_batch_size() == 0
    monkeypatch.setenv(LFA_BATCH_ENV, "not-a-number")
    with pytest.warns(RuntimeWarning, match="REPRO_LFA_BATCH"):
        assert lfa_batch_size() == 0


@pytest.mark.parametrize("graph_fixture", ["branchy_cnn", "tiny_gpt_prefill"])
def test_per_budget_floor_prunes_exactly_the_dominated_iterations(
    monkeypatch, request, tiny_accelerator, fast_config, graph_fixture
):
    """Pruning by the per-budget floor never changes what the search finds.

    An un-pruned run (the floor monkeypatched to -inf so it never fires) and
    the real run must agree on the final scheme bit for bit; every pruned
    iteration (an ``inf`` history entry where the un-pruned run has a finite
    cost) must be one the un-pruned run discarded anyway — its cost at or
    above the incumbent at that point, exactly as the floor promised.
    """
    graph = request.getfixturevalue(graph_fixture)
    monkeypatch.setenv(PIPELINE_ENV, "1")
    pruned = SoMaScheduler(tiny_accelerator, fast_config).schedule(graph, seed=_SEED)
    monkeypatch.setattr(
        buffer_allocator_module,
        "budget_schedule_floor",
        lambda *args, **kwargs: -math.inf,
    )
    unpruned = SoMaScheduler(tiny_accelerator, fast_config).schedule(graph, seed=_SEED)

    assert pruned.best.cost == unpruned.best.cost
    assert _encoding_key(pruned.best.encoding) == _encoding_key(unpruned.best.encoding)
    assert pruned.stage1_buffer_budget_bytes == unpruned.stage1_buffer_budget_bytes
    assert len(pruned.history) == len(unpruned.history)
    incumbent = math.inf
    for pruned_cost, true_cost in zip(pruned.history, unpruned.history):
        if math.isinf(pruned_cost) and math.isfinite(true_cost):
            # Pruned iteration: the un-pruned run evaluated it and indeed
            # failed to improve on the incumbent the floor was compared to.
            assert true_cost >= incumbent
        else:
            assert pruned_cost == true_cost
        incumbent = min(incumbent, true_cost)


def test_alloc_workers_parsing_and_nested_pool_guard(monkeypatch):
    """Worker counts below two stay in-process; pool workers never nest."""
    assert alloc_workers() == 0
    monkeypatch.setenv(ALLOC_WORKERS_ENV, "1")
    assert alloc_workers() == 0
    monkeypatch.setenv(ALLOC_WORKERS_ENV, "3")
    assert alloc_workers() == 3
    # A pool worker (REPRO_POOL_WORKER set by _worker_main) must never spawn
    # a nested allocator pool, whatever the knobs say.
    monkeypatch.setenv(POOL_WORKER_ENV, "1")
    assert alloc_workers() == 0


def test_stage_pipeline_knob_parsing(monkeypatch):
    for value, expected in [
        ("1", True),
        ("true", True),
        ("on", True),
        ("yes", True),
        ("0", False),
        ("off", False),
        ("", False),
    ]:
        monkeypatch.setenv(PIPELINE_ENV, value)
        assert stage_pipeline_enabled() is expected
