"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def _run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def test_parser_requires_a_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_workloads_command_lists_zoo():
    code, output = _run(["workloads"])
    assert code == 0
    assert "resnet50" in output
    assert "gpt2-decode" in output


def test_schedule_command_fast(tmp_path):
    ir_path = tmp_path / "scheme.json"
    instructions_path = tmp_path / "program.txt"
    code, output = _run(
        [
            "schedule",
            "--workload",
            "gpt2-decode",
            "--variant",
            "tiny",
            "--seq-len",
            "16",
            "--fast",
            "--ir-out",
            str(ir_path),
            "--instructions-out",
            str(instructions_path),
        ]
    )
    assert code == 0
    assert "SoMa result" in output
    assert ir_path.exists() and ir_path.read_text().startswith("{")
    assert "COMPUTE queue" in instructions_path.read_text()


def test_schedule_command_cache_stats():
    code, output = _run(
        [
            "schedule",
            "--workload",
            "gpt2-decode",
            "--variant",
            "tiny",
            "--seq-len",
            "16",
            "--fast",
            "--cache-stats",
        ]
    )
    assert code == 0
    assert "search cache statistics:" in output
    for cache_name in ("parse", "segment", "fragment", "tiling", "plan", "result"):
        assert cache_name in output
    assert "hit rate" in output


@pytest.mark.parametrize("workers", [1, 2])
def test_schedule_command_cache_stats_with_parallel_restarts(workers):
    """``--cache-stats`` under ``--restarts``/``--workers`` must show activity.

    Parent-process LRUs never see worker activity; the aggregated per-chain
    deltas shipped back through the runner must produce a table that is not
    all-miss/empty, clearly labelled as a cross-process aggregate.
    """
    code, output = _run(
        [
            "schedule",
            "--workload",
            "gpt2-decode",
            "--variant",
            "tiny",
            "--seq-len",
            "16",
            "--fast",
            "--cache-stats",
            "--restarts",
            "2",
            "--workers",
            str(workers),
        ]
    )
    assert code == 0
    assert "aggregated over 2 restart chains" in output
    table_lines = [
        line
        for line in output.splitlines()
        if line.split() and line.split()[0] in ("parse", "tiling", "segment", "plan")
    ]
    assert table_lines
    # At least one cache row reports real activity (hits+misses > 0).
    activity = 0
    for line in table_lines:
        fields = line.split()
        activity += int(fields[3]) + int(fields[4])
    assert activity > 0


def test_serve_command_stdio(monkeypatch):
    import json
    import sys

    request = {
        "workload": "gpt2-decode",
        "workload_kwargs": {"variant": "tiny", "context_len": 16},
        "fast": True,
        "seed": 3,
        "request_id": "cli-1",
    }
    lines = [
        json.dumps(request),
        json.dumps(request),
        json.dumps({"op": "shutdown"}),
    ]
    monkeypatch.setattr(sys, "stdin", io.StringIO("\n".join(lines) + "\n"))
    code, output = _run(["serve", "--workers", "1"])
    assert code == 0
    replies = [json.loads(line) for line in output.splitlines()]
    assert len(replies) == 3
    assert replies[0]["ok"] and replies[0]["provenance"] in ("cold", "warm")
    assert replies[1]["provenance"] == "memo"
    assert replies[1]["result"] == replies[0]["result"]
    assert replies[2]["shutdown"]


def test_serve_command_memo_persistence_across_restarts(monkeypatch, tmp_path):
    """A restarted `serve` answers repeat traffic from the persisted memo."""
    import json
    import sys

    memo_path = tmp_path / "memo.json"
    request = {
        "workload": "gpt2-decode",
        "workload_kwargs": {"variant": "tiny", "context_len": 16},
        "fast": True,
        "seed": 5,
        "request_id": "persist-1",
    }
    lines = [json.dumps(request), json.dumps({"op": "shutdown"})]

    monkeypatch.setattr(sys, "stdin", io.StringIO("\n".join(lines) + "\n"))
    code, output = _run(["serve", "--workers", "1", "--memo-path", str(memo_path)])
    assert code == 0
    first = json.loads(output.splitlines()[0])
    assert first["ok"] and first["provenance"] in ("cold", "warm")
    assert memo_path.exists()  # spilled on the shutdown op

    monkeypatch.setattr(sys, "stdin", io.StringIO("\n".join(lines) + "\n"))
    code, output = _run(["serve", "--workers", "1", "--memo-path", str(memo_path)])
    assert code == 0
    restarted = json.loads(output.splitlines()[0])
    assert restarted["provenance"] == "memo"
    assert restarted["result"] == first["result"]


def test_serve_command_shuts_workers_down_deterministically(monkeypatch):
    """Satellite regression: stdio EOF must reap the pool workers."""
    import json
    import multiprocessing
    import sys

    before = set(multiprocessing.active_children())
    request = {
        "workload": "gpt2-decode",
        "workload_kwargs": {"variant": "tiny", "context_len": 16},
        "fast": True,
        "seed": 6,
    }
    # EOF after one request — no shutdown op — must still close the service.
    monkeypatch.setattr(sys, "stdin", io.StringIO(json.dumps(request) + "\n"))
    code, output = _run(["serve", "--workers", "2"])
    assert code == 0
    assert json.loads(output.splitlines()[0])["ok"]
    assert not (set(multiprocessing.active_children()) - before)


def test_serve_command_queue_size_zero_rejects_cache_misses(monkeypatch):
    import json
    import sys

    request = {
        "workload": "gpt2-decode",
        "workload_kwargs": {"variant": "tiny", "context_len": 16},
        "fast": True,
        "seed": 8,
    }
    lines = [json.dumps(request), json.dumps({"op": "shutdown"})]
    monkeypatch.setattr(sys, "stdin", io.StringIO("\n".join(lines) + "\n"))
    code, output = _run(["serve", "--workers", "1", "--queue-size", "0"])
    assert code == 0
    reply = json.loads(output.splitlines()[0])
    assert not reply["ok"]
    assert reply["provenance"] == "rejected"
    assert reply["error_kind"] == "overload"


def test_serve_command_sigterm_shuts_down_cleanly(tmp_path):
    """SIGTERM (systemd stop, CI teardown) == Ctrl+C: drain, spill, exit 0."""
    import json
    import os
    import signal
    import subprocess
    import sys

    memo_path = tmp_path / "memo.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [os.path.abspath("src"), env.get("PYTHONPATH", "")])
    )
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--workers",
            "1",
            "--memo-path",
            str(memo_path),
        ],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=env,
        text=True,
    )
    try:
        request = {
            "workload": "gpt2-decode",
            "workload_kwargs": {"variant": "tiny", "context_len": 16},
            "fast": True,
            "seed": 17,
            "request_id": "pre-term",
        }
        process.stdin.write(json.dumps(request) + "\n")
        process.stdin.flush()
        reply = json.loads(process.stdout.readline())
        assert reply["ok"] and reply["request_id"] == "pre-term"

        process.send_signal(signal.SIGTERM)
        _, stderr = process.communicate(timeout=60)
    except Exception:
        process.kill()
        process.communicate()
        raise
    assert process.returncode == 0, stderr  # clean exit, no traceback
    assert "Traceback" not in stderr
    assert memo_path.exists()  # the memo was spilled on the way down
    spilled = json.loads(memo_path.read_text())
    assert len(spilled["entries"]) == 1


def test_serve_command_accepts_retries_flag(monkeypatch):
    import json
    import sys

    request = {
        "workload": "gpt2-decode",
        "workload_kwargs": {"variant": "tiny", "context_len": 16},
        "fast": True,
        "seed": 19,
    }
    lines = [json.dumps(request), json.dumps({"op": "stats"}), json.dumps({"op": "shutdown"})]
    monkeypatch.setattr(sys, "stdin", io.StringIO("\n".join(lines) + "\n"))
    code, output = _run(["serve", "--workers", "1", "--retries", "3"])
    assert code == 0
    replies = [json.loads(line) for line in output.splitlines()]
    assert replies[0]["ok"] and replies[0]["retries"] == 0  # no crash: no retries
    assert replies[1]["stats"]["supervision"]["retry_budget"] == 3


def test_compare_command_fast():
    code, output = _run(
        ["compare", "--workload", "gpt2-prefill", "--variant", "tiny", "--seq-len", "16", "--fast"]
    )
    assert code == 0
    assert "Cocco" in output and "Ours_2" in output
    assert "speedup" in output


def test_dse_command_fast(tmp_path):
    code, output = _run(
        [
            "dse",
            "--workload",
            "gpt2-decode",
            "--variant",
            "tiny",
            "--seq-len",
            "16",
            "--fast",
            "--batches",
            "1",
            "--bandwidths",
            "8",
            "16",
            "--buffers",
            "4",
            "--out-dir",
            str(tmp_path),
        ]
    )
    assert code == 0
    assert (tmp_path / "dse.csv").exists()
    assert "scheduler=soma" in output


def test_overall_command_fast(tmp_path, monkeypatch):
    # Shrink the default grid so the CLI test stays quick.
    from repro.experiments import overall as overall_module

    monkeypatch.setattr(
        "repro.cli.default_cells",
        lambda: [
            overall_module.ExperimentCell(
                "gpt2-decode", "edge", 1, (("variant", "tiny"), ("context_len", 16))
            )
        ],
    )
    code, output = _run(["overall", "--fast", "--out-dir", str(tmp_path)])
    assert code == 0
    assert (tmp_path / "overall.csv").exists()
    assert (tmp_path / "stats.log").exists()
    assert "aggregate statistics" in output
