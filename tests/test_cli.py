"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def _run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def test_parser_requires_a_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_workloads_command_lists_zoo():
    code, output = _run(["workloads"])
    assert code == 0
    assert "resnet50" in output
    assert "gpt2-decode" in output


def test_schedule_command_fast(tmp_path):
    ir_path = tmp_path / "scheme.json"
    instructions_path = tmp_path / "program.txt"
    code, output = _run(
        [
            "schedule",
            "--workload",
            "gpt2-decode",
            "--variant",
            "tiny",
            "--seq-len",
            "16",
            "--fast",
            "--ir-out",
            str(ir_path),
            "--instructions-out",
            str(instructions_path),
        ]
    )
    assert code == 0
    assert "SoMa result" in output
    assert ir_path.exists() and ir_path.read_text().startswith("{")
    assert "COMPUTE queue" in instructions_path.read_text()


def test_schedule_command_cache_stats():
    code, output = _run(
        [
            "schedule",
            "--workload",
            "gpt2-decode",
            "--variant",
            "tiny",
            "--seq-len",
            "16",
            "--fast",
            "--cache-stats",
        ]
    )
    assert code == 0
    assert "search cache statistics:" in output
    for cache_name in ("parse", "segment", "fragment", "tiling", "plan", "result"):
        assert cache_name in output
    assert "hit rate" in output


def test_compare_command_fast():
    code, output = _run(
        ["compare", "--workload", "gpt2-prefill", "--variant", "tiny", "--seq-len", "16", "--fast"]
    )
    assert code == 0
    assert "Cocco" in output and "Ours_2" in output
    assert "speedup" in output


def test_dse_command_fast(tmp_path):
    code, output = _run(
        [
            "dse",
            "--workload",
            "gpt2-decode",
            "--variant",
            "tiny",
            "--seq-len",
            "16",
            "--fast",
            "--batches",
            "1",
            "--bandwidths",
            "8",
            "16",
            "--buffers",
            "4",
            "--out-dir",
            str(tmp_path),
        ]
    )
    assert code == 0
    assert (tmp_path / "dse.csv").exists()
    assert "scheduler=soma" in output


def test_overall_command_fast(tmp_path, monkeypatch):
    # Shrink the default grid so the CLI test stays quick.
    from repro.experiments import overall as overall_module

    monkeypatch.setattr(
        "repro.cli.default_cells",
        lambda: [
            overall_module.ExperimentCell(
                "gpt2-decode", "edge", 1, (("variant", "tiny"), ("context_len", 16))
            )
        ],
    )
    code, output = _run(["overall", "--fast", "--out-dir", str(tmp_path)])
    assert code == 0
    assert (tmp_path / "overall.csv").exists()
    assert (tmp_path / "stats.log").exists()
    assert "aggregate statistics" in output
