"""Tests for the instruction-level simulator and its consistency with the evaluator."""

import pytest

from repro.compiler.codegen import lower_result
from repro.compiler.instructions import (
    ComputeInstruction,
    InstructionKind,
    InstructionProgram,
    LoadInstruction,
)
from repro.compiler.simulator import InstructionSimulator
from repro.core.double_buffer import double_buffer_dlsa
from repro.core.evaluator import ScheduleEvaluator
from repro.errors import CompilationError
from repro.notation.dlsa import DLSA
from repro.notation.lfa import LFA
from repro.notation.parser import parse_lfa


def _lowered(graph, lfa=None, dlsa=None):
    plan = parse_lfa(graph, lfa if lfa is not None else LFA.fully_fused(graph, tiling_number=2))
    dlsa = dlsa if dlsa is not None else double_buffer_dlsa(plan)
    return plan, dlsa, lower_result(plan, dlsa)


# --------------------------------------------------------- consistency checks
def test_replay_matches_evaluator_latency_fused(linear_cnn, tiny_accelerator):
    plan, dlsa, program = _lowered(linear_cnn)
    evaluation = ScheduleEvaluator(tiny_accelerator).evaluate(plan, dlsa)
    simulator = InstructionSimulator(tiny_accelerator)
    timing = simulator.run(program, simulator.durations_from_plan(program, plan))
    assert timing.makespan_s == pytest.approx(evaluation.latency_s, rel=1e-9)


def test_replay_matches_evaluator_latency_unfused(linear_cnn, tiny_accelerator):
    plan, dlsa, program = _lowered(linear_cnn, lfa=LFA.unfused(linear_cnn))
    evaluation = ScheduleEvaluator(tiny_accelerator).evaluate(plan, dlsa)
    simulator = InstructionSimulator(tiny_accelerator)
    timing = simulator.verify_against_plan(program, plan, evaluation.latency_s)
    assert timing.makespan_s == pytest.approx(evaluation.latency_s, rel=1e-9)


def test_replay_matches_evaluator_with_prefetching(linear_cnn, tiny_accelerator):
    plan = parse_lfa(linear_cnn, LFA.unfused(linear_cnn))
    base = double_buffer_dlsa(plan)
    eager_living = dict(base.living)
    for tensor in plan.dram_tensors:
        if tensor.is_load and tensor.source_layer is None:
            eager_living[tensor.tid] = (0, tensor.default_end)
    eager = DLSA(order=base.order, living=eager_living)
    program = lower_result(plan, eager)
    evaluation = ScheduleEvaluator(tiny_accelerator).evaluate(plan, eager)
    simulator = InstructionSimulator(tiny_accelerator)
    timing = simulator.run(program, simulator.durations_from_plan(program, plan))
    assert timing.makespan_s == pytest.approx(evaluation.latency_s, rel=1e-9)


def test_per_instruction_timings_cover_every_instruction(linear_cnn, tiny_accelerator):
    plan, _, program = _lowered(linear_cnn)
    simulator = InstructionSimulator(tiny_accelerator)
    timing = simulator.run(program, simulator.durations_from_plan(program, plan))
    assert len(timing.timings) == program.num_instructions
    assert all(t.finish_s >= t.start_s for t in timing.timings)
    first_compute = timing.of(0)
    assert first_compute.kind is InstructionKind.COMPUTE


def test_timing_lookup_unknown_id_raises(linear_cnn, tiny_accelerator):
    plan, _, program = _lowered(linear_cnn)
    simulator = InstructionSimulator(tiny_accelerator)
    timing = simulator.run(program, simulator.durations_from_plan(program, plan))
    with pytest.raises(KeyError):
        timing.of(10**9)


# ----------------------------------------------------------------- error paths
def test_missing_durations_rejected(linear_cnn, tiny_accelerator):
    plan, _, program = _lowered(linear_cnn)
    simulator = InstructionSimulator(tiny_accelerator)
    with pytest.raises(CompilationError):
        simulator.run(program, durations={})


def test_deadlocked_program_detected(tiny_accelerator):
    load = LoadInstruction(
        instruction_id=1,
        kind=InstructionKind.LOAD,
        depends_on=(0,),
        tensor_tid=0,
        layer="conv",
        num_bytes=64,
    )
    compute = ComputeInstruction(
        instruction_id=0,
        kind=InstructionKind.COMPUTE,
        depends_on=(1,),
        layer="conv",
        tile_id=0,
        macs=10,
        vector_ops=0,
    )
    program = InstructionProgram(workload="w", dram_queue=(load,), compute_queue=(compute,))
    simulator = InstructionSimulator(tiny_accelerator)
    with pytest.raises(CompilationError):
        simulator.run(program, durations={0: 1e-6, 1: 1e-6})


def test_verify_detects_lost_dependency(linear_cnn, tiny_accelerator):
    plan, dlsa, program = _lowered(linear_cnn, lfa=LFA.unfused(linear_cnn))
    evaluation = ScheduleEvaluator(tiny_accelerator).evaluate(plan, dlsa)
    # Strip every cross-queue dependency: the program now finishes too early,
    # which the verification must flag as a lost dependency.
    stripped_compute = tuple(
        ComputeInstruction(
            instruction_id=ins.instruction_id,
            kind=ins.kind,
            depends_on=tuple(d for d in ins.depends_on if d < len(program.compute_queue)),
            layer=ins.layer,
            tile_id=ins.tile_id,
            macs=ins.macs,
            vector_ops=ins.vector_ops,
        )
        for ins in program.compute_queue
    )
    broken = InstructionProgram(
        workload=program.workload,
        dram_queue=program.dram_queue,
        compute_queue=stripped_compute,
    )
    simulator = InstructionSimulator(tiny_accelerator)
    with pytest.raises(CompilationError):
        simulator.verify_against_plan(broken, plan, evaluation.latency_s)
