"""Equivalence tests: the incremental evaluation engine vs the reference.

The engine (:class:`PlanEvaluationContext`) patches its buffer-delta state
across calls and runs over precomputed arrays; the seed algorithm is kept as
``ScheduleEvaluator.evaluate_reference``.  These property-style tests drive
both over randomized plans and operator move chains and require *identical*
results for everything the search reads (latency, energy, peak buffer,
feasibility) — only the buffer average may differ by float rounding.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.core.dlsa_stage import DLSA_OPERATORS
from repro.core.double_buffer import double_buffer_dlsa
from repro.core.evaluator import ScheduleEvaluator
from repro.core.lfa_stage import LFA_OPERATORS, initial_lfa
from repro.notation.dlsa import DLSA
from repro.notation.parser import parse_lfa, parse_lfa_cached
from repro.tiling.heuristics import kc_parallelism_tiling_number


def _random_plan(graph, rng, moves=6):
    """A plan reached by a random chain of LFA operator moves."""
    lfa = initial_lfa(graph, kc_parallel_lanes=32)
    for _ in range(moves):
        operator = rng.choice(LFA_OPERATORS)
        move = operator(lfa, graph, rng)
        if move is None:
            continue
        plan = parse_lfa(graph, move.lfa)
        if plan.feasible:
            lfa = move.lfa
    return parse_lfa(graph, lfa)


def _dlsa_chain(plan, rng, moves=25):
    """A chain of DLSA states as the stage-2 annealer would walk them."""
    states = [double_buffer_dlsa(plan)]
    for _ in range(moves):
        operator = rng.choice(DLSA_OPERATORS)
        candidate = operator(plan, states[-1], rng)
        if candidate is not None:
            states.append(candidate)
    return states


def _assert_equivalent(engine_result, reference_result):
    assert engine_result.feasible == reference_result.feasible
    assert engine_result.reason == reference_result.reason
    assert engine_result.latency_s == reference_result.latency_s
    assert engine_result.energy_j == reference_result.energy_j
    assert engine_result.core_energy_j == reference_result.core_energy_j
    assert engine_result.dram_energy_j == reference_result.dram_energy_j
    assert engine_result.max_buffer_bytes == reference_result.max_buffer_bytes
    assert math.isclose(
        engine_result.avg_buffer_bytes, reference_result.avg_buffer_bytes, rel_tol=1e-9
    )
    assert engine_result.num_tiles == reference_result.num_tiles
    assert engine_result.num_dram_tensors == reference_result.num_dram_tensors


@pytest.mark.parametrize("graph_fixture", ["linear_cnn", "branchy_cnn", "tiny_gpt_decode"])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_incremental_evaluation_matches_reference(request, tiny_accelerator, graph_fixture, seed):
    """Engine results are identical to full recompute across random moves."""
    graph = request.getfixturevalue(graph_fixture)
    rng = random.Random(seed)
    evaluator = ScheduleEvaluator(tiny_accelerator)
    plan = _random_plan(graph, rng)
    context = evaluator.context(plan)

    for dlsa in _dlsa_chain(plan, rng):
        engine_result = context.evaluate(dlsa)
        reference_result = evaluator.evaluate_reference(plan, dlsa)
        _assert_equivalent(engine_result, reference_result)


def test_incremental_state_does_not_drift(tiny_accelerator, branchy_cnn):
    """After a long patched chain, the engine agrees with a fresh context."""
    rng = random.Random(7)
    evaluator = ScheduleEvaluator(tiny_accelerator)
    plan = _random_plan(branchy_cnn, rng)
    context = evaluator.context(plan)
    final = None
    states = _dlsa_chain(plan, rng, moves=60)
    for dlsa in states:
        final = context.evaluate(dlsa)
    fresh = ScheduleEvaluator(tiny_accelerator).context(plan).evaluate(states[-1])
    _assert_equivalent(final, fresh)


def test_tight_budget_infeasibility_matches(tiny_accelerator, linear_cnn):
    """Budget-driven infeasibility agrees between engine and reference."""
    rng = random.Random(3)
    evaluator = ScheduleEvaluator(tiny_accelerator)
    plan = _random_plan(linear_cnn, rng)
    dlsa = double_buffer_dlsa(plan)
    reference = evaluator.evaluate_reference(plan, dlsa)
    tight = max(1, reference.max_buffer_bytes // 2)
    engine_result = evaluator.context(plan).evaluate(dlsa, buffer_budget_bytes=tight)
    reference_result = evaluator.evaluate_reference(plan, dlsa, buffer_budget_bytes=tight)
    assert not engine_result.feasible
    _assert_equivalent(engine_result, reference_result)


def test_trace_records_match_reference(tiny_accelerator, linear_cnn):
    """include_trace produces the same tile/transfer records on both paths."""
    rng = random.Random(5)
    evaluator = ScheduleEvaluator(tiny_accelerator)
    plan = _random_plan(linear_cnn, rng)
    dlsa = double_buffer_dlsa(plan)
    engine_result = evaluator.evaluate(plan, dlsa, include_trace=True)
    reference_result = evaluator.evaluate_reference(plan, dlsa, include_trace=True)
    assert engine_result.tile_records == reference_result.tile_records
    assert engine_result.transfer_records == reference_result.transfer_records


def test_context_is_cached_by_plan_fingerprint(tiny_accelerator, linear_cnn):
    """Equal plans (even distinct objects) share one evaluation context."""
    evaluator = ScheduleEvaluator(tiny_accelerator)
    lfa = initial_lfa(linear_cnn, kc_parallel_lanes=32)
    plan_a = parse_lfa(linear_cnn, lfa)
    plan_b = parse_lfa(linear_cnn, lfa)
    assert plan_a is not plan_b
    assert evaluator.context(plan_a) is evaluator.context(plan_b)


def test_parse_cache_returns_shared_plan(linear_cnn):
    """parse_lfa_cached shares one plan per LFA fingerprint."""
    lfa = initial_lfa(linear_cnn, kc_parallel_lanes=32)
    again = initial_lfa(linear_cnn, kc_parallel_lanes=32)
    assert parse_lfa_cached(linear_cnn, lfa) is parse_lfa_cached(linear_cnn, again)


def test_fast_double_buffer_matches_from_defaults(linear_cnn, branchy_cnn, tiny_gpt_decode):
    """The array-based double-buffer builder equals DLSA.from_defaults."""
    for graph in (linear_cnn, branchy_cnn, tiny_gpt_decode):
        tiling = kc_parallelism_tiling_number(graph, [graph.layer_names()[0]], 32)
        assert tiling >= 1  # sanity: the helper stays usable
        rng = random.Random(11)
        plan = _random_plan(graph, rng)
        fast = double_buffer_dlsa(plan)
        reference = DLSA.from_defaults(plan.dram_tensors)
        assert fast.order == reference.order
        assert fast.living == reference.living


def test_result_memo_returns_identical_results(tiny_accelerator, linear_cnn):
    """Re-evaluating an equal DLSA hits the memo without changing the result."""
    rng = random.Random(9)
    evaluator = ScheduleEvaluator(tiny_accelerator)
    plan = _random_plan(linear_cnn, rng)
    context = evaluator.context(plan)
    dlsa = double_buffer_dlsa(plan)
    first = context.evaluate(dlsa)
    # An equal (but distinct) DLSA object must hit the same memo entry.
    clone = DLSA(order=tuple(dlsa.order), living=dict(dlsa.living))
    assert context.evaluate(clone) is first
    assert context.cache_stats()["hits"] >= 1
