#!/usr/bin/env python3
"""Design-space exploration: DRAM bandwidth x buffer capacity (paper Fig. 7).

Sweeps the memory system of the 16 TOPS edge accelerator and prints a latency
table for Cocco and SoMa, together with the envelope of configurations that
reach (within 2 %) the minimum latency — the paper's "red curve", whose lower
triangle shows that with SoMa a larger buffer can substitute for DRAM
bandwidth.

Run with:  python examples/dse_sweep.py [--workload resnet50] [--batch 1] [--fast]
"""

from __future__ import annotations

import argparse

from repro import SoMaConfig, build_workload, edge_accelerator
from repro.analysis.dse import run_dse
from repro.core.config import SAParams


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="resnet50")
    parser.add_argument("--batch", type=int, default=1)
    parser.add_argument("--bandwidths", type=float, nargs="+", default=[8.0, 16.0, 32.0, 64.0])
    parser.add_argument("--buffers", type=float, nargs="+", default=[4.0, 8.0, 16.0, 32.0])
    parser.add_argument("--fast", action="store_true")
    args = parser.parse_args()

    config = SoMaConfig.fast() if args.fast else SoMaConfig(
        lfa_sa=SAParams(iterations_per_unit=10.0, max_iterations=1200),
        dlsa_sa=SAParams(iterations_per_unit=4.0, max_iterations=1500),
        max_allocator_iterations=2,
        allocator_patience=1,
    )
    workload = build_workload(args.workload, batch=args.batch)
    base = edge_accelerator()

    print(f"sweeping {len(args.bandwidths)}x{len(args.buffers)} design points "
          f"for {workload.name} (batch {workload.batch}) ...")
    result = run_dse(
        workload,
        base,
        dram_bandwidths_gb_s=args.bandwidths,
        buffer_sizes_mb=args.buffers,
        config=config,
    )

    print()
    print(result.to_table("cocco"))
    print()
    print(result.to_table("soma"))

    print("\nconfigurations on the SoMa minimum-latency envelope (within 2%):")
    for cell in result.envelope("soma"):
        print(
            f"  {cell.dram_bandwidth_gb_s:6.0f} GB/s, {cell.buffer_mb:5.0f} MB "
            f"-> {cell.soma_latency_s * 1e3:.3f} ms "
            f"(advantage over Cocco {cell.soma_advantage:.2f}x)"
        )


if __name__ == "__main__":
    main()
