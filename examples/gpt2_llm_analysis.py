#!/usr/bin/env python3
"""LLM analysis: GPT-2 prefill vs decode, and decode utilisation vs batch size.

Reproduces the paper's LLM observations (Sec. VI-B):

* prefill is compute-dense and benefits from DRAM communication scheduling,
  while decode is dominated by weight / KV-cache loading and leaves almost no
  room for optimisation;
* growing the batch size improves decode utilisation with diminishing
  returns, because the KV cache grows with the batch and eventually rivals
  the weights.

Run with:  python examples/gpt2_llm_analysis.py [--variant small] [--fast]
"""

from __future__ import annotations

import argparse

from repro import SoMaConfig, SoMaScheduler, build_workload, edge_accelerator
from repro.core.config import SAParams


def make_config(fast: bool) -> SoMaConfig:
    if fast:
        return SoMaConfig.fast()
    return SoMaConfig(
        lfa_sa=SAParams(iterations_per_unit=8.0, max_iterations=1500),
        dlsa_sa=SAParams(iterations_per_unit=4.0, max_iterations=2000),
        max_allocator_iterations=2,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--variant", default="small", choices=["tiny", "small", "xl"])
    parser.add_argument("--seq-len", type=int, default=None, help="prompt length (default: paper value)")
    parser.add_argument("--batches", type=int, nargs="+", default=[1, 4, 16])
    parser.add_argument("--fast", action="store_true")
    args = parser.parse_args()

    accelerator = edge_accelerator()
    config = make_config(args.fast)
    scheduler = SoMaScheduler(accelerator, config)

    # ----------------------------------------------------- prefill vs decode
    print("=== prefill vs decode (batch 1) ===")
    for phase in ("gpt2-prefill", "gpt2-decode"):
        kwargs = {"variant": args.variant}
        if args.seq_len is not None:
            kwargs["seq_len" if phase == "gpt2-prefill" else "context_len"] = args.seq_len
        workload = build_workload(phase, batch=1, **kwargs)
        result = scheduler.schedule(workload)
        evaluation = result.evaluation
        print(
            f"{workload.name:28s} latency {evaluation.latency_s * 1e3:8.3f} ms   "
            f"util {evaluation.compute_utilization(accelerator) * 100:6.2f}%   "
            f"(bound {evaluation.theoretical_max_utilization(accelerator) * 100:6.2f}%)   "
            f"DRAM busy {evaluation.dram_utilization() * 100:5.1f}%"
        )

    # -------------------------------------------- decode utilisation vs batch
    print("\n=== decode utilisation vs batch size ===")
    print(f"{'batch':>6s} {'latency (ms)':>14s} {'utilisation':>12s} {'KV+weights (MB)':>16s}")
    for batch in args.batches:
        kwargs = {"variant": args.variant}
        if args.seq_len is not None:
            kwargs["context_len"] = args.seq_len
        workload = build_workload("gpt2-decode", batch=batch, **kwargs)
        result = scheduler.schedule(workload)
        utilisation = result.evaluation.compute_utilization(accelerator)
        print(
            f"{batch:>6d} {result.evaluation.latency_s * 1e3:>14.3f} "
            f"{utilisation * 100:>11.2f}% {workload.total_weight_bytes / 1e6:>16.1f}"
        )
    print(
        "\nNote how utilisation grows sub-linearly with the batch: the KV cache "
        "(counted in the last column) grows with the batch while the weights do not."
    )


if __name__ == "__main__":
    main()
