#!/usr/bin/env python3
"""Quickstart: schedule ResNet-50 on the edge accelerator with SoMa.

This is the smallest end-to-end use of the library: build a workload, pick a
hardware platform, run the two-stage SoMa exploration and print the resulting
latency / energy report next to the Cocco baseline.

Run with:  python examples/quickstart.py [--batch 1] [--fast]
"""

from __future__ import annotations

import argparse

from repro import (
    CoccoScheduler,
    SoMaConfig,
    SoMaScheduler,
    build_workload,
    edge_accelerator,
)
from repro.core.config import SAParams


def make_config(fast: bool) -> SoMaConfig:
    """A search budget suited to an interactive example run."""
    if fast:
        return SoMaConfig.fast()
    return SoMaConfig(
        lfa_sa=SAParams(iterations_per_unit=20.0, max_iterations=2500),
        dlsa_sa=SAParams(iterations_per_unit=8.0, max_iterations=3000),
        max_allocator_iterations=3,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--batch", type=int, default=1, help="batch size (paper: 1/4/16/64)")
    parser.add_argument("--workload", default="resnet50", help="registry name of the workload")
    parser.add_argument("--fast", action="store_true", help="use a very small search budget")
    args = parser.parse_args()

    accelerator = edge_accelerator()
    workload = build_workload(args.workload, batch=args.batch)
    config = make_config(args.fast)

    print(f"workload : {workload.name}  ({len(workload)} layers, batch {workload.batch})")
    print(f"hardware : {accelerator.name}  ({accelerator.peak_tops:.1f} TOPS, "
          f"{accelerator.gbuf_bytes / 1e6:.0f} MB GBUF, "
          f"{accelerator.dram_bandwidth_bytes_per_s / 1e9:.0f} GB/s DRAM)")

    print("\nrunning the Cocco baseline ...")
    cocco = CoccoScheduler(accelerator, config).schedule(workload)
    print("  " + cocco.evaluation.describe())

    print("running SoMa (stage 1 + stage 2) ...")
    soma = SoMaScheduler(accelerator, config).schedule(workload)
    print("  stage 1: " + soma.stage1.evaluation.describe())
    print("  stage 2: " + soma.stage2.evaluation.describe())

    speedup = cocco.evaluation.latency_s / soma.evaluation.latency_s
    energy_saving = 100.0 * (1.0 - soma.evaluation.energy_j / cocco.evaluation.energy_j)
    print("\nSoMa vs Cocco")
    print(f"  performance improvement : {speedup:.2f}x")
    print(f"  energy reduction        : {energy_saving:.1f}%")
    print(f"  compute utilisation     : {soma.evaluation.compute_utilization(accelerator):.3f} "
          f"(theoretical max {soma.evaluation.theoretical_max_utilization(accelerator):.3f})")
    print(f"  LGs (SoMa / Cocco)      : {soma.evaluation.num_lgs} / {cocco.evaluation.num_lgs}")
    print(f"  best encoding           : {soma.encoding.lfa.describe()}")


if __name__ == "__main__":
    main()
