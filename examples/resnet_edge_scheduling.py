#!/usr/bin/env python3
"""ResNet-50 on the edge platform: execution graphs and the compiler flow.

Mirrors the paper's practical example (Sec. VII-B / Fig. 8): it schedules
ResNet-50 with the Cocco baseline, SoMa stage 1 and SoMa stage 2, prints an
ASCII execution graph for each scheme (DRAM row, COMPUTE row, group layout),
and finally lowers the best scheme to the IR and the abstract instruction
stream the accelerator would execute.

Run with:  python examples/resnet_edge_scheduling.py [--fast]
"""

from __future__ import annotations

import argparse

from repro import CoccoScheduler, SoMaConfig, SoMaScheduler, build_workload, edge_accelerator
from repro.analysis.execution_graph import build_execution_graph
from repro.compiler.codegen import lower_result
from repro.compiler.ir import generate_ir
from repro.core.config import SAParams
from repro.core.double_buffer import double_buffer_dlsa
from repro.core.evaluator import ScheduleEvaluator


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--batch", type=int, default=1)
    parser.add_argument("--fast", action="store_true")
    args = parser.parse_args()

    accelerator = edge_accelerator()
    workload = build_workload("resnet50", batch=args.batch)
    config = SoMaConfig.fast() if args.fast else SoMaConfig(
        lfa_sa=SAParams(iterations_per_unit=20.0, max_iterations=2500),
        dlsa_sa=SAParams(iterations_per_unit=8.0, max_iterations=3000),
        max_allocator_iterations=3,
    )
    evaluator = ScheduleEvaluator(accelerator)

    # ----------------------------------------------------------------- Cocco
    cocco_scheduler = CoccoScheduler(accelerator, config)
    cocco = cocco_scheduler.schedule(workload)
    cocco_plan, cocco_dlsa = cocco_scheduler.parse(workload, cocco.encoding.lfa)
    cocco_trace = evaluator.evaluate(cocco_plan, cocco_dlsa, include_trace=True)
    print(build_execution_graph(cocco_plan, cocco_dlsa, cocco_trace, "Cocco").render_ascii())
    print()

    # ------------------------------------------------------------------ SoMa
    soma = SoMaScheduler(accelerator, config).schedule(workload)

    stage1_plan, stage1_dlsa_enc = soma.stage1.encoding.parse(workload)
    stage1_dlsa = stage1_dlsa_enc if stage1_dlsa_enc is not None else double_buffer_dlsa(stage1_plan)
    stage1_trace = evaluator.evaluate(stage1_plan, stage1_dlsa, include_trace=True)
    print(build_execution_graph(stage1_plan, stage1_dlsa, stage1_trace, "SoMa stage 1").render_ascii())
    print()

    stage2_trace = evaluator.evaluate(soma.plan, soma.dlsa, include_trace=True)
    print(build_execution_graph(soma.plan, soma.dlsa, stage2_trace, "SoMa stage 2").render_ascii())
    print()

    # ------------------------------------------------------------- compiler
    ir = generate_ir(soma.plan, soma.dlsa)
    program = lower_result(soma.plan, soma.dlsa)
    print(f"IR: {ir.num_tiles} compute tiles, {ir.num_dram_tensors} DRAM tensors "
          f"({len(ir.to_json())} bytes of JSON)")
    print(f"instruction stream: {program.num_instructions} instructions "
          f"({len(program.dram_queue)} DRAM, {len(program.compute_queue)} compute)")
    print("\nfirst ten instructions of the DRAM queue:")
    for instruction in program.dram_queue[:10]:
        print("  " + instruction.describe())


if __name__ == "__main__":
    main()
