#!/usr/bin/env python3
"""DRAM/compute imbalance analysis (paper Fig. 3).

Prints, for a CNN and a transformer workload, the normalised DRAM-access and
operation count per layer and — after scheduling with the Cocco baseline —
per computing tile, and quantifies how much more "spread out" the per-tile
cloud is.  This is the observation motivating prefetching and delayed
storing.

Run with:  python examples/imbalance_analysis.py [--fast]
"""

from __future__ import annotations

import argparse

from repro import CoccoScheduler, SoMaConfig, build_workload, edge_accelerator
from repro.analysis.imbalance import (
    axis_hugging_fraction,
    layer_imbalance,
    spread_metric,
    tile_imbalance,
)


def _histogram(points, buckets: int = 10) -> str:
    """A terminal-friendly 2D density sketch of the scatter plot."""
    grid = [[0] * buckets for _ in range(buckets)]
    for point in points:
        x = min(buckets - 1, int(point.normalized_ops * buckets))
        y = min(buckets - 1, int(point.normalized_dram * buckets))
        grid[buckets - 1 - y][x] += 1
    shades = " .:*#@"
    lines = []
    for row in grid:
        line = "".join(shades[min(len(shades) - 1, count)] for count in row)
        lines.append("|" + line + "|")
    lines.append("+" + "-" * buckets + "+  (x: normalised ops, y: normalised DRAM access)")
    return "\n".join(lines)


def analyse(name: str, workload_kwargs: dict, config: SoMaConfig) -> None:
    accelerator = edge_accelerator()
    workload = build_workload(name, batch=1, **workload_kwargs)
    scheduler = CoccoScheduler(accelerator, config)
    scheduled = scheduler.schedule(workload)
    plan, _ = scheduler.parse(workload, scheduled.encoding.lfa)

    layers = layer_imbalance(workload)
    tiles = tile_imbalance(plan)

    print(f"=== {workload.name} ===")
    print(f"per-layer points : {len(layers):5d}   spread {spread_metric(layers):.3f}   "
          f"axis-hugging {axis_hugging_fraction(layers) * 100:.1f}%")
    print(_histogram(layers))
    print(f"per-tile points  : {len(tiles):5d}   spread {spread_metric(tiles):.3f}   "
          f"axis-hugging {axis_hugging_fraction(tiles) * 100:.1f}%")
    print(_histogram(tiles))
    print()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true")
    parser.add_argument("--seq-len", type=int, default=512)
    args = parser.parse_args()
    config = SoMaConfig.fast() if args.fast else SoMaConfig()

    analyse("resnet50", {}, config)
    analyse("gpt2-prefill", {"variant": "small", "seq_len": args.seq_len}, config)


if __name__ == "__main__":
    main()
