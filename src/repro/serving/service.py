"""The scheduling service: admission control, memoisation and warm dispatch.

:class:`ScheduleService` sits between a front-end (stdin/stdout JSON lines,
HTTP, or direct Python calls) and the search engine.  For every request it
tries, in order:

1. the **cross-request result memo** — an LRU keyed by
   :func:`repro.core.caching.schedule_request_key` (graph fingerprint,
   accelerator, config, seed, restarts); hits serve a finished payload with
   no search at all.  With ``memo_path`` set the memo is reloaded on start
   and spilled to disk on shutdown (plus a periodic flush), so a restarted
   service keeps answering repeat traffic immediately;
2. **in-flight coalescing** — identical requests already queued or being
   computed share one search (micro-batching duplicates: ``schedule_many``
   dispatches one task per unique fingerprint);
3. the **bounded admission queue** — every cache-missing request waits in a
   priority queue (higher ``priority`` first, then earlier deadline, then
   FIFO) drained by one dispatcher thread per worker.  A full queue rejects
   the request immediately (``rejected`` provenance, HTTP 429); a queued
   request whose ``deadline_ms`` passes before dispatch is expired instead
   of run (``expired`` provenance, HTTP 504).  Memo and coalescing hits
   bypass the queue entirely, so cheap requests stay cheap under load;
4. the **persistent worker pool**
   (:class:`~repro.experiments.parallel.PersistentPool`) — each worker
   process keeps its schedulers, per-graph parse/segment/tiling LRUs and
   evaluator contexts alive across requests, so repeat workloads run against
   warm caches.

The pool is **self-healing**: a worker that dies mid-search fails the
attempt with a typed ``WorkerCrashError`` (never a hang), is respawned, and
the search is retried with capped deterministic backoff — within the
request's deadline and the ``--retries`` budget.  Per-worker circuit
breakers steer traffic away from crash-looping workers, and when the whole
pool is unhealthy the service degrades to in-process serial execution.
Deterministic fault injection (``REPRO_FAULT_SPEC``, see
:mod:`repro.serving.faults`) exercises all of this reproducibly;
``benchmarks/test_serving_faults.py`` asserts that results accepted under
injected crashes stay bit-identical to a direct schedule call.

Results are bit-identical to a direct ``SoMaScheduler.schedule`` call with
the same seed for any worker count and queue size (asserted by
``benchmarks/test_serving_throughput.py`` and
``benchmarks/test_serving_burst.py``); every response reports which level
served it.  Response payload dictionaries may be shared between
coalesced/memoised responses — treat them as read-only.
"""

from __future__ import annotations

import heapq
import math
import os
import random
import threading
import time
import warnings

from repro.analysis.schedule_report import build_schedule_report, evaluation_to_payload
from repro.core.buffer_allocator import stage_pipeline_enabled
from repro.core.caching import (
    LRUCache,
    SCHEDULE_KEY_SCHEMA,
    SERVE_MEMO_DEFAULT,
    cache_size,
    cache_stats_delta,
    collect_search_cache_stats,
    parse_env_int,
    reload_lru,
    schedule_request_key,
    spill_items,
)
from repro.core.knobs import read_str
from repro.core.result import SoMaResult
from repro.core.soma import SoMaScheduler
from repro.errors import WorkerCrashError, WorkerTimeoutError
from repro.experiments.parallel import (
    PersistentPool,
    coerce_workers,
    derive_seed,
    multi_restart_schedule,
    resolve_workers,
)
from repro.serving.faults import active_fault_plan
from repro.serving.protocol import (
    ERROR_KIND_BAD_REQUEST,
    ERROR_KIND_DEADLINE,
    ERROR_KIND_OVERLOAD,
    ERROR_KIND_SEARCH,
    ERROR_KIND_TIMEOUT,
    ERROR_KIND_WORKER_CRASH,
    PROVENANCE_COALESCED,
    PROVENANCE_COLD,
    PROVENANCE_EXPIRED,
    PROVENANCE_MEMO,
    PROVENANCE_REJECTED,
    PROVENANCE_WARM,
    ScheduleRequest,
    ScheduleResponse,
)
from repro.workloads.registry import build_workload

SERVE_WORKERS_ENV = "REPRO_SERVE_WORKERS"
SERVE_QUEUE_ENV = "REPRO_SERVE_QUEUE"
SERVE_MEMO_PATH_ENV = "REPRO_SERVE_MEMO_PATH"
SERVE_RETRIES_ENV = "REPRO_SERVE_RETRIES"

#: Default capacity of the admission queue (``--queue-size`` /
#: ``REPRO_SERVE_QUEUE``); 0 disables queueing (every cache miss is
#: rejected), which is occasionally useful as a memo-only mode.
SERVE_QUEUE_DEFAULT = 64

#: Seconds between periodic memo flushes when persistence is enabled.
MEMO_FLUSH_SECONDS_DEFAULT = 60.0

#: Default number of re-dispatches after a worker crash (``--retries`` /
#: ``REPRO_SERVE_RETRIES``); 0 fails a crashed search immediately.  Retries
#: apply *only* to ``worker_crash`` failures — a deterministic search error
#: or a bad request would fail identically on every attempt.
SERVE_RETRIES_DEFAULT = 1

#: Retry backoff: capped exponential with deterministic jitter, so a chaos
#: run's schedule is reproducible.  attempt 0 waits ~BASE, each retry
#: doubles, never beyond CAP and never beyond the request's deadline.
RETRY_BACKOFF_BASE_SECONDS = 0.05
RETRY_BACKOFF_CAP_SECONDS = 1.0

#: Circuit breaker: after ``BREAKER_THRESHOLD`` *consecutive* crashes on one
#: worker the breaker opens and traffic routes to surviving workers for
#: ``BREAKER_COOLDOWN``s, then one trial request probes the respawned worker
#: (half-open); a success closes the breaker, a crash reopens it.
BREAKER_THRESHOLD_DEFAULT = 3
BREAKER_COOLDOWN_SECONDS_DEFAULT = 5.0

#: Provenance value used by error responses (never by successful ones).
PROVENANCE_ERROR = "error"


def _coerce_retries(value: int, source: str) -> int:
    value = int(value)
    if value < 0:
        warnings.warn(
            f"retry budget {value} from {source} is negative; using 0 "
            "(crashed searches fail immediately)",
            RuntimeWarning,
            stacklevel=3,
        )
        return 0
    return value


def resolve_retries(retries: int | None = None) -> int:
    """Crash-retry budget: argument, ``REPRO_SERVE_RETRIES``, then 1."""
    if retries is not None:
        return _coerce_retries(retries, "the retries argument")
    value = parse_env_int(
        SERVE_RETRIES_ENV, f"using the default retry budget {SERVE_RETRIES_DEFAULT}"
    )
    if value is None:
        return SERVE_RETRIES_DEFAULT
    return _coerce_retries(value, SERVE_RETRIES_ENV)


def retry_backoff_seconds(key: str, attempt: int) -> float:
    """Deterministically jittered backoff before retry ``attempt`` (1-based).

    The jitter is drawn from a stable hash of (request key, attempt), not
    shared ``random`` state, so two identical chaos runs sleep identically.
    """
    base = min(
        RETRY_BACKOFF_CAP_SECONDS,
        RETRY_BACKOFF_BASE_SECONDS * (2 ** max(0, attempt - 1)),
    )
    rng = random.Random(derive_seed(0xB0FF, "retry", key, attempt))
    return base * (0.5 + 0.5 * rng.random())


def resolve_serve_workers(workers: int | None = None) -> int:
    """Service worker count: argument, ``REPRO_SERVE_WORKERS``, then the
    generic ``REPRO_WORKERS`` resolution.  Non-positive values degrade to
    serial with a ``RuntimeWarning`` (see
    :func:`repro.experiments.parallel.coerce_workers`)."""
    if workers is not None:
        return coerce_workers(workers, "the workers argument")
    value = parse_env_int(SERVE_WORKERS_ENV, "falling back to REPRO_WORKERS")
    if value is not None:
        return coerce_workers(value, SERVE_WORKERS_ENV)
    return resolve_workers(None)


def _coerce_queue_size(value: int, source: str) -> int:
    """Clamp a queue size to >= 0, warning when that changes the value.

    0 is a deliberate memo-only mode and stays silent; a *negative* size is
    a typo that would silently become reject-every-cache-miss, so it warns
    the same way non-positive worker counts do.
    """
    value = int(value)
    if value < 0:
        warnings.warn(
            f"queue size {value} from {source} is negative; using 0 "
            "(every cache miss is rejected)",
            RuntimeWarning,
            stacklevel=3,
        )
        return 0
    return value


def resolve_queue_size(queue_size: int | None = None) -> int:
    """Admission-queue capacity: argument, ``REPRO_SERVE_QUEUE``, then 64."""
    if queue_size is not None:
        return _coerce_queue_size(queue_size, "the queue_size argument")
    value = parse_env_int(
        SERVE_QUEUE_ENV, f"using the default queue size {SERVE_QUEUE_DEFAULT}"
    )
    if value is None:
        return SERVE_QUEUE_DEFAULT
    return _coerce_queue_size(value, SERVE_QUEUE_ENV)


def resolve_memo_path(memo_path: str | os.PathLike | None = None) -> str | None:
    """Memo spill path: argument, ``REPRO_SERVE_MEMO_PATH``, then disabled."""
    if memo_path is not None:
        return os.fspath(memo_path)
    return read_str(SERVE_MEMO_PATH_ENV)


# ------------------------------------------------------------- worker side
# Per-process warm state, bounded so a long-lived worker serving a stream of
# distinct workloads/configs cannot grow without limit: graphs are keyed by
# the workload spec so the per-graph LRUs (which key off the graph *object*)
# survive across requests, and schedulers are keyed by (platform, config) so
# their evaluator caches and mappers stay populated.
_WORKER_GRAPHS = LRUCache(cache_size("SERVE_GRAPHS", 64))
_WORKER_SCHEDULERS = LRUCache(cache_size("SERVE_SCHEDULERS", 32))


def result_payload(result: SoMaResult) -> dict:
    """The ``ScheduleReport``-compatible payload of one finished search."""
    report = build_schedule_report(result.plan, result.evaluation)
    return {
        "workload": result.workload_name,
        "accelerator": result.accelerator_name,
        "report": report.to_payload(),
        "evaluation": evaluation_to_payload(result.evaluation),
        "stage1": evaluation_to_payload(result.stage1.evaluation),
        "stage2": evaluation_to_payload(result.stage2.evaluation),
        "allocator_iterations": result.allocator_iterations,
        "stage1_buffer_budget_bytes": result.stage1_buffer_budget_bytes,
        "search_seconds": result.search_seconds,
    }


def _execute_request(
    request: ScheduleRequest, fanout_workers: int | None = None
) -> dict:
    """Run one request in this process, reusing warm state when present.

    Module-level function so the persistent pool can pickle it; the reply is
    a plain dictionary (payload, provenance, worker pid, cache-activity
    delta) because responses also need per-request timing from the parent.

    ``fanout_workers`` is the idle-pool grant: a positive value hands the
    schedule call that many allocator workers for intra-schedule
    parallelism (speculative stage-1 batches plus the pinned stage-2
    worker).  ``None`` keeps the environment-resolved default, which inside
    a pool worker is always in-process execution.
    """
    graph_key = (request.workload, request.batch, request.workload_kwargs)
    graph = _WORKER_GRAPHS.get(graph_key)
    graph_warm = graph is not None
    if graph is None:
        graph = build_workload(
            request.workload, batch=request.batch, **request.workload_kwargs_dict
        )
        _WORKER_GRAPHS.put(graph_key, graph)

    config = request.build_config()
    # The seed is always passed explicitly to ``schedule``, so schedulers are
    # shared across requests that differ only in seed (the config's own seed
    # field never reaches the search) — warm caches survive seed sweeps.
    scheduler_key = (request.platform, config.with_seed(0))
    scheduler = _WORKER_SCHEDULERS.get(scheduler_key)
    scheduler_warm = scheduler is not None
    if scheduler is None:
        scheduler = SoMaScheduler(request.build_accelerator(), config)
        _WORKER_SCHEDULERS.put(scheduler_key, scheduler)

    before = collect_search_cache_stats(graph, scheduler.evaluator)
    if request.restarts == 1:
        result = scheduler.schedule(
            graph, seed=request.seed, fanout_workers=fanout_workers
        )
    else:
        # Pool workers are daemonic and cannot fork grandchildren, so the
        # restart chains of one request always run serially in this worker.
        result = multi_restart_schedule(
            scheduler.accelerator,
            graph,
            config=config,
            seed=request.seed,
            restarts=request.restarts,
            workers=1,
        )
    after = collect_search_cache_stats(graph, scheduler.evaluator)

    return {
        "payload": result_payload(result),
        "provenance": PROVENANCE_WARM if (graph_warm and scheduler_warm) else PROVENANCE_COLD,
        "pid": os.getpid(),
        "search_seconds": result.search_seconds,
        "fanout_workers": int(fanout_workers or 0),
        "cache_stats": cache_stats_delta(before, after),
    }


def _execute_attempt(task: tuple) -> dict:
    """Run one (request, attempt[, fanout]) task, fault harness first.

    This is the function the dispatcher actually submits to the pool.  The
    attempt number is part of the fault-draw key so a retried request sees a
    *fresh* deterministic draw — otherwise a crash decision would repeat on
    every retry and the retry budget could never save a request.  The
    optional third element is the idle-pool fan-out grant (parent-side
    execution only — it never travels to a pool worker); two-element tasks
    stay valid so tests that monkeypatch the executor keep working.
    Delegates to ``_execute_request`` through the module global for the
    same reason.
    """
    request, attempt, *rest = task
    plan = active_fault_plan()
    if plan is not None:
        plan.apply(
            (request.workload, request.platform, request.seed, request.request_id, attempt)
        )
    if rest and rest[0]:
        return _execute_request(request, fanout_workers=rest[0])
    # Plain single-argument call so monkeypatched executors keep working.
    return _execute_request(request)


def reset_worker_state() -> None:
    """Drop this process's warm graphs/schedulers (test isolation hook)."""
    _WORKER_GRAPHS.clear()
    _WORKER_SCHEDULERS.clear()


def worker_state_sizes() -> tuple[int, int]:
    """(warm graphs, warm schedulers) resident in this process."""
    return len(_WORKER_GRAPHS), len(_WORKER_SCHEDULERS)


# ----------------------------------------------------------- circuit breaker
class _CircuitBreaker:
    """Crash-loop protection for one pool worker.

    Closed (healthy) → ``threshold`` consecutive crashes open it → after
    ``cooldown`` seconds one trial request is allowed through (half-open);
    success closes the breaker, another crash reopens it for a fresh
    cooldown.  Not thread-safe on its own — the service serialises access
    under its lock.
    """

    __slots__ = ("threshold", "cooldown", "consecutive_failures", "opened_at", "trips")

    def __init__(self, threshold: int, cooldown: float) -> None:
        self.threshold = max(1, int(threshold))
        self.cooldown = float(cooldown)
        self.consecutive_failures = 0
        self.opened_at: float | None = None
        self.trips = 0

    def state(self, now: float) -> str:
        if self.opened_at is None:
            return "closed"
        if now - self.opened_at >= self.cooldown:
            return "half_open"
        return "open"

    def allows(self, now: float) -> bool:
        """May a request be routed to this worker right now?"""
        return self.state(now) != "open"

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self.opened_at = None

    def record_failure(self, now: float) -> None:
        self.consecutive_failures += 1
        if self.opened_at is not None:
            # A half-open trial crashed: reopen for a fresh cooldown.
            self.opened_at = now
            self.trips += 1
        elif self.consecutive_failures >= self.threshold:
            self.opened_at = now
            self.trips += 1

    def snapshot(self, now: float) -> dict:
        return {
            "state": self.state(now),
            "consecutive_failures": self.consecutive_failures,
            "trips": self.trips,
        }


# ----------------------------------------------------------- admission queue
class _QueueEntry:
    """One admitted request plus the shared state its waiters block on.

    The leader and every coalesced follower hold the same entry; a dispatcher
    (or ``close``) resolves it exactly once by filling ``outcome`` and
    setting ``event``.  ``deadline`` is an absolute ``time.monotonic()``
    instant (``None`` when the request carries no deadline); followers share
    the leader's queue slot and therefore the leader's deadline.
    """

    __slots__ = (
        "request",
        "key",
        "affinity",
        "priority",
        "deadline",
        "event",
        "outcome",
        "reply",
        "error",
        "error_kind",
        "dispatched",
        "retries",
    )

    OUTCOME_DONE = "done"
    OUTCOME_ERROR = "error"
    OUTCOME_EXPIRED = "expired"
    OUTCOME_CANCELLED = "cancelled"

    def __init__(self, request: ScheduleRequest, key: str, affinity: str) -> None:
        self.request = request
        self.key = key
        self.affinity = affinity
        self.priority = request.priority
        self.deadline = (
            time.monotonic() + request.deadline_ms / 1000.0
            if request.deadline_ms is not None
            else None
        )
        self.event = threading.Event()
        self.outcome: str | None = None
        self.reply: dict | None = None
        self.error = ""
        self.error_kind = ""  # refines OUTCOME_ERROR/EXPIRED (crash vs timeout)
        self.dispatched = False  # a worker has (or had) this search in flight
        self.retries = 0


class _RequestQueue:
    """A bounded, closeable priority queue of :class:`_QueueEntry` items.

    Ordering: higher ``priority`` first, then earlier deadline (no deadline
    sorts last), then admission order.  ``put`` never blocks — a full (or
    closed) queue returns ``False``, which is the admission-control signal.
    ``get`` blocks until an entry is available or the queue is closed, in
    which case it returns ``None`` forever after.
    """

    def __init__(self, maxsize: int) -> None:
        self.maxsize = max(0, maxsize)
        self._heap: list = []
        self._sequence = 0
        self._closed = False
        self._condition = threading.Condition(threading.Lock())

    def __len__(self) -> int:
        with self._condition:
            return len(self._heap)

    def put(self, entry: _QueueEntry) -> bool:
        with self._condition:
            if self._closed or len(self._heap) >= self.maxsize:
                return False
            deadline_rank = entry.deadline if entry.deadline is not None else math.inf
            heapq.heappush(
                self._heap, (-entry.priority, deadline_rank, self._sequence, entry)
            )
            self._sequence += 1
            self._condition.notify()
            return True

    def get(self) -> _QueueEntry | None:
        with self._condition:
            while not self._heap and not self._closed:
                self._condition.wait()
            if self._heap:
                return heapq.heappop(self._heap)[-1]
            return None

    def close(self) -> list[_QueueEntry]:
        """Refuse new entries, wake every waiter, return the drained backlog."""
        with self._condition:
            self._closed = True
            drained = [item[-1] for item in self._heap]
            self._heap.clear()
            self._condition.notify_all()
            return drained


# ------------------------------------------------------------- parent side
class _ReadyResponse:
    """A future whose response is already known (memo hits, rejections)."""

    __slots__ = ("_response",)

    def __init__(self, response: ScheduleResponse) -> None:
        self._response = response

    def result(self) -> ScheduleResponse:
        return self._response


class _PendingResponse:
    """A response future backed by a (possibly shared) queue entry.

    Every waiter enforces *its own* ``deadline_ms`` while blocking: a
    coalesced follower whose deadline is earlier than the leader's
    completion expires individually (``expired`` provenance) while the
    leader's search keeps running, and a leader stuck behind an unkillable
    in-process search (serial pools, degraded mode) is still answered by its
    deadline.  A result that lands after a waiter expired is not wasted —
    the dispatcher memoises it for future requests.
    """

    __slots__ = ("_service", "_request", "_entry", "_leader", "_started", "_deadline")

    def __init__(self, service, request, entry, leader, started) -> None:
        self._service = service
        self._request = request
        self._entry = entry
        self._leader = leader
        self._started = started
        self._deadline = (
            time.monotonic() + request.deadline_ms / 1000.0
            if request.deadline_ms is not None
            else None
        )

    def _expired_response(self, elapsed: float) -> ScheduleResponse:
        entry = self._entry
        if entry.dispatched:
            error_kind = ERROR_KIND_TIMEOUT
            detail = "while the search was in flight"
        else:
            error_kind = ERROR_KIND_DEADLINE
            detail = "while waiting in the queue"
        role = "leader" if self._leader else "coalesced follower"
        return self._service._record(
            ScheduleResponse(
                request_id=self._request.request_id,
                ok=False,
                provenance=PROVENANCE_EXPIRED,
                error=(
                    f"deadline of {self._request.deadline_ms:g} ms expired "
                    f"{detail} ({role})"
                ),
                error_kind=error_kind,
                service_seconds=elapsed,
                retries=entry.retries,
            )
        )

    def result(self) -> ScheduleResponse:
        entry = self._entry
        while not entry.event.is_set():
            if self._deadline is None:
                entry.event.wait()
                break
            remaining = self._deadline - time.monotonic()
            if remaining <= 0:
                # Check once more: a resolution racing the deadline wins.
                if entry.event.is_set():
                    break
                return self._expired_response(time.perf_counter() - self._started)
            entry.event.wait(remaining)
        elapsed = time.perf_counter() - self._started
        if entry.outcome == _QueueEntry.OUTCOME_DONE:
            reply = entry.reply
            provenance = reply["provenance"] if self._leader else PROVENANCE_COALESCED
            return self._service._record(
                ScheduleResponse(
                    request_id=self._request.request_id,
                    ok=True,
                    provenance=provenance,
                    result=reply["payload"],
                    search_seconds=reply["search_seconds"],
                    service_seconds=elapsed,
                    worker_pid=reply["pid"],
                    retries=entry.retries,
                    fanout_workers=reply.get("fanout_workers", 0),
                    cache_stats=reply["cache_stats"] if self._leader else None,
                )
            )
        if entry.outcome == _QueueEntry.OUTCOME_EXPIRED:
            provenance = PROVENANCE_EXPIRED
            error_kind = entry.error_kind or ERROR_KIND_DEADLINE
        elif entry.outcome == _QueueEntry.OUTCOME_CANCELLED:
            provenance, error_kind = PROVENANCE_REJECTED, ERROR_KIND_OVERLOAD
        else:
            provenance = PROVENANCE_ERROR
            error_kind = entry.error_kind or ERROR_KIND_SEARCH
        return self._service._record(
            ScheduleResponse(
                request_id=self._request.request_id,
                ok=False,
                provenance=provenance,
                error=entry.error,
                error_kind=error_kind,
                service_seconds=elapsed,
                retries=entry.retries,
            )
        )


class ScheduleService:
    """Serves schedule requests with memoisation, admission and warm workers.

    Thread-safe: the HTTP front-end calls :meth:`schedule` from handler
    threads.  ``workers`` resolves through :func:`resolve_serve_workers`;
    ``memo_size`` through ``REPRO_SERVE_MEMO_CACHE`` (0 disables the memo);
    ``queue_size`` through ``REPRO_SERVE_QUEUE`` (0 rejects every cache
    miss); ``memo_path`` through ``REPRO_SERVE_MEMO_PATH`` (``None``
    disables persistence); ``retries`` through ``REPRO_SERVE_RETRIES``
    (crash-only re-dispatch budget).  Use as a context manager (or call
    :meth:`close`) so the dispatcher threads, worker processes and the final
    memo spill are torn down deterministically.

    Failure handling: a search whose worker process dies is retried up to
    ``retries`` times with capped, deterministically jittered backoff —
    never past the request's deadline, and never for ``bad_request`` or
    ``search`` failures, which are deterministic.  Each worker has a
    circuit breaker (``breaker_threshold`` consecutive crashes open it for
    ``breaker_cooldown_seconds``); open breakers steer traffic to surviving
    workers, and when *every* breaker is open the service degrades to
    in-process serial execution so requests are still answered.
    """

    def __init__(
        self,
        workers: int | None = None,
        memo_size: int | None = None,
        queue_size: int | None = None,
        memo_path: str | os.PathLike | None = None,
        memo_flush_seconds: float = MEMO_FLUSH_SECONDS_DEFAULT,
        retries: int | None = None,
        breaker_threshold: int = BREAKER_THRESHOLD_DEFAULT,
        breaker_cooldown_seconds: float = BREAKER_COOLDOWN_SECONDS_DEFAULT,
    ) -> None:
        active_fault_plan()  # fail fast on a malformed REPRO_FAULT_SPEC
        self.workers = resolve_serve_workers(workers)
        self.retries = resolve_retries(retries)
        self._pool = PersistentPool(self.workers)
        self._breakers = [
            _CircuitBreaker(breaker_threshold, breaker_cooldown_seconds)
            for _ in range(self.workers)
        ]
        self._degraded_lock = threading.Lock()
        # At most one idle-pool fan-out runs at a time (it claims every
        # worker); contenders fall back to the normal one-worker path.
        self._fanout_lock = threading.Lock()
        self._fanout_grants = 0
        self._faults = {
            "worker_crashes": 0,
            "timeouts": 0,
            "retries": 0,
            "degraded_executions": 0,
        }
        if memo_size is None:
            memo_size = cache_size("SERVE_MEMO", SERVE_MEMO_DEFAULT)
        self._memo = LRUCache(memo_size)
        self._graphs = LRUCache(64)  # parent-side graphs, for fingerprinting only
        self._lock = threading.Lock()
        self._inflight: dict[str, _QueueEntry] = {}
        self._counters = {
            PROVENANCE_MEMO: 0,
            PROVENANCE_COALESCED: 0,
            PROVENANCE_WARM: 0,
            PROVENANCE_COLD: 0,
            PROVENANCE_ERROR: 0,
            PROVENANCE_REJECTED: 0,
            PROVENANCE_EXPIRED: 0,
        }
        self._requests = 0
        self._worker_cache_totals: dict = {}
        self._closed = False

        self.memo_path = resolve_memo_path(memo_path)
        self._memo_dirty = False
        self._memo_flushes = 0
        self._memo_reloaded = 0
        self._flush_lock = threading.Lock()
        if self.memo_path is not None and self._memo.maxsize > 0:
            self._memo_reloaded = reload_lru(
                self._memo, self.memo_path, SCHEDULE_KEY_SCHEMA
            )

        self._queue = _RequestQueue(resolve_queue_size(queue_size))
        self._dispatchers = [
            threading.Thread(
                target=self._dispatch_loop,
                name=f"repro-serve-dispatch-{index}",
                daemon=True,
            )
            for index in range(self.workers)
        ]
        for thread in self._dispatchers:
            thread.start()
        self._flusher: threading.Thread | None = None
        self._flusher_stop = threading.Event()
        if self.memo_path is not None and memo_flush_seconds > 0:
            self._flusher = threading.Thread(
                target=self._flush_loop,
                args=(float(memo_flush_seconds),),
                name="repro-serve-memo-flush",
                daemon=True,
            )
            self._flusher.start()

    # ----------------------------------------------------------------- public
    def schedule(self, request: ScheduleRequest) -> ScheduleResponse:
        """Serve one request (blocking)."""
        return self._submit(request).result()

    def schedule_many(self, requests: list[ScheduleRequest]) -> list[ScheduleResponse]:
        """Serve a micro-batch: duplicates coalesce onto one search.

        All unique cache-missing requests are admitted to the queue before
        the first result is awaited, so a batch fans across every available
        worker.
        """
        futures = [self._submit(request) for request in requests]
        return [future.result() for future in futures]

    def request_fingerprint(self, request: ScheduleRequest) -> str:
        """The memo/coalescing key of a request (builds the graph if needed)."""
        return self._keys(request)[0]

    def _keys(self, request: ScheduleRequest) -> tuple[str, str]:
        """(memo key, worker-affinity key) of a request.

        The affinity key is the workload graph's fingerprint alone, so every
        request for the same graph — any seed, any config — is routed to the
        worker whose per-graph caches already hold it.  ``priority`` and
        ``deadline_ms`` are serving metadata and take part in neither key.
        """
        graph_key = (request.workload, request.batch, request.workload_kwargs)
        with self._lock:
            graph = self._graphs.get(graph_key)
        if graph is None:
            # Build outside the lock: a cold graph construction must not
            # stall concurrent requests (e.g. memo hits for other keys).
            # Double-checked insert keeps one canonical graph per key.
            graph = build_workload(
                request.workload, batch=request.batch, **request.workload_kwargs_dict
            )
            with self._lock:
                existing = self._graphs.get(graph_key)
                if existing is not None:
                    graph = existing
                else:
                    self._graphs.put(graph_key, graph)
        graph_fingerprint = graph.fingerprint()
        memo_key = schedule_request_key(
            graph_fingerprint,
            request.build_accelerator(),
            request.build_config(),
            request.seed,
            request.restarts,
        )
        return memo_key, graph_fingerprint

    def health(self) -> dict:
        """Liveness summary for ``/healthz``: pool and breaker state merged.

        ``ok`` is False (the endpoint answers 503) when any worker process
        is dead, any breaker is open, or the service is closed — degraded
        states in which some or all traffic cannot reach a warm worker.
        """
        now = time.monotonic()
        rows = self._pool.worker_health()
        with self._lock:
            breakers = [breaker.snapshot(now) for breaker in self._breakers]
            closed = self._closed
        workers = []
        degraded = closed
        for row, breaker in zip(rows, breakers):
            merged = dict(row)
            merged["breaker"] = breaker
            workers.append(merged)
            if not row["alive"] or breaker["state"] == "open":
                degraded = True
        return {
            "ok": not degraded,
            "degraded": degraded,
            "workers": self.workers,
            "worker_health": workers,
        }

    def stats(self) -> dict:
        """Serving counters, queue/memo state and worker-cache statistics."""
        depth = len(self._queue)
        pool = self._pool.supervision_stats()
        idle = self._pool.idle_workers()
        plan = active_fault_plan()
        now = time.monotonic()
        with self._lock:
            return {
                "workers": self.workers,
                "requests": self._requests,
                "provenance": dict(self._counters),
                "fanout": {
                    "idle_workers": idle,
                    "grants": self._fanout_grants,
                    "enabled": stage_pipeline_enabled() and self.workers >= 2,
                },
                "queue": {
                    "depth": depth,
                    "maxsize": self._queue.maxsize,
                    "rejected": self._counters[PROVENANCE_REJECTED],
                    "expired": self._counters[PROVENANCE_EXPIRED],
                },
                "supervision": {
                    "worker_crashes": self._faults["worker_crashes"],
                    "timeouts": self._faults["timeouts"],
                    "retries": self._faults["retries"],
                    "retry_budget": self.retries,
                    "degraded_executions": self._faults["degraded_executions"],
                    "pool_crashes": pool["crashes"],
                    "pool_respawns": pool["respawns"],
                    "breakers": [
                        breaker.snapshot(now) for breaker in self._breakers
                    ],
                    "fault_spec": plan.spec if plan is not None else None,
                },
                "memo": self._memo.stats(),
                "memo_persistence": {
                    "path": self.memo_path,
                    "reloaded_entries": self._memo_reloaded,
                    "flushes": self._memo_flushes,
                },
                "worker_caches": {
                    name: dict(entry) for name, entry in self._worker_cache_totals.items()
                },
            }

    def flush_memo(self) -> bool:
        """Spill the memo to ``memo_path`` now; True when a file was written.

        The service lock is held only long enough to snapshot the entries —
        the JSON serialisation and disk write happen outside it, so a flush
        never stalls concurrent memo lookups or request resolution.  The
        flush lock serialises concurrent flushers (periodic thread, close,
        explicit calls) so writes reach the file in snapshot order.
        """
        if self.memo_path is None or self._memo.maxsize == 0:
            return False
        with self._flush_lock:
            with self._lock:
                snapshot = self._memo.items()
                self._memo_dirty = False
                self._memo_flushes += 1
            spill_items(snapshot, self.memo_path, SCHEDULE_KEY_SCHEMA)
        return True

    def close(self) -> None:
        """Shut the service down deterministically (idempotent).

        Queued-but-undispatched requests fail fast with ``rejected``
        provenance, dispatchers finish their in-flight searches and exit, the
        worker pool drains and joins, and — when persistence is enabled — the
        memo is spilled to disk last so it includes every completed search.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for entry in self._queue.close():
            self._resolve_failure(
                entry, _QueueEntry.OUTCOME_CANCELLED, "service is shutting down"
            )
        for thread in self._dispatchers:
            thread.join()
        self._pool.close()
        if self._flusher is not None:
            self._flusher_stop.set()
            self._flusher.join()
        if self.memo_path is not None and self._memo.maxsize > 0:
            try:
                self.flush_memo()
            except Exception as exc:
                warnings.warn(
                    f"final memo spill to {self.memo_path!r} failed: "
                    f"{type(exc).__name__}: {exc}; the memo was not persisted",
                    RuntimeWarning,
                    stacklevel=2,
                )

    def __enter__(self) -> "ScheduleService":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()

    # --------------------------------------------------------------- internal
    def _submit(self, request: ScheduleRequest):
        started = time.perf_counter()
        try:
            key, affinity = self._keys(request)
        except Exception as exc:  # unknown workload / malformed kwargs
            return _ReadyResponse(
                self._record(
                    ScheduleResponse(
                        request_id=request.request_id,
                        ok=False,
                        provenance=PROVENANCE_ERROR,
                        error=f"{type(exc).__name__}: {exc}",
                        error_kind=ERROR_KIND_BAD_REQUEST,
                        service_seconds=time.perf_counter() - started,
                    )
                )
            )
        with self._lock:
            payload = self._memo.get(key)
            if payload is not None:
                return _ReadyResponse(
                    self._record(
                        ScheduleResponse(
                            request_id=request.request_id,
                            ok=True,
                            provenance=PROVENANCE_MEMO,
                            result=payload,
                            service_seconds=time.perf_counter() - started,
                        ),
                        locked=True,
                    )
                )
            entry = self._inflight.get(key)
            if entry is not None:
                return _PendingResponse(self, request, entry, False, started)
            if self._closed:
                return self._reject(request, "service is closed", started, locked=True)
            entry = _QueueEntry(request, key, affinity)
            if not self._queue.put(entry):
                return self._reject(
                    request,
                    f"request queue is full (capacity {self._queue.maxsize})",
                    started,
                    locked=True,
                )
            self._inflight[key] = entry
        return _PendingResponse(self, request, entry, True, started)

    def _reject(self, request, error, started, locked=False) -> _ReadyResponse:
        return _ReadyResponse(
            self._record(
                ScheduleResponse(
                    request_id=request.request_id,
                    ok=False,
                    provenance=PROVENANCE_REJECTED,
                    error=error,
                    error_kind=ERROR_KIND_OVERLOAD,
                    service_seconds=time.perf_counter() - started,
                ),
                locked=locked,
            )
        )

    def _dispatch_loop(self) -> None:
        """One dispatcher: pop admitted entries, run them on the pool.

        Each dispatcher blocks on its entry's worker result, so at most
        ``workers`` searches are in flight and the queue holds the backlog.
        Exits when the queue is closed and drained.
        """
        while True:
            entry = self._queue.get()
            if entry is None:
                return
            if entry.deadline is not None and time.monotonic() > entry.deadline:
                self._resolve_failure(
                    entry,
                    _QueueEntry.OUTCOME_EXPIRED,
                    f"deadline of {entry.request.deadline_ms:g} ms expired in queue",
                    error_kind=ERROR_KIND_DEADLINE,
                )
                continue
            try:
                self._run_entry(entry)
            except Exception as exc:
                # _run_entry resolves the entry on every expected path; an
                # exception escaping it (resolution bug, stats folding) must
                # neither kill this dispatcher nor leave waiters blocked.
                self._resolve_failure(
                    entry,
                    _QueueEntry.OUTCOME_ERROR,
                    f"response resolution failed: {type(exc).__name__}: {exc}",
                )

    def _run_entry(self, entry: _QueueEntry) -> None:
        """Execute one admitted entry: route, retry on crash, resolve.

        Retries apply *only* to worker crashes — a deterministic search
        error or bad request would fail identically on every attempt — and
        never extend past the request's deadline.  The attempt number feeds
        the fault-injection draw and the backoff jitter, so chaos runs are
        reproducible.
        """
        entry.dispatched = True
        attempt = 0
        while True:
            try:
                reply = self._execute_routed(entry, attempt)
            except WorkerTimeoutError as exc:
                with self._lock:
                    self._faults["timeouts"] += 1
                self._resolve_failure(
                    entry,
                    _QueueEntry.OUTCOME_EXPIRED,
                    f"{type(exc).__name__}: {exc}",
                    error_kind=ERROR_KIND_TIMEOUT,
                )
                return
            except WorkerCrashError as exc:
                with self._lock:
                    self._faults["worker_crashes"] += 1
                error = f"{type(exc).__name__}: {exc}"
                if attempt >= self.retries:
                    self._resolve_failure(
                        entry,
                        _QueueEntry.OUTCOME_ERROR,
                        f"{error} (retry budget of {self.retries} exhausted)",
                        error_kind=ERROR_KIND_WORKER_CRASH,
                    )
                    return
                attempt += 1
                entry.retries = attempt
                with self._lock:
                    self._faults["retries"] += 1
                delay = retry_backoff_seconds(entry.key, attempt)
                if entry.deadline is not None:
                    remaining = entry.deadline - time.monotonic()
                    if remaining <= delay:
                        # The deadline leaves no room for another attempt.
                        self._resolve_failure(
                            entry,
                            _QueueEntry.OUTCOME_EXPIRED,
                            f"{error}; deadline expired before retry {attempt}",
                            error_kind=ERROR_KIND_TIMEOUT,
                        )
                        return
                time.sleep(delay)
            except Exception as exc:  # a failed search must not take the service down
                self._resolve_failure(
                    entry,
                    _QueueEntry.OUTCOME_ERROR,
                    f"{type(exc).__name__}: {exc}",
                    error_kind=ERROR_KIND_SEARCH,
                )
                return
            else:
                self._resolve_done(entry, reply)
                return

    def _select_worker(self, affinity: str) -> int | None:
        """The affinity worker, or the nearest one whose breaker allows
        traffic; ``None`` when every breaker is open (degrade in-process)."""
        base = self._pool.route_index(affinity)
        now = time.monotonic()
        with self._lock:
            for offset in range(self.workers):
                index = (base + offset) % self.workers
                if self._breakers[index].allows(now):
                    return index
        return None

    def _fanout_grant(self, entry: _QueueEntry) -> int:
        """Idle-pool policy: how many workers this request may fan out to.

        A cold request arriving at an otherwise quiet service gets the
        whole pool for intra-schedule parallelism instead of one warm
        worker.  The grant requires ``REPRO_STAGE_PIPELINE=1`` (the
        schedule is bit-identical either way, but the knob keeps the
        default serving path byte-for-byte the historical one), at least
        two workers, a single-restart request (restart chains already fan
        out across restarts), an empty admission queue and a fully idle
        pool — under any load, per-request worker affinity wins.
        """
        if self.workers < 2 or entry.request.restarts != 1:
            return 0
        if not stage_pipeline_enabled():
            return 0
        if len(self._queue) > 0:
            return 0
        if self._pool.idle_workers() < self.workers:
            return 0
        return self.workers

    def _execute_routed(self, entry: _QueueEntry, attempt: int) -> dict:
        """Run one attempt on a breaker-approved worker (or in-process).

        The pool-side ``timeout`` is the request's remaining deadline, so a
        runaway search is killed (and its worker respawned) the moment it
        can no longer produce a useful answer.  When the idle-pool policy
        grants a fan-out, the attempt runs parent-side (like the degraded
        path) so the allocator can drive its stage pool directly; the
        fan-out lock is try-acquired, so a racing second request simply
        takes the normal one-worker path.
        """
        fanout = self._fanout_grant(entry)
        if fanout and self._fanout_lock.acquire(blocking=False):
            try:
                with self._lock:
                    self._fanout_grants += 1
                return _execute_attempt((entry.request, attempt, fanout))
            finally:
                self._fanout_lock.release()
        task = (entry.request, attempt)
        timeout = None
        if entry.deadline is not None:
            timeout = entry.deadline - time.monotonic()
            if timeout <= 0:
                raise WorkerTimeoutError(
                    f"deadline of {entry.request.deadline_ms:g} ms expired "
                    f"before attempt {attempt} was dispatched"
                )
        worker = self._select_worker(entry.affinity)
        if worker is None:
            # Whole pool unhealthy: degrade to in-process serial execution
            # so the request is still answered (cold caches, one at a time).
            with self._lock:
                self._faults["degraded_executions"] += 1
            with self._degraded_lock:
                return _execute_attempt(task)
        future = self._pool.submit(
            _execute_attempt, task, worker=worker, timeout=timeout
        )
        try:
            reply = future.result()
        except WorkerCrashError:
            with self._lock:
                self._breakers[worker].record_failure(time.monotonic())
            raise
        with self._lock:
            self._breakers[worker].record_success()
        return reply

    # Every resolver retires the in-flight entry under the lock — but only
    # when it still belongs to this entry: a slow resolution of an earlier
    # search must not retire (or double-count the stats of) a newer leader
    # that re-registered the same key after the first one finished.
    def _retire(self, entry: _QueueEntry) -> None:
        if self._inflight.get(entry.key) is entry:
            del self._inflight[entry.key]

    def _resolve_done(self, entry: _QueueEntry, reply: dict) -> None:
        """Success: populate the memo, fold in worker cache stats, wake waiters."""
        with self._lock:
            self._retire(entry)
            self._memo.put(entry.key, reply["payload"])
            if self._memo.maxsize > 0:
                self._memo_dirty = True
            cache_stats = reply.get("cache_stats")
            if cache_stats is not None:
                # Counters accumulate across requests; occupancy (size /
                # maxsize) is not a counter, so keep the latest snapshot
                # instead of summing snapshots on every request.
                for name, stats_entry in cache_stats.items():
                    row = self._worker_cache_totals.setdefault(
                        name, {"hits": 0, "misses": 0, "size": 0, "maxsize": 0}
                    )
                    for field in (
                        "hits",
                        "misses",
                        "evaluations",
                        "proposed",
                        "committed",
                        "rolled_back",
                        "pool_evaluations",
                        "inprocess_evaluations",
                    ):
                        if field in stats_entry:
                            row[field] = row.get(field, 0) + stats_entry[field]
                    row["size"] = stats_entry["size"]
                    row["maxsize"] = stats_entry["maxsize"]
                    total = row["hits"] + row["misses"]
                    row["hit_rate"] = row["hits"] / total if total else 0.0
        entry.reply = reply
        entry.outcome = _QueueEntry.OUTCOME_DONE
        entry.event.set()

    def _resolve_failure(
        self, entry: _QueueEntry, outcome: str, error: str, error_kind: str = ""
    ) -> None:
        """Resolve an entry that produced no result (error/expired/cancelled)."""
        with self._lock:
            self._retire(entry)
        entry.error = error
        entry.error_kind = error_kind
        entry.outcome = outcome
        entry.event.set()

    def _flush_loop(self, interval: float) -> None:
        """Periodic memo spill; a failing disk never kills the flusher.

        A failed spill (unwritable path, full disk) warns, re-marks the memo
        dirty so the next interval retries, and keeps the loop — and the
        service — running.
        """
        while not self._flusher_stop.wait(interval):
            with self._lock:
                dirty = self._memo_dirty
            if not dirty:
                continue
            try:
                self.flush_memo()
            except Exception as exc:
                with self._lock:
                    self._memo_dirty = True
                warnings.warn(
                    f"periodic memo flush to {self.memo_path!r} failed: "
                    f"{type(exc).__name__}: {exc}; serving continues, the "
                    "flush will be retried next interval",
                    RuntimeWarning,
                    stacklevel=2,
                )

    def _record(self, response: ScheduleResponse, locked: bool = False) -> ScheduleResponse:
        if locked:
            self._requests += 1
            self._counters[response.provenance] += 1
        else:
            with self._lock:
                self._requests += 1
                self._counters[response.provenance] += 1
        return response
