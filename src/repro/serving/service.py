"""The scheduling service: admission control, memoisation and warm dispatch.

:class:`ScheduleService` sits between a front-end (stdin/stdout JSON lines,
HTTP, or direct Python calls) and the search engine.  For every request it
tries, in order:

1. the **cross-request result memo** — an LRU keyed by
   :func:`repro.core.caching.schedule_request_key` (graph fingerprint,
   accelerator, config, seed, restarts); hits serve a finished payload with
   no search at all.  With ``memo_path`` set the memo is reloaded on start
   and spilled to disk on shutdown (plus a periodic flush), so a restarted
   service keeps answering repeat traffic immediately;
2. **in-flight coalescing** — identical requests already queued or being
   computed share one search (micro-batching duplicates: ``schedule_many``
   dispatches one task per unique fingerprint);
3. the **bounded admission queue** — every cache-missing request waits in a
   priority queue (higher ``priority`` first, then earlier deadline, then
   FIFO) drained by one dispatcher thread per worker.  A full queue rejects
   the request immediately (``rejected`` provenance, HTTP 429); a queued
   request whose ``deadline_ms`` passes before dispatch is expired instead
   of run (``expired`` provenance, HTTP 504).  Memo and coalescing hits
   bypass the queue entirely, so cheap requests stay cheap under load;
4. the **persistent worker pool**
   (:class:`~repro.experiments.parallel.PersistentPool`) — each worker
   process keeps its schedulers, per-graph parse/segment/tiling LRUs and
   evaluator contexts alive across requests, so repeat workloads run against
   warm caches.

Results are bit-identical to a direct ``SoMaScheduler.schedule`` call with
the same seed for any worker count and queue size (asserted by
``benchmarks/test_serving_throughput.py`` and
``benchmarks/test_serving_burst.py``); every response reports which level
served it.  Response payload dictionaries may be shared between
coalesced/memoised responses — treat them as read-only.
"""

from __future__ import annotations

import heapq
import math
import os
import threading
import time
import warnings

from repro.analysis.schedule_report import build_schedule_report, evaluation_to_payload
from repro.core.caching import (
    LRUCache,
    SCHEDULE_KEY_SCHEMA,
    SERVE_MEMO_DEFAULT,
    cache_size,
    cache_stats_delta,
    collect_search_cache_stats,
    parse_env_int,
    reload_lru,
    schedule_request_key,
    spill_items,
)
from repro.core.result import SoMaResult
from repro.core.soma import SoMaScheduler
from repro.experiments.parallel import (
    PersistentPool,
    coerce_workers,
    multi_restart_schedule,
    resolve_workers,
)
from repro.serving.protocol import (
    ERROR_KIND_BAD_REQUEST,
    ERROR_KIND_DEADLINE,
    ERROR_KIND_OVERLOAD,
    ERROR_KIND_SEARCH,
    PROVENANCE_COALESCED,
    PROVENANCE_COLD,
    PROVENANCE_EXPIRED,
    PROVENANCE_MEMO,
    PROVENANCE_REJECTED,
    PROVENANCE_WARM,
    ScheduleRequest,
    ScheduleResponse,
)
from repro.workloads.registry import build_workload

SERVE_WORKERS_ENV = "REPRO_SERVE_WORKERS"
SERVE_QUEUE_ENV = "REPRO_SERVE_QUEUE"
SERVE_MEMO_PATH_ENV = "REPRO_SERVE_MEMO_PATH"

#: Default capacity of the admission queue (``--queue-size`` /
#: ``REPRO_SERVE_QUEUE``); 0 disables queueing (every cache miss is
#: rejected), which is occasionally useful as a memo-only mode.
SERVE_QUEUE_DEFAULT = 64

#: Seconds between periodic memo flushes when persistence is enabled.
MEMO_FLUSH_SECONDS_DEFAULT = 60.0

#: Provenance value used by error responses (never by successful ones).
PROVENANCE_ERROR = "error"


def resolve_serve_workers(workers: int | None = None) -> int:
    """Service worker count: argument, ``REPRO_SERVE_WORKERS``, then the
    generic ``REPRO_WORKERS`` resolution.  Non-positive values degrade to
    serial with a ``RuntimeWarning`` (see
    :func:`repro.experiments.parallel.coerce_workers`)."""
    if workers is not None:
        return coerce_workers(workers, "the workers argument")
    value = parse_env_int(SERVE_WORKERS_ENV, "falling back to REPRO_WORKERS")
    if value is not None:
        return coerce_workers(value, SERVE_WORKERS_ENV)
    return resolve_workers(None)


def _coerce_queue_size(value: int, source: str) -> int:
    """Clamp a queue size to >= 0, warning when that changes the value.

    0 is a deliberate memo-only mode and stays silent; a *negative* size is
    a typo that would silently become reject-every-cache-miss, so it warns
    the same way non-positive worker counts do.
    """
    value = int(value)
    if value < 0:
        warnings.warn(
            f"queue size {value} from {source} is negative; using 0 "
            "(every cache miss is rejected)",
            RuntimeWarning,
            stacklevel=3,
        )
        return 0
    return value


def resolve_queue_size(queue_size: int | None = None) -> int:
    """Admission-queue capacity: argument, ``REPRO_SERVE_QUEUE``, then 64."""
    if queue_size is not None:
        return _coerce_queue_size(queue_size, "the queue_size argument")
    value = parse_env_int(
        SERVE_QUEUE_ENV, f"using the default queue size {SERVE_QUEUE_DEFAULT}"
    )
    if value is None:
        return SERVE_QUEUE_DEFAULT
    return _coerce_queue_size(value, SERVE_QUEUE_ENV)


def resolve_memo_path(memo_path: str | os.PathLike | None = None) -> str | None:
    """Memo spill path: argument, ``REPRO_SERVE_MEMO_PATH``, then disabled."""
    if memo_path is not None:
        return os.fspath(memo_path)
    return os.environ.get(SERVE_MEMO_PATH_ENV) or None


# ------------------------------------------------------------- worker side
# Per-process warm state, bounded so a long-lived worker serving a stream of
# distinct workloads/configs cannot grow without limit: graphs are keyed by
# the workload spec so the per-graph LRUs (which key off the graph *object*)
# survive across requests, and schedulers are keyed by (platform, config) so
# their evaluator caches and mappers stay populated.
_WORKER_GRAPHS = LRUCache(cache_size("SERVE_GRAPHS", 64))
_WORKER_SCHEDULERS = LRUCache(cache_size("SERVE_SCHEDULERS", 32))


def result_payload(result: SoMaResult) -> dict:
    """The ``ScheduleReport``-compatible payload of one finished search."""
    report = build_schedule_report(result.plan, result.evaluation)
    return {
        "workload": result.workload_name,
        "accelerator": result.accelerator_name,
        "report": report.to_payload(),
        "evaluation": evaluation_to_payload(result.evaluation),
        "stage1": evaluation_to_payload(result.stage1.evaluation),
        "stage2": evaluation_to_payload(result.stage2.evaluation),
        "allocator_iterations": result.allocator_iterations,
        "stage1_buffer_budget_bytes": result.stage1_buffer_budget_bytes,
        "search_seconds": result.search_seconds,
    }


def _execute_request(request: ScheduleRequest) -> dict:
    """Run one request in this process, reusing warm state when present.

    Module-level function so the persistent pool can pickle it; the reply is
    a plain dictionary (payload, provenance, worker pid, cache-activity
    delta) because responses also need per-request timing from the parent.
    """
    graph_key = (request.workload, request.batch, request.workload_kwargs)
    graph = _WORKER_GRAPHS.get(graph_key)
    graph_warm = graph is not None
    if graph is None:
        graph = build_workload(
            request.workload, batch=request.batch, **request.workload_kwargs_dict
        )
        _WORKER_GRAPHS.put(graph_key, graph)

    config = request.build_config()
    # The seed is always passed explicitly to ``schedule``, so schedulers are
    # shared across requests that differ only in seed (the config's own seed
    # field never reaches the search) — warm caches survive seed sweeps.
    scheduler_key = (request.platform, config.with_seed(0))
    scheduler = _WORKER_SCHEDULERS.get(scheduler_key)
    scheduler_warm = scheduler is not None
    if scheduler is None:
        scheduler = SoMaScheduler(request.build_accelerator(), config)
        _WORKER_SCHEDULERS.put(scheduler_key, scheduler)

    before = collect_search_cache_stats(graph, scheduler.evaluator)
    if request.restarts == 1:
        result = scheduler.schedule(graph, seed=request.seed)
    else:
        # Pool workers are daemonic and cannot fork grandchildren, so the
        # restart chains of one request always run serially in this worker.
        result = multi_restart_schedule(
            scheduler.accelerator,
            graph,
            config=config,
            seed=request.seed,
            restarts=request.restarts,
            workers=1,
        )
    after = collect_search_cache_stats(graph, scheduler.evaluator)

    return {
        "payload": result_payload(result),
        "provenance": PROVENANCE_WARM if (graph_warm and scheduler_warm) else PROVENANCE_COLD,
        "pid": os.getpid(),
        "search_seconds": result.search_seconds,
        "cache_stats": cache_stats_delta(before, after),
    }


def reset_worker_state() -> None:
    """Drop this process's warm graphs/schedulers (test isolation hook)."""
    _WORKER_GRAPHS.clear()
    _WORKER_SCHEDULERS.clear()


def worker_state_sizes() -> tuple[int, int]:
    """(warm graphs, warm schedulers) resident in this process."""
    return len(_WORKER_GRAPHS), len(_WORKER_SCHEDULERS)


# ----------------------------------------------------------- admission queue
class _QueueEntry:
    """One admitted request plus the shared state its waiters block on.

    The leader and every coalesced follower hold the same entry; a dispatcher
    (or ``close``) resolves it exactly once by filling ``outcome`` and
    setting ``event``.  ``deadline`` is an absolute ``time.monotonic()``
    instant (``None`` when the request carries no deadline); followers share
    the leader's queue slot and therefore the leader's deadline.
    """

    __slots__ = (
        "request",
        "key",
        "affinity",
        "priority",
        "deadline",
        "event",
        "outcome",
        "reply",
        "error",
    )

    OUTCOME_DONE = "done"
    OUTCOME_ERROR = "error"
    OUTCOME_EXPIRED = "expired"
    OUTCOME_CANCELLED = "cancelled"

    def __init__(self, request: ScheduleRequest, key: str, affinity: str) -> None:
        self.request = request
        self.key = key
        self.affinity = affinity
        self.priority = request.priority
        self.deadline = (
            time.monotonic() + request.deadline_ms / 1000.0
            if request.deadline_ms is not None
            else None
        )
        self.event = threading.Event()
        self.outcome: str | None = None
        self.reply: dict | None = None
        self.error = ""


class _RequestQueue:
    """A bounded, closeable priority queue of :class:`_QueueEntry` items.

    Ordering: higher ``priority`` first, then earlier deadline (no deadline
    sorts last), then admission order.  ``put`` never blocks — a full (or
    closed) queue returns ``False``, which is the admission-control signal.
    ``get`` blocks until an entry is available or the queue is closed, in
    which case it returns ``None`` forever after.
    """

    def __init__(self, maxsize: int) -> None:
        self.maxsize = max(0, maxsize)
        self._heap: list = []
        self._sequence = 0
        self._closed = False
        self._condition = threading.Condition(threading.Lock())

    def __len__(self) -> int:
        with self._condition:
            return len(self._heap)

    def put(self, entry: _QueueEntry) -> bool:
        with self._condition:
            if self._closed or len(self._heap) >= self.maxsize:
                return False
            deadline_rank = entry.deadline if entry.deadline is not None else math.inf
            heapq.heappush(
                self._heap, (-entry.priority, deadline_rank, self._sequence, entry)
            )
            self._sequence += 1
            self._condition.notify()
            return True

    def get(self) -> _QueueEntry | None:
        with self._condition:
            while not self._heap and not self._closed:
                self._condition.wait()
            if self._heap:
                return heapq.heappop(self._heap)[-1]
            return None

    def close(self) -> list[_QueueEntry]:
        """Refuse new entries, wake every waiter, return the drained backlog."""
        with self._condition:
            self._closed = True
            drained = [item[-1] for item in self._heap]
            self._heap.clear()
            self._condition.notify_all()
            return drained


# ------------------------------------------------------------- parent side
class _ReadyResponse:
    """A future whose response is already known (memo hits, rejections)."""

    __slots__ = ("_response",)

    def __init__(self, response: ScheduleResponse) -> None:
        self._response = response

    def result(self) -> ScheduleResponse:
        return self._response


class _PendingResponse:
    """A response future backed by a (possibly shared) queue entry."""

    __slots__ = ("_service", "_request", "_entry", "_leader", "_started")

    def __init__(self, service, request, entry, leader, started) -> None:
        self._service = service
        self._request = request
        self._entry = entry
        self._leader = leader
        self._started = started

    def result(self) -> ScheduleResponse:
        entry = self._entry
        entry.event.wait()
        elapsed = time.perf_counter() - self._started
        if entry.outcome == _QueueEntry.OUTCOME_DONE:
            reply = entry.reply
            provenance = reply["provenance"] if self._leader else PROVENANCE_COALESCED
            return self._service._record(
                ScheduleResponse(
                    request_id=self._request.request_id,
                    ok=True,
                    provenance=provenance,
                    result=reply["payload"],
                    search_seconds=reply["search_seconds"],
                    service_seconds=elapsed,
                    worker_pid=reply["pid"],
                    cache_stats=reply["cache_stats"] if self._leader else None,
                )
            )
        if entry.outcome == _QueueEntry.OUTCOME_EXPIRED:
            provenance, error_kind = PROVENANCE_EXPIRED, ERROR_KIND_DEADLINE
        elif entry.outcome == _QueueEntry.OUTCOME_CANCELLED:
            provenance, error_kind = PROVENANCE_REJECTED, ERROR_KIND_OVERLOAD
        else:
            provenance, error_kind = PROVENANCE_ERROR, ERROR_KIND_SEARCH
        return self._service._record(
            ScheduleResponse(
                request_id=self._request.request_id,
                ok=False,
                provenance=provenance,
                error=entry.error,
                error_kind=error_kind,
                service_seconds=elapsed,
            )
        )


class ScheduleService:
    """Serves schedule requests with memoisation, admission and warm workers.

    Thread-safe: the HTTP front-end calls :meth:`schedule` from handler
    threads.  ``workers`` resolves through :func:`resolve_serve_workers`;
    ``memo_size`` through ``REPRO_SERVE_MEMO_CACHE`` (0 disables the memo);
    ``queue_size`` through ``REPRO_SERVE_QUEUE`` (0 rejects every cache
    miss); ``memo_path`` through ``REPRO_SERVE_MEMO_PATH`` (``None``
    disables persistence).  Use as a context manager (or call :meth:`close`)
    so the dispatcher threads, worker processes and the final memo spill are
    torn down deterministically.
    """

    def __init__(
        self,
        workers: int | None = None,
        memo_size: int | None = None,
        queue_size: int | None = None,
        memo_path: str | os.PathLike | None = None,
        memo_flush_seconds: float = MEMO_FLUSH_SECONDS_DEFAULT,
    ) -> None:
        self.workers = resolve_serve_workers(workers)
        self._pool = PersistentPool(self.workers)
        if memo_size is None:
            memo_size = cache_size("SERVE_MEMO", SERVE_MEMO_DEFAULT)
        self._memo = LRUCache(memo_size)
        self._graphs = LRUCache(64)  # parent-side graphs, for fingerprinting only
        self._lock = threading.Lock()
        self._inflight: dict[str, _QueueEntry] = {}
        self._counters = {
            PROVENANCE_MEMO: 0,
            PROVENANCE_COALESCED: 0,
            PROVENANCE_WARM: 0,
            PROVENANCE_COLD: 0,
            PROVENANCE_ERROR: 0,
            PROVENANCE_REJECTED: 0,
            PROVENANCE_EXPIRED: 0,
        }
        self._requests = 0
        self._worker_cache_totals: dict = {}
        self._closed = False

        self.memo_path = resolve_memo_path(memo_path)
        self._memo_dirty = False
        self._memo_flushes = 0
        self._memo_reloaded = 0
        self._flush_lock = threading.Lock()
        if self.memo_path is not None and self._memo.maxsize > 0:
            self._memo_reloaded = reload_lru(
                self._memo, self.memo_path, SCHEDULE_KEY_SCHEMA
            )

        self._queue = _RequestQueue(resolve_queue_size(queue_size))
        self._dispatchers = [
            threading.Thread(
                target=self._dispatch_loop,
                name=f"repro-serve-dispatch-{index}",
                daemon=True,
            )
            for index in range(self.workers)
        ]
        for thread in self._dispatchers:
            thread.start()
        self._flusher: threading.Thread | None = None
        self._flusher_stop = threading.Event()
        if self.memo_path is not None and memo_flush_seconds > 0:
            self._flusher = threading.Thread(
                target=self._flush_loop,
                args=(float(memo_flush_seconds),),
                name="repro-serve-memo-flush",
                daemon=True,
            )
            self._flusher.start()

    # ----------------------------------------------------------------- public
    def schedule(self, request: ScheduleRequest) -> ScheduleResponse:
        """Serve one request (blocking)."""
        return self._submit(request).result()

    def schedule_many(self, requests: list[ScheduleRequest]) -> list[ScheduleResponse]:
        """Serve a micro-batch: duplicates coalesce onto one search.

        All unique cache-missing requests are admitted to the queue before
        the first result is awaited, so a batch fans across every available
        worker.
        """
        futures = [self._submit(request) for request in requests]
        return [future.result() for future in futures]

    def request_fingerprint(self, request: ScheduleRequest) -> str:
        """The memo/coalescing key of a request (builds the graph if needed)."""
        return self._keys(request)[0]

    def _keys(self, request: ScheduleRequest) -> tuple[str, str]:
        """(memo key, worker-affinity key) of a request.

        The affinity key is the workload graph's fingerprint alone, so every
        request for the same graph — any seed, any config — is routed to the
        worker whose per-graph caches already hold it.  ``priority`` and
        ``deadline_ms`` are serving metadata and take part in neither key.
        """
        graph_key = (request.workload, request.batch, request.workload_kwargs)
        with self._lock:
            graph = self._graphs.get(graph_key)
        if graph is None:
            # Build outside the lock: a cold graph construction must not
            # stall concurrent requests (e.g. memo hits for other keys).
            # Double-checked insert keeps one canonical graph per key.
            graph = build_workload(
                request.workload, batch=request.batch, **request.workload_kwargs_dict
            )
            with self._lock:
                existing = self._graphs.get(graph_key)
                if existing is not None:
                    graph = existing
                else:
                    self._graphs.put(graph_key, graph)
        graph_fingerprint = graph.fingerprint()
        memo_key = schedule_request_key(
            graph_fingerprint,
            request.build_accelerator(),
            request.build_config(),
            request.seed,
            request.restarts,
        )
        return memo_key, graph_fingerprint

    def stats(self) -> dict:
        """Serving counters, queue/memo state and worker-cache statistics."""
        depth = len(self._queue)
        with self._lock:
            return {
                "workers": self.workers,
                "requests": self._requests,
                "provenance": dict(self._counters),
                "queue": {
                    "depth": depth,
                    "maxsize": self._queue.maxsize,
                    "rejected": self._counters[PROVENANCE_REJECTED],
                    "expired": self._counters[PROVENANCE_EXPIRED],
                },
                "memo": self._memo.stats(),
                "memo_persistence": {
                    "path": self.memo_path,
                    "reloaded_entries": self._memo_reloaded,
                    "flushes": self._memo_flushes,
                },
                "worker_caches": {
                    name: dict(entry) for name, entry in self._worker_cache_totals.items()
                },
            }

    def flush_memo(self) -> bool:
        """Spill the memo to ``memo_path`` now; True when a file was written.

        The service lock is held only long enough to snapshot the entries —
        the JSON serialisation and disk write happen outside it, so a flush
        never stalls concurrent memo lookups or request resolution.  The
        flush lock serialises concurrent flushers (periodic thread, close,
        explicit calls) so writes reach the file in snapshot order.
        """
        if self.memo_path is None or self._memo.maxsize == 0:
            return False
        with self._flush_lock:
            with self._lock:
                snapshot = self._memo.items()
                self._memo_dirty = False
                self._memo_flushes += 1
            spill_items(snapshot, self.memo_path, SCHEDULE_KEY_SCHEMA)
        return True

    def close(self) -> None:
        """Shut the service down deterministically (idempotent).

        Queued-but-undispatched requests fail fast with ``rejected``
        provenance, dispatchers finish their in-flight searches and exit, the
        worker pool drains and joins, and — when persistence is enabled — the
        memo is spilled to disk last so it includes every completed search.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for entry in self._queue.close():
            self._resolve_failure(
                entry, _QueueEntry.OUTCOME_CANCELLED, "service is shutting down"
            )
        for thread in self._dispatchers:
            thread.join()
        self._pool.close()
        if self._flusher is not None:
            self._flusher_stop.set()
            self._flusher.join()
        if self.memo_path is not None and self._memo.maxsize > 0:
            self.flush_memo()

    def __enter__(self) -> "ScheduleService":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()

    # --------------------------------------------------------------- internal
    def _submit(self, request: ScheduleRequest):
        started = time.perf_counter()
        try:
            key, affinity = self._keys(request)
        except Exception as exc:  # unknown workload / malformed kwargs
            return _ReadyResponse(
                self._record(
                    ScheduleResponse(
                        request_id=request.request_id,
                        ok=False,
                        provenance=PROVENANCE_ERROR,
                        error=f"{type(exc).__name__}: {exc}",
                        error_kind=ERROR_KIND_BAD_REQUEST,
                        service_seconds=time.perf_counter() - started,
                    )
                )
            )
        with self._lock:
            payload = self._memo.get(key)
            if payload is not None:
                return _ReadyResponse(
                    self._record(
                        ScheduleResponse(
                            request_id=request.request_id,
                            ok=True,
                            provenance=PROVENANCE_MEMO,
                            result=payload,
                            service_seconds=time.perf_counter() - started,
                        ),
                        locked=True,
                    )
                )
            entry = self._inflight.get(key)
            if entry is not None:
                return _PendingResponse(self, request, entry, False, started)
            if self._closed:
                return self._reject(request, "service is closed", started, locked=True)
            entry = _QueueEntry(request, key, affinity)
            if not self._queue.put(entry):
                return self._reject(
                    request,
                    f"request queue is full (capacity {self._queue.maxsize})",
                    started,
                    locked=True,
                )
            self._inflight[key] = entry
        return _PendingResponse(self, request, entry, True, started)

    def _reject(self, request, error, started, locked=False) -> _ReadyResponse:
        return _ReadyResponse(
            self._record(
                ScheduleResponse(
                    request_id=request.request_id,
                    ok=False,
                    provenance=PROVENANCE_REJECTED,
                    error=error,
                    error_kind=ERROR_KIND_OVERLOAD,
                    service_seconds=time.perf_counter() - started,
                ),
                locked=locked,
            )
        )

    def _dispatch_loop(self) -> None:
        """One dispatcher: pop admitted entries, run them on the pool.

        Each dispatcher blocks on its entry's worker result, so at most
        ``workers`` searches are in flight and the queue holds the backlog.
        Exits when the queue is closed and drained.
        """
        while True:
            entry = self._queue.get()
            if entry is None:
                return
            if entry.deadline is not None and time.monotonic() > entry.deadline:
                self._resolve_failure(
                    entry,
                    _QueueEntry.OUTCOME_EXPIRED,
                    f"deadline of {entry.request.deadline_ms:g} ms expired in queue",
                )
                continue
            try:
                future = self._pool.submit(
                    _execute_request, entry.request, affinity=entry.affinity
                )
                reply = future.result()
            except Exception as exc:  # a failed search must not take the service down
                self._resolve_failure(
                    entry, _QueueEntry.OUTCOME_ERROR, f"{type(exc).__name__}: {exc}"
                )
                continue
            try:
                self._resolve_done(entry, reply)
            except Exception as exc:
                # Resolution itself failing (malformed reply, stats folding)
                # must neither kill this dispatcher nor leave the entry's
                # waiters blocked forever.
                self._resolve_failure(
                    entry,
                    _QueueEntry.OUTCOME_ERROR,
                    f"response resolution failed: {type(exc).__name__}: {exc}",
                )

    # Every resolver retires the in-flight entry under the lock — but only
    # when it still belongs to this entry: a slow resolution of an earlier
    # search must not retire (or double-count the stats of) a newer leader
    # that re-registered the same key after the first one finished.
    def _retire(self, entry: _QueueEntry) -> None:
        if self._inflight.get(entry.key) is entry:
            del self._inflight[entry.key]

    def _resolve_done(self, entry: _QueueEntry, reply: dict) -> None:
        """Success: populate the memo, fold in worker cache stats, wake waiters."""
        with self._lock:
            self._retire(entry)
            self._memo.put(entry.key, reply["payload"])
            if self._memo.maxsize > 0:
                self._memo_dirty = True
            cache_stats = reply.get("cache_stats")
            if cache_stats is not None:
                # Counters accumulate across requests; occupancy (size /
                # maxsize) is not a counter, so keep the latest snapshot
                # instead of summing snapshots on every request.
                for name, stats_entry in cache_stats.items():
                    row = self._worker_cache_totals.setdefault(
                        name, {"hits": 0, "misses": 0, "size": 0, "maxsize": 0}
                    )
                    for field in ("hits", "misses", "evaluations"):
                        if field in stats_entry:
                            row[field] = row.get(field, 0) + stats_entry[field]
                    row["size"] = stats_entry["size"]
                    row["maxsize"] = stats_entry["maxsize"]
                    total = row["hits"] + row["misses"]
                    row["hit_rate"] = row["hits"] / total if total else 0.0
        entry.reply = reply
        entry.outcome = _QueueEntry.OUTCOME_DONE
        entry.event.set()

    def _resolve_failure(self, entry: _QueueEntry, outcome: str, error: str) -> None:
        """Resolve an entry that produced no result (error/expired/cancelled)."""
        with self._lock:
            self._retire(entry)
        entry.error = error
        entry.outcome = outcome
        entry.event.set()

    def _flush_loop(self, interval: float) -> None:
        while not self._flusher_stop.wait(interval):
            with self._lock:
                dirty = self._memo_dirty
            if dirty:
                self.flush_memo()

    def _record(self, response: ScheduleResponse, locked: bool = False) -> ScheduleResponse:
        if locked:
            self._requests += 1
            self._counters[response.provenance] += 1
        else:
            with self._lock:
                self._requests += 1
                self._counters[response.provenance] += 1
        return response
