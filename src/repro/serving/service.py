"""The scheduling service: coalescing, memoisation and warm worker dispatch.

:class:`ScheduleService` sits between a front-end (stdin/stdout JSON lines,
HTTP, or direct Python calls) and the search engine.  For every request it
tries, in order:

1. the **cross-request result memo** — an LRU keyed by
   :func:`repro.core.caching.schedule_request_key` (graph fingerprint,
   accelerator, config, seed, restarts); hits serve a finished payload with
   no search at all;
2. **in-flight coalescing** — identical requests already being computed share
   one search (micro-batching duplicates: ``schedule_many`` dispatches one
   task per unique fingerprint);
3. the **persistent worker pool**
   (:class:`~repro.experiments.parallel.PersistentPool`) — each worker
   process keeps its schedulers, per-graph parse/segment/tiling LRUs and
   evaluator contexts alive across requests, so repeat workloads run against
   warm caches.

Results are bit-identical to a direct ``SoMaScheduler.schedule`` call with
the same seed for any worker count (asserted by
``benchmarks/test_serving_throughput.py``); every response reports which of
the three levels served it.  Response payload dictionaries may be shared
between coalesced/memoised responses — treat them as read-only.
"""

from __future__ import annotations

import os
import threading
import time

from repro.analysis.schedule_report import build_schedule_report, evaluation_to_payload
from repro.core.caching import (
    LRUCache,
    SERVE_MEMO_DEFAULT,
    cache_size,
    cache_stats_delta,
    collect_search_cache_stats,
    parse_env_int,
    schedule_request_key,
)
from repro.core.result import SoMaResult
from repro.core.soma import SoMaScheduler
from repro.experiments.parallel import PersistentPool, multi_restart_schedule, resolve_workers
from repro.serving.protocol import (
    PROVENANCE_COALESCED,
    PROVENANCE_COLD,
    PROVENANCE_MEMO,
    PROVENANCE_WARM,
    ScheduleRequest,
    ScheduleResponse,
)
from repro.workloads.registry import build_workload

SERVE_WORKERS_ENV = "REPRO_SERVE_WORKERS"

#: Provenance value used by error responses (never by successful ones).
PROVENANCE_ERROR = "error"


def resolve_serve_workers(workers: int | None = None) -> int:
    """Service worker count: argument, ``REPRO_SERVE_WORKERS``, then the
    generic ``REPRO_WORKERS`` resolution."""
    if workers is not None:
        return max(1, int(workers))
    value = parse_env_int(SERVE_WORKERS_ENV, "falling back to REPRO_WORKERS")
    if value is not None:
        return max(1, value)
    return resolve_workers(None)


# ------------------------------------------------------------- worker side
# Per-process warm state, bounded so a long-lived worker serving a stream of
# distinct workloads/configs cannot grow without limit: graphs are keyed by
# the workload spec so the per-graph LRUs (which key off the graph *object*)
# survive across requests, and schedulers are keyed by (platform, config) so
# their evaluator caches and mappers stay populated.
_WORKER_GRAPHS = LRUCache(cache_size("SERVE_GRAPHS", 64))
_WORKER_SCHEDULERS = LRUCache(cache_size("SERVE_SCHEDULERS", 32))


def result_payload(result: SoMaResult) -> dict:
    """The ``ScheduleReport``-compatible payload of one finished search."""
    report = build_schedule_report(result.plan, result.evaluation)
    return {
        "workload": result.workload_name,
        "accelerator": result.accelerator_name,
        "report": report.to_payload(),
        "evaluation": evaluation_to_payload(result.evaluation),
        "stage1": evaluation_to_payload(result.stage1.evaluation),
        "stage2": evaluation_to_payload(result.stage2.evaluation),
        "allocator_iterations": result.allocator_iterations,
        "stage1_buffer_budget_bytes": result.stage1_buffer_budget_bytes,
        "search_seconds": result.search_seconds,
    }


def _execute_request(request: ScheduleRequest) -> dict:
    """Run one request in this process, reusing warm state when present.

    Module-level function so the persistent pool can pickle it; the reply is
    a plain dictionary (payload, provenance, worker pid, cache-activity
    delta) because responses also need per-request timing from the parent.
    """
    graph_key = (request.workload, request.batch, request.workload_kwargs)
    graph = _WORKER_GRAPHS.get(graph_key)
    graph_warm = graph is not None
    if graph is None:
        graph = build_workload(
            request.workload, batch=request.batch, **request.workload_kwargs_dict
        )
        _WORKER_GRAPHS.put(graph_key, graph)

    config = request.build_config()
    # The seed is always passed explicitly to ``schedule``, so schedulers are
    # shared across requests that differ only in seed (the config's own seed
    # field never reaches the search) — warm caches survive seed sweeps.
    scheduler_key = (request.platform, config.with_seed(0))
    scheduler = _WORKER_SCHEDULERS.get(scheduler_key)
    scheduler_warm = scheduler is not None
    if scheduler is None:
        scheduler = SoMaScheduler(request.build_accelerator(), config)
        _WORKER_SCHEDULERS.put(scheduler_key, scheduler)

    before = collect_search_cache_stats(graph, scheduler.evaluator)
    if request.restarts == 1:
        result = scheduler.schedule(graph, seed=request.seed)
    else:
        # Pool workers are daemonic and cannot fork grandchildren, so the
        # restart chains of one request always run serially in this worker.
        result = multi_restart_schedule(
            scheduler.accelerator,
            graph,
            config=config,
            seed=request.seed,
            restarts=request.restarts,
            workers=1,
        )
    after = collect_search_cache_stats(graph, scheduler.evaluator)

    return {
        "payload": result_payload(result),
        "provenance": PROVENANCE_WARM if (graph_warm and scheduler_warm) else PROVENANCE_COLD,
        "pid": os.getpid(),
        "search_seconds": result.search_seconds,
        "cache_stats": cache_stats_delta(before, after),
    }


def reset_worker_state() -> None:
    """Drop this process's warm graphs/schedulers (test isolation hook)."""
    _WORKER_GRAPHS.clear()
    _WORKER_SCHEDULERS.clear()


def worker_state_sizes() -> tuple[int, int]:
    """(warm graphs, warm schedulers) resident in this process."""
    return len(_WORKER_GRAPHS), len(_WORKER_SCHEDULERS)


# ------------------------------------------------------------- parent side
class _ReadyResponse:
    """A future whose response is already known (memo hits, errors)."""

    __slots__ = ("_response",)

    def __init__(self, response: ScheduleResponse) -> None:
        self._response = response

    def result(self) -> ScheduleResponse:
        return self._response


class _PendingResponse:
    """A response future backed by a (possibly shared) pool future."""

    __slots__ = ("_service", "_request", "_key", "_future", "_leader", "_started")

    def __init__(self, service, request, key, future, leader, started) -> None:
        self._service = service
        self._request = request
        self._key = key
        self._future = future
        self._leader = leader
        self._started = started

    def result(self) -> ScheduleResponse:
        try:
            reply = self._future.result()
        except Exception as exc:  # a failed search must not take the service down
            self._service._finish(self._key, self._future, None, None)
            return self._service._record(
                ScheduleResponse(
                    request_id=self._request.request_id,
                    ok=False,
                    provenance=PROVENANCE_ERROR,
                    error=f"{type(exc).__name__}: {exc}",
                    service_seconds=time.perf_counter() - self._started,
                )
            )
        self._service._finish(self._key, self._future, reply["payload"], reply["cache_stats"])
        provenance = reply["provenance"] if self._leader else PROVENANCE_COALESCED
        return self._service._record(
            ScheduleResponse(
                request_id=self._request.request_id,
                ok=True,
                provenance=provenance,
                result=reply["payload"],
                search_seconds=reply["search_seconds"],
                service_seconds=time.perf_counter() - self._started,
                worker_pid=reply["pid"],
                cache_stats=reply["cache_stats"] if self._leader else None,
            )
        )


class ScheduleService:
    """Serves schedule requests with memoisation, coalescing and warm workers.

    Thread-safe: the HTTP front-end calls :meth:`schedule` from handler
    threads.  ``workers`` resolves through :func:`resolve_serve_workers`;
    ``memo_size`` through ``REPRO_SERVE_MEMO_CACHE`` (0 disables the memo).
    """

    def __init__(self, workers: int | None = None, memo_size: int | None = None) -> None:
        self.workers = resolve_serve_workers(workers)
        self._pool = PersistentPool(self.workers)
        if memo_size is None:
            memo_size = cache_size("SERVE_MEMO", SERVE_MEMO_DEFAULT)
        self._memo = LRUCache(memo_size)
        self._graphs = LRUCache(64)  # parent-side graphs, for fingerprinting only
        self._lock = threading.Lock()
        self._inflight: dict[str, object] = {}
        self._counters = {
            PROVENANCE_MEMO: 0,
            PROVENANCE_COALESCED: 0,
            PROVENANCE_WARM: 0,
            PROVENANCE_COLD: 0,
            PROVENANCE_ERROR: 0,
        }
        self._requests = 0
        self._worker_cache_totals: dict = {}

    # ----------------------------------------------------------------- public
    def schedule(self, request: ScheduleRequest) -> ScheduleResponse:
        """Serve one request (blocking)."""
        return self._submit(request).result()

    def schedule_many(self, requests: list[ScheduleRequest]) -> list[ScheduleResponse]:
        """Serve a micro-batch: duplicates coalesce onto one search.

        All unique cache-missing requests are dispatched to the pool before
        the first result is awaited, so a batch fans across every available
        worker.
        """
        futures = [self._submit(request) for request in requests]
        return [future.result() for future in futures]

    def request_fingerprint(self, request: ScheduleRequest) -> str:
        """The memo/coalescing key of a request (builds the graph if needed)."""
        return self._keys(request)[0]

    def _keys(self, request: ScheduleRequest) -> tuple[str, str]:
        """(memo key, worker-affinity key) of a request.

        The affinity key is the workload graph's fingerprint alone, so every
        request for the same graph — any seed, any config — is routed to the
        worker whose per-graph caches already hold it.
        """
        graph_key = (request.workload, request.batch, request.workload_kwargs)
        with self._lock:
            graph = self._graphs.get(graph_key)
        if graph is None:
            # Build outside the lock: a cold graph construction must not
            # stall concurrent requests (e.g. memo hits for other keys).
            # Double-checked insert keeps one canonical graph per key.
            graph = build_workload(
                request.workload, batch=request.batch, **request.workload_kwargs_dict
            )
            with self._lock:
                existing = self._graphs.get(graph_key)
                if existing is not None:
                    graph = existing
                else:
                    self._graphs.put(graph_key, graph)
        graph_fingerprint = graph.fingerprint()
        memo_key = schedule_request_key(
            graph_fingerprint,
            request.build_accelerator(),
            request.build_config(),
            request.seed,
            request.restarts,
        )
        return memo_key, graph_fingerprint

    def stats(self) -> dict:
        """Serving counters plus memo and aggregated worker-cache statistics."""
        with self._lock:
            return {
                "workers": self.workers,
                "requests": self._requests,
                "provenance": dict(self._counters),
                "memo": self._memo.stats(),
                "worker_caches": {
                    name: dict(entry) for name, entry in self._worker_cache_totals.items()
                },
            }

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        self._pool.close()

    def __enter__(self) -> "ScheduleService":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()

    # --------------------------------------------------------------- internal
    def _submit(self, request: ScheduleRequest):
        started = time.perf_counter()
        try:
            key, affinity = self._keys(request)
        except Exception as exc:  # unknown workload / malformed kwargs
            return _ReadyResponse(
                self._record(
                    ScheduleResponse(
                        request_id=request.request_id,
                        ok=False,
                        provenance=PROVENANCE_ERROR,
                        error=f"{type(exc).__name__}: {exc}",
                        service_seconds=time.perf_counter() - started,
                    )
                )
            )
        with self._lock:
            payload = self._memo.get(key)
            if payload is not None:
                return _ReadyResponse(
                    self._record(
                        ScheduleResponse(
                            request_id=request.request_id,
                            ok=True,
                            provenance=PROVENANCE_MEMO,
                            result=payload,
                            service_seconds=time.perf_counter() - started,
                        ),
                        locked=True,
                    )
                )
            future = self._inflight.get(key)
            leader = future is None
            if leader:
                future = self._pool.submit(_execute_request, request, affinity=affinity)
                self._inflight[key] = future
        return _PendingResponse(self, request, key, future, leader, started)

    def _finish(self, key: str, future, payload: dict | None, cache_stats: dict | None) -> None:
        """Retire an in-flight entry; the first finisher populates the memo.

        The entry is removed only when it still belongs to ``future``: a slow
        follower of an earlier search must not retire (or double-count the
        stats of) a newer leader that re-registered the same key after the
        first one finished.
        """
        with self._lock:
            if self._inflight.get(key) is not future:
                return
            del self._inflight[key]
            if payload is not None:
                self._memo.put(key, payload)
            if cache_stats is not None:
                # Counters accumulate across requests; occupancy (size /
                # maxsize) is not a counter, so keep the latest snapshot
                # instead of summing snapshots on every request.
                for name, entry in cache_stats.items():
                    row = self._worker_cache_totals.setdefault(
                        name, {"hits": 0, "misses": 0, "size": 0, "maxsize": 0}
                    )
                    for field in ("hits", "misses", "evaluations"):
                        if field in entry:
                            row[field] = row.get(field, 0) + entry[field]
                    row["size"] = entry["size"]
                    row["maxsize"] = entry["maxsize"]
                    total = row["hits"] + row["misses"]
                    row["hit_rate"] = row["hits"] / total if total else 0.0

    def _record(self, response: ScheduleResponse, locked: bool = False) -> ScheduleResponse:
        if locked:
            self._requests += 1
            self._counters[response.provenance] += 1
        else:
            with self._lock:
                self._requests += 1
                self._counters[response.provenance] += 1
        return response
