"""Deterministic fault injection for the serving stack (chaos harness).

Reliability claims are only testable if failures can be *produced on
demand, reproducibly*.  This module parses the ``REPRO_FAULT_SPEC``
environment variable into a :class:`FaultPlan` that pool workers consult at
the top of every search execution: a matching draw either kills the worker
process abruptly (simulating an OOM kill / segfault) or sleeps before the
search (simulating a stall).  Because every draw is a pure hash of
``(clause seed, request identity, attempt)`` — never ``random`` state, the
worker's pid, or wall clock — the same spec against the same request stream
produces bit-for-bit the same crash/delay pattern for any worker count,
which is what lets the chaos benchmark assert exact recovery behaviour.

Spec grammar (clauses separated by ``;`` or ``,``)::

    spec    := clause ((";" | ",") clause)*
    clause  := kind ":" value (":" "p=" FLOAT)? ("@" "seed=" INT)?
    kind    := "crash" | "delay"

* ``crash:P`` — kill the worker with probability ``P`` per attempt
  (``crash:0.1@seed=7``).  In-process execution (serial pools, the service's
  degraded mode) raises :class:`~repro.errors.WorkerCrashError` instead of
  exiting, so the observable retry semantics are identical without killing
  the host process.
* ``delay:DURATION`` — sleep before the search; ``DURATION`` is ``500ms``,
  ``2s`` or a bare millisecond count.  Probability defaults to 1.0 and is
  set with ``:p=`` (``delay:500ms:p=0.2``).

A malformed spec raises :class:`FaultSpecError` — loudly, at service
startup, never silently in a worker.
"""

from __future__ import annotations

import multiprocessing
import os
import re
import time
from dataclasses import dataclass

from repro.core.knobs import read_str
from repro.errors import ReproError, WorkerCrashError
from repro.experiments.parallel import derive_seed

FAULT_SPEC_ENV = "REPRO_FAULT_SPEC"

#: Exit code of an injected worker crash — distinctive in ``exitcode`` so a
#: chaos run's deaths are distinguishable from real segfaults (negative) or
#: OOM kills (-9).
FAULT_CRASH_EXIT_CODE = 73

_DURATION_PATTERN = re.compile(r"^(?P<value>\d+(?:\.\d+)?)\s*(?P<unit>ms|s)?$")


class FaultSpecError(ReproError):
    """Raised when a ``REPRO_FAULT_SPEC`` value cannot be parsed."""


@dataclass(frozen=True)
class FaultClause:
    """One parsed clause of a fault spec."""

    kind: str  # "crash" | "delay"
    probability: float
    seed: int = 0
    delay_seconds: float = 0.0

    def fires(self, key: tuple) -> bool:
        """Deterministic Bernoulli draw for one (request, attempt) key.

        The draw is a stable hash, so it depends only on the clause and the
        key — not on process, ordering or prior draws.
        """
        if self.probability >= 1.0:
            return True
        if self.probability <= 0.0:
            return False
        draw = derive_seed(self.seed, "fault", self.kind, *key) / float(2**31)
        return draw < self.probability


def _parse_probability(text: str, clause: str) -> float:
    try:
        probability = float(text)
    except ValueError as exc:
        raise FaultSpecError(
            f"fault clause {clause!r}: probability {text!r} is not a number"
        ) from exc
    if not 0.0 <= probability <= 1.0:
        raise FaultSpecError(
            f"fault clause {clause!r}: probability {probability} is outside [0, 1]"
        )
    return probability


def _parse_duration_seconds(text: str, clause: str) -> float:
    match = _DURATION_PATTERN.match(text.strip())
    if match is None:
        raise FaultSpecError(
            f"fault clause {clause!r}: bad duration {text!r} "
            "(use e.g. '500ms', '2s' or a bare millisecond count)"
        )
    value = float(match.group("value"))
    unit = match.group("unit") or "ms"
    return value / 1000.0 if unit == "ms" else value


def _parse_clause(raw: str) -> FaultClause:
    clause = raw.strip()
    head, _, tail = clause.partition("@")
    seed = 0
    if tail:
        for option in tail.split("@"):
            name, _, value = option.strip().partition("=")
            if name != "seed" or not value:
                raise FaultSpecError(
                    f"fault clause {clause!r}: unknown option {option!r} "
                    "(only '@seed=N' is supported)"
                )
            try:
                seed = int(value)
            except ValueError as exc:
                raise FaultSpecError(
                    f"fault clause {clause!r}: seed {value!r} is not an integer"
                ) from exc
    parts = [part.strip() for part in head.split(":")]
    kind = parts[0].lower()
    if kind == "crash":
        if len(parts) != 2:
            raise FaultSpecError(
                f"fault clause {clause!r}: expected 'crash:P' with one probability"
            )
        return FaultClause(kind="crash", probability=_parse_probability(parts[1], clause), seed=seed)
    if kind == "delay":
        if len(parts) < 2 or len(parts) > 3:
            raise FaultSpecError(
                f"fault clause {clause!r}: expected 'delay:DURATION' or "
                "'delay:DURATION:p=P'"
            )
        probability = 1.0
        if len(parts) == 3:
            name, _, value = parts[2].partition("=")
            if name != "p" or not value:
                raise FaultSpecError(
                    f"fault clause {clause!r}: unknown option {parts[2]!r} "
                    "(only ':p=P' is supported)"
                )
            probability = _parse_probability(value, clause)
        return FaultClause(
            kind="delay",
            probability=probability,
            seed=seed,
            delay_seconds=_parse_duration_seconds(parts[1], clause),
        )
    raise FaultSpecError(
        f"fault clause {clause!r}: unknown kind {kind!r} (expected 'crash' or 'delay')"
    )


class FaultPlan:
    """The parsed form of a fault spec: an ordered tuple of clauses."""

    __slots__ = ("clauses", "spec")

    def __init__(self, clauses: tuple[FaultClause, ...], spec: str) -> None:
        self.clauses = clauses
        self.spec = spec

    def apply(self, key: tuple) -> None:
        """Inject this plan's faults for one (request identity, attempt) key.

        Delays sleep in place.  Crashes kill the current process with
        :data:`FAULT_CRASH_EXIT_CODE` when it is a pool worker (a daemonic
        child), and raise :class:`~repro.errors.WorkerCrashError` when
        execution is in-process — same retry semantics, no suicide of the
        service process.
        """
        for clause in self.clauses:
            if not clause.fires(key):
                continue
            if clause.kind == "delay":
                time.sleep(clause.delay_seconds)
            elif clause.kind == "crash":
                if multiprocessing.current_process().daemon:
                    os._exit(FAULT_CRASH_EXIT_CODE)
                raise WorkerCrashError(
                    f"injected in-process crash (spec {self.spec!r}, key {key!r})"
                )


def parse_fault_spec(text: str) -> FaultPlan:
    """Parse a fault spec string; raises :class:`FaultSpecError` when malformed."""
    clauses = tuple(
        _parse_clause(raw) for raw in re.split(r"[;,]", text) if raw.strip()
    )
    if not clauses:
        raise FaultSpecError(f"fault spec {text!r} contains no clauses")
    return FaultPlan(clauses, text.strip())


_ACTIVE: tuple[str, FaultPlan] | None = None


def active_fault_plan() -> FaultPlan | None:
    """The plan parsed from ``REPRO_FAULT_SPEC``; ``None`` when unset.

    The parse is cached on the spec text, so workers pay one parse per spec,
    and tests that monkeypatch the environment see the change immediately.
    """
    global _ACTIVE
    text = (read_str(FAULT_SPEC_ENV) or "").strip()
    if not text:
        return None
    if _ACTIVE is None or _ACTIVE[0] != text:
        _ACTIVE = (text, parse_fault_spec(text))
    return _ACTIVE[1]
