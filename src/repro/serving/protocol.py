"""Wire protocol of the scheduling service.

A :class:`ScheduleRequest` names a workload (registry name + batch +
workload kwargs), a platform and the search configuration overrides the CLI
exposes; it is a frozen, picklable dataclass so the same object travels to
worker processes and hashes into the duplicate-coalescing tables.  A
:class:`ScheduleResponse` carries a :class:`~repro.analysis.schedule_report.ScheduleReport`-compatible
payload plus per-request cache provenance:

``memo``
    served straight from the cross-request result memo (no search ran);
``coalesced``
    an identical request was already in flight and this one shared its
    search;
``warm``
    a pool worker ran the search with its scheduler and per-graph caches
    already populated for this (workload, accelerator, config);
``cold``
    a worker ran the search from scratch.

Two provenance values describe requests that never reached a worker because
of admission control (see :mod:`repro.serving.service`):

``rejected``
    the bounded request queue was full (HTTP 429) or the service was
    shutting down;
``expired``
    the request's ``deadline_ms`` passed while it waited in the queue
    (HTTP 504).

Both directions serialise to plain JSON dictionaries; round-trips are exact
(including evaluation floats) and are asserted by ``tests/test_serving.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.core.config import SAParams, SoMaConfig
from repro.errors import ReproError
from repro.hardware.accelerator import AcceleratorConfig, cloud_accelerator, edge_accelerator

PROVENANCE_MEMO = "memo"
PROVENANCE_COALESCED = "coalesced"
PROVENANCE_WARM = "warm"
PROVENANCE_COLD = "cold"
#: Admission-control outcomes: the request never reached a worker.
PROVENANCE_REJECTED = "rejected"
PROVENANCE_EXPIRED = "expired"

#: Every provenance a response can carry: the four cache levels of a served
#: result, then the admission-control outcomes (a service-side "error"
#: value also exists for failed searches — see ``PROVENANCE_ERROR`` in
#: :mod:`repro.serving.service`).
PROVENANCES = (
    PROVENANCE_MEMO,
    PROVENANCE_COALESCED,
    PROVENANCE_WARM,
    PROVENANCE_COLD,
    PROVENANCE_REJECTED,
    PROVENANCE_EXPIRED,
)

#: ``error_kind`` values carried by failed responses so front-ends can map
#: transport status codes without parsing error strings.
ERROR_KIND_BAD_REQUEST = "bad_request"
ERROR_KIND_SEARCH = "search"
ERROR_KIND_OVERLOAD = "overload"
ERROR_KIND_DEADLINE = "deadline"
#: The worker process running the search died (OOM kill, segfault, injected
#: crash) and the retry budget could not produce a result (HTTP 503 — the
#: pool respawned the worker, so retrying later is reasonable).
ERROR_KIND_WORKER_CRASH = "worker_crash"
#: The request's ``deadline_ms`` elapsed while its search was *in flight*
#: (the queued-expiry case stays ``deadline``); the search was abandoned —
#: and its worker killed and respawned when it ran on a parallel pool
#: (HTTP 504).
ERROR_KIND_TIMEOUT = "timeout"


class ProtocolError(ReproError):
    """Raised when a request/response payload is malformed."""


@dataclass(frozen=True)
class ScheduleRequest:
    """One scheduling request: what to schedule, on what, with which budget.

    The configuration fields mirror ``python -m repro schedule``: ``fast``
    selects :meth:`SoMaConfig.fast`, otherwise the explicit SA budgets are
    used.  ``request_id`` is an opaque client token echoed in the response;
    it does not participate in memoisation or coalescing.

    ``priority`` and ``deadline_ms`` are *serving* metadata — they shape how
    the request waits in the admission queue (higher priority dispatches
    first; a request still queued ``deadline_ms`` milliseconds after
    admission is expired instead of dispatched) but never the search result,
    so they are excluded from the memo/coalescing key.
    """

    workload: str
    batch: int = 1
    platform: str = "edge"
    workload_kwargs: tuple[tuple[str, object], ...] = ()
    seed: int = 2025
    fast: bool = False
    lfa_budget: float = 12.0
    dlsa_budget: float = 6.0
    allocator_iterations: int = 2
    restarts: int = 1
    priority: int = 0
    deadline_ms: float | None = None
    request_id: str = ""

    def __post_init__(self) -> None:
        if not self.workload:
            raise ProtocolError("request must name a workload")
        if self.platform not in ("edge", "cloud"):
            raise ProtocolError(
                f"unknown platform {self.platform!r}; expected 'edge' or 'cloud'"
            )
        if self.batch < 1:
            raise ProtocolError("batch must be >= 1")
        if self.restarts < 1:
            raise ProtocolError("restarts must be >= 1")
        if self.deadline_ms is not None and not self.deadline_ms > 0:
            raise ProtocolError("deadline_ms must be positive (or omitted)")

    # ---------------------------------------------------------------- builders
    def build_accelerator(self) -> AcceleratorConfig:
        """The accelerator configuration this request targets."""
        return edge_accelerator() if self.platform == "edge" else cloud_accelerator()

    def build_config(self) -> SoMaConfig:
        """The search configuration (same semantics as the CLI flags)."""
        if self.fast:
            return SoMaConfig.fast(seed=self.seed)
        return SoMaConfig(
            lfa_sa=SAParams(iterations_per_unit=self.lfa_budget, max_iterations=5000),
            dlsa_sa=SAParams(iterations_per_unit=self.dlsa_budget, max_iterations=6000),
            max_allocator_iterations=self.allocator_iterations,
            seed=self.seed,
        )

    @property
    def workload_kwargs_dict(self) -> dict:
        """The workload kwargs as a plain dictionary (registry call form)."""
        return dict(self.workload_kwargs)


@dataclass(frozen=True)
class ScheduleResponse:
    """Outcome of one request: a report payload plus serving metadata.

    ``result`` is ``None`` exactly when ``ok`` is False; otherwise it holds
    the schedule-report payload (see :func:`result_payload` for its shape).
    ``service_seconds`` is the wall time the service spent on this request,
    including queueing; ``search_seconds`` is the search wall clock inside
    the worker (0.0 for memo hits — no search ran).

    ``error_kind`` is set exactly when ``ok`` is False and discriminates
    failure classes for transport status mapping: ``bad_request`` (unknown
    workload / malformed payload), ``search`` (the search itself raised),
    ``overload`` (admission queue full), ``deadline`` (expired in queue),
    ``worker_crash`` (the worker died and the retry budget ran out) and
    ``timeout`` (the deadline elapsed while the search was in flight).

    ``retries`` counts how many times the search was re-dispatched after a
    worker crash before this response was produced — 0 on the common path,
    and meaningful on both successes (the retry saved the request) and
    failures (the budget was spent in vain).

    ``fanout_workers`` records the idle-pool grant: when the service found
    the queue empty and every pool worker idle, it ran this request's search
    with the whole pool fanned out across the schedule's stage-1 candidate
    batches instead of on a single worker.  0 means the normal one-worker
    path; the schedule itself is bit-identical either way.
    """

    request_id: str
    ok: bool
    provenance: str
    result: dict | None = None
    error: str = ""
    error_kind: str = ""
    search_seconds: float = 0.0
    service_seconds: float = 0.0
    worker_pid: int = 0
    retries: int = 0
    fanout_workers: int = 0
    cache_stats: dict | None = field(default=None, repr=False)


# ----------------------------------------------------------------- JSON forms
def request_to_payload(request: ScheduleRequest) -> dict:
    """The JSON dictionary form of a request."""
    return {
        "workload": request.workload,
        "batch": request.batch,
        "platform": request.platform,
        "workload_kwargs": dict(request.workload_kwargs),
        "seed": request.seed,
        "fast": request.fast,
        "lfa_budget": request.lfa_budget,
        "dlsa_budget": request.dlsa_budget,
        "allocator_iterations": request.allocator_iterations,
        "restarts": request.restarts,
        "priority": request.priority,
        "deadline_ms": request.deadline_ms,
        "request_id": request.request_id,
    }


_REQUEST_FIELDS = {f.name for f in fields(ScheduleRequest)}


def request_from_payload(payload: dict) -> ScheduleRequest:
    """Decode a request dictionary, rejecting unknown or malformed fields."""
    if not isinstance(payload, dict):
        raise ProtocolError(f"request must be a JSON object, got {type(payload).__name__}")
    unknown = set(payload) - _REQUEST_FIELDS
    if unknown:
        raise ProtocolError(f"unknown request fields: {sorted(unknown)}")
    if "workload" not in payload:
        raise ProtocolError("request must name a workload")
    kwargs = dict(payload)
    raw_workload_kwargs = kwargs.pop("workload_kwargs", {})
    if isinstance(raw_workload_kwargs, dict):
        workload_kwargs = tuple(sorted(raw_workload_kwargs.items()))
    else:
        try:
            workload_kwargs = tuple(sorted((str(k), v) for k, v in raw_workload_kwargs))
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed workload_kwargs: {raw_workload_kwargs!r}") from exc
    try:
        return ScheduleRequest(workload_kwargs=workload_kwargs, **kwargs)
    except TypeError as exc:
        raise ProtocolError(f"malformed request payload: {exc}") from exc


def response_to_payload(response: ScheduleResponse) -> dict:
    """The JSON dictionary form of a response."""
    return {
        "request_id": response.request_id,
        "ok": response.ok,
        "provenance": response.provenance,
        "result": response.result,
        "error": response.error,
        "error_kind": response.error_kind,
        "search_seconds": response.search_seconds,
        "service_seconds": response.service_seconds,
        "worker_pid": response.worker_pid,
        "retries": response.retries,
        "fanout_workers": response.fanout_workers,
        "cache_stats": response.cache_stats,
    }


def response_from_payload(payload: dict) -> ScheduleResponse:
    """Decode a response dictionary (the client-side half of the protocol)."""
    if not isinstance(payload, dict):
        raise ProtocolError(f"response must be a JSON object, got {type(payload).__name__}")
    try:
        return ScheduleResponse(
            request_id=payload["request_id"],
            ok=payload["ok"],
            provenance=payload["provenance"],
            result=payload.get("result"),
            error=payload.get("error", ""),
            error_kind=payload.get("error_kind", ""),
            search_seconds=payload.get("search_seconds", 0.0),
            service_seconds=payload.get("service_seconds", 0.0),
            worker_pid=payload.get("worker_pid", 0),
            retries=payload.get("retries", 0),
            fanout_workers=payload.get("fanout_workers", 0),
            cache_stats=payload.get("cache_stats"),
        )
    except KeyError as exc:
        raise ProtocolError(f"response payload missing field: {exc}") from exc
