"""Batched scheduling service with admission control and warm caches.

The engine contexts built by the incremental evaluation stack (PR 1/PR 2)
are reusable across requests; this package turns that into a serving story:

* :mod:`repro.serving.protocol` — the wire format: picklable request /
  response dataclasses with JSON payload round-trips, including per-request
  ``priority`` / ``deadline_ms`` serving metadata;
* :mod:`repro.serving.service`  — :class:`~repro.serving.service.ScheduleService`,
  which coalesces duplicate in-flight requests, fronts a cross-request result
  memo (optionally persisted to disk across restarts), admits cache misses
  into a bounded deadline-aware priority queue, and dispatches across a
  persistent worker pool whose schedulers and LRUs stay warm between
  requests;
* :mod:`repro.serving.server`   — front-ends: JSON-lines over stdin/stdout
  and a stdlib ``http.server`` mode (``python -m repro serve``) that maps
  admission outcomes onto 429/504 and request/search failures onto 400/500.
"""

from repro.serving.protocol import ScheduleRequest, ScheduleResponse
from repro.serving.service import (
    ScheduleService,
    resolve_memo_path,
    resolve_queue_size,
    resolve_serve_workers,
)

__all__ = [
    "ScheduleRequest",
    "ScheduleResponse",
    "ScheduleService",
    "resolve_memo_path",
    "resolve_queue_size",
    "resolve_serve_workers",
]
