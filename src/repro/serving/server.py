"""Front-ends for :class:`~repro.serving.service.ScheduleService`.

Two transports, both stdlib-only:

* **JSON lines over stdin/stdout** (``python -m repro serve``): every input
  line is a JSON request object, a JSON array of requests (a micro-batch:
  duplicates share one search), or an op object (``{"op": "stats"}``,
  ``{"op": "shutdown"}``).  Each input line produces exactly one output
  line — a response object, an array of response objects, or the op reply.
* **HTTP** (``python -m repro serve --http PORT``): a threaded stdlib
  ``http.server`` exposing ``POST /schedule`` (single request or batch),
  ``GET /stats`` and ``GET /healthz``.  Handler threads call straight into
  the service, so concurrent identical requests coalesce onto one search.
  Single-request failures map onto HTTP status codes (see
  :func:`http_status_for`): 429 when the admission queue rejects, 504 when
  a deadline expires (queued or in flight), 503 when a worker crash
  exhausts the retry budget, 400 for malformed/unknown-workload requests
  and 500 for deterministic search failures — always with the unchanged
  JSON response body.  Batch replies stay 200 with per-item outcomes.
  ``GET /healthz`` answers 200 while every worker is alive behind a closed
  breaker, and 503 with per-worker detail when the pool is degraded.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.serving.protocol import (
    ERROR_KIND_BAD_REQUEST,
    ERROR_KIND_WORKER_CRASH,
    PROVENANCE_EXPIRED,
    PROVENANCE_REJECTED,
    ProtocolError,
    ScheduleResponse,
    request_from_payload,
    response_to_payload,
)
from repro.serving.service import PROVENANCE_ERROR, ScheduleService


def _error_payload(item, message: str) -> dict:
    request_id = item.get("request_id", "") if isinstance(item, dict) else ""
    return response_to_payload(
        ScheduleResponse(
            request_id=request_id,
            ok=False,
            provenance=PROVENANCE_ERROR,
            error=message,
            error_kind=ERROR_KIND_BAD_REQUEST,
        )
    )


def http_status_for(payload) -> int:
    """The HTTP status of one ``/schedule`` reply payload.

    Batch replies (arrays) are always 200 — each item carries its own
    ``ok``/``provenance``/``error_kind``.  Single failed responses map their
    failure class onto transport semantics: admission rejection is 429 (back
    off and retry), a deadline expiry — in queue or in flight — is 504, a
    worker crash that exhausted its retry budget is 503 (the pool respawned
    the worker; retrying later is reasonable), a malformed or
    unknown-workload request is 400, and a deterministic search failure
    is 500.
    """
    if not isinstance(payload, dict) or payload.get("ok", False):
        return 200
    provenance = payload.get("provenance")
    if provenance == PROVENANCE_REJECTED:
        return 429
    if provenance == PROVENANCE_EXPIRED:
        return 504
    error_kind = payload.get("error_kind")
    if error_kind == ERROR_KIND_WORKER_CRASH:
        return 503
    if error_kind == ERROR_KIND_BAD_REQUEST:
        return 400
    return 500


def process_message(service: ScheduleService, message) -> tuple[object, bool]:
    """Handle one decoded JSON message; returns (reply payload, shutdown?).

    Malformed items never abort a batch: each position gets either its
    response or an error payload, in request order.
    """
    if isinstance(message, dict) and "op" in message:
        op = message["op"]
        if op == "stats":
            return {"ok": True, "stats": service.stats()}, False
        if op == "shutdown":
            return {"ok": True, "shutdown": True}, True
        return {"ok": False, "error": f"unknown op {op!r}"}, False

    batch = isinstance(message, list)
    items = message if batch else [message]
    payloads: list = [None] * len(items)
    decoded = []
    for index, item in enumerate(items):
        try:
            decoded.append((index, request_from_payload(item)))
        except ProtocolError as exc:
            payloads[index] = _error_payload(item, str(exc))
    responses = service.schedule_many([request for _, request in decoded])
    for (index, _), response in zip(decoded, responses):
        payloads[index] = response_to_payload(response)
    return (payloads if batch else payloads[0]), False


# ------------------------------------------------------------------ JSON lines
def serve_stdio(service: ScheduleService, in_stream, out_stream) -> int:
    """Serve JSON-lines requests until EOF or a shutdown op; returns 0."""
    for line in in_stream:
        line = line.strip()
        if not line:
            continue
        try:
            message = json.loads(line)
        except json.JSONDecodeError as exc:
            _write_line(out_stream, {"ok": False, "error": f"invalid JSON: {exc}"})
            continue
        payload, shutdown = process_message(service, message)
        _write_line(out_stream, payload)
        if shutdown:
            break
    return 0


def _write_line(stream, payload) -> None:
    stream.write(json.dumps(payload) + "\n")
    stream.flush()


# ------------------------------------------------------------------------ HTTP
class ScheduleRequestHandler(BaseHTTPRequestHandler):
    """Routes ``/schedule``, ``/stats`` and ``/healthz`` onto the service."""

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> ScheduleService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, *_args) -> None:
        """Silence the default per-request stderr logging."""

    def _send_json(self, status: int, payload) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:
        if self.path == "/healthz":
            health = self.service.health()
            self._send_json(200 if health["ok"] else 503, health)
        elif self.path == "/stats":
            self._send_json(200, {"ok": True, "stats": self.service.stats()})
        else:
            self._send_json(404, {"ok": False, "error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:
        if self.path != "/schedule":
            self._send_json(404, {"ok": False, "error": f"unknown path {self.path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            self._send_json(400, {"ok": False, "error": "bad Content-Length"})
            return
        try:
            message = json.loads(self.rfile.read(length))
        except json.JSONDecodeError as exc:
            self._send_json(400, {"ok": False, "error": f"invalid JSON: {exc}"})
            return
        if isinstance(message, dict) and "op" in message:
            self._send_json(400, {"ok": False, "error": "op messages are stdio-only"})
            return
        payload, _ = process_message(self.service, message)
        self._send_json(http_status_for(payload), payload)


def make_http_server(
    service: ScheduleService, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """Build (but do not start) the HTTP server; ``port=0`` picks a free port."""
    server = ThreadingHTTPServer((host, port), ScheduleRequestHandler)
    server.daemon_threads = True
    server.service = service  # type: ignore[attr-defined]
    return server


def serve_http(service: ScheduleService, host: str, port: int, announce=None) -> int:
    """Run the HTTP front-end until interrupted; returns 0."""
    server = make_http_server(service, host, port)
    if announce is not None:
        announce(f"serving HTTP on {server.server_address[0]}:{server.server_address[1]}")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0
