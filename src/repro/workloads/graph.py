"""Workload graph: a DAG of :class:`~repro.workloads.layer.Layer` objects.

Edges carry a ``tiled`` flag: a *tiled* dependency means the consumer's i-th
tile only needs the producer's i-th tile (the usual fused-layer situation),
whereas an *untiled* dependency means every consumer tile needs the whole
producer output (e.g. the key/value operand of an attention matmul).  The
notation parser uses this flag to decide how data is buffered and how it is
moved through DRAM.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Iterator

import networkx as nx

from repro.errors import WorkloadError
from repro.workloads.layer import Layer


@dataclass(frozen=True)
class Dependency:
    """One producer -> consumer edge of the workload graph."""

    producer: str
    consumer: str
    tiled: bool = True


class WorkloadGraph:
    """A named DAG of layers with dependency edges.

    The graph owns the layers (name -> :class:`Layer`) and exposes the
    queries the scheduler needs: topological orders, predecessors/successors,
    network inputs/outputs and aggregate statistics.
    """

    def __init__(self, name: str, batch: int) -> None:
        if not name:
            raise WorkloadError("workload name must be non-empty")
        if batch <= 0:
            raise WorkloadError("batch must be positive")
        self.name = name
        self.batch = batch
        self._graph = nx.DiGraph()
        self._layers: dict[str, Layer] = {}
        # Lazily built query caches; scheduling touches these millions of times.
        self._topo_cache: list[str] | None = None
        self._pred_cache: dict[str, list[str]] | None = None
        self._succ_cache: dict[str, list[str]] | None = None
        self._dep_cache: dict[tuple[str, str], Dependency] | None = None
        self._fingerprint_cache: str | None = None
        # Bumped on every mutation so external per-graph caches (parser
        # snapshots, parse/tiling LRUs) can detect staleness.
        self._version = 0

    def _invalidate_caches(self) -> None:
        self._topo_cache = None
        self._pred_cache = None
        self._succ_cache = None
        self._dep_cache = None
        self._fingerprint_cache = None
        self._version += 1

    @property
    def version(self) -> int:
        """Mutation counter: changes whenever a layer or dependency is added."""
        return self._version

    def fingerprint(self) -> str:
        """Stable content digest of the graph (layers, shapes and edges).

        Used to key cross-graph caches; two graphs with equal names but
        different structure must not collide.  Recomputed lazily after
        mutations.
        """
        if self._fingerprint_cache is None:
            payload = repr(
                (
                    "graph",
                    self.name,
                    self.batch,
                    tuple(repr(self._layers[name]) for name in sorted(self._layers)),
                    tuple(
                        (u, v, bool(data["tiled"]))
                        for u, v, data in sorted(self._graph.edges(data=True))
                    ),
                )
            ).encode("utf-8")
            self._fingerprint_cache = hashlib.blake2b(payload, digest_size=16).hexdigest()
        return self._fingerprint_cache

    # ------------------------------------------------------------ construction
    def add_layer(self, layer: Layer) -> Layer:
        """Add a layer node; the layer name must be unique within the graph."""
        if layer.name in self._layers:
            raise WorkloadError(f"duplicate layer name {layer.name!r}")
        if layer.batch != self.batch:
            raise WorkloadError(
                f"layer {layer.name!r} has batch {layer.batch}, graph expects {self.batch}"
            )
        self._layers[layer.name] = layer
        self._graph.add_node(layer.name)
        self._invalidate_caches()
        return layer

    def add_dependency(self, producer: str, consumer: str, tiled: bool = True) -> None:
        """Add a producer -> consumer data dependency."""
        for name in (producer, consumer):
            if name not in self._layers:
                raise WorkloadError(f"unknown layer {name!r}")
        if producer == consumer:
            raise WorkloadError(f"self dependency on layer {producer!r}")
        self._graph.add_edge(producer, consumer, tiled=tiled)
        if not nx.is_directed_acyclic_graph(self._graph):
            self._graph.remove_edge(producer, consumer)
            raise WorkloadError(
                f"dependency {producer!r} -> {consumer!r} would create a cycle"
            )
        self._invalidate_caches()

    # ----------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self._layers)

    def __contains__(self, name: str) -> bool:
        return name in self._layers

    def __iter__(self) -> Iterator[str]:
        return iter(self.topological_order())

    def layer(self, name: str) -> Layer:
        """Return the layer with the given name."""
        try:
            return self._layers[name]
        except KeyError as exc:
            raise WorkloadError(f"unknown layer {name!r}") from exc

    def layers(self) -> list[Layer]:
        """All layers in topological order."""
        return [self._layers[name] for name in self.topological_order()]

    def layer_names(self) -> list[str]:
        """All layer names in topological order."""
        return self.topological_order()

    def topological_order(self) -> list[str]:
        """A deterministic topological order (insertion order breaks ties)."""
        if self._topo_cache is None:
            order_index = {name: i for i, name in enumerate(self._layers)}
            self._topo_cache = list(
                nx.lexicographical_topological_sort(self._graph, key=lambda n: order_index[n])
            )
        return list(self._topo_cache)

    def _adjacency_caches(self) -> tuple[dict[str, list[str]], dict[str, list[str]]]:
        if self._pred_cache is None or self._succ_cache is None:
            order_index = {name: i for i, name in enumerate(self._layers)}
            self._pred_cache = {
                name: sorted(self._graph.predecessors(name), key=lambda n: order_index[n])
                for name in self._layers
            }
            self._succ_cache = {
                name: sorted(self._graph.successors(name), key=lambda n: order_index[n])
                for name in self._layers
            }
        return self._pred_cache, self._succ_cache

    def predecessors(self, name: str) -> list[str]:
        """Producers feeding ``name``, in insertion order."""
        self.layer(name)
        preds, _ = self._adjacency_caches()
        return list(preds[name])

    def successors(self, name: str) -> list[str]:
        """Consumers reading ``name``, in insertion order."""
        self.layer(name)
        _, succs = self._adjacency_caches()
        return list(succs[name])

    def dependency(self, producer: str, consumer: str) -> Dependency:
        """Return the edge descriptor for an existing dependency."""
        if self._dep_cache is None:
            self._dep_cache = {
                (u, v): Dependency(producer=u, consumer=v, tiled=data["tiled"])
                for u, v, data in self._graph.edges(data=True)
            }
        try:
            return self._dep_cache[(producer, consumer)]
        except KeyError as exc:
            raise WorkloadError(f"no dependency {producer!r} -> {consumer!r}") from exc

    def dependencies(self) -> list[Dependency]:
        """All edges of the graph."""
        if self._dep_cache is None:
            self._dep_cache = {
                (u, v): Dependency(producer=u, consumer=v, tiled=data["tiled"])
                for u, v, data in self._graph.edges(data=True)
            }
        return list(self._dep_cache.values())

    def input_layers(self) -> list[str]:
        """Layers with no producers: their ifmaps come from DRAM."""
        return [name for name in self.topological_order() if not self.predecessors(name)]

    def output_layers(self) -> list[str]:
        """Layers with no consumers: their ofmaps go back to DRAM."""
        return [name for name in self.topological_order() if not self.successors(name)]

    def is_valid_order(self, order: Iterable[str]) -> bool:
        """Check whether ``order`` is a dependency-respecting permutation."""
        order = list(order)
        if sorted(order) != sorted(self._layers):
            return False
        position = {name: i for i, name in enumerate(order)}
        return all(
            position[dep.producer] < position[dep.consumer] for dep in self.dependencies()
        )

    # -------------------------------------------------------------- statistics
    @property
    def total_macs(self) -> int:
        """Total MAC count of the network (whole batch)."""
        return sum(layer.macs for layer in self._layers.values())

    @property
    def total_ops(self) -> int:
        """Total operation count of the network (whole batch)."""
        return sum(layer.ops for layer in self._layers.values())

    @property
    def total_weight_bytes(self) -> int:
        """Total bytes of weights (and weight-like tensors such as KV cache)."""
        return sum(layer.weight_bytes for layer in self._layers.values())

    def describe(self) -> str:
        """Multi-line human-readable summary used by examples and reports."""
        lines = [
            f"workload {self.name}: {len(self)} layers, batch={self.batch}, "
            f"{self.total_macs / 1e9:.2f} GMACs, "
            f"{self.total_weight_bytes / 1e6:.2f} MB weights",
        ]
        lines.extend("  " + self._layers[name].describe() for name in self.topological_order())
        return "\n".join(lines)
