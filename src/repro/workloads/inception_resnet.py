"""Inception-ResNet-v1 workload builder (Szegedy et al., AAAI 2017).

The network is reproduced at the block level: the stem, the three families of
Inception-ResNet blocks (A/B/C), the two reduction blocks and the classifier.
It represents the "wider and more complex structure" class of workloads in
the paper's evaluation.
"""

from __future__ import annotations

from repro.workloads.builder import GraphBuilder
from repro.workloads.graph import WorkloadGraph

_INPUT = (3, 160, 160)


def _stem(builder: GraphBuilder) -> str:
    conv1 = builder.conv("stem_conv1", [], 32, kernel=3, stride=2, padding=0, input_shape=_INPUT)
    conv2 = builder.conv("stem_conv2", [conv1], 32, kernel=3, stride=1, padding=0)
    conv3 = builder.conv("stem_conv3", [conv2], 64, kernel=3, stride=1)
    pool = builder.pool("stem_pool", [conv3], kernel=3, stride=2)
    conv4 = builder.conv("stem_conv4", [pool], 80, kernel=1, stride=1)
    conv5 = builder.conv("stem_conv5", [conv4], 192, kernel=3, stride=1, padding=0)
    conv6 = builder.conv("stem_conv6", [conv5], 256, kernel=3, stride=2, padding=0)
    return conv6


def _block_a(builder: GraphBuilder, prefix: str, input_name: str) -> str:
    """Inception-ResNet-A: three branches, concat, 1x1 up-projection, residual."""
    b1 = builder.conv(f"{prefix}_b1_conv1", [input_name], 32, kernel=1)
    b2a = builder.conv(f"{prefix}_b2_conv1", [input_name], 32, kernel=1)
    b2b = builder.conv(f"{prefix}_b2_conv2", [b2a], 32, kernel=3)
    b3a = builder.conv(f"{prefix}_b3_conv1", [input_name], 32, kernel=1)
    b3b = builder.conv(f"{prefix}_b3_conv2", [b3a], 32, kernel=3)
    b3c = builder.conv(f"{prefix}_b3_conv3", [b3b], 32, kernel=3)
    merged = builder.concat(f"{prefix}_concat", [b1, b2b, b3c])
    in_channels, _, _ = builder.shape(input_name)
    up = builder.conv(f"{prefix}_up", [merged], in_channels, kernel=1)
    return builder.eltwise(f"{prefix}_add", [up, input_name])


def _block_b(builder: GraphBuilder, prefix: str, input_name: str) -> str:
    """Inception-ResNet-B: two branches with factorised 7x7 (modelled as 3x3 pair)."""
    b1 = builder.conv(f"{prefix}_b1_conv1", [input_name], 128, kernel=1)
    b2a = builder.conv(f"{prefix}_b2_conv1", [input_name], 128, kernel=1)
    b2b = builder.conv(f"{prefix}_b2_conv2", [b2a], 128, kernel=3)
    b2c = builder.conv(f"{prefix}_b2_conv3", [b2b], 128, kernel=3)
    merged = builder.concat(f"{prefix}_concat", [b1, b2c])
    in_channels, _, _ = builder.shape(input_name)
    up = builder.conv(f"{prefix}_up", [merged], in_channels, kernel=1)
    return builder.eltwise(f"{prefix}_add", [up, input_name])


def _block_c(builder: GraphBuilder, prefix: str, input_name: str) -> str:
    """Inception-ResNet-C: two branches with factorised 3x3."""
    b1 = builder.conv(f"{prefix}_b1_conv1", [input_name], 192, kernel=1)
    b2a = builder.conv(f"{prefix}_b2_conv1", [input_name], 192, kernel=1)
    b2b = builder.conv(f"{prefix}_b2_conv2", [b2a], 192, kernel=3)
    merged = builder.concat(f"{prefix}_concat", [b1, b2b])
    in_channels, _, _ = builder.shape(input_name)
    up = builder.conv(f"{prefix}_up", [merged], in_channels, kernel=1)
    return builder.eltwise(f"{prefix}_add", [up, input_name])


def _reduction_a(builder: GraphBuilder, input_name: str) -> str:
    pool = builder.pool("reda_pool", [input_name], kernel=3, stride=2)
    b1 = builder.conv("reda_b1_conv", [input_name], 384, kernel=3, stride=2, padding=0)
    b2a = builder.conv("reda_b2_conv1", [input_name], 192, kernel=1)
    b2b = builder.conv("reda_b2_conv2", [b2a], 192, kernel=3)
    b2c = builder.conv("reda_b2_conv3", [b2b], 256, kernel=3, stride=2, padding=0)
    return builder.concat("reda_concat", [pool, b1, b2c])


def _reduction_b(builder: GraphBuilder, input_name: str) -> str:
    pool = builder.pool("redb_pool", [input_name], kernel=3, stride=2)
    b1a = builder.conv("redb_b1_conv1", [input_name], 256, kernel=1)
    b1b = builder.conv("redb_b1_conv2", [b1a], 384, kernel=3, stride=2, padding=0)
    b2a = builder.conv("redb_b2_conv1", [input_name], 256, kernel=1)
    b2b = builder.conv("redb_b2_conv2", [b2a], 256, kernel=3, stride=2, padding=0)
    b3a = builder.conv("redb_b3_conv1", [input_name], 256, kernel=1)
    b3b = builder.conv("redb_b3_conv2", [b3a], 256, kernel=3)
    b3c = builder.conv("redb_b3_conv3", [b3b], 256, kernel=3, stride=2, padding=0)
    return builder.concat("redb_concat", [pool, b1b, b2b, b3c])


def inception_resnet_v1(
    batch: int = 1,
    blocks_a: int = 5,
    blocks_b: int = 10,
    blocks_c: int = 5,
) -> WorkloadGraph:
    """Inception-ResNet-v1 with the standard 5/10/5 block counts."""
    builder = GraphBuilder("inception_resnet_v1", batch)
    current = _stem(builder)
    for i in range(blocks_a):
        current = _block_a(builder, f"ira{i + 1}", current)
    current = _reduction_a(builder, current)
    for i in range(blocks_b):
        current = _block_b(builder, f"irb{i + 1}", current)
    current = _reduction_b(builder, current)
    for i in range(blocks_c):
        current = _block_c(builder, f"irc{i + 1}", current)
    pooled = builder.pool("global_pool", [current], global_pool=True)
    bottleneck = builder.gemm("bottleneck_fc", [pooled], out_features=512)
    builder.gemm("fc", [bottleneck], out_features=1000)
    return builder.build()
