"""ResNet-50 and ResNet-101 workload builders (He et al., CVPR 2016).

BatchNorm and ReLU are folded into the convolutions that produce their
inputs, which is the standard practice for inference accelerators and keeps
the layer graph at the granularity the paper's figures show (convolutions,
poolings and residual additions).
"""

from __future__ import annotations

from repro.workloads.builder import GraphBuilder
from repro.workloads.graph import WorkloadGraph

_IMAGENET_INPUT = (3, 224, 224)


def _bottleneck_block(
    builder: GraphBuilder,
    prefix: str,
    input_name: str,
    mid_channels: int,
    out_channels: int,
    stride: int,
    project: bool,
) -> str:
    """A standard ResNet bottleneck: 1x1 -> 3x3 -> 1x1 plus residual add."""
    conv1 = builder.conv(f"{prefix}_conv1", [input_name], mid_channels, kernel=1, stride=1)
    conv2 = builder.conv(f"{prefix}_conv2", [conv1], mid_channels, kernel=3, stride=stride)
    conv3 = builder.conv(f"{prefix}_conv3", [conv2], out_channels, kernel=1, stride=1)
    if project:
        shortcut = builder.conv(
            f"{prefix}_proj", [input_name], out_channels, kernel=1, stride=stride
        )
    else:
        shortcut = input_name
    return builder.eltwise(f"{prefix}_add", [conv3, shortcut])


def _build_resnet(name: str, batch: int, blocks_per_stage: tuple[int, int, int, int]) -> WorkloadGraph:
    builder = GraphBuilder(name, batch)
    stem = builder.conv(
        "stem_conv", [], 64, kernel=7, stride=2, padding=3, input_shape=_IMAGENET_INPUT
    )
    current = builder.pool("stem_pool", [stem], kernel=3, stride=2, padding=1)

    stage_channels = ((64, 256), (128, 512), (256, 1024), (512, 2048))
    for stage_index, (num_blocks, (mid, out)) in enumerate(
        zip(blocks_per_stage, stage_channels), start=1
    ):
        for block_index in range(num_blocks):
            stride = 2 if (stage_index > 1 and block_index == 0) else 1
            current = _bottleneck_block(
                builder,
                prefix=f"stage{stage_index}_block{block_index + 1}",
                input_name=current,
                mid_channels=mid,
                out_channels=out,
                stride=stride,
                project=(block_index == 0),
            )

    pooled = builder.pool("global_pool", [current], global_pool=True)
    builder.gemm("fc", [pooled], out_features=1000)
    return builder.build()


def resnet50(batch: int = 1) -> WorkloadGraph:
    """ResNet-50 (3, 4, 6, 3 bottleneck blocks)."""
    return _build_resnet("resnet50", batch, (3, 4, 6, 3))


def resnet101(batch: int = 1) -> WorkloadGraph:
    """ResNet-101 (3, 4, 23, 3 bottleneck blocks)."""
    return _build_resnet("resnet101", batch, (3, 4, 23, 3))
