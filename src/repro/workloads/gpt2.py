"""GPT-2 workload builders (Radford et al., 2019): prefill and decode phases.

The paper uses GPT-2-Small with a 512-token context on the edge platform and
GPT-2-XL with a 1024-token context on the cloud platform, evaluating the
prefill of the whole prompt and the decode of the next token separately
(Sec. VI-A2).  The decode phase streams the KV cache from DRAM; the cache is
modelled as weight-like data attached to the attention matmuls, whose size
grows with both the context length and the batch size — which is what
produces the paper's observation that decode utilisation saturates as the
batch grows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.builder import GraphBuilder
from repro.workloads.graph import WorkloadGraph


@dataclass(frozen=True)
class GPT2Config:
    """Architectural hyper-parameters of a GPT-2 variant."""

    name: str
    num_layers: int
    hidden: int
    num_heads: int
    ffn_hidden: int

    @property
    def head_dim(self) -> int:
        return self.hidden // self.num_heads


GPT2_SMALL = GPT2Config(name="gpt2-small", num_layers=12, hidden=768, num_heads=12, ffn_hidden=3072)
GPT2_XL = GPT2Config(name="gpt2-xl", num_layers=48, hidden=1600, num_heads=25, ffn_hidden=6400)


def _prefill_block(builder: GraphBuilder, config: GPT2Config, index: int, x: str, seq_len: int) -> str:
    """One transformer block computing attention over the whole prompt."""
    prefix = f"block{index}"
    hidden = config.hidden
    ln1 = builder.norm(f"{prefix}_ln1", [x])
    q = builder.gemm(f"{prefix}_q_proj", [ln1], out_features=hidden)
    k = builder.gemm(f"{prefix}_k_proj", [ln1], out_features=hidden)
    v = builder.gemm(f"{prefix}_v_proj", [ln1], out_features=hidden)
    score = builder.matmul(
        f"{prefix}_attn_score",
        query_input=q,
        kv_input=k,
        out_features=config.num_heads * seq_len,
        contraction=config.head_dim,
        seq_len=seq_len,
    )
    probs = builder.softmax(f"{prefix}_attn_softmax", [score])
    context = builder.matmul(
        f"{prefix}_attn_context",
        query_input=probs,
        kv_input=v,
        out_features=hidden,
        contraction=seq_len,
        seq_len=seq_len,
    )
    out = builder.gemm(f"{prefix}_out_proj", [context], out_features=hidden)
    res1 = builder.eltwise(f"{prefix}_add1", [out, x])
    ln2 = builder.norm(f"{prefix}_ln2", [res1])
    ffn1 = builder.gemm(f"{prefix}_ffn1", [ln2], out_features=config.ffn_hidden)
    gelu = builder.activation(f"{prefix}_gelu", [ffn1])
    ffn2 = builder.gemm(f"{prefix}_ffn2", [gelu], out_features=hidden)
    return builder.eltwise(f"{prefix}_add2", [ffn2, res1])


def _decode_block(
    builder: GraphBuilder, config: GPT2Config, index: int, x: str, context_len: int, batch: int
) -> str:
    """One transformer block generating a single token against a KV cache."""
    prefix = f"block{index}"
    hidden = config.hidden
    kv_cache_bytes = batch * context_len * hidden  # INT8, per K and per V
    ln1 = builder.norm(f"{prefix}_ln1", [x])
    q = builder.gemm(f"{prefix}_q_proj", [ln1], out_features=hidden)
    k = builder.gemm(f"{prefix}_k_proj", [ln1], out_features=hidden)
    v = builder.gemm(f"{prefix}_v_proj", [ln1], out_features=hidden)
    # The single-token query attends over the cached keys; the cache itself is
    # streamed from DRAM (kv_bytes), while the freshly produced K/V rows stay
    # on chip as ordinary (tiny) dependencies.
    score = builder.matmul(
        f"{prefix}_attn_score",
        query_input=q,
        kv_input=k,
        out_features=config.num_heads * (context_len + 1),
        contraction=config.head_dim,
        seq_len=1,
        kv_bytes=kv_cache_bytes,
    )
    probs = builder.softmax(f"{prefix}_attn_softmax", [score])
    context = builder.matmul(
        f"{prefix}_attn_context",
        query_input=probs,
        kv_input=v,
        out_features=hidden,
        contraction=context_len + 1,
        seq_len=1,
        kv_bytes=kv_cache_bytes,
    )
    out = builder.gemm(f"{prefix}_out_proj", [context], out_features=hidden)
    res1 = builder.eltwise(f"{prefix}_add1", [out, x])
    ln2 = builder.norm(f"{prefix}_ln2", [res1])
    ffn1 = builder.gemm(f"{prefix}_ffn1", [ln2], out_features=config.ffn_hidden)
    gelu = builder.activation(f"{prefix}_gelu", [ffn1])
    ffn2 = builder.gemm(f"{prefix}_ffn2", [gelu], out_features=hidden)
    return builder.eltwise(f"{prefix}_add2", [ffn2, res1])


def gpt2_prefill(config: GPT2Config = GPT2_SMALL, batch: int = 1, seq_len: int = 512) -> WorkloadGraph:
    """The prompt-processing (prefill) phase over ``seq_len`` tokens."""
    builder = GraphBuilder(f"{config.name}-prefill-{seq_len}", batch)
    embed = builder.gemm(
        "embed_proj",
        [],
        out_features=config.hidden,
        in_features=config.hidden,
        seq_len=seq_len,
        input_shape=(config.hidden, seq_len, 1),
    )
    current = embed
    for index in range(1, config.num_layers + 1):
        current = _prefill_block(builder, config, index, current, seq_len)
    builder.norm("final_ln", [current])
    return builder.build()


def gpt2_decode(config: GPT2Config = GPT2_SMALL, batch: int = 1, context_len: int = 512) -> WorkloadGraph:
    """The single-token decode phase against a ``context_len``-token KV cache."""
    builder = GraphBuilder(f"{config.name}-decode-{context_len}", batch)
    embed = builder.gemm(
        "embed_proj",
        [],
        out_features=config.hidden,
        in_features=config.hidden,
        seq_len=1,
        input_shape=(config.hidden, 1, 1),
    )
    current = embed
    for index in range(1, config.num_layers + 1):
        current = _decode_block(builder, config, index, current, context_len, batch)
    builder.norm("final_ln", [current])
    return builder.build()
