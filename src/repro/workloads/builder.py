"""Convenience builder for workload graphs.

The builder tracks each layer's output shape so that model definitions read
like the network topology (ResNet blocks, transformer blocks, ...) without
repeating shape arithmetic.  Every helper returns the new layer's name so it
can be threaded as the input of the next helper call.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.workloads.graph import WorkloadGraph
from repro.workloads.layer import Layer, OpType


@dataclass(frozen=True)
class _Shape:
    """Output shape (channels, height, width) of a layer, per sample."""

    channels: int
    height: int
    width: int


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Standard convolution output-size formula."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise WorkloadError(
            f"invalid convolution geometry: size={size} kernel={kernel} "
            f"stride={stride} padding={padding}"
        )
    return out


class GraphBuilder:
    """Incrementally build a :class:`WorkloadGraph`."""

    def __init__(self, name: str, batch: int, bytes_per_element: int = 1) -> None:
        self.graph = WorkloadGraph(name, batch)
        self.batch = batch
        self.bytes_per_element = bytes_per_element
        self._shapes: dict[str, _Shape] = {}

    # ------------------------------------------------------------------ access
    def shape(self, name: str) -> tuple[int, int, int]:
        """Return (channels, height, width) of a previously added layer."""
        try:
            shape = self._shapes[name]
        except KeyError as exc:
            raise WorkloadError(f"unknown layer {name!r}") from exc
        return (shape.channels, shape.height, shape.width)

    def build(self) -> WorkloadGraph:
        """Return the completed graph."""
        if len(self.graph) == 0:
            raise WorkloadError("cannot build an empty workload graph")
        return self.graph

    # ----------------------------------------------------------------- helpers
    def _register(self, layer: Layer, inputs: list[str], tiled_inputs: list[bool]) -> str:
        self.graph.add_layer(layer)
        self._shapes[layer.name] = _Shape(
            channels=layer.out_channels, height=layer.out_height, width=layer.out_width
        )
        for input_name, tiled in zip(inputs, tiled_inputs):
            self.graph.add_dependency(input_name, layer.name, tiled=tiled)
        return layer.name

    def _input_shape(self, inputs: list[str], explicit: tuple[int, int, int] | None) -> _Shape:
        if explicit is not None:
            return _Shape(*explicit)
        if not inputs:
            raise WorkloadError("a source layer needs an explicit input shape")
        try:
            return self._shapes[inputs[0]]
        except KeyError as exc:
            raise WorkloadError(f"unknown input layer {inputs[0]!r}") from exc

    # ------------------------------------------------------------------ layers
    def conv(
        self,
        name: str,
        inputs: list[str],
        out_channels: int,
        kernel: int = 3,
        stride: int = 1,
        padding: int | None = None,
        input_shape: tuple[int, int, int] | None = None,
        depthwise: bool = False,
    ) -> str:
        """Add a convolution (optionally depthwise) with folded bias/BN/ReLU."""
        shape = self._input_shape(inputs, input_shape)
        if padding is None:
            padding = kernel // 2
        out_h = conv_output_size(shape.height, kernel, stride, padding)
        out_w = conv_output_size(shape.width, kernel, stride, padding)
        if depthwise:
            op_type = OpType.DWCONV
            weight_bytes = shape.channels * kernel * kernel * self.bytes_per_element
            out_channels = shape.channels
            groups = shape.channels
        else:
            op_type = OpType.CONV
            weight_bytes = (
                shape.channels * out_channels * kernel * kernel * self.bytes_per_element
            )
            groups = 1
        layer = Layer(
            name=name,
            op_type=op_type,
            batch=self.batch,
            in_channels=shape.channels,
            out_channels=out_channels,
            in_height=shape.height,
            in_width=shape.width,
            out_height=out_h,
            out_width=out_w,
            kernel_h=kernel,
            kernel_w=kernel,
            stride_h=stride,
            stride_w=stride,
            groups=groups,
            weight_bytes=weight_bytes,
            bytes_per_element=self.bytes_per_element,
        )
        return self._register(layer, inputs, [True] * len(inputs))

    def pool(
        self,
        name: str,
        inputs: list[str],
        kernel: int = 2,
        stride: int | None = None,
        padding: int = 0,
        global_pool: bool = False,
    ) -> str:
        """Add a pooling layer (max/avg are cost-equivalent for scheduling)."""
        shape = self._input_shape(inputs, None)
        if global_pool:
            kernel = shape.height
            stride = shape.height
            padding = 0
            out_h = out_w = 1
        else:
            if stride is None:
                stride = kernel
            out_h = conv_output_size(shape.height, kernel, stride, padding)
            out_w = conv_output_size(shape.width, kernel, stride, padding)
        layer = Layer(
            name=name,
            op_type=OpType.POOL,
            batch=self.batch,
            in_channels=shape.channels,
            out_channels=shape.channels,
            in_height=shape.height,
            in_width=shape.width,
            out_height=out_h,
            out_width=out_w,
            kernel_h=kernel,
            kernel_w=kernel,
            stride_h=stride,
            stride_w=stride,
            bytes_per_element=self.bytes_per_element,
        )
        return self._register(layer, inputs, [True] * len(inputs))

    def eltwise(self, name: str, inputs: list[str]) -> str:
        """Add an element-wise layer (residual add, concat-like merge, ...)."""
        shape = self._input_shape(inputs, None)
        layer = Layer(
            name=name,
            op_type=OpType.ELTWISE,
            batch=self.batch,
            in_channels=shape.channels,
            out_channels=shape.channels,
            in_height=shape.height,
            in_width=shape.width,
            out_height=shape.height,
            out_width=shape.width,
            bytes_per_element=self.bytes_per_element,
        )
        return self._register(layer, inputs, [True] * len(inputs))

    def concat(self, name: str, inputs: list[str]) -> str:
        """Add a channel-wise concatenation of the input branches."""
        if not inputs:
            raise WorkloadError("concat needs at least one input")
        shapes = [self._shapes[input_name] for input_name in inputs]
        height, width = shapes[0].height, shapes[0].width
        if any((s.height, s.width) != (height, width) for s in shapes):
            raise WorkloadError(f"concat {name!r}: branch spatial sizes differ")
        channels = sum(s.channels for s in shapes)
        layer = Layer(
            name=name,
            op_type=OpType.ELTWISE,
            batch=self.batch,
            in_channels=channels,
            out_channels=channels,
            in_height=height,
            in_width=width,
            out_height=height,
            out_width=width,
            bytes_per_element=self.bytes_per_element,
        )
        return self._register(layer, inputs, [True] * len(inputs))

    def gemm(
        self,
        name: str,
        inputs: list[str],
        out_features: int,
        in_features: int | None = None,
        seq_len: int | None = None,
        input_shape: tuple[int, int, int] | None = None,
    ) -> str:
        """Add a fully-connected / projection layer.

        Sequence length rides on the height dimension so the tiling machinery
        can split along it; ``seq_len`` defaults to the producer's height.
        """
        shape = self._input_shape(inputs, input_shape)
        if in_features is None:
            in_features = shape.channels
        if seq_len is None:
            seq_len = shape.height
        weight_bytes = in_features * out_features * self.bytes_per_element
        layer = Layer(
            name=name,
            op_type=OpType.GEMM,
            batch=self.batch,
            in_channels=in_features,
            out_channels=out_features,
            in_height=seq_len,
            in_width=1,
            out_height=seq_len,
            out_width=1,
            weight_bytes=weight_bytes,
            bytes_per_element=self.bytes_per_element,
        )
        return self._register(layer, inputs, [True] * len(inputs))

    def matmul(
        self,
        name: str,
        query_input: str,
        kv_input: str | None,
        out_features: int,
        contraction: int,
        seq_len: int,
        kv_bytes: int = 0,
    ) -> str:
        """Add an activation x activation matmul (attention score / context).

        ``kv_input`` is the key/value operand; it is an *untiled* dependency
        because every query tile needs the whole key/value tensor.  In the
        decode phase the key/value operand is the KV cache streamed from
        DRAM, which is modelled as ``kv_bytes`` of weight-like data instead
        of a graph edge (pass ``kv_input=None`` and a positive ``kv_bytes``).
        """
        layer = Layer(
            name=name,
            op_type=OpType.MATMUL,
            batch=self.batch,
            in_channels=contraction,
            out_channels=out_features,
            in_height=seq_len,
            in_width=1,
            out_height=seq_len,
            out_width=1,
            weight_bytes=kv_bytes,
            bytes_per_element=self.bytes_per_element,
        )
        inputs = [query_input]
        tiled = [True]
        if kv_input is not None:
            inputs.append(kv_input)
            tiled.append(False)
        return self._register(layer, inputs, tiled)

    def norm(self, name: str, inputs: list[str]) -> str:
        """Add a normalisation layer (LayerNorm / BatchNorm kept explicit)."""
        shape = self._input_shape(inputs, None)
        layer = Layer(
            name=name,
            op_type=OpType.NORM,
            batch=self.batch,
            in_channels=shape.channels,
            out_channels=shape.channels,
            in_height=shape.height,
            in_width=shape.width,
            out_height=shape.height,
            out_width=shape.width,
            bytes_per_element=self.bytes_per_element,
        )
        return self._register(layer, inputs, [True] * len(inputs))

    def softmax(self, name: str, inputs: list[str]) -> str:
        """Add a softmax layer."""
        shape = self._input_shape(inputs, None)
        layer = Layer(
            name=name,
            op_type=OpType.SOFTMAX,
            batch=self.batch,
            in_channels=shape.channels,
            out_channels=shape.channels,
            in_height=shape.height,
            in_width=shape.width,
            out_height=shape.height,
            out_width=shape.width,
            bytes_per_element=self.bytes_per_element,
        )
        return self._register(layer, inputs, [True] * len(inputs))

    def activation(self, name: str, inputs: list[str]) -> str:
        """Add a standalone activation layer (GELU between FFN GEMMs, ...)."""
        shape = self._input_shape(inputs, None)
        layer = Layer(
            name=name,
            op_type=OpType.ACTIVATION,
            batch=self.batch,
            in_channels=shape.channels,
            out_channels=shape.channels,
            in_height=shape.height,
            in_width=shape.width,
            out_height=shape.height,
            out_width=shape.width,
            bytes_per_element=self.bytes_per_element,
        )
        return self._register(layer, inputs, [True] * len(inputs))
