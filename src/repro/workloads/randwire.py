"""RandWire workload builder (Xie et al., ICCV 2019).

RandWire networks are built from randomly wired stages: a Watts-Strogatz
small-world graph is generated per stage, oriented into a DAG by node index,
and every node becomes a (sum + conv 3x3) unit.  The random generator is
seeded so the workload is fully deterministic; the paper uses RandWire as its
"complex irregular topology" workload.
"""

from __future__ import annotations

import networkx as nx

from repro.workloads.builder import GraphBuilder
from repro.workloads.graph import WorkloadGraph

_INPUT = (3, 224, 224)


def _stage_dag(num_nodes: int, k: int, p: float, seed: int) -> nx.DiGraph:
    """Generate one randomly wired stage as a DAG over ``num_nodes`` nodes."""
    undirected = nx.connected_watts_strogatz_graph(num_nodes, k, p, seed=seed, tries=100)
    dag = nx.DiGraph()
    dag.add_nodes_from(range(num_nodes))
    for u, v in undirected.edges():
        low, high = (u, v) if u < v else (v, u)
        dag.add_edge(low, high)
    return dag


def _add_stage(
    builder: GraphBuilder,
    stage_index: int,
    input_name: str,
    channels: int,
    num_nodes: int,
    seed: int,
) -> str:
    """Materialise one randomly wired stage and return its output layer name."""
    dag = _stage_dag(num_nodes, k=4, p=0.75, seed=seed)
    prefix = f"stage{stage_index}"

    # The stage entry halves the spatial resolution and sets the channel width.
    entry = builder.conv(f"{prefix}_entry", [input_name], channels, kernel=3, stride=2)

    node_outputs: dict[int, str] = {}
    for node in sorted(dag.nodes()):
        preds = sorted(dag.predecessors(node))
        if preds:
            inputs = [node_outputs[p] for p in preds]
        else:
            inputs = [entry]
        if len(inputs) > 1:
            merged = builder.eltwise(f"{prefix}_node{node}_sum", inputs)
        else:
            merged = inputs[0]
        node_outputs[node] = builder.conv(
            f"{prefix}_node{node}_conv", [merged], channels, kernel=3, stride=1
        )

    sinks = [node_outputs[n] for n in sorted(dag.nodes()) if dag.out_degree(n) == 0]
    if len(sinks) > 1:
        return builder.eltwise(f"{prefix}_out_sum", sinks)
    return sinks[0]


def randwire(
    batch: int = 1,
    nodes_per_stage: int = 12,
    channels: tuple[int, int, int] = (64, 128, 256),
    seed: int = 2025,
) -> WorkloadGraph:
    """A three-stage RandWire network in the small regime used for evaluation."""
    builder = GraphBuilder("randwire", batch)
    stem = builder.conv(
        "stem_conv", [], channels[0] // 2, kernel=3, stride=2, input_shape=_INPUT
    )
    current = stem
    for stage_index, stage_channels in enumerate(channels, start=1):
        current = _add_stage(
            builder,
            stage_index=stage_index,
            input_name=current,
            channels=stage_channels,
            num_nodes=nodes_per_stage,
            seed=seed + stage_index,
        )
    head = builder.conv("head_conv", [current], 512, kernel=1)
    pooled = builder.pool("global_pool", [head], global_pool=True)
    builder.gemm("fc", [pooled], out_features=1000)
    return builder.build()
