"""Layer-level description of DNN operators.

A :class:`Layer` captures exactly the information the scheduling framework
needs: operand shapes (to size tiles, fmaps and weights), the operation count
(to cost compute time and energy) and the operator kind (to know whether the
halo/receptive-field machinery applies and whether the PE array or the vector
unit executes it).  Activations are INT8 by default, matching the paper's
practical example (Sec. VII-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, unique


@unique
class OpType(Enum):
    """Operator categories distinguished by the scheduler."""

    CONV = "conv"
    DWCONV = "dwconv"
    POOL = "pool"
    GEMM = "gemm"
    MATMUL = "matmul"  # activation x activation (attention score / context)
    ELTWISE = "eltwise"
    NORM = "norm"
    SOFTMAX = "softmax"
    ACTIVATION = "activation"

    @property
    def has_weights(self) -> bool:
        """Whether this operator owns a weight tensor loaded from DRAM."""
        return self in (OpType.CONV, OpType.DWCONV, OpType.GEMM)

    @property
    def uses_pe_array(self) -> bool:
        """Whether the PE array (MACs) executes this operator."""
        return self in (OpType.CONV, OpType.DWCONV, OpType.GEMM, OpType.MATMUL)

    @property
    def has_spatial_window(self) -> bool:
        """Whether the operator has a sliding window and produces halo overlap."""
        return self in (OpType.CONV, OpType.DWCONV, OpType.POOL)


@dataclass(frozen=True)
class Layer:
    """One node of the workload graph.

    Shapes follow the NCHW convention.  For sequence operators (GEMM, MATMUL,
    NORM, ...) the sequence length is mapped onto the height dimension and
    the width is 1, so the same batch/height/width tiling machinery applies
    to CNNs and transformers alike.
    """

    name: str
    op_type: OpType
    batch: int
    in_channels: int
    out_channels: int
    in_height: int
    in_width: int
    out_height: int
    out_width: int
    kernel_h: int = 1
    kernel_w: int = 1
    stride_h: int = 1
    stride_w: int = 1
    groups: int = 1
    weight_bytes: int = 0
    bytes_per_element: int = 1
    extra_macs: int = 0
    metadata: dict = field(default_factory=dict, compare=False, hash=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("layer name must be non-empty")
        for attr in (
            "batch",
            "in_channels",
            "out_channels",
            "in_height",
            "in_width",
            "out_height",
            "out_width",
            "kernel_h",
            "kernel_w",
            "stride_h",
            "stride_w",
            "groups",
            "bytes_per_element",
        ):
            if getattr(self, attr) <= 0:
                raise ValueError(f"layer {self.name!r}: {attr} must be positive")
        if self.weight_bytes < 0:
            raise ValueError(f"layer {self.name!r}: weight_bytes must be non-negative")
        if self.op_type.has_weights and self.weight_bytes == 0:
            raise ValueError(
                f"layer {self.name!r}: {self.op_type.value} layers must carry weights"
            )

    # ------------------------------------------------------------------ sizes
    @property
    def ifmap_bytes(self) -> int:
        """Bytes of the (primary) input feature map for the whole batch."""
        return (
            self.batch
            * self.in_channels
            * self.in_height
            * self.in_width
            * self.bytes_per_element
        )

    @property
    def ofmap_bytes(self) -> int:
        """Bytes of the output feature map for the whole batch."""
        return (
            self.batch
            * self.out_channels
            * self.out_height
            * self.out_width
            * self.bytes_per_element
        )

    @property
    def ofmap_elements(self) -> int:
        """Number of output elements for the whole batch."""
        return self.batch * self.out_channels * self.out_height * self.out_width

    # ------------------------------------------------------------- operations
    @property
    def macs(self) -> int:
        """Multiply-accumulate count of the layer (whole batch)."""
        if not self.op_type.uses_pe_array:
            return 0
        if self.op_type in (OpType.CONV, OpType.GEMM):
            per_output = self.kernel_h * self.kernel_w * self.in_channels // self.groups
            return self.ofmap_elements * per_output + self.extra_macs
        if self.op_type is OpType.DWCONV:
            return self.ofmap_elements * self.kernel_h * self.kernel_w + self.extra_macs
        # MATMUL (activation x activation): the contraction length rides on
        # in_channels, exactly like a GEMM without weights.
        return self.ofmap_elements * self.in_channels + self.extra_macs

    @property
    def vector_ops(self) -> int:
        """Element operations executed on the vector unit (whole batch)."""
        if self.op_type.uses_pe_array:
            return 0
        if self.op_type is OpType.POOL:
            return self.ofmap_elements * self.kernel_h * self.kernel_w
        if self.op_type in (OpType.NORM, OpType.SOFTMAX):
            # normalisation passes read the data a small constant number of times
            return 4 * self.ofmap_elements
        return self.ofmap_elements

    @property
    def ops(self) -> int:
        """Total operation count (2 ops per MAC, 1 per vector element op)."""
        return 2 * self.macs + self.vector_ops

    # ----------------------------------------------------------------- helpers
    def describe(self) -> str:
        """One-line human readable description used in reports."""
        return (
            f"{self.name}[{self.op_type.value}] "
            f"in={self.in_channels}x{self.in_height}x{self.in_width} "
            f"out={self.out_channels}x{self.out_height}x{self.out_width} "
            f"k={self.kernel_h}x{self.kernel_w} s={self.stride_h} "
            f"W={self.weight_bytes}B macs={self.macs}"
        )
