"""Workload registry: name-based access to the evaluation model zoo.

Benchmarks and examples build workloads by name ("resnet50", "gpt2-prefill",
...), optionally with a batch size and a size qualifier ("small"/"xl" for
GPT-2, "tiny" variants used by fast tests and CI-scale benchmark runs).
"""

from __future__ import annotations

from typing import Callable

from repro.errors import WorkloadError
from repro.workloads.gpt2 import GPT2_SMALL, GPT2_XL, GPT2Config, gpt2_decode, gpt2_prefill
from repro.workloads.graph import WorkloadGraph
from repro.workloads.inception_resnet import inception_resnet_v1
from repro.workloads.randwire import randwire
from repro.workloads.resnet import resnet50, resnet101

_GPT2_TINY = GPT2Config(name="gpt2-tiny", num_layers=2, hidden=256, num_heads=4, ffn_hidden=1024)


def _gpt2_variant(variant: str) -> GPT2Config:
    variants = {"small": GPT2_SMALL, "xl": GPT2_XL, "tiny": _GPT2_TINY}
    try:
        return variants[variant]
    except KeyError as exc:
        raise WorkloadError(
            f"unknown GPT-2 variant {variant!r}; expected one of {sorted(variants)}"
        ) from exc


def _default_seq_len(variant: str) -> int:
    return {"small": 512, "xl": 1024, "tiny": 64}[variant]


_BUILDERS: dict[str, Callable[..., WorkloadGraph]] = {
    "resnet50": lambda batch, **kw: resnet50(batch=batch),
    "resnet101": lambda batch, **kw: resnet101(batch=batch),
    "inception_resnet_v1": lambda batch, **kw: inception_resnet_v1(batch=batch),
    "randwire": lambda batch, **kw: randwire(batch=batch, **kw),
    "gpt2-prefill": lambda batch, variant="small", seq_len=None, **kw: gpt2_prefill(
        config=_gpt2_variant(variant),
        batch=batch,
        seq_len=seq_len if seq_len is not None else _default_seq_len(variant),
    ),
    "gpt2-decode": lambda batch, variant="small", context_len=None, **kw: gpt2_decode(
        config=_gpt2_variant(variant),
        batch=batch,
        context_len=context_len if context_len is not None else _default_seq_len(variant),
    ),
}


def available_workloads() -> list[str]:
    """Names accepted by :func:`build_workload`."""
    return sorted(_BUILDERS)


def build_workload(name: str, batch: int = 1, **kwargs) -> WorkloadGraph:
    """Build a workload graph by registry name.

    Parameters
    ----------
    name:
        One of :func:`available_workloads`.
    batch:
        Batch size (the paper sweeps 1, 4, 16, 64).
    kwargs:
        Workload-specific options, e.g. ``variant="xl"`` or ``seq_len=1024``
        for the GPT-2 entries.
    """
    try:
        builder = _BUILDERS[name]
    except KeyError as exc:
        raise WorkloadError(
            f"unknown workload {name!r}; available: {available_workloads()}"
        ) from exc
    return builder(batch=batch, **kwargs)
