"""Workload substrate: layer-level DNN descriptions and the paper's model zoo.

The paper feeds SoMa a layer graph exported from a high-level framework; this
reproduction builds those graphs directly.  The zoo covers every workload of
the evaluation section: ResNet-50, ResNet-101, Inception-ResNet-v1, RandWire
and GPT-2 (Small/XL, prefill and decode).
"""

from repro.workloads.graph import WorkloadGraph
from repro.workloads.layer import Layer, OpType
from repro.workloads.registry import available_workloads, build_workload

__all__ = [
    "Layer",
    "OpType",
    "WorkloadGraph",
    "available_workloads",
    "build_workload",
]
