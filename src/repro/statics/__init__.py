"""``repro lint`` — AST-based invariant checkers for the repo's own code.

Five rules enforce the contracts the test suite cannot see:

* ``determinism`` — engine-pure modules never read clocks, global RNGs or
  process identity (:mod:`repro.statics.determinism`);
* ``knobs`` — every ``REPRO_*`` env var is registered in
  :mod:`repro.core.knobs`, read through it, and documented
  (:mod:`repro.statics.knobs_check`);
* ``pool-purity`` — pool tasks are module-level callables and no pool is
  constructed at import time (:mod:`repro.statics.purity`);
* ``lock-discipline`` — attributes guarded by a lock anywhere are guarded
  everywhere (:mod:`repro.statics.locks`);
* ``fingerprint`` — cache keys and seed derivations are built from stable
  primitives or ``fingerprint()`` values (:mod:`repro.statics.fingerprint`).

Run as ``python -m repro lint [--strict] [--rules ...] [--baseline PATH]``.
Deliberate violations are silenced inline with ``# repro: lint-ok[rule]``
or recorded in the committed ``lint-baseline.json`` with a justification.
"""

from repro.statics.model import Baseline, BaselineEntry, Finding, Rule
from repro.statics.runner import CHECKERS, LintReport, all_rules, run_lint

__all__ = [
    "Baseline",
    "BaselineEntry",
    "CHECKERS",
    "Finding",
    "LintReport",
    "Rule",
    "all_rules",
    "run_lint",
]
