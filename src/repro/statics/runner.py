"""Lint runner: walk files, run checkers, apply suppressions and baseline.

The programmatic entry point is :func:`run_lint`; the CLI in
:mod:`repro.cli` is a thin argument-parsing shell around it.  The runner
owns everything rule-agnostic: file discovery, parse errors, inline
suppressions, baseline matching and staleness, and the human/JSON reports.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.statics import determinism, fingerprint, knobs_check, locks, purity
from repro.statics.model import (
    SEVERITY_ERROR,
    Baseline,
    BaselineEntry,
    Finding,
    Rule,
    is_suppressed,
)
from repro.statics.source import SourceModule

#: Rule id -> checker module.  Each checker exposes ``RULE`` and
#: ``check(module, context)``; ``finalize(context)`` is optional and runs
#: once after every file has been scanned.
CHECKERS = {
    determinism.RULE.id: determinism,
    knobs_check.RULE.id: knobs_check,
    purity.RULE.id: purity,
    locks.RULE.id: locks,
    fingerprint.RULE.id: fingerprint,
}

#: Directory names never descended into during discovery.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".pytest_cache", "build", "dist"})


def all_rules() -> list[Rule]:
    return [checker.RULE for checker in CHECKERS.values()]


@dataclass
class LintContext:
    """Run-wide state shared by checkers (registry contents, README)."""

    root: Path
    registry: dict = field(default_factory=dict)
    registry_names: frozenset = frozenset()
    readme_text: str | None = None
    readme_rel: str = "README.md"

    @classmethod
    def build(cls, root: Path, readme: Path | None) -> "LintContext":
        from repro.core.knobs import REGISTRY

        readme_text = None
        readme_rel = "README.md"
        if readme is not None and readme.is_file():
            readme_text = readme.read_text(encoding="utf-8")
            try:
                readme_rel = readme.resolve().relative_to(root.resolve()).as_posix()
            except ValueError:
                readme_rel = readme.name
        return cls(
            root=root,
            registry=dict(REGISTRY),
            registry_names=frozenset(REGISTRY),
            readme_text=readme_text,
            readme_rel=readme_rel,
        )


@dataclass
class LintReport:
    """Everything one lint run produced, pre-rendering."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    baselined: int = 0
    stale_baseline: list[BaselineEntry] = field(default_factory=list)
    files_checked: int = 0
    rules_run: list[str] = field(default_factory=list)

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == SEVERITY_ERROR]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity != SEVERITY_ERROR]

    def failed(self, strict: bool) -> bool:
        """Exit-status policy: errors always fail; ``--strict`` also fails
        warnings and stale baseline entries."""
        if self.errors:
            return True
        if strict and (self.warnings or self.stale_baseline):
            return True
        return False

    def to_payload(self) -> dict:
        return {
            "files_checked": self.files_checked,
            "rules": sorted(self.rules_run),
            "findings": [f.to_payload() for f in self.findings],
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "stale_baseline": [entry.to_payload() for entry in self.stale_baseline],
            "counts": {
                "error": len(self.errors),
                "warning": len(self.warnings),
            },
        }

    def render_text(self) -> str:
        lines = [finding.render() for finding in sorted(
            self.findings, key=lambda f: (f.path, f.line, f.col, f.rule)
        )]
        for entry in self.stale_baseline:
            lines.append(
                f"{entry.path}: [baseline] stale: no current finding matches "
                f"{entry.rule!r}: {entry.message!r} — remove the entry or "
                "regenerate with --write-baseline"
            )
        lines.append(
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s) "
            f"({self.suppressed} suppressed inline, {self.baselined} baselined, "
            f"{len(self.stale_baseline)} stale baseline entrie(s)) "
            f"across {self.files_checked} file(s)"
        )
        return "\n".join(lines)


def discover(paths: list[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            files.add(path)
        elif path.is_dir():
            for candidate in path.rglob("*.py"):
                if not any(part in _SKIP_DIRS for part in candidate.parts):
                    files.add(candidate)
    return sorted(files)


def run_lint(
    paths: list[Path],
    root: Path,
    rules: list[str] | None = None,
    baseline: Baseline | None = None,
    readme: Path | None = None,
) -> LintReport:
    """Run the selected checkers over ``paths``.

    ``root`` anchors the relative paths used in findings and baselines.
    ``rules=None`` runs everything; unknown rule ids raise ``ValueError``
    (a typo'd ``--rules`` silently skipping a checker would look green).
    """
    selected = list(CHECKERS) if rules is None else list(rules)
    unknown = [rule for rule in selected if rule not in CHECKERS]
    if unknown:
        raise ValueError(
            f"unknown lint rule(s) {unknown!r}; available: {sorted(CHECKERS)}"
        )
    baseline = baseline if baseline is not None else Baseline()
    context = LintContext.build(root, readme)
    report = LintReport(rules_run=selected)

    raw: list[tuple[Finding, SourceModule | None]] = []
    for file_path in discover(paths):
        try:
            module = SourceModule.parse(file_path, root)
        except SyntaxError as exc:
            raw.append(
                (
                    Finding(
                        rule="parse",
                        path=file_path.as_posix(),
                        line=exc.lineno or 1,
                        col=exc.offset or 0,
                        message=f"file does not parse: {exc.msg}",
                        severity=SEVERITY_ERROR,
                    ),
                    None,
                )
            )
            continue
        report.files_checked += 1
        for rule_id in selected:
            found = CHECKERS[rule_id].check(module, context)
            raw.extend((finding, module) for finding in found)

    for rule_id in selected:
        finalize = getattr(CHECKERS[rule_id], "finalize", None)
        if finalize is not None:
            raw.extend((finding, None) for finding in finalize(context))

    for finding, module in raw:
        if module is not None and is_suppressed(finding, module.suppressions):
            report.suppressed += 1
            continue
        if baseline.matches(finding):
            report.baselined += 1
            continue
        report.findings.append(finding)
    report.stale_baseline = baseline.stale_entries()
    return report


def write_json(report: LintReport, stream) -> None:
    json.dump(report.to_payload(), stream, indent=2)
    stream.write("\n")


def _unfiltered_findings(
    paths: list[Path], root: Path, readme: Path | None
) -> list[Finding]:
    """All findings with only inline suppressions applied (for --write-baseline)."""
    report = run_lint(paths, root, rules=None, baseline=Baseline(), readme=readme)
    return report.findings


def regenerate_baseline(
    paths: list[Path],
    root: Path,
    baseline_path: Path,
    readme: Path | None,
    previous: Baseline | None = None,
) -> Baseline:
    """Write a fresh baseline accepting every current finding.

    Justifications from a previous baseline are carried over for entries
    that still match, so regeneration never erases the written rationale.
    """
    findings = _unfiltered_findings(paths, root, readme)
    fresh = Baseline.from_findings(findings)
    if previous is not None:
        carried = {entry.key(): entry.justification for entry in previous.entries}
        for entry in fresh.entries:
            if entry.key() in carried and carried[entry.key()]:
                entry.justification = carried[entry.key()]
    fresh.save(baseline_path)
    return fresh
