"""Rule ``fingerprint`` — cache keys and seed derivations use stable values.

Memoisation (:class:`~repro.core.caching.LRUCache`) and seed derivation
(:func:`~repro.experiments.parallel.derive_seed`) are only sound when their
inputs are stable across processes and runs.  This rule inspects every
expression used as a cache key or seed component and flags constructs whose
value is process-dependent or unhashable:

* ``id(...)`` — a process-local address;
* ``hash(...)`` — salted per process for strings (``PYTHONHASHSEED``);
* clock and RNG reads (``time.*`` / ``random.*``);
* lambdas, list/set/dict displays and comprehensions — unhashable or
  ordering-fragile; use a tuple of primitives or the object's
  ``fingerprint()``.

Receivers count as caches when assigned from ``LRUCache(...)`` in the same
module or when their name contains ``cache``/``memo``/``lru``.  Only the
*key* argument (the first) of ``get``/``put``/``get_or_compute`` is
inspected — the computed value may be anything.  Bare names are not chased
through dataflow; the rule is about key *expressions*, and the repo's
convention is that anything non-primitive bound to a name exposes
``fingerprint()``.
"""

from __future__ import annotations

import ast

from repro.statics.model import Finding, Rule
from repro.statics.source import SourceModule

RULE = Rule(
    id="fingerprint",
    summary="cache keys and derive_seed inputs must be stable primitives or fingerprints",
)

_SEED_FUNCTIONS = frozenset({"derive_seed", "schedule_request_key"})
_CACHE_METHODS = frozenset({"get", "put", "get_or_compute", "peek"})
_CACHE_NAME_HINTS = ("cache", "memo", "lru")
_CACHE_CONSTRUCTORS = frozenset({"LRUCache"})


def _callee_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _receiver_repr(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return f"self.{node.attr}"
    return None


def _collect_cache_vars(tree: ast.Module) -> set[str]:
    cache_vars: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            if _callee_name(node.value.func) in _CACHE_CONSTRUCTORS:
                for target in node.targets:
                    name = _receiver_repr(target)
                    if name is not None:
                        cache_vars.add(name)
    return cache_vars


def _looks_like_cache(receiver: str, cache_vars: set[str]) -> bool:
    if receiver in cache_vars:
        return True
    tail = receiver.rsplit(".", 1)[-1].lower()
    return any(hint in tail for hint in _CACHE_NAME_HINTS)


def _unstable_nodes(expr: ast.expr):
    """Yield (node, reason) for unstable constructs inside a key expression."""
    for node in ast.walk(expr):
        if isinstance(node, ast.Call):
            dotted_head = None
            if isinstance(node.func, ast.Attribute) and isinstance(
                node.func.value, ast.Name
            ):
                dotted_head = node.func.value.id
            callee = _callee_name(node.func)
            if isinstance(node.func, ast.Name) and callee == "id":
                yield node, "id() is a process-local address"
            elif isinstance(node.func, ast.Name) and callee == "hash":
                yield node, "hash() is salted per process (PYTHONHASHSEED)"
            elif dotted_head == "time":
                yield node, f"time.{callee}() injects wall clock into the key"
            elif dotted_head == "random":
                yield node, f"random.{callee}() injects RNG state into the key"
        elif isinstance(node, ast.Lambda):
            yield node, "a lambda is identity-keyed and unpicklable"
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            yield node, "a comprehension builds an unhashable/unstable container"
        elif isinstance(node, (ast.List, ast.Set, ast.Dict)):
            yield node, "a mutable container display is unhashable"


def check(module: SourceModule, context) -> list[Finding]:
    cache_vars = _collect_cache_vars(module.tree)
    findings: list[Finding] = []

    def flag_key_expr(expr: ast.expr, where: str) -> None:
        for node, reason in _unstable_nodes(expr):
            findings.append(
                Finding(
                    rule=RULE.id,
                    path=module.rel,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"unstable value in {where}: {reason}; use primitives "
                        "or an object exposing fingerprint()"
                    ),
                    severity=RULE.severity,
                )
            )

    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        callee = _callee_name(node.func)
        if callee in _SEED_FUNCTIONS:
            for arg in node.args:
                flag_key_expr(arg, f"{callee}(...)")
            continue
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _CACHE_METHODS
            and node.args
        ):
            receiver = _receiver_repr(node.func.value)
            if receiver is not None and _looks_like_cache(receiver, cache_vars):
                flag_key_expr(node.args[0], f"the {receiver}.{node.func.attr}() key")
    return findings
