"""Rule ``determinism`` — no nondeterminism sources in engine-pure modules.

The repo's headline guarantee is that the same (graph, accelerator, seed)
triple produces a bit-identical schedule on any machine, any worker count,
any day.  That only holds if the engine layers (``core/``, ``notation/``,
``compiler/``, ``analysis/``) never consult a nondeterminism source:

* the module-global ``random`` RNG, or an **unseeded** ``random.Random()``
  (a seeded ``random.Random(seed)`` is the approved construct);
* wall clocks — ``time.time()``, ``time.perf_counter()``,
  ``time.monotonic()`` and their ``_ns`` variants;
* ``os.urandom`` / ``uuid.uuid4`` / ``secrets.*``;
* ``id()``, whose value is a process-local address.

Deliberate uses (the SA engines read ``perf_counter`` to honour an optional
wall-clock budget, never to steer a move) carry an inline
``# repro: lint-ok[determinism]`` at the call site.
"""

from __future__ import annotations

import ast

from repro.statics.model import Finding, Rule
from repro.statics.source import SourceModule

RULE = Rule(
    id="determinism",
    summary="engine-pure modules must not read clocks, global RNGs or process identity",
)

_CLOCK_ATTRS = frozenset(
    {"time", "perf_counter", "monotonic", "time_ns", "perf_counter_ns", "monotonic_ns"}
)


def _dotted(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def check(module: SourceModule, context) -> list[Finding]:
    if not module.is_engine_pure:
        return []
    findings: list[Finding] = []

    def flag(node: ast.AST, message: str) -> None:
        findings.append(
            Finding(
                rule=RULE.id,
                path=module.rel,
                line=node.lineno,
                col=node.col_offset,
                message=message,
                severity=RULE.severity,
            )
        )

    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        if dotted is None:
            continue
        if dotted == "random.Random":
            if not node.args and not node.keywords:
                flag(
                    node,
                    "unseeded random.Random() seeds from the OS; "
                    "pass an explicit seed (e.g. via derive_seed)",
                )
        elif dotted == "random.SystemRandom":
            flag(node, "random.SystemRandom draws from the OS entropy pool")
        elif dotted.startswith("random."):
            flag(
                node,
                f"{dotted}() uses the module-global RNG whose state is shared and "
                "unseeded; use an explicit random.Random(seed) instance",
            )
        elif dotted.startswith("time.") and dotted.split(".", 1)[1] in _CLOCK_ATTRS:
            flag(
                node,
                f"{dotted}() reads the wall clock in an engine-pure module; "
                "clock values must never influence schedules or cache keys",
            )
        elif dotted == "os.urandom":
            flag(node, "os.urandom is nondeterministic by construction")
        elif dotted in ("uuid.uuid1", "uuid.uuid4"):
            flag(node, f"{dotted}() is nondeterministic by construction")
        elif dotted.startswith("secrets."):
            flag(node, f"{dotted}() draws from the OS entropy pool")
        elif dotted == "id":
            flag(
                node,
                "id() is a process-local address; it changes across runs and "
                "must never feed engine state or cache keys",
            )
    return findings
