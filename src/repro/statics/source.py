"""Parsed-source representation handed to every checker.

One :class:`SourceModule` per file: the raw text, its AST, the root-relative
POSIX path used in findings and baselines, and the parsed inline
suppressions.  Parsing happens once per file regardless of how many rules
run over it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.statics.model import parse_suppressions

#: Top-level package directories whose modules must be *engine-pure*: their
#: outputs feed fingerprints, caches and schedules, so any dependence on
#: wall clock, process identity or unseeded randomness breaks the repo's
#: bit-identical determinism guarantee.
ENGINE_PURE_DIRS = frozenset({"core", "notation", "compiler", "analysis"})


@dataclass
class SourceModule:
    """One parsed Python source file under lint."""

    path: Path
    rel: str  # root-relative POSIX path, the stable identity in findings
    text: str
    tree: ast.Module
    suppressions: dict = field(default_factory=dict)

    @classmethod
    def parse(cls, path: Path, root: Path) -> "SourceModule":
        text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(path))
        try:
            rel = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            rel = path.as_posix()
        return cls(
            path=path,
            rel=rel,
            text=text,
            tree=tree,
            suppressions=parse_suppressions(text),
        )

    @property
    def is_engine_pure(self) -> bool:
        """Whether this file lives in a directory that must be deterministic."""
        return any(part in ENGINE_PURE_DIRS for part in Path(self.rel).parts[:-1])

    @property
    def name(self) -> str:
        return Path(self.rel).stem
