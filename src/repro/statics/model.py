"""The rule/finding model shared by every checker in :mod:`repro.statics`.

A checker produces :class:`Finding` records; the runner then filters them
through two escape hatches before anything reaches the user:

* **Inline suppressions** — ``# repro: lint-ok[rule]`` (or a bare
  ``# repro: lint-ok`` for every rule) on the flagged line marks a finding
  as deliberate at the point of violation.  Anything after the closing
  bracket is free-form justification.
* **The committed baseline** — a JSON file of (rule, path, message)
  triples, each with a one-line justification, for violations that are
  deliberate but live far from a single source line (e.g. a
  caller-holds-the-lock contract spanning two methods).  Baseline matching
  is *line-number-free* so unrelated edits never invalidate it; an entry
  that matches no current finding is reported as stale so the file cannot
  rot.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

#: Format stamp of the baseline file; bump on incompatible changes so an
#: old baseline is rejected loudly instead of silently matching nothing.
BASELINE_FORMAT = "repro-lint-baseline"
BASELINE_VERSION = 1

_SUPPRESS_PATTERN = re.compile(r"#\s*repro:\s*lint-ok(?:\[([^\]]*)\])?")


@dataclass(frozen=True)
class Rule:
    """One lint rule: a stable id, a summary and its default severity."""

    id: str
    summary: str
    severity: str = SEVERITY_ERROR


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location.

    ``path`` is root-relative and POSIX-style so baselines are portable
    across machines; ``message`` must not embed line numbers — the
    (rule, path, message) triple is the baseline key and has to survive
    unrelated edits to the file.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: str = SEVERITY_ERROR

    def baseline_key(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.message)

    def to_payload(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.severity}: {self.message}"


# ------------------------------------------------------------- suppressions
def parse_suppressions(text: str) -> dict[int, frozenset[str] | None]:
    """Per-line suppressions of one source file.

    Returns ``{line_number: rules}`` where ``rules`` is a frozenset of rule
    ids, or ``None`` for a bare ``lint-ok`` that silences every rule on that
    line.  Lines are 1-based to match ``ast`` line numbers.
    """
    suppressions: dict[int, frozenset[str] | None] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        match = _SUPPRESS_PATTERN.search(line)
        if match is None:
            continue
        rules = match.group(1)
        if rules is None:
            suppressions[number] = None
        else:
            names = frozenset(part.strip() for part in rules.split(",") if part.strip())
            suppressions[number] = names or None
    return suppressions


def is_suppressed(
    finding: Finding, suppressions: dict[int, frozenset[str] | None]
) -> bool:
    """Whether an inline comment on the finding's line silences its rule."""
    rules = suppressions.get(finding.line, "missing")
    if rules == "missing":
        return False
    return rules is None or finding.rule in rules


# ----------------------------------------------------------------- baseline
@dataclass
class BaselineEntry:
    """One deliberate, justified violation committed to the baseline."""

    rule: str
    path: str
    message: str
    justification: str = ""
    matched: int = field(default=0, compare=False)

    def key(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.message)

    def to_payload(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "message": self.message,
            "justification": self.justification,
        }


class Baseline:
    """The committed set of accepted findings, with staleness tracking."""

    def __init__(self, entries: list[BaselineEntry] | None = None) -> None:
        self.entries = entries if entries is not None else []
        self._by_key = {entry.key(): entry for entry in self.entries}

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Load a baseline file; a missing file is an empty baseline.

        A malformed or wrong-format file raises — serving a half-read
        baseline would silently un-suppress (or worse, keep suppressing)
        findings.
        """
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return cls()
        if (
            not isinstance(document, dict)
            or document.get("format") != BASELINE_FORMAT
            or document.get("version") != BASELINE_VERSION
            or not isinstance(document.get("entries"), list)
        ):
            raise ValueError(
                f"{path} is not a version-{BASELINE_VERSION} {BASELINE_FORMAT} file; "
                "regenerate it with `python -m repro lint --write-baseline`"
            )
        entries = []
        for raw in document["entries"]:
            entries.append(
                BaselineEntry(
                    rule=str(raw["rule"]),
                    path=str(raw["path"]),
                    message=str(raw["message"]),
                    justification=str(raw.get("justification", "")),
                )
            )
        return cls(entries)

    def save(self, path: Path) -> None:
        document = {
            "format": BASELINE_FORMAT,
            "version": BASELINE_VERSION,
            "entries": [entry.to_payload() for entry in self.entries],
        }
        path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")

    def matches(self, finding: Finding) -> bool:
        """Whether the finding is baselined (and mark the entry as used)."""
        entry = self._by_key.get(finding.baseline_key())
        if entry is None:
            return False
        entry.matched += 1
        return True

    def stale_entries(self) -> list[BaselineEntry]:
        """Entries that matched no finding in the run just completed."""
        return [entry for entry in self.entries if entry.matched == 0]

    @classmethod
    def from_findings(
        cls, findings: list[Finding], justification: str = "TODO: justify"
    ) -> "Baseline":
        """A fresh baseline accepting every given finding (deduplicated)."""
        entries: dict[tuple, BaselineEntry] = {}
        for finding in findings:
            key = finding.baseline_key()
            if key not in entries:
                entries[key] = BaselineEntry(
                    rule=finding.rule,
                    path=finding.path,
                    message=finding.message,
                    justification=justification,
                )
        return cls(list(entries.values()))
