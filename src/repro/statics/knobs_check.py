"""Rule ``knobs`` — every ``REPRO_*`` environment knob goes through the registry.

:mod:`repro.core.knobs` is the single source of truth for the repo's
environment knobs: name, type, default, validation and documentation.  This
rule keeps it authoritative by flagging

* any ``os.environ`` / ``os.getenv`` *read* of a ``REPRO_*`` name outside
  ``core/knobs.py`` (writes are fine — workers stamp ``REPRO_POOL_WORKER``,
  tests monkeypatch values; it is bypassing the *read-side* validation that
  hurts);
* any ``REPRO_*`` string anywhere in the tree that is not a registered knob
  (a typo'd knob name fails silently forever otherwise);
* any registered, non-internal knob missing from the README (checked once
  per run, when a README is in scope).
"""

from __future__ import annotations

import ast
import re

from repro.statics.model import Finding, Rule
from repro.statics.source import SourceModule

RULE = Rule(
    id="knobs",
    summary="REPRO_* env vars must be registered in core/knobs.py and read through it",
)

_KNOB_NAME = re.compile(r"REPRO_[A-Z0-9_]+")

#: The one module allowed to touch ``os.environ`` for REPRO_* names.
_REGISTRY_MODULE = "core/knobs.py"


def _is_environ(node: ast.expr) -> bool:
    """``os.environ`` as an attribute chain."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "environ"
        and isinstance(node.value, ast.Name)
        and node.value.id == "os"
    )


def _env_name_parts(node: ast.expr) -> list[str]:
    """Constant string fragments of an env-name expression.

    Handles plain constants, f-strings (``f"REPRO_{name}_CACHE"``) and
    simple concatenation; dynamic parts contribute nothing.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return [node.value]
    if isinstance(node, ast.JoinedStr):
        parts: list[str] = []
        for value in node.values:
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                parts.append(value.value)
        return parts
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        return _env_name_parts(node.left) + _env_name_parts(node.right)
    return []


def _reads_repro_name(name_node: ast.expr) -> bool:
    return any("REPRO_" in part for part in _env_name_parts(name_node))


def check(module: SourceModule, context) -> list[Finding]:
    findings: list[Finding] = []

    def flag(line: int, col: int, message: str) -> None:
        findings.append(
            Finding(
                rule=RULE.id,
                path=module.rel,
                line=line,
                col=col,
                message=message,
                severity=RULE.severity,
            )
        )

    in_registry = module.rel.endswith(_REGISTRY_MODULE)

    # --- direct environment reads that bypass the registry ---------------
    if not in_registry:
        for node in ast.walk(module.tree):
            name_node: ast.expr | None = None
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "get"
                    and _is_environ(func.value)
                    and node.args
                ):
                    name_node = node.args[0]
                elif (
                    isinstance(func, ast.Attribute)
                    and func.attr == "getenv"
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "os"
                    and node.args
                ):
                    name_node = node.args[0]
            elif (
                isinstance(node, ast.Subscript)
                and _is_environ(node.value)
                and isinstance(node.ctx, ast.Load)
            ):
                name_node = node.slice
            if name_node is not None and _reads_repro_name(name_node):
                shown = "".join(_env_name_parts(name_node)) or "REPRO_*"
                flag(
                    node.lineno,
                    node.col_offset,
                    f"direct environment read of {shown} bypasses the knob "
                    "registry; use repro.core.knobs.read_int/read_flag/read_str",
                )

    # --- unregistered knob names anywhere in the text --------------------
    registered = context.registry_names
    for number, line in enumerate(module.text.splitlines(), start=1):
        for match in _KNOB_NAME.finditer(line):
            name = match.group(0).rstrip("_")
            if name == "REPRO_" or name in registered:
                continue
            # f-string prefixes like REPRO_{name}_CACHE surface as bare
            # "REPRO_" after the rstrip and were skipped above.
            flag(
                number,
                match.start(),
                f"{name} is not registered in core/knobs.py; register it "
                "(or fix the typo) so its type and default are validated",
            )
    return findings


def finalize(context) -> list[Finding]:
    """Once per run: registered public knobs must be documented in README."""
    if context.readme_text is None:
        return []
    findings: list[Finding] = []
    for name, knob in sorted(context.registry.items()):
        if getattr(knob, "internal", False):
            continue
        if name not in context.readme_text:
            findings.append(
                Finding(
                    rule=RULE.id,
                    path=context.readme_rel,
                    line=1,
                    col=0,
                    message=(
                        f"registered knob {name} is not documented in the README; "
                        "add it to the knob table (python -m repro lint --knobs "
                        "prints the authoritative rows)"
                    ),
                    severity=RULE.severity,
                )
            )
    return findings
