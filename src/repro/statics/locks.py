"""Rule ``lock-discipline`` — state guarded by a lock somewhere is guarded
everywhere.

The serving stack and the worker pool both follow the same convention: an
instance attribute that is ever touched under ``with self._lock:`` belongs
to that lock, and every other access must also hold it.  The classic bug
this rule exists for is the *half-guarded attribute*: written under the
lock in one method, then read (or worse, written) bare in another — a data
race that only shows up under load.

Heuristic, per class:

* **Lock attributes** are ``self.X`` assigned from ``threading.Lock`` /
  ``RLock`` / ``Condition`` / ``Semaphore`` (or ``multiprocessing`` /
  bare-name equivalents), plus any ``self.X`` whose name contains ``lock``,
  ``condition`` or ``mutex`` — that catches locks passed in through
  ``__init__`` parameters.
* Walking each method (except ``__init__``, where the object is not yet
  shared), the set of locks textually held is tracked through ``with``
  blocks.  Every other ``self.Y`` access is recorded as a locked/unlocked
  read or write.
* An attribute with at least one **locked** access is *guarded*; its
  unlocked writes are errors and its unlocked reads are warnings (a bare
  read of a guarded attribute is sometimes a deliberate racy fast-path —
  that is what the baseline's justification field is for).

Method names are excluded from the attribute universe, as are accesses in
functions nested inside methods (callbacks run on other threads and are
conservatively skipped rather than mis-blamed).  Messages name the methods,
never line numbers, so baseline entries survive unrelated edits.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.statics.model import SEVERITY_WARNING, Finding, Rule
from repro.statics.source import SourceModule

RULE = Rule(
    id="lock-discipline",
    summary="attributes accessed under a lock must hold it at every access",
)

_LOCK_CONSTRUCTORS = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}
)
_LOCK_NAME_HINTS = ("lock", "condition", "mutex")


def _callee_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _self_attr(node: ast.expr) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _name_is_lockish(name: str) -> bool:
    lowered = name.lower()
    return any(hint in lowered for hint in _LOCK_NAME_HINTS)


@dataclass
class _Access:
    method: str
    line: int
    col: int
    kind: str  # "read" | "write"
    locked: bool


@dataclass
class _ClassAudit:
    name: str
    lock_attrs: set[str] = field(default_factory=set)
    methods: set[str] = field(default_factory=set)
    accesses: dict[str, list[_Access]] = field(default_factory=dict)

    def record(self, attr: str, access: _Access) -> None:
        self.accesses.setdefault(attr, []).append(access)


def _collect_lock_attrs(cls: ast.ClassDef, audit: _ClassAudit) -> None:
    for node in ast.walk(cls):
        if isinstance(node, ast.Assign):
            attr_targets = [t for t in node.targets if _self_attr(t)]
            if not attr_targets:
                continue
            value = node.value
            is_lock_ctor = (
                isinstance(value, ast.Call)
                and _callee_name(value.func) in _LOCK_CONSTRUCTORS
            )
            for target in attr_targets:
                attr = _self_attr(target)
                if is_lock_ctor or _name_is_lockish(attr):
                    audit.lock_attrs.add(attr)
        elif isinstance(node, ast.With):
            for item in node.items:
                attr = _self_attr(item.context_expr)
                if attr is not None and _name_is_lockish(attr):
                    audit.lock_attrs.add(attr)


def _walk_method(method: ast.FunctionDef, audit: _ClassAudit) -> None:
    """Record self.* accesses with the set of locks textually held."""

    def visit(node: ast.AST, held: frozenset[str]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return  # nested callables run elsewhere; don't blame this method
        if isinstance(node, ast.With):
            acquired = set()
            for item in node.items:
                attr = _self_attr(item.context_expr)
                if attr in audit.lock_attrs:
                    acquired.add(attr)
                visit(item.context_expr, held)
            inner = held | frozenset(acquired)
            for stmt in node.body:
                visit(stmt, inner)
            return
        if isinstance(node, ast.Assign):
            for target in node.targets:
                _record_target(target, held, "write")
                # subscript/attribute chains still *read* their base
            visit(node.value, held)
            return
        if isinstance(node, ast.AugAssign):
            _record_target(node.target, held, "write")
            _record_target(node.target, held, "read")
            visit(node.value, held)
            return
        if isinstance(node, ast.Delete):
            for target in node.targets:
                _record_target(target, held, "write")
            return
        if isinstance(node, ast.Attribute):
            attr = _self_attr(node)
            if (
                attr is not None
                and attr not in audit.lock_attrs
                and attr not in audit.methods
            ):
                kind = "write" if isinstance(node.ctx, (ast.Store, ast.Del)) else "read"
                audit.record(
                    attr,
                    _Access(method.name, node.lineno, node.col_offset, kind, bool(held)),
                )
            visit(node.value, held)
            return
        for child in ast.iter_child_nodes(node):
            visit(child, held)

    def _record_target(target: ast.expr, held: frozenset[str], kind: str) -> None:
        attr = _self_attr(target)
        if attr is not None:
            if attr not in audit.lock_attrs and attr not in audit.methods:
                audit.record(
                    attr,
                    _Access(method.name, target.lineno, target.col_offset, kind, bool(held)),
                )
            return
        if isinstance(target, (ast.Subscript, ast.Attribute)):
            # self.x[k] = v / del self.x[k] / self.x.y = v mutate self.x
            base = _self_attr(target.value)
            if base is not None:
                if base not in audit.lock_attrs and base not in audit.methods:
                    audit.record(
                        base,
                        _Access(
                            method.name, target.lineno, target.col_offset, kind, bool(held)
                        ),
                    )
                return
            visit(target, held)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                _record_target(element, held, kind)
            return
        visit(target, held)

    for stmt in method.body:
        visit(stmt, frozenset())


def check(module: SourceModule, context) -> list[Finding]:
    findings: list[Finding] = []
    for cls in [n for n in ast.walk(module.tree) if isinstance(n, ast.ClassDef)]:
        audit = _ClassAudit(name=cls.name)
        audit.methods = {
            stmt.name
            for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        _collect_lock_attrs(cls, audit)
        if not audit.lock_attrs:
            continue
        for stmt in cls.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if stmt.name in ("__init__", "__new__", "__del__"):
                continue  # the instance is not yet (or no longer) shared
            _walk_method(stmt, audit)

        for attr, accesses in sorted(audit.accesses.items()):
            if not any(a.locked for a in accesses):
                continue  # never guarded anywhere: not this rule's business
            guard_methods = sorted({a.method for a in accesses if a.locked})
            guarded_in = ", ".join(f"{name}()" for name in guard_methods)
            seen: set[tuple] = set()
            for access in accesses:
                if access.locked:
                    continue
                severity = RULE.severity if access.kind == "write" else SEVERITY_WARNING
                message = (
                    f"{cls.name}.{attr} is {'written' if access.kind == 'write' else 'read'} "
                    f"in {access.method}() without the lock that guards it in {guarded_in}"
                )
                key = (message, access.line)
                if key in seen:
                    continue
                seen.add(key)
                findings.append(
                    Finding(
                        rule=RULE.id,
                        path=module.rel,
                        line=access.line,
                        col=access.col,
                        message=message,
                        severity=severity,
                    )
                )
    return findings
