"""Rule ``pool-purity`` — tasks fanned out to worker pools must be picklable.

:class:`~repro.experiments.parallel.PersistentPool` ships tasks to spawned
worker processes by pickling ``(fn, task)``.  A lambda, a function defined
inside another function, or a bound method drags its enclosing state (or is
simply unpicklable) and fails only at runtime, on the first parallel run —
often long after the code was written against the serial path where
everything works.  This rule catches those shapes statically:

* the callable argument to ``<pool>.submit(...)`` / ``<pool>.map(...)``
  must be a module-level function (defined at top level or imported);
* no ``PersistentPool`` / ``ParallelRunner`` / ``multiprocessing.Pool``
  may be constructed at import time unless guarded by the
  ``REPRO_POOL_WORKER`` re-entry check — a module imported *inside* a
  worker would otherwise fork from inside a fork.

A receiver counts as a pool when it was assigned from a pool constructor in
the same module, or when its name contains ``pool``/``runner``.
"""

from __future__ import annotations

import ast

from repro.statics.model import Finding, Rule
from repro.statics.source import SourceModule

RULE = Rule(
    id="pool-purity",
    summary="pool tasks must be module-level callables; no import-time pool construction",
)

_POOL_CONSTRUCTORS = frozenset({"PersistentPool", "ParallelRunner", "Pool"})
_FANOUT_METHODS = frozenset({"submit", "map"})
_GUARD_MARKERS = ("REPRO_POOL_WORKER", "pool_worker")


def _callee_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _receiver_repr(node: ast.expr) -> str | None:
    """``name`` / ``self.name`` for simple receivers, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return f"self.{node.attr}"
    return None


class _ModuleScan(ast.NodeVisitor):
    """Collect module-level callables, pool variables and nested defs."""

    def __init__(self) -> None:
        self.module_callables: set[str] = set()
        self.pool_vars: set[str] = set()
        self.nested_defs: set[str] = set()
        self._depth = 0

    def visit_Module(self, node: ast.Module) -> None:
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                self.module_callables.add(stmt.name)
            if isinstance(stmt, (ast.Import, ast.ImportFrom)):
                for alias in stmt.names:
                    self.module_callables.add(alias.asname or alias.name.split(".")[0])
        self.generic_visit(node)

    def _enter(self, node) -> None:
        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if self._depth > 0:
            self.nested_defs.add(node.name)
        self._enter(node)

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._enter(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        if isinstance(node.value, ast.Call):
            callee = _callee_name(node.value.func)
            if callee in _POOL_CONSTRUCTORS:
                for target in node.targets:
                    name = _receiver_repr(target)
                    if name is not None:
                        self.pool_vars.add(name)
        self.generic_visit(node)


def _looks_like_pool(receiver: str, pool_vars: set[str]) -> bool:
    if receiver in pool_vars:
        return True
    tail = receiver.rsplit(".", 1)[-1].lower()
    return "pool" in tail or "runner" in tail


def _statement_guarded(stack: list[ast.stmt]) -> bool:
    """Whether an enclosing ``if`` mentions the worker re-entry guard."""
    for frame in stack:
        if isinstance(frame, ast.If):
            rendered = ast.dump(frame.test)
            if any(marker in rendered for marker in _GUARD_MARKERS):
                return True
    return False


def check(module: SourceModule, context) -> list[Finding]:
    scan = _ModuleScan()
    scan.visit(module.tree)
    findings: list[Finding] = []

    def flag(node: ast.AST, message: str) -> None:
        findings.append(
            Finding(
                rule=RULE.id,
                path=module.rel,
                line=node.lineno,
                col=node.col_offset,
                message=message,
                severity=RULE.severity,
            )
        )

    # --- callable arguments to pool fan-out -------------------------------
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr in _FANOUT_METHODS):
            continue
        receiver = _receiver_repr(func.value)
        if receiver is None or not _looks_like_pool(receiver, scan.pool_vars):
            continue
        if not node.args:
            continue
        task_fn = node.args[0]
        where = f"{receiver}.{func.attr}"
        if isinstance(task_fn, ast.Lambda):
            flag(
                task_fn,
                f"lambda passed to {where}() cannot be pickled to a worker "
                "process; use a module-level function",
            )
        elif isinstance(task_fn, ast.Name):
            name = task_fn.id
            if name in scan.nested_defs and name not in scan.module_callables:
                flag(
                    task_fn,
                    f"nested function {name}() passed to {where}() closes over "
                    "local state and cannot be pickled; hoist it to module level",
                )
        elif (
            isinstance(task_fn, ast.Attribute)
            and isinstance(task_fn.value, ast.Name)
            and task_fn.value.id == "self"
        ):
            flag(
                task_fn,
                f"bound method self.{task_fn.attr} passed to {where}() pickles "
                "the whole instance; use a module-level function taking the "
                "task as data",
            )

    # --- import-time pool construction ------------------------------------
    # Defs and classes run at call time, so only module-level statements (and
    # the If/Try/With blocks nesting them) can construct a pool at import.
    # The If stack is tracked explicitly so guarded constructions pass.
    def precise(stmts: list[ast.stmt], stack: list[ast.stmt]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if isinstance(stmt, ast.If):
                precise(stmt.body, stack + [stmt])
                precise(stmt.orelse, stack + [stmt])
                continue
            if isinstance(stmt, ast.Try):
                for block in (stmt.body, stmt.orelse, stmt.finalbody):
                    precise(block, stack + [stmt])
                for handler in stmt.handlers:
                    precise(handler.body, stack + [stmt])
                continue
            if isinstance(stmt, ast.With):
                precise(stmt.body, stack + [stmt])
                continue
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call) and _callee_name(node.func) in _POOL_CONSTRUCTORS:
                    if not _statement_guarded(stack):
                        flag(
                            node,
                            f"{_callee_name(node.func)}(...) constructed at import "
                            "time: a module imported worker-side would spawn "
                            "workers from inside a worker; construct lazily or "
                            "guard with the REPRO_POOL_WORKER check",
                        )

    precise(module.tree.body, [])
    return findings
