"""Abstract instruction set of the accelerator template (paper Sec. II).

Three instructions cover the behaviour SoMa schedules: ``load`` (DRAM to
GBUF), ``store`` (GBUF to DRAM) and ``compute`` (one tile executed by the
core group, including its internal GBUF<->L0 movement).  Instructions carry
explicit dependencies on other instruction ids, mirroring how the paper's
hardware lets the start or end of any instruction trigger another.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, unique


@unique
class InstructionKind(Enum):
    """The three abstract instruction categories."""

    LOAD = "load"
    STORE = "store"
    COMPUTE = "compute"


@dataclass(frozen=True)
class Instruction:
    """Base instruction: an id, a kind and the ids it must wait for."""

    instruction_id: int
    kind: InstructionKind
    depends_on: tuple[int, ...] = ()

    def describe(self) -> str:
        """Compact single-line rendering used by dumps and tests."""
        deps = ",".join(str(d) for d in self.depends_on) if self.depends_on else "-"
        return f"{self.instruction_id:05d} {self.kind.value:7s} deps[{deps}]"


@dataclass(frozen=True)
class LoadInstruction(Instruction):
    """Move one DRAM tensor (weights / ifmap) into the GBUF."""

    tensor_tid: int = -1
    layer: str = ""
    num_bytes: int = 0

    def describe(self) -> str:
        return f"{super().describe()} tid={self.tensor_tid} layer={self.layer} bytes={self.num_bytes}"


@dataclass(frozen=True)
class StoreInstruction(Instruction):
    """Move one ofmap tensor from the GBUF back to DRAM."""

    tensor_tid: int = -1
    layer: str = ""
    num_bytes: int = 0

    def describe(self) -> str:
        return f"{super().describe()} tid={self.tensor_tid} layer={self.layer} bytes={self.num_bytes}"


@dataclass(frozen=True)
class ComputeInstruction(Instruction):
    """Execute one computing tile on the core group."""

    layer: str = ""
    tile_id: int = -1
    macs: int = 0
    vector_ops: int = 0

    def describe(self) -> str:
        return (
            f"{super().describe()} layer={self.layer} tile={self.tile_id} "
            f"macs={self.macs} vops={self.vector_ops}"
        )


@dataclass(frozen=True)
class InstructionProgram:
    """A complete lowered program: one DRAM queue and one compute queue."""

    workload: str
    dram_queue: tuple[Instruction, ...] = field(default_factory=tuple)
    compute_queue: tuple[Instruction, ...] = field(default_factory=tuple)

    @property
    def num_instructions(self) -> int:
        return len(self.dram_queue) + len(self.compute_queue)

    def all_instructions(self) -> list[Instruction]:
        """Every instruction, sorted by id."""
        instructions = list(self.dram_queue) + list(self.compute_queue)
        return sorted(instructions, key=lambda ins: ins.instruction_id)

    def dump(self) -> str:
        """Human-readable listing of the whole program."""
        lines = [f"program for {self.workload}: {self.num_instructions} instructions"]
        lines.append("-- DRAM queue --")
        lines.extend(ins.describe() for ins in self.dram_queue)
        lines.append("-- COMPUTE queue --")
        lines.extend(ins.describe() for ins in self.compute_queue)
        return "\n".join(lines)
