"""Intermediate representation of a scheduling scheme.

The IR is deliberately plain: dictionaries and lists of primitives, so it can
be serialised to JSON, diffed in tests and consumed by an instruction
generator (ours, or a vendor one as the paper's compiler does).  It captures
the three views of a scheme: the group structure (LGs / FLGs / Tiling
Numbers), the compute-tile sequence and the DRAM tensor schedule.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.errors import CompilationError
from repro.notation.dlsa import DLSA
from repro.notation.plan import ComputePlan

IR_VERSION = "1.0"


@dataclass(frozen=True)
class IRDocument:
    """A serialisable description of one scheduling scheme."""

    document: dict

    def to_json(self, indent: int | None = 2) -> str:
        """Serialise to JSON text."""
        return json.dumps(self.document, indent=indent, sort_keys=False)

    @classmethod
    def from_json(cls, text: str) -> "IRDocument":
        """Parse a previously serialised document."""
        document = json.loads(text)
        if document.get("ir_version") != IR_VERSION:
            raise CompilationError(
                f"unsupported IR version {document.get('ir_version')!r}; expected {IR_VERSION!r}"
            )
        return cls(document=document)

    @property
    def num_tiles(self) -> int:
        return len(self.document["compute_sequence"])

    @property
    def num_dram_tensors(self) -> int:
        return len(self.document["dram_tensors"])


def generate_ir(plan: ComputePlan, dlsa: DLSA) -> IRDocument:
    """Build the IR document for a parsed scheme."""
    if not plan.feasible:
        raise CompilationError(f"cannot generate IR for an infeasible plan: {plan.infeasibility_reason}")
    dlsa.validate(plan.dram_tensors)

    lfa = plan.lfa
    groups = []
    for flg_index, (start, end) in enumerate(lfa.flg_ranges()):
        groups.append(
            {
                "flg_index": flg_index,
                "layers": list(lfa.computing_order[start:end]),
                "tiling_number": lfa.tiling_numbers[start],
                "lg_index": plan.lg_of_layer[lfa.computing_order[start]],
            }
        )

    # Resolve tiles and tensors one element at a time through the plan's
    # offset table; assembled plans then never materialise the global
    # sequences just to emit the document.
    compute_sequence = []
    for index in range(plan.num_tiles):
        tile = plan.tile(index)
        compute_sequence.append(
            {
                "index": tile.index,
                "layer": tile.layer,
                "tile_id": tile.tile_id,
                "flg_index": tile.flg_index,
                "lg_index": tile.lg_index,
                "macs": tile.macs,
                "vector_ops": tile.vector_ops,
            }
        )

    order_position = {tid: pos for pos, tid in enumerate(dlsa.order)}
    dram_tensors = []
    for tid in range(plan.num_dram_tensors):
        tensor = plan.tensor(tid)
        dram_tensors.append(
            {
                "tid": tensor.tid,
                "kind": tensor.kind.value,
                "layer": tensor.layer,
                "tile_id": tensor.tile_id,
                "bytes": tensor.num_bytes,
                "order_position": order_position[tensor.tid],
                "living_start": dlsa.start(tensor.tid),
                "living_end": dlsa.end(tensor.tid),
                "first_use": tensor.first_use,
                "last_use": tensor.last_use,
                "source_layer": tensor.source_layer,
            }
        )

    document = {
        "ir_version": IR_VERSION,
        "workload": plan.graph.name,
        "batch": plan.graph.batch,
        "computing_order": list(lfa.computing_order),
        "groups": groups,
        "compute_sequence": compute_sequence,
        "dram_tensors": sorted(dram_tensors, key=lambda d: d["order_position"]),
    }
    return IRDocument(document=document)
