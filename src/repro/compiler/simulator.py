"""Instruction-level simulator: executes a lowered program cycle-accurately.

The instruction stream produced by :mod:`repro.compiler.codegen` encodes the
schedule purely through two in-order queues plus explicit dependencies — the
same contract the real hardware would obey.  This simulator replays such a
program given per-instruction durations and reports the makespan and per-
instruction timing.  It serves two purposes:

* a correctness check that the lowered program preserves the semantics of the
  scheme the evaluator costed (the makespans must match);
* a substrate for executing hand-written or externally generated programs,
  mirroring the paper's plan to let users replace the scheduler as long as
  they emit the same IR.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.instructions import Instruction, InstructionKind, InstructionProgram
from repro.errors import CompilationError
from repro.hardware.accelerator import AcceleratorConfig
from repro.notation.plan import ComputePlan


@dataclass(frozen=True)
class InstructionTiming:
    """Start/finish time of one instruction in the replayed program."""

    instruction_id: int
    kind: InstructionKind
    start_s: float
    finish_s: float


@dataclass(frozen=True)
class ProgramTiming:
    """Result of replaying an instruction program."""

    makespan_s: float
    timings: tuple[InstructionTiming, ...]

    def of(self, instruction_id: int) -> InstructionTiming:
        """Timing of one instruction."""
        for timing in self.timings:
            if timing.instruction_id == instruction_id:
                return timing
        raise KeyError(f"no instruction {instruction_id} in the program timing")


class InstructionSimulator:
    """Replays an :class:`InstructionProgram` on the two-engine machine model."""

    def __init__(self, accelerator: AcceleratorConfig) -> None:
        self._accelerator = accelerator

    # ------------------------------------------------------------------ public
    def durations_from_plan(self, program: InstructionProgram, plan: ComputePlan) -> dict[int, float]:
        """Per-instruction durations derived from the plan's cost model.

        Compute durations come from the Core Array mapper via the evaluator's
        convention (they are re-derived here from the plan's tilings so the
        simulator does not depend on the evaluator), DRAM durations from the
        bandwidth model.
        """
        from repro.core.core_array import CoreArrayMapper  # local import to avoid a cycle

        mapper = CoreArrayMapper(self._accelerator)
        durations: dict[int, float] = {}
        for instruction in program.compute_queue:
            tile = plan.tile(instruction.instruction_id)
            layer = plan.graph.layer(tile.layer)
            durations[instruction.instruction_id] = mapper.evaluate_tile(
                layer, plan.layer_tilings[tile.layer]
            ).seconds
        for instruction in program.dram_queue:
            durations[instruction.instruction_id] = self._accelerator.memory.dram_transfer_seconds(
                instruction.num_bytes
            )
        return durations

    def run(self, program: InstructionProgram, durations: dict[int, float]) -> ProgramTiming:
        """Replay the program; raises :class:`CompilationError` on deadlock."""
        missing = [
            ins.instruction_id
            for ins in program.all_instructions()
            if ins.instruction_id not in durations
        ]
        if missing:
            raise CompilationError(f"missing durations for instructions {missing[:5]}")

        finish: dict[int, float] = {}
        timings: list[InstructionTiming] = []
        queues: list[tuple[list[Instruction], float]] = [
            (list(program.dram_queue), 0.0),
            (list(program.compute_queue), 0.0),
        ]
        pointers = [0, 0]
        engine_free = [0.0, 0.0]

        total = program.num_instructions
        completed = 0
        while completed < total:
            progressed = False
            for engine, (queue, _unused) in enumerate(queues):
                while pointers[engine] < len(queue):
                    instruction = queue[pointers[engine]]
                    if any(dep not in finish for dep in instruction.depends_on):
                        break
                    gate = max(
                        (finish[dep] for dep in instruction.depends_on), default=0.0
                    )
                    start = max(engine_free[engine], gate)
                    end = start + durations[instruction.instruction_id]
                    engine_free[engine] = end
                    finish[instruction.instruction_id] = end
                    timings.append(
                        InstructionTiming(
                            instruction_id=instruction.instruction_id,
                            kind=instruction.kind,
                            start_s=start,
                            finish_s=end,
                        )
                    )
                    pointers[engine] += 1
                    completed += 1
                    progressed = True
            if not progressed:
                raise CompilationError(
                    "instruction program deadlocked: circular or unsatisfiable dependencies"
                )

        makespan = max(engine_free)
        return ProgramTiming(makespan_s=makespan, timings=tuple(timings))

    def verify_against_plan(
        self,
        program: InstructionProgram,
        plan: ComputePlan,
        expected_latency_s: float,
        tolerance: float = 1e-6,
    ) -> ProgramTiming:
        """Replay the program and check its makespan against the evaluator.

        The dependency structure emitted by the code generator is slightly
        conservative compared with the evaluator (a prefetch waits for the
        whole tile preceding its Living-Duration start, never less), so the
        makespan may exceed the evaluated latency by at most that slack; it
        must never undercut it.
        """
        durations = self.durations_from_plan(program, plan)
        timing = self.run(program, durations)
        if timing.makespan_s < expected_latency_s * (1.0 - tolerance):
            raise CompilationError(
                f"instruction program finishes in {timing.makespan_s:.6e}s, faster than the "
                f"evaluated latency {expected_latency_s:.6e}s - the lowering lost a dependency"
            )
        return timing
