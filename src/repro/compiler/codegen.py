"""Lowering the IR to the abstract instruction stream.

The generated program has two in-order queues, matching the hardware model
the evaluator simulates: the DRAM engine walks the DRAM Tensor Order and the
core group walks the compute-tile sequence.  Cross-queue synchronisation is
expressed as explicit instruction dependencies:

* a load waits for the tile preceding its Living-Duration ``Start`` (so the
  prefetch does not claim buffer space too early) and for the stores it
  reads back;
* a store waits for the tile that produces its data;
* a compute tile waits for the loads it consumes and for every store whose
  Living-Duration ``End`` equals that tile.
"""

from __future__ import annotations

from repro.compiler.instructions import (
    ComputeInstruction,
    Instruction,
    InstructionKind,
    InstructionProgram,
    LoadInstruction,
    StoreInstruction,
)
from repro.compiler.ir import IRDocument, generate_ir
from repro.errors import CompilationError
from repro.notation.dlsa import DLSA
from repro.notation.plan import ComputePlan


def generate_instructions(ir: IRDocument) -> InstructionProgram:
    """Lower an IR document into an :class:`InstructionProgram`."""
    document = ir.document
    compute_sequence = document["compute_sequence"]
    dram_tensors = sorted(document["dram_tensors"], key=lambda d: d["order_position"])
    num_tiles = len(compute_sequence)

    compute_id = {entry["index"]: entry["index"] for entry in compute_sequence}
    dram_id = {entry["tid"]: num_tiles + position for position, entry in enumerate(dram_tensors)}

    stores_of_layer: dict[str, list[dict]] = {}
    store_deadline: dict[int, list[dict]] = {}
    loads_for_tile: dict[int, list[dict]] = {}
    for entry in dram_tensors:
        if entry["kind"] == "ofmap":
            stores_of_layer.setdefault(entry["layer"], []).append(entry)
            if entry["living_end"] < num_tiles:
                store_deadline.setdefault(entry["living_end"], []).append(entry)
        else:
            loads_for_tile.setdefault(entry["first_use"], []).append(entry)

    dram_queue: list[Instruction] = []
    previous_dram_id: int | None = None
    for entry in dram_tensors:
        depends: list[int] = []
        if previous_dram_id is not None:
            depends.append(previous_dram_id)
        if entry["kind"] == "ofmap":
            depends.append(compute_id[entry["first_use"]])
        else:
            if entry["living_start"] > 0:
                depends.append(compute_id[entry["living_start"] - 1])
            source = entry.get("source_layer")
            if source is not None:
                depends.extend(dram_id[s["tid"]] for s in stores_of_layer.get(source, []))
        instruction_id = dram_id[entry["tid"]]
        common = {
            "instruction_id": instruction_id,
            "depends_on": tuple(sorted(set(depends))),
            "tensor_tid": entry["tid"],
            "layer": entry["layer"],
            "num_bytes": entry["bytes"],
        }
        if entry["kind"] == "ofmap":
            dram_queue.append(StoreInstruction(kind=InstructionKind.STORE, **common))
        else:
            dram_queue.append(LoadInstruction(kind=InstructionKind.LOAD, **common))
        previous_dram_id = instruction_id

    compute_queue: list[Instruction] = []
    previous_compute_id: int | None = None
    for entry in compute_sequence:
        depends = []
        if previous_compute_id is not None:
            depends.append(previous_compute_id)
        depends.extend(dram_id[load["tid"]] for load in loads_for_tile.get(entry["index"], []))
        depends.extend(dram_id[store["tid"]] for store in store_deadline.get(entry["index"], []))
        instruction = ComputeInstruction(
            instruction_id=compute_id[entry["index"]],
            kind=InstructionKind.COMPUTE,
            depends_on=tuple(sorted(set(depends))),
            layer=entry["layer"],
            tile_id=entry["tile_id"],
            macs=entry["macs"],
            vector_ops=entry["vector_ops"],
        )
        compute_queue.append(instruction)
        previous_compute_id = instruction.instruction_id

    return InstructionProgram(
        workload=document["workload"],
        dram_queue=tuple(dram_queue),
        compute_queue=tuple(compute_queue),
    )


def lower_result(plan: ComputePlan, dlsa: DLSA) -> InstructionProgram:
    """Convenience wrapper: plan + DLSA -> IR -> instruction program."""
    if not plan.feasible:
        raise CompilationError(
            f"cannot lower an infeasible plan: {plan.infeasibility_reason}"
        )
    return generate_instructions(generate_ir(plan, dlsa))
