"""Compiler back-end: IR and abstract instruction generation (paper Sec. V-A/V-F).

SoMa's outputs feed a production compiler through an intermediate
representation that is easy to parse; the IR is then lowered to the abstract
load / store / compute instruction set of Sec. II.  This package reproduces
that flow: :func:`~repro.compiler.ir.generate_ir` turns a scheduling result
into a serialisable IR document and
:func:`~repro.compiler.codegen.generate_instructions` lowers the IR to a
dependency-annotated instruction stream.
"""

from repro.compiler.codegen import generate_instructions, lower_result
from repro.compiler.instructions import (
    ComputeInstruction,
    Instruction,
    InstructionKind,
    InstructionProgram,
    LoadInstruction,
    StoreInstruction,
)
from repro.compiler.ir import IRDocument, generate_ir
from repro.compiler.simulator import InstructionSimulator, ProgramTiming

__all__ = [
    "ComputeInstruction",
    "IRDocument",
    "Instruction",
    "InstructionKind",
    "InstructionProgram",
    "InstructionSimulator",
    "LoadInstruction",
    "ProgramTiming",
    "StoreInstruction",
    "generate_instructions",
    "generate_ir",
    "lower_result",
]
