"""Fig. 7: design-space exploration over DRAM bandwidth and buffer size.

For a fixed compute throughput (the 16 TOPS edge platform in the paper) the
harness sweeps DRAM bandwidth x GBUF capacity, runs both Cocco and SoMa on
every point and records the achieved latency.  The paper highlights the set
of configurations reaching (within rounding) the global minimum latency with
a red envelope; :class:`DSEResult` exposes the same notion so the insight
"with SoMa, buffer capacity can compensate for DRAM bandwidth" can be checked
programmatically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.cocco import CoccoScheduler
from repro.core.config import SoMaConfig
from repro.core.soma import SoMaScheduler
from repro.errors import SchedulingError
from repro.hardware.accelerator import AcceleratorConfig
from repro.hardware.memory import MB
from repro.workloads.graph import WorkloadGraph


@dataclass(frozen=True)
class DSECell:
    """Latency of the best scheme found at one (bandwidth, buffer) point."""

    dram_bandwidth_gb_s: float
    buffer_mb: float
    cocco_latency_s: float
    soma_latency_s: float

    @property
    def soma_advantage(self) -> float:
        """Cocco latency divided by SoMa latency at this design point."""
        if self.soma_latency_s <= 0:
            return 0.0
        return self.cocco_latency_s / self.soma_latency_s


@dataclass(frozen=True)
class DSEResult:
    """A full bandwidth x buffer sweep for one workload and batch size."""

    workload: str
    batch: int
    cells: tuple[DSECell, ...]

    def min_latency(self, scheduler: str = "soma") -> float:
        """Global minimum latency over the sweep for one scheduler."""
        return min(self._latency(cell, scheduler) for cell in self.cells)

    def envelope(self, scheduler: str = "soma", tolerance: float = 0.02) -> list[DSECell]:
        """Cells within ``tolerance`` of the global minimum (the red curve)."""
        best = self.min_latency(scheduler)
        return [
            cell
            for cell in self.cells
            if self._latency(cell, scheduler) <= best * (1.0 + tolerance)
        ]

    def cell(self, dram_bandwidth_gb_s: float, buffer_mb: float) -> DSECell:
        """Lookup of a single design point."""
        for candidate in self.cells:
            if (
                candidate.dram_bandwidth_gb_s == dram_bandwidth_gb_s
                and candidate.buffer_mb == buffer_mb
            ):
                return candidate
        raise KeyError(f"no DSE cell at {dram_bandwidth_gb_s} GB/s, {buffer_mb} MB")

    def to_table(self, scheduler: str = "soma") -> str:
        """ASCII heat-table (rows: buffer size, columns: DRAM bandwidth)."""
        bandwidths = sorted({cell.dram_bandwidth_gb_s for cell in self.cells})
        buffers = sorted({cell.buffer_mb for cell in self.cells})
        header = "buffer\\bw " + " ".join(f"{bw:>9.0f}" for bw in bandwidths)
        lines = [f"{self.workload} batch={self.batch} latency(ms), scheduler={scheduler}", header]
        for buffer_mb in buffers:
            row = [f"{buffer_mb:>8.0f}MB"]
            for bandwidth in bandwidths:
                cell = self.cell(bandwidth, buffer_mb)
                row.append(f"{self._latency(cell, scheduler) * 1e3:>9.3f}")
            lines.append(" ".join(row))
        return "\n".join(lines)

    @staticmethod
    def _latency(cell: DSECell, scheduler: str) -> float:
        if scheduler == "soma":
            return cell.soma_latency_s
        if scheduler == "cocco":
            return cell.cocco_latency_s
        raise ValueError(f"unknown scheduler {scheduler!r}")


@dataclass(frozen=True)
class _DSEPointTask:
    """One picklable (bandwidth, buffer) design point of a DSE sweep."""

    graph: WorkloadGraph
    base_accelerator: AcceleratorConfig
    config: SoMaConfig
    seed: int | None
    dram_bandwidth_gb_s: float
    buffer_mb: float


def _run_dse_point(task: _DSEPointTask) -> DSECell:
    """Run Cocco and SoMa at one design point (fresh schedulers, fixed seed)."""
    accelerator = task.base_accelerator.with_memory(
        gbuf_bytes=int(task.buffer_mb * MB),
        dram_bandwidth_bytes_per_s=task.dram_bandwidth_gb_s * 1e9,
    )
    cocco_latency = _safe_latency(
        lambda: CoccoScheduler(accelerator, task.config)
        .schedule(task.graph, seed=task.seed)
        .evaluation.latency_s
    )
    soma_latency = _safe_latency(
        lambda: SoMaScheduler(accelerator, task.config)
        .schedule(task.graph, seed=task.seed)
        .evaluation.latency_s
    )
    return DSECell(
        dram_bandwidth_gb_s=task.dram_bandwidth_gb_s,
        buffer_mb=task.buffer_mb,
        cocco_latency_s=cocco_latency,
        soma_latency_s=soma_latency,
    )


def run_dse(
    graph: WorkloadGraph,
    base_accelerator: AcceleratorConfig,
    dram_bandwidths_gb_s: list[float],
    buffer_sizes_mb: list[float],
    config: SoMaConfig | None = None,
    seed: int | None = None,
    workers: int | None = None,
    pool=None,
) -> DSEResult:
    """Sweep DRAM bandwidth x buffer capacity for one workload.

    Design points where a scheduler finds no feasible scheme (e.g. a buffer
    too small for any single layer) are recorded with infinite latency so the
    envelope logic simply ignores them.  Points are independent (fresh
    schedulers, explicit seed), so they fan across ``workers`` processes
    (default: ``REPRO_WORKERS``) with results identical to a serial sweep.

    Pass an open :class:`~repro.experiments.parallel.PersistentPool` via
    ``pool`` to reuse warm workers across several sweeps (it stays open for
    the caller); otherwise one is created and shut down around this sweep.
    """
    config = config if config is not None else SoMaConfig()
    tasks = [
        _DSEPointTask(
            graph=graph,
            base_accelerator=base_accelerator,
            config=config,
            seed=seed,
            dram_bandwidth_gb_s=bandwidth,
            buffer_mb=buffer_mb,
        )
        for buffer_mb in buffer_sizes_mb
        for bandwidth in dram_bandwidths_gb_s
    ]
    from repro.experiments.parallel import PersistentPool

    if pool is None:
        with PersistentPool(workers) as owned:
            cells = owned.map(_run_dse_point, tasks)
    else:
        cells = pool.map(_run_dse_point, tasks)
    return DSEResult(workload=graph.name, batch=graph.batch, cells=tuple(cells))


def _safe_latency(run) -> float:
    try:
        return run()
    except SchedulingError:
        return float("inf")
