"""Fig. 3: DRAM-access vs. operation imbalance, per layer and per tile.

The paper motivates prefetching / delayed storing by showing that the ratio
of DRAM demand to compute demand varies wildly across layers, and varies even
more across the tiles of a layer-fused schedule (many tiles have all the
DRAM demand — the first tile of every weighted layer — while most tiles have
none).  These helpers produce exactly those scatter points and a spread
measure to compare them quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.metrics import coefficient_of_variation, normalize
from repro.notation.dlsa import DLSA
from repro.notation.plan import ComputePlan
from repro.workloads.graph import WorkloadGraph


@dataclass(frozen=True)
class ImbalancePoint:
    """One scatter point of Fig. 3 (already normalised to [0, 1])."""

    label: str
    normalized_dram: float
    normalized_ops: float


def layer_imbalance(graph: WorkloadGraph) -> list[ImbalancePoint]:
    """Per-layer normalised DRAM access and operation count (Fig. 3a/b).

    The per-layer DRAM access counts the layer's weights, its ifmaps and its
    ofmaps — the traffic an unfused execution would incur.
    """
    names = graph.layer_names()
    dram = []
    ops = []
    for name in names:
        layer = graph.layer(name)
        dram.append(layer.weight_bytes + layer.ifmap_bytes + layer.ofmap_bytes)
        ops.append(layer.ops)
    dram_norm = normalize(dram)
    ops_norm = normalize(ops)
    return [
        ImbalancePoint(label=name, normalized_dram=d, normalized_ops=o)
        for name, d, o in zip(names, dram_norm, ops_norm)
    ]


def tile_imbalance(plan: ComputePlan, dlsa: DLSA | None = None) -> list[ImbalancePoint]:
    """Per-tile normalised DRAM access and operation count (Fig. 3c/d).

    Each tile is charged the DRAM tensors whose first use is that tile —
    which is how the double-buffer baseline actually schedules them — so the
    first tile of every weighted layer absorbs the whole weight transfer
    while later tiles of fused layers often have no DRAM demand at all.
    """
    per_tile_dram = [0] * plan.num_tiles
    for tensor in plan.dram_tensors:
        per_tile_dram[tensor.first_use] += tensor.num_bytes
    per_tile_ops = [tile.ops for tile in plan.tiles]
    dram_norm = normalize(per_tile_dram)
    ops_norm = normalize(per_tile_ops)
    return [
        ImbalancePoint(
            label=f"{tile.layer}#{tile.tile_id}",
            normalized_dram=d,
            normalized_ops=o,
        )
        for tile, d, o in zip(plan.tiles, dram_norm, ops_norm)
    ]


def spread_metric(points: list[ImbalancePoint]) -> float:
    """Spread of the DRAM-to-compute balance across points.

    The paper's qualitative claim is that the per-tile cloud is "more spread
    out" than the per-layer cloud; we quantify it as the coefficient of
    variation of the per-point imbalance (DRAM share minus ops share), which
    grows as points migrate towards the axes.
    """
    if not points:
        return 0.0
    imbalance = []
    for point in points:
        total = point.normalized_dram + point.normalized_ops
        if total <= 0:
            continue
        imbalance.append(abs(point.normalized_dram - point.normalized_ops) / total)
    if not imbalance:
        return 0.0
    return coefficient_of_variation([1.0 + value for value in imbalance]) + (
        sum(imbalance) / len(imbalance)
    )


def axis_hugging_fraction(points: list[ImbalancePoint], threshold: float = 0.1) -> float:
    """Fraction of points lying close to either axis (strongly unbalanced)."""
    if not points:
        return 0.0
    close = 0
    for point in points:
        total = point.normalized_dram + point.normalized_ops
        if total <= 0:
            close += 1
            continue
        share = min(point.normalized_dram, point.normalized_ops) / total
        if share < threshold:
            close += 1
    return close / len(points)
