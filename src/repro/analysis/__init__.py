"""Analysis harnesses that regenerate the paper's figures and statistics.

Every table and figure of the evaluation section (Sec. VI / VII) has a
corresponding entry point here:

* :mod:`repro.analysis.imbalance`   — Fig. 3 scatter data (DRAM vs compute).
* :mod:`repro.analysis.comparison`  — Fig. 6 overall comparison rows and the
  Sec. VI-B aggregate statistics.
* :mod:`repro.analysis.dse`         — Fig. 7 bandwidth x buffer sweeps.
* :mod:`repro.analysis.execution_graph` — Fig. 8 execution-graph dumps.
* :mod:`repro.analysis.metrics`     — shared metric helpers.
"""

from repro.analysis.comparison import (
    ComparisonRow,
    ComparisonSummary,
    compare_workload,
    summarize,
)
from repro.analysis.dse import DSECell, DSEResult, run_dse
from repro.analysis.execution_graph import ExecutionGraph, build_execution_graph
from repro.analysis.imbalance import ImbalancePoint, layer_imbalance, spread_metric, tile_imbalance
from repro.analysis.metrics import geometric_mean, normalize
from repro.analysis.schedule_report import ScheduleReport, build_schedule_report

__all__ = [
    "ComparisonRow",
    "ComparisonSummary",
    "DSECell",
    "DSEResult",
    "ExecutionGraph",
    "ImbalancePoint",
    "ScheduleReport",
    "build_schedule_report",
    "build_execution_graph",
    "compare_workload",
    "geometric_mean",
    "layer_imbalance",
    "normalize",
    "run_dse",
    "spread_metric",
    "summarize",
    "tile_imbalance",
]
