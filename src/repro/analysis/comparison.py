"""Fig. 6 overall comparison and the Sec. VI-B aggregate statistics.

For one (workload, platform, batch) cell the harness runs the Cocco baseline
and both SoMa stages and collects the quantities plotted in Fig. 6:
normalised energy split into Core Array and DRAM energy, computing-resource
utilisation (the performance proxy), the theoretical maximum utilisation and
the average buffer utilisation.  :func:`summarize` aggregates rows into the
headline numbers the paper reports (average speedup, energy reduction,
LG / FLG / tile counts, gap to the theoretical bound).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.metrics import arithmetic_mean, geometric_mean, percentage_reduction
from repro.baselines.cocco import CoccoScheduler
from repro.core.config import SoMaConfig
from repro.core.core_array import CoreArrayMapper
from repro.core.result import EvaluationResult
from repro.core.soma import SoMaScheduler
from repro.hardware.accelerator import AcceleratorConfig, cloud_accelerator, edge_accelerator
from repro.workloads.graph import WorkloadGraph
from repro.workloads.registry import build_workload


@dataclass(frozen=True)
class ComparisonRow:
    """One cell of Fig. 6: Cocco vs. Ours_1 vs. Ours_2."""

    workload: str
    accelerator: str
    batch: int
    cocco: EvaluationResult
    soma_stage1: EvaluationResult
    soma_stage2: EvaluationResult
    peak_ops_per_s: float

    # ------------------------------------------------------------------ ratios
    @property
    def speedup_stage1(self) -> float:
        """Ours_1 performance improvement over Cocco."""
        return self.cocco.latency_s / self.soma_stage1.latency_s

    @property
    def speedup_stage2(self) -> float:
        """Ours_2 improvement over Ours_1."""
        return self.soma_stage1.latency_s / self.soma_stage2.latency_s

    @property
    def speedup_total(self) -> float:
        """Ours_2 performance improvement over Cocco."""
        return self.cocco.latency_s / self.soma_stage2.latency_s

    @property
    def energy_reduction_percent(self) -> float:
        """Energy reduction of Ours_2 vs Cocco (percent)."""
        return percentage_reduction(self.cocco.energy_j, self.soma_stage2.energy_j)

    def utilization(self, result: EvaluationResult) -> float:
        """Computing-resource utilisation (Fig. 6 performance bars)."""
        if result.latency_s <= 0:
            return 0.0
        return result.total_ops / (self.peak_ops_per_s * result.latency_s)

    @property
    def theoretical_max_utilization(self) -> float:
        """Blue-diamond bound of Fig. 6 computed from the stage-2 scheme."""
        bound_latency = max(
            self.soma_stage2.compute_time_sum_s, self.soma_stage2.dram_time_sum_s
        )
        if bound_latency <= 0:
            return 0.0
        return min(1.0, self.soma_stage2.total_ops / (self.peak_ops_per_s * bound_latency))

    @property
    def gap_to_bound_percent(self) -> float:
        """How far Ours_2 sits below the theoretical maximum (percent)."""
        bound = self.theoretical_max_utilization
        if bound <= 0:
            return 0.0
        return 100.0 * (1.0 - self.utilization(self.soma_stage2) / bound)

    def normalized_energy(self, result: EvaluationResult) -> tuple[float, float]:
        """(core, DRAM) energy normalised to the largest total in the row."""
        peak = max(
            self.cocco.energy_j, self.soma_stage1.energy_j, self.soma_stage2.energy_j
        )
        if peak <= 0:
            return (0.0, 0.0)
        return (result.core_energy_j / peak, result.dram_energy_j / peak)

    def as_record(self) -> dict:
        """Flat dictionary used by CSV output and the benchmark printers."""
        record = {
            "workload": self.workload,
            "accelerator": self.accelerator,
            "batch": self.batch,
            "speedup_stage1": self.speedup_stage1,
            "speedup_stage2": self.speedup_stage2,
            "speedup_total": self.speedup_total,
            "energy_reduction_percent": self.energy_reduction_percent,
            "theoretical_max_utilization": self.theoretical_max_utilization,
            "gap_to_bound_percent": self.gap_to_bound_percent,
        }
        for label, result in (
            ("cocco", self.cocco),
            ("ours1", self.soma_stage1),
            ("ours2", self.soma_stage2),
        ):
            core_norm, dram_norm = self.normalized_energy(result)
            record.update(
                {
                    f"{label}_latency_ms": result.latency_s * 1e3,
                    f"{label}_energy_mj": result.energy_j * 1e3,
                    f"{label}_core_energy_norm": core_norm,
                    f"{label}_dram_energy_norm": dram_norm,
                    f"{label}_utilization": self.utilization(result),
                    f"{label}_num_lgs": result.num_lgs,
                    f"{label}_num_flgs": result.num_flgs,
                    f"{label}_num_tiles": result.num_tiles,
                    f"{label}_avg_buffer_mb": result.avg_buffer_bytes / 1e6,
                }
            )
        return record


@dataclass(frozen=True)
class ComparisonSummary:
    """Aggregate statistics over a set of comparison rows (Sec. VI-B)."""

    num_rows: int
    avg_speedup_stage1: float
    avg_speedup_stage2: float
    avg_speedup_total: float
    avg_energy_reduction_percent: float
    avg_gap_to_bound_percent: float
    avg_cocco_lgs: float
    avg_soma_lgs: float
    avg_soma_flgs: float
    avg_cocco_tiles: float
    avg_soma_tiles: float

    def describe(self) -> str:
        """Headline lines mirroring the abstract / Sec. VI-B numbers."""
        return "\n".join(
            [
                f"rows: {self.num_rows}",
                f"average performance improvement (stage 1 vs Cocco): {self.avg_speedup_stage1:.2f}x",
                f"average performance improvement (stage 2 vs stage 1): {self.avg_speedup_stage2:.2f}x",
                f"average performance improvement (total vs Cocco):   {self.avg_speedup_total:.2f}x",
                f"average energy reduction vs Cocco: {self.avg_energy_reduction_percent:.1f}%",
                f"average gap to theoretical max utilisation: {self.avg_gap_to_bound_percent:.1f}%",
                f"average LGs per network: Cocco {self.avg_cocco_lgs:.1f} vs SoMa {self.avg_soma_lgs:.1f}",
                f"average FLGs per network (SoMa): {self.avg_soma_flgs:.1f}",
                f"average tiles per network: Cocco {self.avg_cocco_tiles:.0f} vs SoMa {self.avg_soma_tiles:.0f}",
            ]
        )


def compare_workload(
    graph: WorkloadGraph,
    accelerator: AcceleratorConfig,
    config: SoMaConfig | None = None,
    seed: int | None = None,
    mapper: CoreArrayMapper | None = None,
) -> ComparisonRow:
    """Run Cocco and SoMa on one workload and collect the Fig. 6 quantities."""
    config = config if config is not None else SoMaConfig()
    shared_mapper = mapper if mapper is not None else CoreArrayMapper(accelerator)

    cocco = CoccoScheduler(accelerator, config, mapper=shared_mapper)
    cocco_result = cocco.schedule(graph, seed=seed)

    soma = SoMaScheduler(accelerator, config, mapper=shared_mapper)
    soma_result = soma.schedule(graph, seed=seed)

    return ComparisonRow(
        workload=graph.name,
        accelerator=accelerator.name,
        batch=graph.batch,
        cocco=cocco_result.evaluation,
        soma_stage1=soma_result.stage1.evaluation,
        soma_stage2=soma_result.stage2.evaluation,
        peak_ops_per_s=accelerator.peak_ops_per_s,
    )


def compare_named_workload(
    workload_name: str,
    accelerator: AcceleratorConfig,
    batch: int,
    config: SoMaConfig | None = None,
    seed: int | None = None,
    **workload_kwargs,
) -> ComparisonRow:
    """Registry-name convenience wrapper around :func:`compare_workload`."""
    graph = build_workload(workload_name, batch=batch, **workload_kwargs)
    return compare_workload(graph, accelerator, config=config, seed=seed)


@dataclass(frozen=True)
class ComparisonTask:
    """A self-contained, picklable description of one Fig. 6 cell.

    The graph and accelerator are built inside the worker (from the registry
    name and platform), so fanning tasks across processes ships only this
    small record plus the config.  The explicit per-task seed keeps results
    identical for any worker count.
    """

    workload: str
    platform: str = "edge"
    batch: int = 1
    workload_kwargs: tuple[tuple[str, object], ...] = ()
    config: SoMaConfig | None = None
    seed: int | None = None

    def build_accelerator(self) -> AcceleratorConfig:
        """The accelerator this task's cell runs on."""
        if self.platform == "edge":
            return edge_accelerator()
        if self.platform == "cloud":
            return cloud_accelerator()
        raise ValueError(f"unknown platform {self.platform!r}; expected 'edge' or 'cloud'")


def run_comparison_task(task: ComparisonTask) -> ComparisonRow:
    """Run one Fig. 6 cell described by a :class:`ComparisonTask`."""
    graph = build_workload(task.workload, batch=task.batch, **dict(task.workload_kwargs))
    return compare_workload(graph, task.build_accelerator(), config=task.config, seed=task.seed)


@dataclass(frozen=True)
class ScheduleRoleTask:
    """One scheduler run (the baseline or SoMa) of one Fig. 6 cell.

    Splitting a cell into its two independent scheduler runs doubles the
    available parallelism: with more workers than cells the runner can fan
    the baseline and SoMa of one cell to different processes.  Both runs
    carry the same explicit seed the serial path would use, and the two
    schedulers never share state beyond a memoising mapper, so the
    reassembled rows are bit-identical to :func:`compare_workload`.
    """

    task: ComparisonTask
    role: str  # "baseline" (Cocco) or "soma"


def run_schedule_role(role_task: ScheduleRoleTask) -> tuple:
    """Run one half of a Fig. 6 cell; returns the pieces of its row."""
    task = role_task.task
    graph = build_workload(task.workload, batch=task.batch, **dict(task.workload_kwargs))
    accelerator = task.build_accelerator()
    config = task.config if task.config is not None else SoMaConfig()
    if role_task.role == "baseline":
        result = CoccoScheduler(accelerator, config).schedule(graph, seed=task.seed)
        return (
            graph.name,
            accelerator.name,
            graph.batch,
            accelerator.peak_ops_per_s,
            result.evaluation,
        )
    result = SoMaScheduler(accelerator, config).schedule(graph, seed=task.seed)
    return (result.stage1.evaluation, result.stage2.evaluation)


def compare_cells(
    tasks: list[ComparisonTask],
    workers: int | None = None,
    intra_cell: bool | None = None,
    pool=None,
) -> list[ComparisonRow]:
    """Run many Fig. 6 cells, fanned across workers (see ``REPRO_WORKERS``).

    Results come back in task order and are identical to a serial run: every
    task is independent and carries its own seed.  In parallel mode each cell
    is additionally split into its baseline and SoMa runs
    (:class:`ScheduleRoleTask`), so a single cell can occupy two workers;
    pass ``intra_cell=False`` to fan at cell granularity only.

    The grid runs on a supervised
    :class:`~repro.experiments.parallel.PersistentPool` — pass an open pool
    via ``pool`` to reuse its warm workers (and their module-level caches)
    across several grids; it is left open for the caller.  Otherwise a pool
    is created for this call and shut down afterwards.
    """
    from repro.experiments.parallel import PersistentPool

    if pool is None:
        with PersistentPool(workers) as owned:
            return compare_cells(tasks, workers, intra_cell, pool=owned)
    if intra_cell is None:
        intra_cell = pool.workers > 1
    if not intra_cell:
        return pool.map(run_comparison_task, tasks)

    role_tasks = [
        ScheduleRoleTask(task=task, role=role)
        for task in tasks
        for role in ("baseline", "soma")
    ]
    outcomes = pool.map(run_schedule_role, role_tasks)
    rows = []
    for index in range(len(tasks)):
        workload, accelerator_name, batch, peak_ops, cocco_eval = outcomes[2 * index]
        stage1_eval, stage2_eval = outcomes[2 * index + 1]
        rows.append(
            ComparisonRow(
                workload=workload,
                accelerator=accelerator_name,
                batch=batch,
                cocco=cocco_eval,
                soma_stage1=stage1_eval,
                soma_stage2=stage2_eval,
                peak_ops_per_s=peak_ops,
            )
        )
    return rows


def summarize(rows: list[ComparisonRow]) -> ComparisonSummary:
    """Aggregate rows into the Sec. VI-B headline statistics."""
    if not rows:
        raise ValueError("cannot summarise an empty set of comparison rows")
    return ComparisonSummary(
        num_rows=len(rows),
        avg_speedup_stage1=geometric_mean([r.speedup_stage1 for r in rows]),
        avg_speedup_stage2=geometric_mean([r.speedup_stage2 for r in rows]),
        avg_speedup_total=geometric_mean([r.speedup_total for r in rows]),
        avg_energy_reduction_percent=arithmetic_mean(
            [r.energy_reduction_percent for r in rows]
        ),
        avg_gap_to_bound_percent=arithmetic_mean([r.gap_to_bound_percent for r in rows]),
        avg_cocco_lgs=arithmetic_mean([r.cocco.num_lgs for r in rows]),
        avg_soma_lgs=arithmetic_mean([r.soma_stage2.num_lgs for r in rows]),
        avg_soma_flgs=arithmetic_mean([r.soma_stage2.num_flgs for r in rows]),
        avg_cocco_tiles=arithmetic_mean([r.cocco.num_tiles for r in rows]),
        avg_soma_tiles=arithmetic_mean([r.soma_stage2.num_tiles for r in rows]),
    )


def rows_to_csv(rows: list[ComparisonRow]) -> str:
    """Render rows as CSV text (the artifact's ``overall.csv`` equivalent)."""
    if not rows:
        return ""
    records = [row.as_record() for row in rows]
    header = list(records[0].keys())
    lines = [",".join(header)]
    for record in records:
        lines.append(",".join(_format_csv_value(record[key]) for key in header))
    return "\n".join(lines)


def _format_csv_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)
