"""Fig. 8: practical execution graphs (DRAM row / COMPUTE row / buffer trace).

The paper explains SoMa's gains through an execution-graph comparison of the
schemes explored by Cocco, SoMa stage 1 and SoMa stage 2: which tensors the
DRAM channel moves when, which tiles the core group computes when, where the
computing stalls sit and how the DRAM cuts / FLCs / Tiling Numbers are laid
out.  :func:`build_execution_graph` extracts the same information from an
evaluation trace and can render it as ASCII for reports and examples.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.result import EvaluationResult
from repro.notation.dlsa import DLSA
from repro.notation.plan import ComputePlan


@dataclass(frozen=True)
class Segment:
    """One busy interval on the DRAM or COMPUTE row."""

    label: str
    start_s: float
    end_s: float
    kind: str  # "load", "store" or "compute"

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass(frozen=True)
class GroupAnnotation:
    """One FLG of the scheme: its layers, Tiling Number and LG membership."""

    flg_index: int
    lg_index: int
    tiling_number: int
    layers: tuple[str, ...]
    is_dram_cut: bool


@dataclass(frozen=True)
class ExecutionGraph:
    """Structured Fig.-8-style view of one evaluated scheme."""

    scheme_name: str
    workload: str
    latency_s: float
    dram_segments: tuple[Segment, ...]
    compute_segments: tuple[Segment, ...]
    groups: tuple[GroupAnnotation, ...]

    # ------------------------------------------------------------------ stalls
    @property
    def compute_stall_s(self) -> float:
        """Total idle time on the compute row before the last tile finishes."""
        busy = sum(segment.duration_s for segment in self.compute_segments)
        if not self.compute_segments:
            return 0.0
        span = max(segment.end_s for segment in self.compute_segments)
        return max(0.0, span - busy)

    @property
    def dram_idle_s(self) -> float:
        """Total idle time on the DRAM row before the last transfer finishes."""
        busy = sum(segment.duration_s for segment in self.dram_segments)
        if not self.dram_segments:
            return 0.0
        span = max(segment.end_s for segment in self.dram_segments)
        return max(0.0, span - busy)

    @property
    def dram_busy_fraction(self) -> float:
        """Fraction of the total latency during which DRAM is transferring."""
        if self.latency_s <= 0:
            return 0.0
        return sum(s.duration_s for s in self.dram_segments) / self.latency_s

    @property
    def compute_busy_fraction(self) -> float:
        """Fraction of the total latency during which the cores compute."""
        if self.latency_s <= 0:
            return 0.0
        return sum(s.duration_s for s in self.compute_segments) / self.latency_s

    # --------------------------------------------------------------- rendering
    def render_ascii(self, width: int = 100) -> str:
        """ASCII rendering with one character per latency/width time slot."""
        if self.latency_s <= 0 or width <= 0:
            return f"{self.scheme_name}: empty execution graph"

        def row(segments: tuple[Segment, ...], busy_char: str) -> str:
            slots = [" "] * width
            for segment in segments:
                start = int(segment.start_s / self.latency_s * width)
                end = max(start + 1, int(segment.end_s / self.latency_s * width))
                for position in range(start, min(end, width)):
                    slots[position] = busy_char
            return "".join(slots)

        loads = tuple(s for s in self.dram_segments if s.kind == "load")
        stores = tuple(s for s in self.dram_segments if s.kind == "store")
        lines = [
            f"{self.scheme_name} on {self.workload}: latency {self.latency_s * 1e3:.3f} ms, "
            f"DRAM busy {self.dram_busy_fraction * 100:.1f}%, "
            f"compute busy {self.compute_busy_fraction * 100:.1f}%",
            "DRAM(load)  |" + row(loads, "L") + "|",
            "DRAM(store) |" + row(stores, "S") + "|",
            "COMPUTE     |" + row(self.compute_segments, "#") + "|",
        ]
        group_parts = []
        for group in self.groups:
            boundary = "||" if group.is_dram_cut else "|"
            group_parts.append(f"{boundary}T{group.tiling_number}x{len(group.layers)}")
        lines.append("groups: " + " ".join(group_parts))
        return "\n".join(lines)


def build_execution_graph(
    plan: ComputePlan,
    dlsa: DLSA,
    evaluation: EvaluationResult,
    scheme_name: str,
) -> ExecutionGraph:
    """Assemble the execution graph from an evaluation that captured a trace."""
    if not evaluation.feasible:
        raise ValueError(f"cannot build an execution graph for an infeasible scheme: {evaluation.reason}")
    if not evaluation.tile_records or not evaluation.transfer_records:
        raise ValueError("the evaluation must be produced with include_trace=True")

    compute_segments = tuple(
        Segment(
            label=f"{plan.tile(record.index).layer}#{plan.tile(record.index).tile_id}",
            start_s=record.start_s,
            end_s=record.finish_s,
            kind="compute",
        )
        for record in evaluation.tile_records
    )
    dram_segments = tuple(
        Segment(
            label=plan.tensor(record.tid).describe(),
            start_s=record.start_s,
            end_s=record.finish_s,
            kind="load" if plan.tensor(record.tid).is_load else "store",
        )
        for record in evaluation.transfer_records
    )

    lfa = plan.lfa
    dram_cut_starts = {0} | set(lfa.dram_cut_set)
    groups = []
    for flg_index, (start, end) in enumerate(lfa.flg_ranges()):
        layers = tuple(lfa.computing_order[start:end])
        groups.append(
            GroupAnnotation(
                flg_index=flg_index,
                lg_index=plan.lg_of_layer[layers[0]],
                tiling_number=lfa.tiling_numbers[start],
                layers=layers,
                is_dram_cut=start in dram_cut_starts,
            )
        )

    return ExecutionGraph(
        scheme_name=scheme_name,
        workload=plan.graph.name,
        latency_s=evaluation.latency_s,
        dram_segments=dram_segments,
        compute_segments=compute_segments,
        groups=tuple(groups),
    )
