"""Detailed scheduling-scheme reports (the paper's "Schedule Scheme" output).

SoMa's outputs include a detailed scheduling scheme next to the
energy/latency report (Fig. 5).  :func:`build_schedule_report` produces that
breakdown for any evaluated scheme: per-LG and per-FLG structure (layers,
Tiling Numbers, effective tiles), DRAM traffic split by tensor kind, and the
buffer headline numbers.  The report is plain data plus a text renderer so it
can be asserted on in tests and embedded in logs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.result import EvaluationResult
from repro.notation.dram_tensor import TensorKind
from repro.notation.plan import ComputePlan


@dataclass(frozen=True)
class GroupReport:
    """Structure of one FLG within the scheme."""

    flg_index: int
    lg_index: int
    layers: tuple[str, ...]
    tiling_number: int
    effective_tiles: int
    weight_bytes: int
    macs: int


@dataclass(frozen=True)
class TrafficReport:
    """DRAM traffic split by tensor kind."""

    weight_bytes: int
    ifmap_bytes: int
    ofmap_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.weight_bytes + self.ifmap_bytes + self.ofmap_bytes


@dataclass(frozen=True)
class ScheduleReport:
    """Complete structured report of one evaluated scheme."""

    workload: str
    num_lgs: int
    num_flgs: int
    num_tiles: int
    groups: tuple[GroupReport, ...]
    traffic: TrafficReport
    evaluation: EvaluationResult
    # Per-LRU hit/miss/size statistics of the search that produced the
    # scheme (see ``collect_search_cache_stats``); ``None`` when the caller
    # did not request cache observability.
    cache_stats: dict | None = None

    def render(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"schedule report for {self.workload}",
            f"  {self.num_lgs} LGs, {self.num_flgs} FLGs, {self.num_tiles} computing tiles",
            f"  DRAM traffic: {self.traffic.total_bytes / 1e6:.2f} MB "
            f"(weights {self.traffic.weight_bytes / 1e6:.2f}, "
            f"ifmaps {self.traffic.ifmap_bytes / 1e6:.2f}, "
            f"ofmaps {self.traffic.ofmap_bytes / 1e6:.2f})",
            f"  evaluation: {self.evaluation.describe()}",
            "  groups:",
        ]
        for group in self.groups:
            boundary = "LG " if group.flg_index == 0 or group.lg_index != self.groups[group.flg_index - 1].lg_index else "flc"
            lines.append(
                f"    [{boundary}] FLG{group.flg_index} (LG{group.lg_index}) "
                f"T={group.tiling_number} ({group.effective_tiles} tiles) "
                f"{len(group.layers)} layers, weights {group.weight_bytes / 1e3:.1f} KB, "
                f"{group.macs / 1e6:.1f} MMACs"
            )
        if self.cache_stats is not None:
            from repro.core.caching import format_cache_stats

            lines.append("  search caches:")
            for stats_line in format_cache_stats(self.cache_stats).splitlines():
                lines.append("    " + stats_line)
        return "\n".join(lines)


def build_schedule_report(
    plan: ComputePlan,
    evaluation: EvaluationResult,
    cache_stats: dict | None = None,
) -> ScheduleReport:
    """Assemble the report from a parsed plan and its evaluation."""
    if not plan.feasible:
        raise ValueError(f"cannot report on an infeasible plan: {plan.infeasibility_reason}")

    lfa = plan.lfa
    groups: list[GroupReport] = []
    for flg_index, (start, end) in enumerate(lfa.flg_ranges()):
        layers = tuple(lfa.computing_order[start:end])
        effective = plan.layer_tilings[layers[0]].num_tiles
        groups.append(
            GroupReport(
                flg_index=flg_index,
                lg_index=plan.lg_of_layer[layers[0]],
                layers=layers,
                tiling_number=lfa.tiling_numbers[start],
                effective_tiles=effective,
                weight_bytes=sum(plan.graph.layer(name).weight_bytes for name in layers),
                macs=sum(plan.graph.layer(name).macs for name in layers),
            )
        )

    traffic = TrafficReport(
        weight_bytes=sum(t.num_bytes for t in plan.tensors_by_kind(TensorKind.WEIGHT)),
        ifmap_bytes=sum(t.num_bytes for t in plan.tensors_by_kind(TensorKind.IFMAP)),
        ofmap_bytes=sum(t.num_bytes for t in plan.tensors_by_kind(TensorKind.OFMAP)),
    )

    return ScheduleReport(
        workload=plan.graph.name,
        num_lgs=plan.num_lgs,
        num_flgs=plan.num_flgs,
        num_tiles=plan.num_tiles,
        groups=tuple(groups),
        traffic=traffic,
        evaluation=evaluation,
        cache_stats=cache_stats,
    )
