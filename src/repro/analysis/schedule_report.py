"""Detailed scheduling-scheme reports (the paper's "Schedule Scheme" output).

SoMa's outputs include a detailed scheduling scheme next to the
energy/latency report (Fig. 5).  :func:`build_schedule_report` produces that
breakdown for any evaluated scheme: per-LG and per-FLG structure (layers,
Tiling Numbers, effective tiles), DRAM traffic split by tensor kind, and the
buffer headline numbers.  The report is plain data plus a text renderer so it
can be asserted on in tests and embedded in logs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.result import EvaluationResult
from repro.notation.dram_tensor import TensorKind
from repro.notation.plan import ComputePlan

#: Scalar fields of :class:`EvaluationResult` carried by wire payloads (the
#: per-tile / per-transfer traces are deliberately omitted: they are large,
#: and every serving consumer only needs the headline numbers).
_EVALUATION_FIELDS = (
    "feasible",
    "reason",
    "latency_s",
    "energy_j",
    "core_energy_j",
    "dram_energy_j",
    "compute_time_sum_s",
    "dram_time_sum_s",
    "total_ops",
    "total_dram_bytes",
    "max_buffer_bytes",
    "avg_buffer_bytes",
    "num_tiles",
    "num_dram_tensors",
    "num_lgs",
    "num_flgs",
)


def evaluation_to_payload(evaluation: EvaluationResult) -> dict:
    """A JSON-serialisable dictionary of the evaluation's scalar fields.

    Floats are carried verbatim (Python's JSON round-trips them exactly), so
    a payload compares bit-identical to the original evaluation.
    """
    return {field: getattr(evaluation, field) for field in _EVALUATION_FIELDS}


def evaluation_from_payload(payload: dict) -> EvaluationResult:
    """Rebuild an :class:`EvaluationResult` from :func:`evaluation_to_payload`."""
    return EvaluationResult(**{field: payload[field] for field in _EVALUATION_FIELDS})


@dataclass(frozen=True)
class GroupReport:
    """Structure of one FLG within the scheme."""

    flg_index: int
    lg_index: int
    layers: tuple[str, ...]
    tiling_number: int
    effective_tiles: int
    weight_bytes: int
    macs: int


@dataclass(frozen=True)
class TrafficReport:
    """DRAM traffic split by tensor kind."""

    weight_bytes: int
    ifmap_bytes: int
    ofmap_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.weight_bytes + self.ifmap_bytes + self.ofmap_bytes


@dataclass(frozen=True)
class ScheduleReport:
    """Complete structured report of one evaluated scheme."""

    workload: str
    num_lgs: int
    num_flgs: int
    num_tiles: int
    groups: tuple[GroupReport, ...]
    traffic: TrafficReport
    evaluation: EvaluationResult
    # Per-LRU hit/miss/size statistics of the search that produced the
    # scheme (see ``collect_search_cache_stats``); ``None`` when the caller
    # did not request cache observability.
    cache_stats: dict | None = None

    def to_payload(self) -> dict:
        """A JSON-serialisable dictionary of the complete report.

        This is the serving layer's wire format: everything in the report is
        plain data, so ``report_from_payload`` rebuilds an equal report and
        the evaluation floats survive the round trip bit-identically.
        """
        return {
            "workload": self.workload,
            "num_lgs": self.num_lgs,
            "num_flgs": self.num_flgs,
            "num_tiles": self.num_tiles,
            "groups": [
                {
                    "flg_index": group.flg_index,
                    "lg_index": group.lg_index,
                    "layers": list(group.layers),
                    "tiling_number": group.tiling_number,
                    "effective_tiles": group.effective_tiles,
                    "weight_bytes": group.weight_bytes,
                    "macs": group.macs,
                }
                for group in self.groups
            ],
            "traffic": {
                "weight_bytes": self.traffic.weight_bytes,
                "ifmap_bytes": self.traffic.ifmap_bytes,
                "ofmap_bytes": self.traffic.ofmap_bytes,
            },
            "evaluation": evaluation_to_payload(self.evaluation),
            "cache_stats": self.cache_stats,
        }

    def render(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"schedule report for {self.workload}",
            f"  {self.num_lgs} LGs, {self.num_flgs} FLGs, {self.num_tiles} computing tiles",
            f"  DRAM traffic: {self.traffic.total_bytes / 1e6:.2f} MB "
            f"(weights {self.traffic.weight_bytes / 1e6:.2f}, "
            f"ifmaps {self.traffic.ifmap_bytes / 1e6:.2f}, "
            f"ofmaps {self.traffic.ofmap_bytes / 1e6:.2f})",
            f"  evaluation: {self.evaluation.describe()}",
            "  groups:",
        ]
        for group in self.groups:
            boundary = "LG " if group.flg_index == 0 or group.lg_index != self.groups[group.flg_index - 1].lg_index else "flc"
            lines.append(
                f"    [{boundary}] FLG{group.flg_index} (LG{group.lg_index}) "
                f"T={group.tiling_number} ({group.effective_tiles} tiles) "
                f"{len(group.layers)} layers, weights {group.weight_bytes / 1e3:.1f} KB, "
                f"{group.macs / 1e6:.1f} MMACs"
            )
        if self.cache_stats is not None:
            from repro.core.caching import format_cache_stats

            lines.append("  search caches:")
            for stats_line in format_cache_stats(self.cache_stats).splitlines():
                lines.append("    " + stats_line)
        return "\n".join(lines)


def report_from_payload(payload: dict) -> ScheduleReport:
    """Rebuild a :class:`ScheduleReport` from :meth:`ScheduleReport.to_payload`."""
    return ScheduleReport(
        workload=payload["workload"],
        num_lgs=payload["num_lgs"],
        num_flgs=payload["num_flgs"],
        num_tiles=payload["num_tiles"],
        groups=tuple(
            GroupReport(
                flg_index=group["flg_index"],
                lg_index=group["lg_index"],
                layers=tuple(group["layers"]),
                tiling_number=group["tiling_number"],
                effective_tiles=group["effective_tiles"],
                weight_bytes=group["weight_bytes"],
                macs=group["macs"],
            )
            for group in payload["groups"]
        ),
        traffic=TrafficReport(
            weight_bytes=payload["traffic"]["weight_bytes"],
            ifmap_bytes=payload["traffic"]["ifmap_bytes"],
            ofmap_bytes=payload["traffic"]["ofmap_bytes"],
        ),
        evaluation=evaluation_from_payload(payload["evaluation"]),
        cache_stats=payload.get("cache_stats"),
    )


def build_schedule_report(
    plan: ComputePlan,
    evaluation: EvaluationResult,
    cache_stats: dict | None = None,
) -> ScheduleReport:
    """Assemble the report from a parsed plan and its evaluation."""
    if not plan.feasible:
        raise ValueError(f"cannot report on an infeasible plan: {plan.infeasibility_reason}")

    lfa = plan.lfa
    groups: list[GroupReport] = []
    for flg_index, (start, end) in enumerate(lfa.flg_ranges()):
        layers = tuple(lfa.computing_order[start:end])
        effective = plan.layer_tilings[layers[0]].num_tiles
        groups.append(
            GroupReport(
                flg_index=flg_index,
                lg_index=plan.lg_of_layer[layers[0]],
                layers=layers,
                tiling_number=lfa.tiling_numbers[start],
                effective_tiles=effective,
                weight_bytes=sum(plan.graph.layer(name).weight_bytes for name in layers),
                macs=sum(plan.graph.layer(name).macs for name in layers),
            )
        )

    traffic = TrafficReport(
        weight_bytes=sum(t.num_bytes for t in plan.tensors_by_kind(TensorKind.WEIGHT)),
        ifmap_bytes=sum(t.num_bytes for t in plan.tensors_by_kind(TensorKind.IFMAP)),
        ofmap_bytes=sum(t.num_bytes for t in plan.tensors_by_kind(TensorKind.OFMAP)),
    )

    return ScheduleReport(
        workload=plan.graph.name,
        num_lgs=plan.num_lgs,
        num_flgs=plan.num_flgs,
        num_tiles=plan.num_tiles,
        groups=tuple(groups),
        traffic=traffic,
        evaluation=evaluation,
        cache_stats=cache_stats,
    )
