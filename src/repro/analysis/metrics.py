"""Shared metric helpers used by the analysis and benchmark harnesses."""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (0.0 for an empty input)."""
    values = [v for v in values]
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def arithmetic_mean(values: Iterable[float]) -> float:
    """Arithmetic mean (0.0 for an empty input)."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def normalize(values: Sequence[float]) -> list[float]:
    """Divide every value by the maximum (the paper's Fig. 3 normalisation)."""
    if not values:
        return []
    peak = max(values)
    if peak <= 0:
        return [0.0 for _ in values]
    return [v / peak for v in values]


def coefficient_of_variation(values: Sequence[float]) -> float:
    """Standard deviation over mean; the spread measure used for Fig. 3."""
    values = list(values)
    if not values:
        return 0.0
    mean = arithmetic_mean(values)
    if mean == 0:
        return 0.0
    variance = sum((v - mean) ** 2 for v in values) / len(values)
    return math.sqrt(variance) / mean


def percentage_reduction(baseline: float, improved: float) -> float:
    """Relative reduction of ``improved`` vs ``baseline`` in percent."""
    if baseline <= 0:
        return 0.0
    return 100.0 * (1.0 - improved / baseline)
