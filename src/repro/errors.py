"""Exception hierarchy for the SoMa reproduction.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """Raised when a hardware or framework configuration is inconsistent."""


class WorkloadError(ReproError):
    """Raised when a workload graph is malformed (cycles, bad shapes, ...)."""


class EncodingError(ReproError):
    """Raised when a Tensor-centric Notation encoding is structurally invalid.

    Structural invalidity means the encoding cannot even be parsed (for
    example a computing order that violates dependencies, or a DRAM cut that
    is not a member of the FLC set).  Encodings that parse but are merely
    *infeasible* (deadlock, buffer overflow) are reported through evaluation
    results instead, because the search engines need to treat those as
    high-cost points rather than hard failures.
    """


class SchedulingError(ReproError):
    """Raised when a scheduling stage cannot produce any feasible result."""


class WorkerCrashError(ReproError):
    """Raised when a pool worker process died while running a task.

    The task's result is gone with the process; the pool respawns the worker
    so subsequent submissions still run.  Carries enough context
    (``worker_index``, ``exitcode``) for callers to implement policy — the
    serving layer retries crashed searches and trips a per-worker circuit
    breaker on repeated crashes.
    """

    def __init__(self, message: str, worker_index: int | None = None,
                 exitcode: int | None = None) -> None:
        super().__init__(message)
        self.worker_index = worker_index
        self.exitcode = exitcode


class WorkerTimeoutError(ReproError):
    """Raised when a task exceeded its ``timeout`` and its worker was killed.

    Unlike :class:`WorkerCrashError` this is the *task's* fault, not the
    worker's: the pool kills and respawns the worker to reclaim it, but the
    serving layer maps it onto deadline semantics instead of retrying.
    """

    def __init__(self, message: str, worker_index: int | None = None,
                 timeout: float | None = None) -> None:
        super().__init__(message)
        self.worker_index = worker_index
        self.timeout = timeout


class CompilationError(ReproError):
    """Raised by the compiler back-end (IR / instruction generation)."""
