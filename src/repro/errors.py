"""Exception hierarchy for the SoMa reproduction.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """Raised when a hardware or framework configuration is inconsistent."""


class WorkloadError(ReproError):
    """Raised when a workload graph is malformed (cycles, bad shapes, ...)."""


class EncodingError(ReproError):
    """Raised when a Tensor-centric Notation encoding is structurally invalid.

    Structural invalidity means the encoding cannot even be parsed (for
    example a computing order that violates dependencies, or a DRAM cut that
    is not a member of the FLC set).  Encodings that parse but are merely
    *infeasible* (deadlock, buffer overflow) are reported through evaluation
    results instead, because the search engines need to treat those as
    high-cost points rather than hard failures.
    """


class SchedulingError(ReproError):
    """Raised when a scheduling stage cannot produce any feasible result."""


class CompilationError(ReproError):
    """Raised by the compiler back-end (IR / instruction generation)."""
