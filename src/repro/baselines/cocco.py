"""Cocco baseline scheduler (Tan et al., ASPLOS 2024), as modelled by SoMa.

The SoMa paper maps Cocco into the Tensor-centric Notation as the sub-space
where only the Computing Order and the DRAM Cut set vary, the FLC set equals
the DRAM Cut set, the Tiling Number comes from the core array's
Kernel-Channel parallelism requirement and the DLSA is the classical
double-buffer strategy (Sec. IV-B).  This module searches exactly that
sub-space with the same simulated-annealing machinery SoMa uses, so the
comparison isolates the benefit of the larger space rather than of a better
search engine.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.core.config import SoMaConfig
from repro.core.core_array import CoreArrayMapper
from repro.core.double_buffer import double_buffer_dlsa
from repro.core.evaluator import ScheduleEvaluator
from repro.core.result import EvaluationResult, StageResult
from repro.core.sa import SimulatedAnnealing
from repro.errors import SchedulingError
from repro.hardware.accelerator import AcceleratorConfig
from repro.notation.dlsa import DLSA
from repro.notation.encoding import ScheduleEncoding
from repro.notation.lfa import LFA
from repro.notation.parser import parse_lfa
from repro.notation.plan import ComputePlan
from repro.tiling.heuristics import kc_parallelism_tiling_number
from repro.workloads.graph import WorkloadGraph

from repro.core.lfa_stage import _valid_positions  # shared order-move helper


@dataclass(frozen=True)
class CoccoResult:
    """Best scheme found by the Cocco baseline."""

    workload_name: str
    accelerator_name: str
    stage: StageResult
    search_seconds: float = 0.0

    @property
    def encoding(self) -> ScheduleEncoding:
        return self.stage.encoding

    @property
    def evaluation(self) -> EvaluationResult:
        return self.stage.evaluation


class CoccoScheduler:
    """Layer-fusion-only scheduler with heuristic tiling and double buffering."""

    def __init__(
        self,
        accelerator: AcceleratorConfig,
        config: SoMaConfig | None = None,
        mapper: CoreArrayMapper | None = None,
    ) -> None:
        self.accelerator = accelerator
        self.config = config if config is not None else SoMaConfig()
        self.evaluator = ScheduleEvaluator(accelerator, mapper=mapper)
        self._annealer = SimulatedAnnealing(self.config.lfa_sa)

    # ------------------------------------------------------------------ public
    def schedule(self, graph: WorkloadGraph, seed: int | None = None) -> CoccoResult:
        """Search the Cocco sub-space for one workload."""
        import time

        rng = random.Random(self.config.seed if seed is None else seed)
        start_time = time.perf_counter()
        initial = self.initial_lfa(graph)
        outcome = self._annealer.run(
            initial_state=initial,
            cost_fn=lambda lfa: self.cost(graph, lfa),
            neighbor_fn=lambda lfa, move_rng: self._neighbor(graph, lfa, move_rng),
            rng=rng,
            units=len(graph),
        )
        evaluation = self.evaluate(graph, outcome.best_state)
        if not math.isfinite(outcome.best_cost):
            raise SchedulingError(
                f"Cocco found no feasible scheme for workload {graph.name!r} "
                f"on {self.accelerator.name!r}"
            )
        stage = StageResult(
            encoding=ScheduleEncoding(lfa=outcome.best_state, dlsa=None),
            evaluation=evaluation,
            cost=outcome.best_cost,
            iterations=outcome.iterations,
            accepted_moves=outcome.accepted_moves,
        )
        return CoccoResult(
            workload_name=graph.name,
            accelerator_name=self.accelerator.name,
            stage=stage,
            search_seconds=time.perf_counter() - start_time,
        )

    def initial_lfa(self, graph: WorkloadGraph) -> LFA:
        """No-fusion initial solution with heuristic Tiling Numbers."""
        order = tuple(graph.topological_order())
        cuts = frozenset(range(1, len(order)))
        return self._with_heuristic_tilings(graph, order, cuts)

    def evaluate(self, graph: WorkloadGraph, lfa: LFA) -> EvaluationResult:
        """Evaluate one Cocco scheme (double-buffer DLSA, full-GBUF budget)."""
        plan = parse_lfa(graph, lfa)
        if not plan.feasible:
            return EvaluationResult(feasible=False, reason=plan.infeasibility_reason)
        return self.evaluator.evaluate(plan, double_buffer_dlsa(plan))

    def parse(self, graph: WorkloadGraph, lfa: LFA) -> tuple[ComputePlan, DLSA]:
        """Parse a Cocco scheme into (plan, DLSA), for analysis harnesses."""
        plan = parse_lfa(graph, lfa)
        return plan, double_buffer_dlsa(plan)

    def cost(self, graph: WorkloadGraph, lfa: LFA) -> float:
        """Objective with the same buffer-overflow penalty the SoMa stages use."""
        result = self.evaluate(graph, lfa)
        if not result.feasible and not math.isfinite(result.latency_s):
            return math.inf
        budget = self.accelerator.gbuf_bytes
        cost = self.config.objective(result.energy_j, result.latency_s)
        if result.max_buffer_bytes > budget:
            excess = (result.max_buffer_bytes - budget) / budget
            cost *= 1.0 + self.config.buffer_overflow_penalty * excess
        return cost

    # ---------------------------------------------------------------- internal
    def _with_heuristic_tilings(
        self, graph: WorkloadGraph, order: tuple[str, ...], cuts: frozenset[int]
    ) -> LFA:
        lanes = self.accelerator.core_array.kc_parallel_lanes
        boundaries = [0] + sorted(cuts) + [len(order)]
        tilings: dict[int, int] = {}
        for i in range(len(boundaries) - 1):
            start, end = boundaries[i], boundaries[i + 1]
            if start >= end:
                continue
            layers = list(order[start:end])
            tilings[start] = kc_parallelism_tiling_number(graph, layers, lanes)
        return LFA(
            computing_order=order,
            flc_set=cuts,
            dram_cut_set=cuts,
            tiling_numbers=tilings,
        )

    def _neighbor(self, graph: WorkloadGraph, lfa: LFA, rng: random.Random) -> LFA | None:
        moves = [self._move_order, self._move_add_cut, self._move_delete_cut]
        rng.shuffle(moves)
        for move in moves:
            candidate = move(graph, lfa, rng)
            if candidate is not None:
                return candidate
        return None

    def _move_order(self, graph: WorkloadGraph, lfa: LFA, rng: random.Random) -> LFA | None:
        order = list(lfa.computing_order)
        layer = rng.choice(order)
        positions = _valid_positions(graph, order, layer)
        current = order.index(layer)
        candidates = [p for p in positions if p != current]
        if not candidates:
            return None
        remaining = [name for name in order if name != layer]
        remaining.insert(rng.choice(candidates), layer)
        return self._with_heuristic_tilings(graph, tuple(remaining), lfa.dram_cut_set)

    def _move_add_cut(self, graph: WorkloadGraph, lfa: LFA, rng: random.Random) -> LFA | None:
        n = len(lfa.computing_order)
        candidates = [p for p in range(1, n) if p not in lfa.dram_cut_set]
        if not candidates:
            return None
        position = rng.choice(candidates)
        return self._with_heuristic_tilings(
            graph, lfa.computing_order, lfa.dram_cut_set | {position}
        )

    def _move_delete_cut(self, graph: WorkloadGraph, lfa: LFA, rng: random.Random) -> LFA | None:
        candidates = sorted(lfa.dram_cut_set)
        if not candidates:
            return None
        position = rng.choice(candidates)
        return self._with_heuristic_tilings(
            graph, lfa.computing_order, lfa.dram_cut_set - {position}
        )
