"""No-fusion baseline: each layer its own Layer-fusion Group.

This is the floor every fusion framework should beat and also the initial
solution of both Cocco and SoMa's stage 1; having it as a standalone
scheduler makes ablations and sanity checks straightforward.
"""

from __future__ import annotations

from repro.core.config import SoMaConfig
from repro.core.core_array import CoreArrayMapper
from repro.core.double_buffer import double_buffer_dlsa
from repro.core.evaluator import ScheduleEvaluator
from repro.core.result import EvaluationResult, StageResult
from repro.hardware.accelerator import AcceleratorConfig
from repro.notation.encoding import ScheduleEncoding
from repro.notation.lfa import LFA
from repro.notation.parser import parse_lfa
from repro.tiling.heuristics import kc_parallelism_tiling_number
from repro.workloads.graph import WorkloadGraph


class UnfusedScheduler:
    """Evaluates the layer-by-layer scheme without any search."""

    def __init__(
        self,
        accelerator: AcceleratorConfig,
        config: SoMaConfig | None = None,
        mapper: CoreArrayMapper | None = None,
    ) -> None:
        self.accelerator = accelerator
        self.config = config if config is not None else SoMaConfig()
        self.evaluator = ScheduleEvaluator(accelerator, mapper=mapper)

    def build_lfa(self, graph: WorkloadGraph) -> LFA:
        """The unfused LFA with parallelism-driven Tiling Numbers."""
        order = tuple(graph.topological_order())
        cuts = frozenset(range(1, len(order)))
        lanes = self.accelerator.core_array.kc_parallel_lanes
        tilings = {
            start: kc_parallelism_tiling_number(graph, [name], lanes)
            for start, name in enumerate(order)
        }
        return LFA(
            computing_order=order,
            flc_set=cuts,
            dram_cut_set=cuts,
            tiling_numbers=tilings,
        )

    def schedule(self, graph: WorkloadGraph) -> StageResult:
        """Evaluate the unfused scheme and wrap it as a stage result."""
        lfa = self.build_lfa(graph)
        evaluation = self.evaluate(graph, lfa)
        cost = (
            self.config.objective(evaluation.energy_j, evaluation.latency_s)
            if evaluation.feasible
            else float("inf")
        )
        return StageResult(
            encoding=ScheduleEncoding(lfa=lfa, dlsa=None),
            evaluation=evaluation,
            cost=cost,
            iterations=0,
            accepted_moves=0,
        )

    def evaluate(self, graph: WorkloadGraph, lfa: LFA) -> EvaluationResult:
        """Evaluate the given LFA with the double-buffer DLSA."""
        plan = parse_lfa(graph, lfa)
        if not plan.feasible:
            return EvaluationResult(feasible=False, reason=plan.infeasibility_reason)
        return self.evaluator.evaluate(plan, double_buffer_dlsa(plan))
