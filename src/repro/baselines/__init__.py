"""Baseline schedulers the paper compares against.

* :class:`~repro.baselines.cocco.CoccoScheduler` — re-implementation of the
  SOTA Cocco framework (ASPLOS 2024) as characterised in Sec. IV-B / VI-A3 of
  the SoMa paper: it explores the computing order and the DRAM cuts, with the
  FLC set identical to the DRAM Cut set, the Tiling Number fixed by the
  Kernel-Channel parallelism heuristic and the classical double-buffer DLSA.
* :class:`~repro.baselines.unfused.UnfusedScheduler` — the no-fusion
  layer-by-layer scheme, useful as a sanity floor.
"""

from repro.baselines.cocco import CoccoResult, CoccoScheduler
from repro.baselines.unfused import UnfusedScheduler

__all__ = ["CoccoResult", "CoccoScheduler", "UnfusedScheduler"]
