"""The DSE experiment: Fig. 7 sweeps emitted as ``dse.csv`` style text."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.dse import DSEResult, run_dse
from repro.core.config import SoMaConfig
from repro.hardware.accelerator import edge_accelerator
from repro.workloads.registry import build_workload


@dataclass
class DSEExperiment:
    """Results of one bandwidth x buffer sweep over several batch sizes."""

    workload: str
    batches: list[int]
    results: list[DSEResult] = field(default_factory=list)

    def to_csv(self) -> str:
        """The artifact's ``dse.csv`` equivalent."""
        lines = ["workload,batch,dram_bandwidth_gb_s,buffer_mb,cocco_latency_s,soma_latency_s"]
        for result in self.results:
            for cell in result.cells:
                lines.append(
                    f"{result.workload},{result.batch},{cell.dram_bandwidth_gb_s:g},"
                    f"{cell.buffer_mb:g},{cell.cocco_latency_s:.6g},{cell.soma_latency_s:.6g}"
                )
        return "\n".join(lines)

    def tables(self) -> str:
        """Human-readable latency tables for every batch size and scheduler."""
        blocks = []
        for result in self.results:
            blocks.append(result.to_table("cocco"))
            blocks.append(result.to_table("soma"))
        return "\n\n".join(blocks)


def run_dse_experiment(
    workload: str = "resnet50",
    batches: list[int] | None = None,
    dram_bandwidths_gb_s: list[float] | None = None,
    buffer_sizes_mb: list[float] | None = None,
    config: SoMaConfig | None = None,
    seed: int = 2025,
    progress=None,
    workload_kwargs: dict | None = None,
    workers: int | None = None,
) -> DSEExperiment:
    """Sweep DRAM bandwidth x buffer size for one workload over batch sizes.

    ``workers`` (default: ``REPRO_WORKERS``) fans the independent design
    points of each batch's sweep across processes; results are identical to
    a serial sweep for any worker count.  One supervised
    :class:`~repro.experiments.parallel.PersistentPool` persists across all
    batch sweeps, so worker-side caches stay warm from batch to batch
    instead of being rebuilt per sweep.
    """
    batches = batches if batches is not None else [1]
    dram_bandwidths_gb_s = dram_bandwidths_gb_s if dram_bandwidths_gb_s is not None else [8.0, 16.0, 32.0]
    buffer_sizes_mb = buffer_sizes_mb if buffer_sizes_mb is not None else [4.0, 8.0, 16.0]
    config = config if config is not None else SoMaConfig()
    workload_kwargs = workload_kwargs or {}

    from repro.experiments.parallel import PersistentPool

    experiment = DSEExperiment(workload=workload, batches=list(batches))
    with PersistentPool(workers) as pool:
        for batch in batches:
            if progress is not None:
                progress(f"sweeping {workload} batch {batch}")
            graph = build_workload(workload, batch=batch, **workload_kwargs)
            experiment.results.append(
                run_dse(
                    graph,
                    edge_accelerator(),
                    dram_bandwidths_gb_s=list(dram_bandwidths_gb_s),
                    buffer_sizes_mb=list(buffer_sizes_mb),
                    config=config,
                    seed=seed,
                    pool=pool,
                )
            )
    return experiment
