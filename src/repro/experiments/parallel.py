"""Parallel fan-out for experiment grids and multi-chain SA exploration.

Every experiment in this repo decomposes into independent cells — Fig. 6
(workload, platform, batch) comparisons, Fig. 7 DSE design points, and
multi-restart SA chains.  :class:`ParallelRunner` fans those cells across
``multiprocessing`` workers while keeping the results bit-identical to a
serial run: each task carries its own explicit seed, tasks never share
mutable state, and results are returned in submission order.  Consequently
the output for a fixed seed is the same for 1, 2 or N workers (asserted by
``tests/test_parallel.py``).

Worker count resolution order: explicit argument, then the
``REPRO_WORKERS`` environment variable, then 1 (serial).  Serial execution
runs in-process — no pool, no pickling — so the default path is unchanged
from the seed code.

Seeds for new parallel chains come from :func:`derive_seed`, a stable hash
of (base seed, chain key): decorrelated streams that do not depend on worker
count or scheduling order.
"""

from __future__ import annotations

import hashlib
import math
import multiprocessing
import multiprocessing.connection
import os
import queue
import threading
import time
import warnings
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from repro.errors import WorkerCrashError, WorkerTimeoutError

from repro.core.caching import (
    aggregate_cache_stats,
    cache_stats_delta,
    collect_search_cache_stats,
    parse_env_int,
)
from repro.core.config import SoMaConfig
from repro.core.result import SoMaResult
from repro.core.soma import SoMaScheduler
from repro.hardware.accelerator import AcceleratorConfig
from repro.workloads.graph import WorkloadGraph

WORKERS_ENV = "REPRO_WORKERS"


def coerce_workers(workers: int, source: str) -> int:
    """Clamp a worker count to >= 1, warning when that changes the value.

    A non-positive count (``--workers 0``, ``REPRO_WORKERS=-2``) is almost
    certainly a mistake; degrading to serial silently would hide it, so the
    clamp warns the same way the invalid-integer environment knobs do.
    """
    workers = int(workers)
    if workers < 1:
        warnings.warn(
            f"worker count {workers} from {source} is not positive; running serial",
            RuntimeWarning,
            stacklevel=3,
        )
        return 1
    return workers


def resolve_workers(workers: int | None = None) -> int:
    """Resolve a worker count: argument, then ``REPRO_WORKERS``, then 1.

    An unparsable or non-positive value degrades to serial, but loudly — a
    typo in ``--workers``/``REPRO_WORKERS`` should not silently discard the
    requested parallelism.
    """
    if workers is not None:
        return coerce_workers(workers, "the workers argument")
    value = parse_env_int(WORKERS_ENV, "running serial")
    if value is None:
        return 1
    return coerce_workers(value, WORKERS_ENV)


def derive_seed(base_seed: int, *key: object) -> int:
    """A decorrelated 31-bit seed derived stably from (base seed, key).

    Unlike drawing from a shared ``random.Random`` stream, derived seeds do
    not depend on the order tasks are generated or executed, so parallel
    chains stay deterministic for any worker count.
    """
    payload = repr((base_seed, key)).encode("utf-8")
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest[:4], "big") & 0x7FFFFFFF


class ParallelRunner:
    """Maps a picklable function over tasks, serially or across processes.

    The callable and every task must be picklable (module-level functions
    and frozen dataclasses); with one worker the map runs in-process and no
    multiprocessing machinery is touched.
    """

    def __init__(self, workers: int | None = None) -> None:
        self.workers = resolve_workers(workers)

    def map(self, fn: Callable[[Any], Any], tasks: Iterable[Any]) -> list[Any]:
        """Apply ``fn`` to every task, preserving task order in the results."""
        tasks = list(tasks)
        if self.workers <= 1 or len(tasks) <= 1:
            return [fn(task) for task in tasks]
        processes = min(self.workers, len(tasks))
        with multiprocessing.Pool(processes=processes) as pool:
            return pool.map(fn, tasks, chunksize=1)


# --------------------------------------------------------------- warm workers
class _SerialFuture:
    """Lazy in-process stand-in for a pool ``AsyncResult``.

    Execution happens on the first ``result()`` call, under the pool's serial
    lock so concurrent threads (the HTTP front-end) never run two searches
    through the shared in-process caches at once.  The outcome — value or
    exception — is memoised so every waiter observes the same result.
    """

    __slots__ = ("_fn", "_task", "_lock", "_done", "_value", "_error")

    def __init__(self, fn: Callable[[Any], Any], task: Any, lock: threading.Lock) -> None:
        self._fn = fn
        self._task = task
        self._lock = lock
        self._done = False
        self._value = None
        self._error: BaseException | None = None

    def result(self) -> Any:
        with self._lock:
            if not self._done:
                try:
                    self._value = self._fn(self._task)
                except BaseException as exc:  # re-raised for every waiter
                    self._error = exc
                self._done = True
                self._fn = self._task = None  # free references early
            error = self._error
            value = self._value
        if error is not None:
            raise error
        return value


_STOP = object()  # pump-thread sentinel: drain the backlog, then exit


class _PoolFuture:
    """A future resolved by the owning worker's pump thread.

    ``result()`` blocks until the supervisor delivers a value or a typed
    failure — including :class:`~repro.errors.WorkerCrashError` when the
    worker process died mid-task, so a waiter is released the moment the
    worker's process sentinel fires instead of hanging forever (the failure
    mode of ``AsyncResult.get()`` on a lost task).
    """

    __slots__ = ("fn", "task", "timeout", "_event", "_value", "_error")

    def __init__(self, fn: Callable[[Any], Any], task: Any, timeout: float | None) -> None:
        self.fn = fn
        self.task = task
        self.timeout = timeout
        self._event = threading.Event()
        self._value = None
        self._error: BaseException | None = None

    def _resolve(self, value: Any) -> None:
        self._value = value
        self.fn = self.task = None  # free references early
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self.fn = self.task = None
        self._event.set()

    def result(self) -> Any:
        self._event.wait()
        if self._error is not None:
            raise self._error
        return self._value


def _worker_main(connection) -> None:
    """The worker-process loop: recv (fn, task), send ("ok"/"error", payload).

    SIGINT is ignored so an interactive Ctrl+C reaches only the parent, which
    then drains the pool gracefully.  An unpicklable result or exception is
    degraded to a picklable ``RuntimeError`` instead of killing the worker.
    """
    import signal

    signal.signal(signal.SIGINT, signal.SIG_IGN)
    # Mark this process as a pool worker so task code (e.g. the pipelined
    # Buffer Allocator) never spawns a nested pool from inside a worker.
    os.environ["REPRO_POOL_WORKER"] = "1"
    while True:
        try:
            item = connection.recv()
        except (EOFError, OSError):
            break
        if item is None:
            break
        fn, task = item
        try:
            reply = ("ok", fn(task))
        except BaseException as exc:  # shipped to the parent, not fatal here
            reply = ("error", exc)
        try:
            connection.send(reply)
        except Exception as exc:
            try:
                connection.send(
                    ("error", RuntimeError(f"worker reply was unpicklable: {exc!r}"))
                )
            except Exception:
                break
    connection.close()


class _WorkerSlot:
    """Parent-side state of one supervised worker process."""

    __slots__ = (
        "index",
        "tasks",
        "process",
        "connection",
        "pump",
        "generation",
        "crashes",
        "respawns",
        "inflight",
    )

    def __init__(self, index: int) -> None:
        self.index = index
        self.tasks: queue.Queue = queue.Queue()
        self.process: multiprocessing.Process | None = None
        self.connection = None
        self.pump: threading.Thread | None = None
        self.generation = 0
        self.crashes = 0
        self.respawns = 0
        # Queued + running tasks, guarded by the pool's _submit_lock (the
        # idle_workers() source of truth for the serving fan-out policy).
        self.inflight = 0


class PersistentPool:
    """A supervised process pool that stays alive across submissions.

    :class:`ParallelRunner` spins up a fresh ``multiprocessing.Pool`` per
    ``map`` call, which is fine for one-shot experiment grids but throws away
    every worker-side cache between calls.  A persistent pool keeps its
    workers (and therefore their module-level state: schedulers, per-graph
    parse/segment/tiling LRUs, evaluator contexts) warm across requests —
    the serving layer's "warm worker" path.

    Each worker is one supervised ``multiprocessing.Process`` fed over a pipe
    by a parent-side pump thread, so a task can be *routed*:
    ``submit(..., affinity=key)`` sends equal keys to the same worker every
    time, which is what turns per-process caches into a cache hierarchy (the
    serving layer routes by workload-graph fingerprint, so repeat workloads
    always land where their parse/segment/tiling LRUs already live).  Tasks
    without affinity round-robin for load balance.

    Supervision makes the pool self-healing: the pump thread sleeps on
    ``multiprocessing.connection.wait`` over the worker's reply pipe *and*
    its process sentinel, so a worker that dies mid-task (OOM kill,
    segfault, injected crash) fails its in-flight future with a typed
    :class:`~repro.errors.WorkerCrashError` the moment the process exits —
    never a hang, and no idle polling wake-ups while a task runs — and is
    respawned immediately with fresh (cold but warmable) state, so the
    backlog and all later submissions still run.  ``submit(..., timeout=seconds)`` bounds a
    single task: a runaway search is reclaimed by killing and respawning its
    worker, failing the future with
    :class:`~repro.errors.WorkerTimeoutError`.

    With one worker the pool runs in-process behind a lock, so the
    warm-state code path is identical and nothing is pickled (``timeout`` is
    unenforceable there — an in-process task cannot be killed).  Workers are
    created lazily on first use and must be :meth:`close`\\ d (or used as a
    context manager) when parallel; serial pools hold no OS resources.
    """

    def __init__(self, workers: int | None = None) -> None:
        self.workers = resolve_workers(workers)
        self._slots: list[_WorkerSlot] | None = None
        self._serial_lock = threading.Lock()
        self._submit_lock = threading.Lock()
        self._round_robin = 0
        self._closed = False  # no new submissions
        self._terminated = False  # worker processes are gone

    # ------------------------------------------------------------ lifecycle
    def _ensure_slots(self) -> list[_WorkerSlot]:
        if self._closed:
            raise RuntimeError("PersistentPool is closed")
        if self._slots is None:
            self._slots = []
            for index in range(self.workers):
                slot = _WorkerSlot(index)
                self._spawn(slot)
                slot.pump = threading.Thread(
                    target=self._pump_loop,
                    args=(slot,),
                    name=f"repro-pool-pump-{index}",
                    daemon=True,
                )
                slot.pump.start()
                self._slots.append(slot)
        return self._slots

    def _spawn(self, slot: _WorkerSlot) -> None:
        parent_end, child_end = multiprocessing.Pipe()
        process = multiprocessing.Process(
            target=_worker_main,
            args=(child_end,),
            name=f"repro-pool-worker-{slot.index}-gen{slot.generation}",
            daemon=True,
        )
        process.start()
        child_end.close()  # the parent keeps only its own end
        slot.process = process
        slot.connection = parent_end
        slot.generation += 1

    def _respawn(self, slot: _WorkerSlot) -> None:
        """Replace a dead (or killed) worker process with a fresh one."""
        if slot.connection is not None:
            try:
                slot.connection.close()
            except OSError:
                pass
        if slot.process is not None and slot.process.is_alive():
            slot.process.kill()
        if slot.process is not None:
            slot.process.join()
        slot.respawns += 1
        self._spawn(slot)

    # ------------------------------------------------------------- routing
    def _worker_index(self, affinity: object | None) -> int:
        if affinity is None:
            index = self._round_robin
            self._round_robin = (self._round_robin + 1) % self.workers
            return index
        return self.route_index(affinity)

    def route_index(self, affinity: object) -> int:
        """The worker index an affinity key routes to (stable, hash-based)."""
        if self.workers <= 1:
            return 0
        digest = hashlib.blake2b(repr(affinity).encode("utf-8"), digest_size=8).digest()
        return int.from_bytes(digest, "big") % self.workers

    # ------------------------------------------------------------ execution
    def submit(
        self,
        fn: Callable[[Any], Any],
        task: Any,
        affinity: object | None = None,
        timeout: float | None = None,
        worker: int | None = None,
    ):
        """Dispatch one task; returns a future-like object with ``result()``.

        Equal ``affinity`` keys always reach the same worker process; tasks
        without affinity are distributed round-robin.  ``worker`` overrides
        routing with an explicit index (the serving layer's circuit breaker
        steers traffic away from crash-looping workers this way).
        ``timeout`` bounds the task's wall clock: on expiry the worker is
        killed and respawned and the future fails with
        :class:`~repro.errors.WorkerTimeoutError` (ignored on serial pools,
        where the task runs in-process and cannot be killed).
        """
        if self.workers <= 1:
            with self._submit_lock:
                if self._closed:
                    raise RuntimeError("PersistentPool is closed")
                return _SerialFuture(fn, task, self._serial_lock)
        future = _PoolFuture(fn, task, timeout)
        with self._submit_lock:
            slots = self._ensure_slots()
            index = worker if worker is not None else self._worker_index(affinity)
            slot = slots[index % self.workers]
            slot.inflight += 1
            slot.tasks.put(future)
        return future

    def _pump_loop(self, slot: _WorkerSlot) -> None:
        """One worker's feeder: run backlog tasks, supervise the process."""
        while True:
            item = slot.tasks.get()
            if item is _STOP:
                self._stop_worker(slot)
                return
            try:
                self._run_on_worker(slot, item)
            finally:
                # Every _run_on_worker exit path has resolved or failed the
                # future by the time it returns, so the slot is idle again.
                with self._submit_lock:
                    slot.inflight -= 1

    def _run_on_worker(self, slot: _WorkerSlot, future: _PoolFuture) -> None:
        try:
            if slot.process is None or slot.process.exitcode is not None:
                # The worker died idle (between tasks); replace it silently —
                # no task was lost.
                self._respawn(slot)
            slot.connection.send((future.fn, future.task))
        except Exception as exc:
            future._fail(
                WorkerCrashError(
                    f"could not dispatch to worker {slot.index}: {exc!r}",
                    worker_index=slot.index,
                )
            )
            return
        deadline = (
            time.monotonic() + future.timeout if future.timeout is not None else None
        )
        while True:
            # Event-driven supervision: sleep until the worker replies, its
            # process sentinel fires, or the task deadline expires — no
            # fixed-interval polling.  The reply pipe is checked before the
            # sentinel so a worker that answers and then exits still
            # resolves its future (the dead process is replaced silently on
            # the next dispatch, exactly like an idle death).
            wait_timeout: float | None = None
            if deadline is not None:
                wait_timeout = deadline - time.monotonic()
                if wait_timeout < 0:
                    wait_timeout = 0
            try:
                ready = multiprocessing.connection.wait(
                    [slot.connection, slot.process.sentinel], wait_timeout
                )
            except OSError:
                ready = [slot.process.sentinel]  # treated as a crash below
            if slot.connection in ready:
                try:
                    status, payload = slot.connection.recv()
                    if status == "ok":
                        future._resolve(payload)
                    else:
                        future._fail(payload)
                    return
                except (EOFError, OSError):
                    pass  # treated as a crash below
            exitcode = slot.process.exitcode
            if exitcode is not None:
                # Drain a reply that raced with the exit: a worker may write
                # its result and die before the pipe is observed ready.
                try:
                    if slot.connection.poll(0):
                        status, payload = slot.connection.recv()
                        if status == "ok":
                            future._resolve(payload)
                        else:
                            future._fail(payload)
                        return
                except (EOFError, OSError):
                    pass
                slot.crashes += 1
                self._respawn(slot)
                future._fail(
                    WorkerCrashError(
                        f"worker {slot.index} died with exitcode {exitcode} "
                        "while running a task; the worker was respawned but "
                        "this task's result is lost",
                        worker_index=slot.index,
                        exitcode=exitcode,
                    )
                )
                return
            if deadline is not None and time.monotonic() > deadline:
                self._respawn(slot)  # kills the still-running worker first
                future._fail(
                    WorkerTimeoutError(
                        f"task exceeded its {future.timeout:g}s timeout on "
                        f"worker {slot.index}; the worker was killed and "
                        "respawned",
                        worker_index=slot.index,
                        timeout=future.timeout,
                    )
                )
                return

    def map(self, fn: Callable[[Any], Any], tasks: Iterable[Any]) -> list[Any]:
        """Apply ``fn`` to every task, preserving task order in the results."""
        futures = [self.submit(fn, task) for task in tasks]
        return [future.result() for future in futures]

    # ------------------------------------------------------------- health
    def worker_health(self) -> list[dict]:
        """One row per worker: pid, liveness and crash/respawn counters.

        A serial pool reports its single in-process pseudo-worker as alive;
        an unstarted parallel pool reports workers as not yet spawned.
        """
        if self.workers <= 1:
            with self._submit_lock:
                alive = not self._terminated
            return [
                {
                    "index": 0,
                    "pid": os.getpid(),
                    "alive": alive,
                    "generation": 0,
                    "crashes": 0,
                    "respawns": 0,
                }
            ]
        with self._submit_lock:
            slots = self._slots
            if slots is None:
                return [
                    {
                        "index": index,
                        "pid": None,
                        "alive": not self._closed,
                        "generation": 0,
                        "crashes": 0,
                        "respawns": 0,
                    }
                    for index in range(self.workers)
                ]
            return [
                {
                    "index": slot.index,
                    "pid": slot.process.pid if slot.process is not None else None,
                    "alive": (
                        slot.process is not None and slot.process.exitcode is None
                    ),
                    "generation": slot.generation,
                    "crashes": slot.crashes,
                    "respawns": slot.respawns,
                }
                for slot in slots
            ]

    def idle_workers(self) -> int:
        """Workers with no queued or in-flight task, counted atomically.

        Computed under the submit lock so the serving layer's idle-pool
        fan-out policy sees a consistent snapshot: a task counts against its
        worker from the moment ``submit`` enqueues it until its future is
        resolved or failed.  A serial pool reports its single in-process
        pseudo-worker; an unstarted parallel pool is fully idle.  A closed
        pool reports zero — it can no longer accept work.
        """
        with self._submit_lock:
            if self._closed:
                return 0
            if self.workers <= 1:
                return 1
            if self._slots is None:
                return self.workers
            return sum(1 for slot in self._slots if slot.inflight == 0)

    def supervision_stats(self) -> dict:
        """Aggregate crash/respawn counters across all workers."""
        health = self.worker_health()
        return {
            "crashes": sum(row["crashes"] for row in health),
            "respawns": sum(row["respawns"] for row in health),
        }

    # ------------------------------------------------------------ shutdown
    def _stop_worker(self, slot: _WorkerSlot) -> None:
        try:
            slot.connection.send(None)
        except (OSError, BrokenPipeError):
            pass
        if slot.process is not None:
            slot.process.join(timeout=5.0)
            if slot.process.is_alive():
                slot.process.kill()
                slot.process.join()
        try:
            slot.connection.close()
        except OSError:
            pass

    def close(self) -> None:
        """Shut the worker processes down gracefully (idempotent).

        New submissions are refused immediately, but tasks already dispatched
        are *drained* — each pump thread finishes its backlog before telling
        its worker to exit — so no future is left waiting on a result that
        can never arrive.
        """
        with self._submit_lock:
            if self._closed:
                slots = None
            else:
                self._closed = True
                slots = self._slots
                if slots is not None:
                    for slot in slots:
                        slot.tasks.put(_STOP)
        if slots is not None:
            # Joining the pump threads happens outside the lock: a drain can
            # take as long as the slowest in-flight search.
            for slot in slots:
                if slot.pump is not None:
                    slot.pump.join()
        with self._submit_lock:
            if slots is not None:
                self._slots = None
            self._terminated = True

    def __enter__(self) -> "PersistentPool":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()


# ------------------------------------------------------- multi-restart chains
@dataclass(frozen=True)
class _RestartTask:
    """One independent SA chain of a multi-restart schedule."""

    accelerator: AcceleratorConfig
    config: SoMaConfig
    graph: WorkloadGraph
    seed: int


def _run_restart(task: _RestartTask) -> SoMaResult:
    return SoMaScheduler(task.accelerator, task.config).schedule(task.graph, seed=task.seed)


def _run_restart_with_stats(task: _RestartTask) -> tuple[SoMaResult, dict]:
    """One SA chain plus the cache activity it generated.

    Stats are reported as a delta between snapshots taken around the run:
    parent processes never observe worker-side LRUs, and in a serial run the
    per-graph caches are shared across chains, so only the delta attributes
    activity to this chain exactly once.
    """
    scheduler = SoMaScheduler(task.accelerator, task.config)
    before = collect_search_cache_stats(task.graph, scheduler.evaluator)
    result = scheduler.schedule(task.graph, seed=task.seed)
    after = collect_search_cache_stats(task.graph, scheduler.evaluator)
    return result, cache_stats_delta(before, after)


def _best_result(results: Sequence[SoMaResult], config: SoMaConfig) -> SoMaResult:
    """The lowest finite-cost chain (ties towards the lowest chain index).

    Comparing ``cost < best_cost`` directly would let a NaN-cost first chain
    win unconditionally (every comparison against NaN is False), so chains
    with non-finite cost are never allowed to hold the "best" slot while a
    finite chain exists; if every chain is non-finite the first one is
    returned so the caller sees the same failure a single run would report.
    """
    best: SoMaResult | None = None
    best_cost = math.inf
    for result in results:
        cost = config.objective(result.evaluation.energy_j, result.evaluation.latency_s)
        if math.isfinite(cost) and (best is None or cost < best_cost):
            best = result
            best_cost = cost
    return best if best is not None else results[0]


def multi_restart_schedule(
    accelerator: AcceleratorConfig,
    graph: WorkloadGraph,
    config: SoMaConfig | None = None,
    seed: int | None = None,
    restarts: int = 2,
    workers: int | None = None,
    collect_cache_stats: bool = False,
):
    """Run several independent SA chains and keep the best scheme.

    Chain ``i`` uses ``derive_seed(base_seed, "chain", i)``, so the set of
    chains (and therefore the winner) is identical for any worker count; ties
    break towards the lowest chain index.  With ``restarts=1`` this is
    exactly ``SoMaScheduler.schedule`` with the base seed.

    With ``collect_cache_stats=True`` the return value is a ``(result,
    stats)`` tuple where ``stats`` aggregates every chain's search-cache
    activity across all worker processes (see ``--cache-stats``).
    """
    if restarts < 1:
        raise ValueError("restarts must be >= 1")
    config = config if config is not None else SoMaConfig()
    base_seed = config.seed if seed is None else seed
    if restarts == 1:
        task = _RestartTask(
            accelerator=accelerator, config=config, graph=graph, seed=base_seed
        )
        if collect_cache_stats:
            result, stats = _run_restart_with_stats(task)
            return result, aggregate_cache_stats([stats])
        return _run_restart(task)
    tasks = [
        _RestartTask(
            accelerator=accelerator,
            config=config,
            graph=graph,
            seed=derive_seed(base_seed, "chain", chain),
        )
        for chain in range(restarts)
    ]
    runner = ParallelRunner(workers)
    if collect_cache_stats:
        outcomes = runner.map(_run_restart_with_stats, tasks)
        results = [result for result, _ in outcomes]
        stats = aggregate_cache_stats([chain_stats for _, chain_stats in outcomes])
        return _best_result(results, config), stats
    results = runner.map(_run_restart, tasks)
    return _best_result(results, config)
