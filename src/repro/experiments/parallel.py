"""Parallel fan-out for experiment grids and multi-chain SA exploration.

Every experiment in this repo decomposes into independent cells — Fig. 6
(workload, platform, batch) comparisons, Fig. 7 DSE design points, and
multi-restart SA chains.  :class:`ParallelRunner` fans those cells across
``multiprocessing`` workers while keeping the results bit-identical to a
serial run: each task carries its own explicit seed, tasks never share
mutable state, and results are returned in submission order.  Consequently
the output for a fixed seed is the same for 1, 2 or N workers (asserted by
``tests/test_parallel.py``).

Worker count resolution order: explicit argument, then the
``REPRO_WORKERS`` environment variable, then 1 (serial).  Serial execution
runs in-process — no pool, no pickling — so the default path is unchanged
from the seed code.

Seeds for new parallel chains come from :func:`derive_seed`, a stable hash
of (base seed, chain key): decorrelated streams that do not depend on worker
count or scheduling order.
"""

from __future__ import annotations

import hashlib
import math
import multiprocessing
import threading
import warnings
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from repro.core.caching import (
    aggregate_cache_stats,
    cache_stats_delta,
    collect_search_cache_stats,
    parse_env_int,
)
from repro.core.config import SoMaConfig
from repro.core.result import SoMaResult
from repro.core.soma import SoMaScheduler
from repro.hardware.accelerator import AcceleratorConfig
from repro.workloads.graph import WorkloadGraph

WORKERS_ENV = "REPRO_WORKERS"


def coerce_workers(workers: int, source: str) -> int:
    """Clamp a worker count to >= 1, warning when that changes the value.

    A non-positive count (``--workers 0``, ``REPRO_WORKERS=-2``) is almost
    certainly a mistake; degrading to serial silently would hide it, so the
    clamp warns the same way the invalid-integer environment knobs do.
    """
    workers = int(workers)
    if workers < 1:
        warnings.warn(
            f"worker count {workers} from {source} is not positive; running serial",
            RuntimeWarning,
            stacklevel=3,
        )
        return 1
    return workers


def resolve_workers(workers: int | None = None) -> int:
    """Resolve a worker count: argument, then ``REPRO_WORKERS``, then 1.

    An unparsable or non-positive value degrades to serial, but loudly — a
    typo in ``--workers``/``REPRO_WORKERS`` should not silently discard the
    requested parallelism.
    """
    if workers is not None:
        return coerce_workers(workers, "the workers argument")
    value = parse_env_int(WORKERS_ENV, "running serial")
    if value is None:
        return 1
    return coerce_workers(value, WORKERS_ENV)


def derive_seed(base_seed: int, *key: object) -> int:
    """A decorrelated 31-bit seed derived stably from (base seed, key).

    Unlike drawing from a shared ``random.Random`` stream, derived seeds do
    not depend on the order tasks are generated or executed, so parallel
    chains stay deterministic for any worker count.
    """
    payload = repr((base_seed, key)).encode("utf-8")
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest[:4], "big") & 0x7FFFFFFF


class ParallelRunner:
    """Maps a picklable function over tasks, serially or across processes.

    The callable and every task must be picklable (module-level functions
    and frozen dataclasses); with one worker the map runs in-process and no
    multiprocessing machinery is touched.
    """

    def __init__(self, workers: int | None = None) -> None:
        self.workers = resolve_workers(workers)

    def map(self, fn: Callable[[Any], Any], tasks: Iterable[Any]) -> list[Any]:
        """Apply ``fn`` to every task, preserving task order in the results."""
        tasks = list(tasks)
        if self.workers <= 1 or len(tasks) <= 1:
            return [fn(task) for task in tasks]
        processes = min(self.workers, len(tasks))
        with multiprocessing.Pool(processes=processes) as pool:
            return pool.map(fn, tasks, chunksize=1)


# --------------------------------------------------------------- warm workers
class _SerialFuture:
    """Lazy in-process stand-in for a pool ``AsyncResult``.

    Execution happens on the first ``result()`` call, under the pool's serial
    lock so concurrent threads (the HTTP front-end) never run two searches
    through the shared in-process caches at once.  The outcome — value or
    exception — is memoised so every waiter observes the same result.
    """

    __slots__ = ("_fn", "_task", "_lock", "_done", "_value", "_error")

    def __init__(self, fn: Callable[[Any], Any], task: Any, lock: threading.Lock) -> None:
        self._fn = fn
        self._task = task
        self._lock = lock
        self._done = False
        self._value = None
        self._error: BaseException | None = None

    def result(self) -> Any:
        with self._lock:
            if not self._done:
                try:
                    self._value = self._fn(self._task)
                except BaseException as exc:  # re-raised for every waiter
                    self._error = exc
                self._done = True
                self._fn = self._task = None  # free references early
        if self._error is not None:
            raise self._error
        return self._value


class _PoolFuture:
    """``result()`` adapter over ``multiprocessing``'s ``AsyncResult``.

    ``AsyncResult.get()`` on a task whose pool was torn down blocks forever —
    the worker that would have delivered the result no longer exists.  The
    adapter polls with a short timeout so a waiter of such an orphaned future
    gets a clear ``RuntimeError`` instead of a silent hang.  (A gracefully
    closed pool drains its in-flight tasks before the owner flag flips, so
    this path only fires for genuinely lost results.)
    """

    __slots__ = ("_async_result", "_owner")

    def __init__(self, async_result, owner: "PersistentPool") -> None:
        self._async_result = async_result
        self._owner = owner

    def result(self) -> Any:
        while True:
            try:
                return self._async_result.get(timeout=0.2)
            except multiprocessing.TimeoutError:
                if self._owner._terminated and not self._async_result.ready():
                    raise RuntimeError(
                        "PersistentPool is closed; this task's result was lost "
                        "with the worker processes"
                    ) from None


class PersistentPool:
    """A process pool that stays alive across submissions, with affinity.

    :class:`ParallelRunner` spins up a fresh ``multiprocessing.Pool`` per
    ``map`` call, which is fine for one-shot experiment grids but throws away
    every worker-side cache between calls.  A persistent pool keeps its
    workers (and therefore their module-level state: schedulers, per-graph
    parse/segment/tiling LRUs, evaluator contexts) warm across requests —
    the serving layer's "warm worker" path.

    Each worker is its own single-process ``multiprocessing.Pool`` so a task
    can be *routed*: ``submit(..., affinity=key)`` sends equal keys to the
    same worker every time, which is what turns per-process caches into a
    cache hierarchy (the serving layer routes by workload-graph fingerprint,
    so repeat workloads always land where their parse/segment/tiling LRUs
    already live).  Tasks without affinity round-robin for load balance.

    With one worker the pool runs in-process behind a lock, so the
    warm-state code path is identical and nothing is pickled.  Workers are
    created lazily on first use and must be :meth:`close`\\ d (or used as a
    context manager) when parallel; serial pools hold no OS resources.
    """

    def __init__(self, workers: int | None = None) -> None:
        self.workers = resolve_workers(workers)
        self._pools: list | None = None
        self._serial_lock = threading.Lock()
        self._submit_lock = threading.Lock()
        self._round_robin = 0
        self._closed = False  # no new submissions
        self._terminated = False  # worker processes are gone

    def _ensure_pools(self) -> list:
        if self._closed:
            raise RuntimeError("PersistentPool is closed")
        if self._pools is None:
            self._pools = [multiprocessing.Pool(processes=1) for _ in range(self.workers)]
        return self._pools

    def _worker_index(self, affinity: object | None) -> int:
        if affinity is None:
            index = self._round_robin
            self._round_robin = (self._round_robin + 1) % self.workers
            return index
        digest = hashlib.blake2b(repr(affinity).encode("utf-8"), digest_size=8).digest()
        return int.from_bytes(digest, "big") % self.workers

    def submit(self, fn: Callable[[Any], Any], task: Any, affinity: object | None = None):
        """Dispatch one task; returns a future-like object with ``result()``.

        Equal ``affinity`` keys always reach the same worker process; tasks
        without affinity are distributed round-robin.
        """
        if self.workers <= 1:
            if self._closed:
                raise RuntimeError("PersistentPool is closed")
            return _SerialFuture(fn, task, self._serial_lock)
        with self._submit_lock:
            pool = self._ensure_pools()[self._worker_index(affinity)]
            return _PoolFuture(pool.apply_async(fn, (task,)), self)

    def map(self, fn: Callable[[Any], Any], tasks: Iterable[Any]) -> list[Any]:
        """Apply ``fn`` to every task, preserving task order in the results."""
        futures = [self.submit(fn, task) for task in tasks]
        return [future.result() for future in futures]

    def close(self) -> None:
        """Shut the worker processes down gracefully (idempotent).

        New submissions are refused immediately, but tasks already dispatched
        are *drained* — ``Pool.close()`` + ``join()`` lets every in-flight
        task finish and deliver its result — before the processes go away.
        Terminating with tasks in flight would leave their futures waiting on
        results that can never arrive (see :class:`_PoolFuture`).
        """
        self._closed = True
        if self._pools is not None:
            for pool in self._pools:
                pool.close()
            for pool in self._pools:
                pool.join()
            self._pools = None
        self._terminated = True

    def __enter__(self) -> "PersistentPool":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()


# ------------------------------------------------------- multi-restart chains
@dataclass(frozen=True)
class _RestartTask:
    """One independent SA chain of a multi-restart schedule."""

    accelerator: AcceleratorConfig
    config: SoMaConfig
    graph: WorkloadGraph
    seed: int


def _run_restart(task: _RestartTask) -> SoMaResult:
    return SoMaScheduler(task.accelerator, task.config).schedule(task.graph, seed=task.seed)


def _run_restart_with_stats(task: _RestartTask) -> tuple[SoMaResult, dict]:
    """One SA chain plus the cache activity it generated.

    Stats are reported as a delta between snapshots taken around the run:
    parent processes never observe worker-side LRUs, and in a serial run the
    per-graph caches are shared across chains, so only the delta attributes
    activity to this chain exactly once.
    """
    scheduler = SoMaScheduler(task.accelerator, task.config)
    before = collect_search_cache_stats(task.graph, scheduler.evaluator)
    result = scheduler.schedule(task.graph, seed=task.seed)
    after = collect_search_cache_stats(task.graph, scheduler.evaluator)
    return result, cache_stats_delta(before, after)


def _best_result(results: Sequence[SoMaResult], config: SoMaConfig) -> SoMaResult:
    """The lowest finite-cost chain (ties towards the lowest chain index).

    Comparing ``cost < best_cost`` directly would let a NaN-cost first chain
    win unconditionally (every comparison against NaN is False), so chains
    with non-finite cost are never allowed to hold the "best" slot while a
    finite chain exists; if every chain is non-finite the first one is
    returned so the caller sees the same failure a single run would report.
    """
    best: SoMaResult | None = None
    best_cost = math.inf
    for result in results:
        cost = config.objective(result.evaluation.energy_j, result.evaluation.latency_s)
        if math.isfinite(cost) and (best is None or cost < best_cost):
            best = result
            best_cost = cost
    return best if best is not None else results[0]


def multi_restart_schedule(
    accelerator: AcceleratorConfig,
    graph: WorkloadGraph,
    config: SoMaConfig | None = None,
    seed: int | None = None,
    restarts: int = 2,
    workers: int | None = None,
    collect_cache_stats: bool = False,
):
    """Run several independent SA chains and keep the best scheme.

    Chain ``i`` uses ``derive_seed(base_seed, "chain", i)``, so the set of
    chains (and therefore the winner) is identical for any worker count; ties
    break towards the lowest chain index.  With ``restarts=1`` this is
    exactly ``SoMaScheduler.schedule`` with the base seed.

    With ``collect_cache_stats=True`` the return value is a ``(result,
    stats)`` tuple where ``stats`` aggregates every chain's search-cache
    activity across all worker processes (see ``--cache-stats``).
    """
    if restarts < 1:
        raise ValueError("restarts must be >= 1")
    config = config if config is not None else SoMaConfig()
    base_seed = config.seed if seed is None else seed
    if restarts == 1:
        task = _RestartTask(
            accelerator=accelerator, config=config, graph=graph, seed=base_seed
        )
        if collect_cache_stats:
            result, stats = _run_restart_with_stats(task)
            return result, aggregate_cache_stats([stats])
        return _run_restart(task)
    tasks = [
        _RestartTask(
            accelerator=accelerator,
            config=config,
            graph=graph,
            seed=derive_seed(base_seed, "chain", chain),
        )
        for chain in range(restarts)
    ]
    runner = ParallelRunner(workers)
    if collect_cache_stats:
        outcomes = runner.map(_run_restart_with_stats, tasks)
        results = [result for result, _ in outcomes]
        stats = aggregate_cache_stats([chain_stats for _, chain_stats in outcomes])
        return _best_result(results, config), stats
    results = runner.map(_run_restart, tasks)
    return _best_result(results, config)
