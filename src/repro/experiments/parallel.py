"""Parallel fan-out for experiment grids and multi-chain SA exploration.

Every experiment in this repo decomposes into independent cells — Fig. 6
(workload, platform, batch) comparisons, Fig. 7 DSE design points, and
multi-restart SA chains.  :class:`ParallelRunner` fans those cells across
``multiprocessing`` workers while keeping the results bit-identical to a
serial run: each task carries its own explicit seed, tasks never share
mutable state, and results are returned in submission order.  Consequently
the output for a fixed seed is the same for 1, 2 or N workers (asserted by
``tests/test_parallel.py``).

Worker count resolution order: explicit argument, then the
``REPRO_WORKERS`` environment variable, then 1 (serial).  Serial execution
runs in-process — no pool, no pickling — so the default path is unchanged
from the seed code.

Seeds for new parallel chains come from :func:`derive_seed`, a stable hash
of (base seed, chain key): decorrelated streams that do not depend on worker
count or scheduling order.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from repro.core.config import SoMaConfig
from repro.core.result import SoMaResult
from repro.core.soma import SoMaScheduler
from repro.hardware.accelerator import AcceleratorConfig
from repro.workloads.graph import WorkloadGraph

WORKERS_ENV = "REPRO_WORKERS"


def resolve_workers(workers: int | None = None) -> int:
    """Resolve a worker count: argument, then ``REPRO_WORKERS``, then 1."""
    if workers is None:
        raw = os.environ.get(WORKERS_ENV)
        if raw:
            try:
                workers = int(raw)
            except ValueError:
                workers = 1
        else:
            workers = 1
    return max(1, int(workers))


def derive_seed(base_seed: int, *key: object) -> int:
    """A decorrelated 31-bit seed derived stably from (base seed, key).

    Unlike drawing from a shared ``random.Random`` stream, derived seeds do
    not depend on the order tasks are generated or executed, so parallel
    chains stay deterministic for any worker count.
    """
    payload = repr((base_seed, key)).encode("utf-8")
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest[:4], "big") & 0x7FFFFFFF


class ParallelRunner:
    """Maps a picklable function over tasks, serially or across processes.

    The callable and every task must be picklable (module-level functions
    and frozen dataclasses); with one worker the map runs in-process and no
    multiprocessing machinery is touched.
    """

    def __init__(self, workers: int | None = None) -> None:
        self.workers = resolve_workers(workers)

    def map(self, fn: Callable[[Any], Any], tasks: Iterable[Any]) -> list[Any]:
        """Apply ``fn`` to every task, preserving task order in the results."""
        tasks = list(tasks)
        if self.workers <= 1 or len(tasks) <= 1:
            return [fn(task) for task in tasks]
        processes = min(self.workers, len(tasks))
        with multiprocessing.Pool(processes=processes) as pool:
            return pool.map(fn, tasks, chunksize=1)


# ------------------------------------------------------- multi-restart chains
@dataclass(frozen=True)
class _RestartTask:
    """One independent SA chain of a multi-restart schedule."""

    accelerator: AcceleratorConfig
    config: SoMaConfig
    graph: WorkloadGraph
    seed: int


def _run_restart(task: _RestartTask) -> SoMaResult:
    return SoMaScheduler(task.accelerator, task.config).schedule(task.graph, seed=task.seed)


def multi_restart_schedule(
    accelerator: AcceleratorConfig,
    graph: WorkloadGraph,
    config: SoMaConfig | None = None,
    seed: int | None = None,
    restarts: int = 2,
    workers: int | None = None,
) -> SoMaResult:
    """Run several independent SA chains and keep the best scheme.

    Chain ``i`` uses ``derive_seed(base_seed, "chain", i)``, so the set of
    chains (and therefore the winner) is identical for any worker count; ties
    break towards the lowest chain index.  With ``restarts=1`` this is
    exactly ``SoMaScheduler.schedule`` with the base seed.
    """
    if restarts < 1:
        raise ValueError("restarts must be >= 1")
    config = config if config is not None else SoMaConfig()
    base_seed = config.seed if seed is None else seed
    if restarts == 1:
        return SoMaScheduler(accelerator, config).schedule(graph, seed=base_seed)
    tasks = [
        _RestartTask(
            accelerator=accelerator,
            config=config,
            graph=graph,
            seed=derive_seed(base_seed, "chain", chain),
        )
        for chain in range(restarts)
    ]
    results: Sequence[SoMaResult] = ParallelRunner(workers).map(_run_restart, tasks)
    best = results[0]
    best_cost = config.objective(best.evaluation.energy_j, best.evaluation.latency_s)
    for result in results[1:]:
        cost = config.objective(result.evaluation.energy_j, result.evaluation.latency_s)
        if cost < best_cost:
            best = result
            best_cost = cost
    return best
