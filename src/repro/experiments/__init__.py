"""Experiment drivers mirroring the paper's artifact outputs.

The original artifact runs every (workload, platform, batch) configuration
through both frameworks and collects ``overall.csv`` (the Fig. 6 data),
``stats.log`` (the Sec. VI-B aggregate statistics) and ``dse.csv`` (the
Fig. 7 data).  This package provides the equivalent drivers as a library API
and powers the ``python -m repro`` command line.
"""

from repro.experiments.overall import ExperimentCell, OverallExperiment, run_overall_experiment
from repro.experiments.sweep import DSEExperiment, run_dse_experiment

__all__ = [
    "DSEExperiment",
    "ExperimentCell",
    "OverallExperiment",
    "run_dse_experiment",
    "run_overall_experiment",
]
