"""The "overall" experiment: Fig. 6 rows plus the Sec. VI-B statistics.

Equivalent of the artifact's ``run.sh`` + ``get_results.sh`` pipeline for the
overall comparison: run every experiment cell through Cocco and SoMa, collect
the comparison rows, and emit ``overall.csv`` and ``stats.log`` style text.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.comparison import (
    ComparisonRow,
    ComparisonTask,
    compare_cells,
    compare_workload,
    rows_to_csv,
    summarize,
)
from repro.core.config import SoMaConfig
from repro.core.core_array import CoreArrayMapper
from repro.hardware.accelerator import AcceleratorConfig, cloud_accelerator, edge_accelerator
from repro.workloads.registry import build_workload


@dataclass(frozen=True)
class ExperimentCell:
    """One (workload, platform, batch) configuration of the overall grid."""

    workload: str
    platform: str = "edge"
    batch: int = 1
    workload_kwargs: tuple[tuple[str, object], ...] = ()

    def build_accelerator(self) -> AcceleratorConfig:
        """The accelerator this cell runs on."""
        if self.platform == "edge":
            return edge_accelerator()
        if self.platform == "cloud":
            return cloud_accelerator()
        raise ValueError(f"unknown platform {self.platform!r}; expected 'edge' or 'cloud'")

    def build_graph(self):
        """The workload graph this cell schedules."""
        return build_workload(self.workload, batch=self.batch, **dict(self.workload_kwargs))

    def describe(self) -> str:
        """Short cell label used in logs."""
        return f"{self.workload}/{self.platform}/bs{self.batch}"


@dataclass
class OverallExperiment:
    """Results of one overall-experiment run."""

    cells: list[ExperimentCell]
    rows: list[ComparisonRow] = field(default_factory=list)

    def to_csv(self) -> str:
        """The artifact's ``overall.csv`` equivalent."""
        return rows_to_csv(self.rows)

    def stats_log(self) -> str:
        """The artifact's ``stats.log`` equivalent (Sec. VI-B statistics)."""
        summary = summarize(self.rows)
        lines = ["SoMa vs Cocco - aggregate statistics", summary.describe(), ""]
        lines.append("per-cell speedups (Ours_2 vs Cocco):")
        for cell, row in zip(self.cells, self.rows):
            lines.append(
                f"  {cell.describe():40s} {row.speedup_total:6.2f}x  "
                f"energy {row.energy_reduction_percent:+6.1f}%  "
                f"gap-to-bound {row.gap_to_bound_percent:5.1f}%"
            )
        return "\n".join(lines)


def default_cells() -> list[ExperimentCell]:
    """A small representative grid (see EXPERIMENTS.md for the full one)."""
    return [
        ExperimentCell("resnet50", "edge", 1),
        ExperimentCell("resnet50", "edge", 4),
        ExperimentCell("gpt2-decode", "edge", 1, (("variant", "small"), ("context_len", 512))),
    ]


def run_overall_experiment(
    cells: list[ExperimentCell] | None = None,
    config: SoMaConfig | None = None,
    seed: int = 2025,
    progress=None,
    workers: int | None = None,
    intra_cell: bool | None = None,
) -> OverallExperiment:
    """Run the overall comparison for every cell.

    ``progress`` may be a callable taking a string; it is invoked before each
    cell so command-line front-ends can report progress.  With ``workers``
    (or ``REPRO_WORKERS``) > 1 each cell is split into its two independent
    scheduler runs (baseline vs SoMa) and the resulting tasks fan across
    processes — twice the parallelism of cell-granularity fanning when
    workers outnumber cells (``intra_cell=False`` restores the old
    behaviour).  Every run keeps the same explicit seed, so the rows are
    identical to a serial run for any worker count.  Parallel cells run on
    a supervised :class:`~repro.experiments.parallel.PersistentPool` (warm,
    self-healing workers) instead of a one-shot ``multiprocessing.Pool``.
    """
    cells = cells if cells is not None else default_cells()
    config = config if config is not None else SoMaConfig()
    experiment = OverallExperiment(cells=cells)

    from repro.experiments.parallel import resolve_workers

    if resolve_workers(workers) > 1:
        if progress is not None:
            progress(
                f"running {len(cells)} cells (2 scheduler runs each) across "
                f"{resolve_workers(workers)} workers"
            )
        tasks = [
            ComparisonTask(
                workload=cell.workload,
                platform=cell.platform,
                batch=cell.batch,
                workload_kwargs=cell.workload_kwargs,
                config=config,
                seed=seed,
            )
            for cell in cells
        ]
        experiment.rows.extend(compare_cells(tasks, workers=workers, intra_cell=intra_cell))
        return experiment

    mappers: dict[str, CoreArrayMapper] = {}
    for cell in cells:
        if progress is not None:
            progress(f"running {cell.describe()}")
        accelerator = cell.build_accelerator()
        mapper = mappers.setdefault(accelerator.name, CoreArrayMapper(accelerator))
        row = compare_workload(
            cell.build_graph(), accelerator, config=config, seed=seed, mapper=mapper
        )
        experiment.rows.append(row)
    return experiment
