"""LFA exploration stage (paper Sec. V-C1).

Starting from the no-fusion scheme (every layer its own FLG and LG, Tiling
Number from the core-array parallelism requirement), the stage anneals over
the four LFA operators — change computing order, x/÷2 a Tiling Number,
add/delete an FLC, add/delete a DRAM Cut — while the DLSA is fixed to the
classical double-buffer strategy.  The stage receives a buffer budget from
the Buffer Allocator; schemes exceeding it are penalised.

Every operator returns an :class:`LFAMove`: the new LFA plus an
:class:`~repro.notation.lfa.LFADelta` naming the plan segments (LGs) the
move touched.  The stage feeds the delta into the segment assembler
(:mod:`repro.notation.segments`) so only touched segments are re-parsed per
candidate; unchanged ones are reused from the parent plan or the segment
LRU.  Plans are bit-identical to the reference parser's, so fixed-seed
searches are unchanged.
"""

from __future__ import annotations

import math
import random
import warnings
import weakref
from dataclasses import dataclass

from repro.core.caching import LRUCache, cache_size
from repro.core.config import SoMaConfig
from repro.core.evaluator import ScheduleEvaluator
from repro.core.knobs import read_int
from repro.core.result import EvaluationResult, StageResult
from repro.core.sa import SimulatedAnnealing
from repro.errors import EncodingError, WorkerCrashError
from repro.notation.encoding import ScheduleEncoding
from repro.notation.lfa import LFA, LFADelta
from repro.hardware.accelerator import AcceleratorConfig
from repro.notation.segments import build_plan_cached
from repro.tiling.heuristics import kc_parallelism_tiling_number
from repro.workloads.graph import WorkloadGraph

_MAX_TILING_NUMBER = 4096

LFA_BATCH_ENV = "REPRO_LFA_BATCH"


def lfa_batch_size() -> int:
    """Speculation window of the batched stage-1 engine (``REPRO_LFA_BATCH``).

    Unset (or 0) keeps the historical serial walk — the lazy-draw Metropolis
    loop, bit-identical to every earlier release.  Any value >= 1 switches
    stage 1 to the draw-ahead batched engine
    (:meth:`~repro.core.sa.SimulatedAnnealing.run_batched`): the trajectory
    changes once, deterministically, and is then invariant in both the batch
    size and the worker count (``batch 1`` in-process *is* the speculative
    reference walk).
    """
    value = read_int(LFA_BATCH_ENV, "running the historical serial stage-1 walk")
    if value is None:
        return 0
    if value < 0:
        warnings.warn(
            f"ignoring negative {LFA_BATCH_ENV}={value}; "
            "running the historical serial stage-1 walk",
            RuntimeWarning,
            stacklevel=2,
        )
        return 0
    return value


@dataclass(frozen=True)
class LFAMove:
    """One operator move: the resulting LFA plus the segments it touched."""

    lfa: LFA
    delta: LFADelta


def _apply_lfa_move(_state: LFA, move: LFAMove) -> LFA:
    """``apply_fn`` of the batched engine: a move already carries its LFA."""
    return move.lfa


# --------------------------------------------------------------------- helpers
def initial_lfa(graph: WorkloadGraph, kc_parallel_lanes: int) -> LFA:
    """No-fusion initial solution with parallelism-driven Tiling Numbers."""
    order = tuple(graph.topological_order())
    n = len(order)
    cuts = frozenset(range(1, n))
    tilings = {}
    for start, name in enumerate(order):
        tilings[start] = kc_parallelism_tiling_number(graph, [name], kc_parallel_lanes)
    return LFA(
        computing_order=order,
        flc_set=cuts,
        dram_cut_set=cuts,
        tiling_numbers=tilings,
    )


def _valid_positions(graph: WorkloadGraph, order: list[str], layer: str) -> list[int]:
    """Positions where ``layer`` may be re-inserted without breaking deps."""
    remaining = [name for name in order if name != layer]
    position = {name: i for i, name in enumerate(remaining)}
    lower = 0
    upper = len(remaining)
    for producer in graph.predecessors(layer):
        lower = max(lower, position[producer] + 1)
    for consumer in graph.successors(layer):
        upper = min(upper, position[consumer])
    return list(range(lower, upper + 1))


# ------------------------------------------------------------------- operators
def op_change_computing_order(lfa: LFA, graph: WorkloadGraph, rng: random.Random) -> LFAMove | None:
    """Move one layer to another dependency-valid position."""
    order = list(lfa.computing_order)
    layer = rng.choice(order)
    positions = _valid_positions(graph, order, layer)
    # Once ``layer`` is removed, re-inserting it at its old index recreates
    # the original order, so that position is the one no-op to exclude.
    current = order.index(layer)
    candidates = [p for p in positions if p != current]
    if not candidates:
        return None
    remaining = [name for name in order if name != layer]
    new_position = rng.choice(candidates)
    remaining.insert(new_position, layer)
    # Only layers between the source and destination positions shift; LGs
    # entirely outside that index range keep their members and cuts.
    low = min(current, new_position)
    high = max(current, new_position)
    segment_map = tuple(
        lg_index if end <= low or start > high else -1
        for lg_index, (start, end) in enumerate(lfa.lg_ranges())
    )
    return LFAMove(
        lfa=LFA(
            computing_order=tuple(remaining),
            flc_set=lfa.flc_set,
            dram_cut_set=lfa.dram_cut_set,
            tiling_numbers=dict(lfa.tiling_numbers),
        ),
        delta=LFADelta(operator="change_computing_order", parent=lfa, segment_map=segment_map),
    )


def op_change_tiling_number(lfa: LFA, graph: WorkloadGraph, rng: random.Random) -> LFAMove | None:
    """Multiply or divide one FLG's Tiling Number by two."""
    start = rng.choice(sorted(lfa.tiling_numbers))
    tilings = dict(lfa.tiling_numbers)
    current = tilings[start]
    if rng.random() < 0.5:
        new_value = min(_MAX_TILING_NUMBER, current * 2)
    else:
        new_value = max(1, current // 2)
    if new_value == current:
        return None
    tilings[start] = new_value
    touched = lfa.lg_index_of_position(start)
    return LFAMove(
        lfa=LFA(
            computing_order=lfa.computing_order,
            flc_set=lfa.flc_set,
            dram_cut_set=lfa.dram_cut_set,
            tiling_numbers=tilings,
        ),
        delta=LFADelta(
            operator="change_tiling_number",
            parent=lfa,
            segment_map=lfa.identity_segment_map(changed=(touched,)),
        ),
    )


def op_add_flc(lfa: LFA, graph: WorkloadGraph, rng: random.Random) -> LFAMove | None:
    """Add an FLC, splitting one FLG into two with the same Tiling Number."""
    n = len(lfa.computing_order)
    candidates = [p for p in range(1, n) if p not in lfa.flc_set]
    if not candidates:
        return None
    position = rng.choice(candidates)
    flg_index = lfa.flg_of_position(position)
    start, _ = lfa.flg_ranges()[flg_index]
    tilings = dict(lfa.tiling_numbers)
    tilings[position] = tilings[start]
    # The new cut is no DRAM Cut, so it falls strictly inside one LG.
    touched = lfa.lg_index_of_position(position)
    return LFAMove(
        lfa=LFA(
            computing_order=lfa.computing_order,
            flc_set=lfa.flc_set | {position},
            dram_cut_set=lfa.dram_cut_set,
            tiling_numbers=tilings,
        ),
        delta=LFADelta(
            operator="add_flc",
            parent=lfa,
            segment_map=lfa.identity_segment_map(changed=(touched,)),
        ),
    )


def op_delete_flc(lfa: LFA, graph: WorkloadGraph, rng: random.Random) -> LFAMove | None:
    """Remove an FLC (not a DRAM Cut), merging two FLGs.

    The merged FLG inherits one of the two Tiling Numbers with probability
    proportional to the layer count of each side (Sec. V-C1).
    """
    candidates = sorted(lfa.flc_set - lfa.dram_cut_set)
    if not candidates:
        return None
    position = rng.choice(candidates)
    ranges = lfa.flg_ranges()
    flg_index = next(i for i, (start, _end) in enumerate(ranges) if start == position)
    left_start, left_end = ranges[flg_index - 1]
    right_start, right_end = ranges[flg_index]
    left_count = left_end - left_start
    right_count = right_end - right_start
    tilings = dict(lfa.tiling_numbers)
    left_tiling = tilings[left_start]
    right_tiling = tilings.pop(right_start)
    keep_left = rng.random() < left_count / (left_count + right_count)
    tilings[left_start] = left_tiling if keep_left else right_tiling
    # A deletable FLC is never a DRAM Cut, so both merged FLGs share one LG.
    touched = lfa.lg_index_of_position(position)
    return LFAMove(
        lfa=LFA(
            computing_order=lfa.computing_order,
            flc_set=lfa.flc_set - {position},
            dram_cut_set=lfa.dram_cut_set,
            tiling_numbers=tilings,
        ),
        delta=LFADelta(
            operator="delete_flc",
            parent=lfa,
            segment_map=lfa.identity_segment_map(changed=(touched,)),
        ),
    )


def op_add_dram_cut(lfa: LFA, graph: WorkloadGraph, rng: random.Random) -> LFAMove | None:
    """Promote an existing FLC to a DRAM Cut."""
    candidates = sorted(lfa.flc_set - lfa.dram_cut_set)
    if not candidates:
        return None
    position = rng.choice(candidates)
    # LG ``split`` becomes two new segments; later LGs keep their content but
    # shift up by one index.
    split = lfa.lg_index_of_position(position)
    num_lgs = len(lfa.lg_ranges())
    segment_map = tuple(
        i if i < split else (-1 if i <= split + 1 else i - 1)
        for i in range(num_lgs + 1)
    )
    return LFAMove(
        lfa=LFA(
            computing_order=lfa.computing_order,
            flc_set=lfa.flc_set,
            dram_cut_set=lfa.dram_cut_set | {position},
            tiling_numbers=dict(lfa.tiling_numbers),
        ),
        delta=LFADelta(operator="add_dram_cut", parent=lfa, segment_map=segment_map),
    )


def op_delete_dram_cut(lfa: LFA, graph: WorkloadGraph, rng: random.Random) -> LFAMove | None:
    """Demote a DRAM Cut to a plain FLC (fusing the two LGs)."""
    candidates = sorted(lfa.dram_cut_set)
    if not candidates:
        return None
    position = rng.choice(candidates)
    # The LG starting at ``position`` merges into its predecessor; later LGs
    # keep their content but shift down by one index.
    right = lfa.lg_index_of_position(position)
    num_lgs = len(lfa.lg_ranges())
    segment_map = tuple(
        i if i < right - 1 else (-1 if i == right - 1 else i + 1)
        for i in range(num_lgs - 1)
    )
    return LFAMove(
        lfa=LFA(
            computing_order=lfa.computing_order,
            flc_set=lfa.flc_set,
            dram_cut_set=lfa.dram_cut_set - {position},
            tiling_numbers=dict(lfa.tiling_numbers),
        ),
        delta=LFADelta(operator="delete_dram_cut", parent=lfa, segment_map=segment_map),
    )


LFA_OPERATORS = (
    op_change_computing_order,
    op_change_tiling_number,
    op_add_flc,
    op_delete_flc,
    op_add_dram_cut,
    op_delete_dram_cut,
)

# Relative selection weights for the operators above.  Fusion decisions (DRAM
# cuts) and Tiling Numbers move the cost the most, so they are proposed more
# often; the weights keep every operator reachable.
LFA_OPERATOR_WEIGHTS = (1.0, 2.0, 1.0, 1.5, 1.0, 2.5)


# Per-graph counters of the speculative stage-1 engine: how many candidate
# moves were scored ahead of the walk, how many of those the walk committed
# or rolled back, and where the scoring ran.  Surfaced through
# ``--cache-stats`` (the ``speculation`` row).
_SPECULATION_COUNTERS: "weakref.WeakKeyDictionary[WorkloadGraph, tuple[int, dict]]" = (
    weakref.WeakKeyDictionary()
)


def _speculation_counters(graph: WorkloadGraph) -> dict:
    # Key by the canonical instance: an in-process stage-1 task folds its
    # counters through the module-cached stage (built on the canonical
    # graph), while observers pass whatever copy they hold — both must hit
    # the same row.
    graph = canonical_graph(graph)
    entry = _SPECULATION_COUNTERS.get(graph)
    if entry is None or entry[0] != graph.version:
        entry = (
            graph.version,
            {
                "proposed": 0,
                "committed": 0,
                "rolled_back": 0,
                "pool_evaluations": 0,
                "inprocess_evaluations": 0,
            },
        )
        _SPECULATION_COUNTERS[graph] = entry
    return entry[1]


def speculation_stats(graph: WorkloadGraph) -> dict:
    """Stage-1 speculation counters of one graph (for ``--cache-stats``)."""
    return dict(_speculation_counters(graph))


# ----------------------------------------------------------------------- stage
@dataclass(frozen=True)
class LFAStageOutcome:
    """Best LFA scheme of one stage-1 run plus its double-buffer evaluation."""

    stage_result: StageResult
    buffer_peak_bytes: int


class LFAStage:
    """Stage 1 of the SoMa search."""

    def __init__(
        self,
        graph: WorkloadGraph,
        evaluator: ScheduleEvaluator,
        config: SoMaConfig,
    ) -> None:
        self._graph = graph
        self._evaluator = evaluator
        self._config = config
        self._annealer = SimulatedAnnealing(config.lfa_sa)
        # SA cost memo, keyed by (LFA fingerprint, budget): the annealer
        # revisits states whenever a move is rejected and re-proposed, and
        # the allocator restarts from the same initial scheme every round.
        self._cost_memo = LRUCache(cache_size("STAGE1", 4096))
        # The delta of the most recent _neighbor proposal, consumed by the
        # cost function for that exact candidate object: the SA engine only
        # sees LFA states, so the segment hint travels alongside.
        self._pending: tuple[LFA, LFADelta] | None = None

    # ------------------------------------------------------------------ public
    def explore(
        self,
        buffer_budget_bytes: int,
        rng: random.Random,
        pool=None,
        pool_workers: tuple[int, ...] = (),
        batch_size: int | None = None,
    ) -> LFAStageOutcome:
        """Run stage 1 under the given buffer budget.

        With a speculation window of at least 1 (``batch_size``, defaulting
        to ``REPRO_LFA_BATCH``) the annealer speculates move batches
        through the draw-ahead protocol; the segment assembly + static-cost
        evaluation of one window's memo misses fans out across the given
        ``pool`` slots (``pool_workers``) as pure :class:`SpeculationTask`
        chunks, or runs in-process when no pool is given.  Placement never
        changes the floats, so every batch size x worker count takes the
        same trajectory.  Without the knob, the historical serial walk runs
        — bit-identical to every earlier release.

        Pipelined callers must resolve the knob themselves and pass
        ``batch_size`` explicitly: a :class:`Stage1Task` may execute on a
        long-lived pool worker whose inherited environment predates the
        submitting process's current knob settings, and the walk the task
        runs is part of its purity contract.
        """
        start_lfa = initial_lfa(self._graph, self._evaluator.accelerator.core_array.kc_parallel_lanes)
        if batch_size is None:
            batch_size = lfa_batch_size()
        if batch_size >= 1:
            outcome = self._annealer.run_batched(
                initial_state=start_lfa,
                cost_fn=lambda lfa: self.cost(lfa, buffer_budget_bytes),
                propose_fn=self._propose,
                apply_fn=_apply_lfa_move,
                batch_eval_fn=self._batch_eval_fn(
                    buffer_budget_bytes, pool, tuple(pool_workers)
                ),
                rng=rng,
                units=len(self._graph),
                batch_size=batch_size,
            )
            counters = _speculation_counters(self._graph)
            counters["proposed"] += outcome.speculated_moves
            counters["committed"] += outcome.accepted_moves
            counters["rolled_back"] += outcome.rolled_back_moves
        else:
            outcome = self._annealer.run(
                initial_state=start_lfa,
                cost_fn=lambda lfa: self.cost(lfa, buffer_budget_bytes),
                neighbor_fn=self._neighbor,
                rng=rng,
                units=len(self._graph),
            )
        evaluation = self.evaluate(outcome.best_state, buffer_budget_bytes)
        stage_result = StageResult(
            encoding=ScheduleEncoding(lfa=outcome.best_state, dlsa=None),
            evaluation=evaluation,
            cost=outcome.best_cost,
            iterations=outcome.iterations,
            accepted_moves=outcome.accepted_moves,
        )
        return LFAStageOutcome(
            stage_result=stage_result,
            buffer_peak_bytes=evaluation.max_buffer_bytes,
        )

    def evaluate(
        self, lfa: LFA, buffer_budget_bytes: int, delta: LFADelta | None = None
    ) -> EvaluationResult:
        """Evaluate one LFA with the double-buffer DLSA.

        ``delta`` (when the LFA came from an operator move) lets the segment
        assembler reuse the parent plan's untouched segments.
        """
        plan = build_plan_cached(self._graph, lfa, delta)
        if not plan.feasible:
            return EvaluationResult(feasible=False, reason=plan.infeasibility_reason)
        context = self._evaluator.context(plan)
        return context.evaluate(context.double_buffer, buffer_budget_bytes)

    def cost(
        self, lfa: LFA, buffer_budget_bytes: int, delta: LFADelta | None = None
    ) -> float:
        """Stage-1 cost: the objective, with a soft penalty for buffer overflow."""
        memo_key = (lfa.fingerprint(), buffer_budget_bytes)
        cached = self._cost_memo.get(memo_key)
        if cached is not None:
            return cached
        if delta is None and self._pending is not None and self._pending[0] is lfa:
            delta = self._pending[1]
            self._pending = None
        try:
            result = self.evaluate(lfa, buffer_budget_bytes, delta)
        except EncodingError:
            return math.inf
        cost = self._penalised_cost(result, buffer_budget_bytes)
        self._cost_memo.put(memo_key, cost)
        return cost

    # ---------------------------------------------------------------- internal
    def _penalised_cost(self, result: EvaluationResult, budget: int) -> float:
        if not math.isfinite(result.latency_s) or result.latency_s <= 0:
            return math.inf
        cost = self._config.objective(result.energy_j, result.latency_s)
        if result.max_buffer_bytes > budget:
            excess = (result.max_buffer_bytes - budget) / budget
            cost *= 1.0 + self._config.buffer_overflow_penalty * excess
        return cost

    def _neighbor(self, lfa: LFA, rng: random.Random) -> LFA | None:
        move = self._propose(lfa, rng)
        if move is None:
            return None
        self._pending = (move.lfa, move.delta)
        return move.lfa

    def _propose(self, lfa: LFA, rng: random.Random) -> LFAMove | None:
        """One weighted operator move (the batched engine's ``propose_fn``)."""
        operators = list(LFA_OPERATORS)
        weights = list(LFA_OPERATOR_WEIGHTS)
        while operators:
            index = rng.choices(range(len(operators)), weights=weights, k=1)[0]
            operator = operators.pop(index)
            weights.pop(index)
            move = operator(lfa, self._graph, rng)
            if move is not None:
                return move
        return None

    def _batch_eval_fn(self, budget: int, pool, pool_workers: tuple[int, ...]):
        def batch_eval(_state, moves, _thresholds):
            return self._evaluate_moves(list(moves), budget, pool, pool_workers)

        return batch_eval

    def _evaluate_moves(
        self, moves: list[LFAMove], budget: int, pool, pool_workers: tuple[int, ...]
    ) -> list[float]:
        """Score one speculation window, fanning memo misses across the pool.

        Every evaluation is a pure function of (graph, LFA, budget), so pool
        and in-process scoring return the identical floats; the pool only
        changes wall clock.  A window with fewer than two misses (or no
        pool) is scored in-process — one evaluation cannot amortise a task
        round-trip.
        """
        counters = _speculation_counters(self._graph)
        costs: list[float] = [math.inf] * len(moves)
        misses: list[int] = []
        for index, move in enumerate(moves):
            cached = self._cost_memo.get((move.lfa.fingerprint(), budget))
            if cached is not None:
                costs[index] = cached
            else:
                misses.append(index)
        if pool is not None and pool_workers and len(misses) >= 2:
            if self._fan_out(moves, costs, misses, budget, pool, pool_workers):
                counters["pool_evaluations"] += len(misses)
                return costs
        for index in misses:
            move = moves[index]
            costs[index] = self.cost(move.lfa, budget, delta=move.delta)
        counters["inprocess_evaluations"] += len(misses)
        return costs

    def _fan_out(
        self,
        moves: list[LFAMove],
        costs: list[float],
        misses: list[int],
        budget: int,
        pool,
        pool_workers: tuple[int, ...],
    ) -> bool:
        """Score ``misses`` as chunked pool tasks; False on a worker crash.

        One task per worker carries that worker's whole chunk of the window,
        so the graph pickles once per (worker, window) instead of once per
        candidate.  On a crash the pool respawns the worker and the caller
        falls back to in-process scoring — pure evaluations, identical
        floats, so the trajectory is unaffected.
        """
        chunks = [misses[start :: len(pool_workers)] for start in range(len(pool_workers))]
        chunks = [chunk for chunk in chunks if chunk]
        futures = []
        for worker, chunk in zip(pool_workers, chunks):
            task = SpeculationTask(
                accelerator=self._evaluator.accelerator,
                config=self._config,
                graph=self._graph,
                budget=budget,
                moves=tuple(moves[index] for index in chunk),
            )
            futures.append(pool.submit(run_speculation_task, task, worker=worker))
        try:
            for chunk, future in zip(chunks, futures):
                for index, value in zip(chunk, future.result()):
                    costs[index] = value
                    self._cost_memo.put(
                        (moves[index].lfa.fingerprint(), budget), value
                    )
        except WorkerCrashError:
            return False
        return True


# ------------------------------------------------------- pipelined stage tasks
_CANONICAL_GRAPHS: dict[str, WorkloadGraph] = {}
_STAGE1_STAGES: dict = {}
_WORKER_CACHE_LIMIT = 8


def canonical_graph(graph: WorkloadGraph) -> WorkloadGraph:
    """One graph object per fingerprint within this process.

    Pipelined stage tasks arrive in pool workers as freshly unpickled graph
    copies, but the per-graph search caches (parses, segments, fragments,
    tilings) key by object identity.  Routing every copy of a graph to one
    canonical in-process instance is what keeps a warm worker warm across
    the stage handoffs of a pipelined schedule.
    """
    key = graph.fingerprint()
    held = _CANONICAL_GRAPHS.get(key)
    if held is not None:
        return held
    if len(_CANONICAL_GRAPHS) >= _WORKER_CACHE_LIMIT:
        _CANONICAL_GRAPHS.clear()
    _CANONICAL_GRAPHS[key] = graph
    return graph


@dataclass(frozen=True)
class Stage1Task:
    """One pipelined stage-1 exploration: picklable and explicitly seeded.

    A task is a pure function of its fields — graph, configuration, buffer
    budget and seed — so running it in-process or on any pool worker yields
    the same :class:`LFAStageOutcome` bit for bit.  ``lfa_batch`` pins the
    stage-1 walk (0 = serial, >=1 = speculative window) at submission time:
    a pool worker's inherited ``REPRO_LFA_BATCH`` may be stale, and which
    walk runs changes the trajectory, so it must be task state, not
    worker-environment state.
    """

    accelerator: AcceleratorConfig
    config: SoMaConfig
    graph: WorkloadGraph
    budget: int
    seed: int
    lfa_batch: int = 0


def _worker_stage(accelerator: AcceleratorConfig, graph: WorkloadGraph, config: SoMaConfig) -> LFAStage:
    """The per-process warm :class:`LFAStage` for one (accelerator, graph, config).

    The stage object — and with it the evaluator and the stage-1 cost memo —
    is cached per key, so the speculative budget chain of one pipelined
    schedule reuses one warm stage per process.
    """
    graph = canonical_graph(graph)
    key = (accelerator, graph.fingerprint(), config)
    stage = _STAGE1_STAGES.get(key)
    if stage is None:
        if len(_STAGE1_STAGES) >= _WORKER_CACHE_LIMIT:
            _STAGE1_STAGES.clear()
        stage = LFAStage(graph, ScheduleEvaluator(accelerator), config)
        _STAGE1_STAGES[key] = stage
    return stage


def run_stage1_task(task: Stage1Task) -> LFAStageOutcome:
    """Module-level (hence picklable) runner for :class:`Stage1Task`."""
    stage = _worker_stage(task.accelerator, task.graph, task.config)
    return stage.explore(
        task.budget, random.Random(task.seed), batch_size=task.lfa_batch
    )


@dataclass(frozen=True)
class SpeculationTask:
    """One worker's chunk of a speculative stage-1 move window.

    A task is a pure function of its fields — the moves' LFAs, the budget,
    the graph and the configuration fully determine the returned costs — so
    scoring it on any pool worker (or in-process) yields the same floats bit
    for bit; the deltas only let the worker's segment assembler reuse cached
    segments.  One task carries a whole chunk of the window so the graph
    pickles once per (worker, window) instead of once per candidate.
    """

    accelerator: AcceleratorConfig
    config: SoMaConfig
    graph: WorkloadGraph
    budget: int
    moves: tuple[LFAMove, ...]


def run_speculation_task(task: SpeculationTask) -> tuple[float, ...]:
    """Module-level (hence picklable) runner for :class:`SpeculationTask`."""
    stage = _worker_stage(task.accelerator, task.graph, task.config)
    return tuple(
        stage.cost(move.lfa, task.budget, delta=move.delta) for move in task.moves
    )
