"""LFA exploration stage (paper Sec. V-C1).

Starting from the no-fusion scheme (every layer its own FLG and LG, Tiling
Number from the core-array parallelism requirement), the stage anneals over
the four LFA operators — change computing order, x/÷2 a Tiling Number,
add/delete an FLC, add/delete a DRAM Cut — while the DLSA is fixed to the
classical double-buffer strategy.  The stage receives a buffer budget from
the Buffer Allocator; schemes exceeding it are penalised.

Every operator returns an :class:`LFAMove`: the new LFA plus an
:class:`~repro.notation.lfa.LFADelta` naming the plan segments (LGs) the
move touched.  The stage feeds the delta into the segment assembler
(:mod:`repro.notation.segments`) so only touched segments are re-parsed per
candidate; unchanged ones are reused from the parent plan or the segment
LRU.  Plans are bit-identical to the reference parser's, so fixed-seed
searches are unchanged.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.core.caching import LRUCache, cache_size
from repro.core.config import SoMaConfig
from repro.core.evaluator import ScheduleEvaluator
from repro.core.result import EvaluationResult, StageResult
from repro.core.sa import SimulatedAnnealing
from repro.errors import EncodingError
from repro.notation.encoding import ScheduleEncoding
from repro.notation.lfa import LFA, LFADelta
from repro.hardware.accelerator import AcceleratorConfig
from repro.notation.segments import build_plan_cached
from repro.tiling.heuristics import kc_parallelism_tiling_number
from repro.workloads.graph import WorkloadGraph

_MAX_TILING_NUMBER = 4096


@dataclass(frozen=True)
class LFAMove:
    """One operator move: the resulting LFA plus the segments it touched."""

    lfa: LFA
    delta: LFADelta


# --------------------------------------------------------------------- helpers
def initial_lfa(graph: WorkloadGraph, kc_parallel_lanes: int) -> LFA:
    """No-fusion initial solution with parallelism-driven Tiling Numbers."""
    order = tuple(graph.topological_order())
    n = len(order)
    cuts = frozenset(range(1, n))
    tilings = {}
    for start, name in enumerate(order):
        tilings[start] = kc_parallelism_tiling_number(graph, [name], kc_parallel_lanes)
    return LFA(
        computing_order=order,
        flc_set=cuts,
        dram_cut_set=cuts,
        tiling_numbers=tilings,
    )


def _valid_positions(graph: WorkloadGraph, order: list[str], layer: str) -> list[int]:
    """Positions where ``layer`` may be re-inserted without breaking deps."""
    remaining = [name for name in order if name != layer]
    position = {name: i for i, name in enumerate(remaining)}
    lower = 0
    upper = len(remaining)
    for producer in graph.predecessors(layer):
        lower = max(lower, position[producer] + 1)
    for consumer in graph.successors(layer):
        upper = min(upper, position[consumer])
    return list(range(lower, upper + 1))


# ------------------------------------------------------------------- operators
def op_change_computing_order(lfa: LFA, graph: WorkloadGraph, rng: random.Random) -> LFAMove | None:
    """Move one layer to another dependency-valid position."""
    order = list(lfa.computing_order)
    layer = rng.choice(order)
    positions = _valid_positions(graph, order, layer)
    # Once ``layer`` is removed, re-inserting it at its old index recreates
    # the original order, so that position is the one no-op to exclude.
    current = order.index(layer)
    candidates = [p for p in positions if p != current]
    if not candidates:
        return None
    remaining = [name for name in order if name != layer]
    new_position = rng.choice(candidates)
    remaining.insert(new_position, layer)
    # Only layers between the source and destination positions shift; LGs
    # entirely outside that index range keep their members and cuts.
    low = min(current, new_position)
    high = max(current, new_position)
    segment_map = tuple(
        lg_index if end <= low or start > high else -1
        for lg_index, (start, end) in enumerate(lfa.lg_ranges())
    )
    return LFAMove(
        lfa=LFA(
            computing_order=tuple(remaining),
            flc_set=lfa.flc_set,
            dram_cut_set=lfa.dram_cut_set,
            tiling_numbers=dict(lfa.tiling_numbers),
        ),
        delta=LFADelta(operator="change_computing_order", parent=lfa, segment_map=segment_map),
    )


def op_change_tiling_number(lfa: LFA, graph: WorkloadGraph, rng: random.Random) -> LFAMove | None:
    """Multiply or divide one FLG's Tiling Number by two."""
    start = rng.choice(sorted(lfa.tiling_numbers))
    tilings = dict(lfa.tiling_numbers)
    current = tilings[start]
    if rng.random() < 0.5:
        new_value = min(_MAX_TILING_NUMBER, current * 2)
    else:
        new_value = max(1, current // 2)
    if new_value == current:
        return None
    tilings[start] = new_value
    touched = lfa.lg_index_of_position(start)
    return LFAMove(
        lfa=LFA(
            computing_order=lfa.computing_order,
            flc_set=lfa.flc_set,
            dram_cut_set=lfa.dram_cut_set,
            tiling_numbers=tilings,
        ),
        delta=LFADelta(
            operator="change_tiling_number",
            parent=lfa,
            segment_map=lfa.identity_segment_map(changed=(touched,)),
        ),
    )


def op_add_flc(lfa: LFA, graph: WorkloadGraph, rng: random.Random) -> LFAMove | None:
    """Add an FLC, splitting one FLG into two with the same Tiling Number."""
    n = len(lfa.computing_order)
    candidates = [p for p in range(1, n) if p not in lfa.flc_set]
    if not candidates:
        return None
    position = rng.choice(candidates)
    flg_index = lfa.flg_of_position(position)
    start, _ = lfa.flg_ranges()[flg_index]
    tilings = dict(lfa.tiling_numbers)
    tilings[position] = tilings[start]
    # The new cut is no DRAM Cut, so it falls strictly inside one LG.
    touched = lfa.lg_index_of_position(position)
    return LFAMove(
        lfa=LFA(
            computing_order=lfa.computing_order,
            flc_set=lfa.flc_set | {position},
            dram_cut_set=lfa.dram_cut_set,
            tiling_numbers=tilings,
        ),
        delta=LFADelta(
            operator="add_flc",
            parent=lfa,
            segment_map=lfa.identity_segment_map(changed=(touched,)),
        ),
    )


def op_delete_flc(lfa: LFA, graph: WorkloadGraph, rng: random.Random) -> LFAMove | None:
    """Remove an FLC (not a DRAM Cut), merging two FLGs.

    The merged FLG inherits one of the two Tiling Numbers with probability
    proportional to the layer count of each side (Sec. V-C1).
    """
    candidates = sorted(lfa.flc_set - lfa.dram_cut_set)
    if not candidates:
        return None
    position = rng.choice(candidates)
    ranges = lfa.flg_ranges()
    flg_index = next(i for i, (start, _end) in enumerate(ranges) if start == position)
    left_start, left_end = ranges[flg_index - 1]
    right_start, right_end = ranges[flg_index]
    left_count = left_end - left_start
    right_count = right_end - right_start
    tilings = dict(lfa.tiling_numbers)
    left_tiling = tilings[left_start]
    right_tiling = tilings.pop(right_start)
    keep_left = rng.random() < left_count / (left_count + right_count)
    tilings[left_start] = left_tiling if keep_left else right_tiling
    # A deletable FLC is never a DRAM Cut, so both merged FLGs share one LG.
    touched = lfa.lg_index_of_position(position)
    return LFAMove(
        lfa=LFA(
            computing_order=lfa.computing_order,
            flc_set=lfa.flc_set - {position},
            dram_cut_set=lfa.dram_cut_set,
            tiling_numbers=tilings,
        ),
        delta=LFADelta(
            operator="delete_flc",
            parent=lfa,
            segment_map=lfa.identity_segment_map(changed=(touched,)),
        ),
    )


def op_add_dram_cut(lfa: LFA, graph: WorkloadGraph, rng: random.Random) -> LFAMove | None:
    """Promote an existing FLC to a DRAM Cut."""
    candidates = sorted(lfa.flc_set - lfa.dram_cut_set)
    if not candidates:
        return None
    position = rng.choice(candidates)
    # LG ``split`` becomes two new segments; later LGs keep their content but
    # shift up by one index.
    split = lfa.lg_index_of_position(position)
    num_lgs = len(lfa.lg_ranges())
    segment_map = tuple(
        i if i < split else (-1 if i <= split + 1 else i - 1)
        for i in range(num_lgs + 1)
    )
    return LFAMove(
        lfa=LFA(
            computing_order=lfa.computing_order,
            flc_set=lfa.flc_set,
            dram_cut_set=lfa.dram_cut_set | {position},
            tiling_numbers=dict(lfa.tiling_numbers),
        ),
        delta=LFADelta(operator="add_dram_cut", parent=lfa, segment_map=segment_map),
    )


def op_delete_dram_cut(lfa: LFA, graph: WorkloadGraph, rng: random.Random) -> LFAMove | None:
    """Demote a DRAM Cut to a plain FLC (fusing the two LGs)."""
    candidates = sorted(lfa.dram_cut_set)
    if not candidates:
        return None
    position = rng.choice(candidates)
    # The LG starting at ``position`` merges into its predecessor; later LGs
    # keep their content but shift down by one index.
    right = lfa.lg_index_of_position(position)
    num_lgs = len(lfa.lg_ranges())
    segment_map = tuple(
        i if i < right - 1 else (-1 if i == right - 1 else i + 1)
        for i in range(num_lgs - 1)
    )
    return LFAMove(
        lfa=LFA(
            computing_order=lfa.computing_order,
            flc_set=lfa.flc_set,
            dram_cut_set=lfa.dram_cut_set - {position},
            tiling_numbers=dict(lfa.tiling_numbers),
        ),
        delta=LFADelta(operator="delete_dram_cut", parent=lfa, segment_map=segment_map),
    )


LFA_OPERATORS = (
    op_change_computing_order,
    op_change_tiling_number,
    op_add_flc,
    op_delete_flc,
    op_add_dram_cut,
    op_delete_dram_cut,
)

# Relative selection weights for the operators above.  Fusion decisions (DRAM
# cuts) and Tiling Numbers move the cost the most, so they are proposed more
# often; the weights keep every operator reachable.
LFA_OPERATOR_WEIGHTS = (1.0, 2.0, 1.0, 1.5, 1.0, 2.5)


# ----------------------------------------------------------------------- stage
@dataclass(frozen=True)
class LFAStageOutcome:
    """Best LFA scheme of one stage-1 run plus its double-buffer evaluation."""

    stage_result: StageResult
    buffer_peak_bytes: int


class LFAStage:
    """Stage 1 of the SoMa search."""

    def __init__(
        self,
        graph: WorkloadGraph,
        evaluator: ScheduleEvaluator,
        config: SoMaConfig,
    ) -> None:
        self._graph = graph
        self._evaluator = evaluator
        self._config = config
        self._annealer = SimulatedAnnealing(config.lfa_sa)
        # SA cost memo, keyed by (LFA fingerprint, budget): the annealer
        # revisits states whenever a move is rejected and re-proposed, and
        # the allocator restarts from the same initial scheme every round.
        self._cost_memo = LRUCache(cache_size("STAGE1", 4096))
        # The delta of the most recent _neighbor proposal, consumed by the
        # cost function for that exact candidate object: the SA engine only
        # sees LFA states, so the segment hint travels alongside.
        self._pending: tuple[LFA, LFADelta] | None = None

    # ------------------------------------------------------------------ public
    def explore(self, buffer_budget_bytes: int, rng: random.Random) -> LFAStageOutcome:
        """Run stage 1 under the given buffer budget."""
        start_lfa = initial_lfa(self._graph, self._evaluator.accelerator.core_array.kc_parallel_lanes)
        outcome = self._annealer.run(
            initial_state=start_lfa,
            cost_fn=lambda lfa: self.cost(lfa, buffer_budget_bytes),
            neighbor_fn=self._neighbor,
            rng=rng,
            units=len(self._graph),
        )
        evaluation = self.evaluate(outcome.best_state, buffer_budget_bytes)
        stage_result = StageResult(
            encoding=ScheduleEncoding(lfa=outcome.best_state, dlsa=None),
            evaluation=evaluation,
            cost=outcome.best_cost,
            iterations=outcome.iterations,
            accepted_moves=outcome.accepted_moves,
        )
        return LFAStageOutcome(
            stage_result=stage_result,
            buffer_peak_bytes=evaluation.max_buffer_bytes,
        )

    def evaluate(
        self, lfa: LFA, buffer_budget_bytes: int, delta: LFADelta | None = None
    ) -> EvaluationResult:
        """Evaluate one LFA with the double-buffer DLSA.

        ``delta`` (when the LFA came from an operator move) lets the segment
        assembler reuse the parent plan's untouched segments.
        """
        plan = build_plan_cached(self._graph, lfa, delta)
        if not plan.feasible:
            return EvaluationResult(feasible=False, reason=plan.infeasibility_reason)
        context = self._evaluator.context(plan)
        return context.evaluate(context.double_buffer, buffer_budget_bytes)

    def cost(self, lfa: LFA, buffer_budget_bytes: int) -> float:
        """Stage-1 cost: the objective, with a soft penalty for buffer overflow."""
        memo_key = (lfa.fingerprint(), buffer_budget_bytes)
        cached = self._cost_memo.get(memo_key)
        if cached is not None:
            return cached
        delta = None
        if self._pending is not None and self._pending[0] is lfa:
            delta = self._pending[1]
            self._pending = None
        try:
            result = self.evaluate(lfa, buffer_budget_bytes, delta)
        except EncodingError:
            return math.inf
        cost = self._penalised_cost(result, buffer_budget_bytes)
        self._cost_memo.put(memo_key, cost)
        return cost

    # ---------------------------------------------------------------- internal
    def _penalised_cost(self, result: EvaluationResult, budget: int) -> float:
        if not math.isfinite(result.latency_s) or result.latency_s <= 0:
            return math.inf
        cost = self._config.objective(result.energy_j, result.latency_s)
        if result.max_buffer_bytes > budget:
            excess = (result.max_buffer_bytes - budget) / budget
            cost *= 1.0 + self._config.buffer_overflow_penalty * excess
        return cost

    def _neighbor(self, lfa: LFA, rng: random.Random) -> LFA | None:
        operators = list(LFA_OPERATORS)
        weights = list(LFA_OPERATOR_WEIGHTS)
        while operators:
            index = rng.choices(range(len(operators)), weights=weights, k=1)[0]
            operator = operators.pop(index)
            weights.pop(index)
            move = operator(lfa, self._graph, rng)
            if move is not None:
                self._pending = (move.lfa, move.delta)
                return move.lfa
        return None


# ------------------------------------------------------- pipelined stage tasks
_CANONICAL_GRAPHS: dict[str, WorkloadGraph] = {}
_STAGE1_STAGES: dict = {}
_WORKER_CACHE_LIMIT = 8


def canonical_graph(graph: WorkloadGraph) -> WorkloadGraph:
    """One graph object per fingerprint within this process.

    Pipelined stage tasks arrive in pool workers as freshly unpickled graph
    copies, but the per-graph search caches (parses, segments, fragments,
    tilings) key by object identity.  Routing every copy of a graph to one
    canonical in-process instance is what keeps a warm worker warm across
    the stage handoffs of a pipelined schedule.
    """
    key = graph.fingerprint()
    held = _CANONICAL_GRAPHS.get(key)
    if held is not None:
        return held
    if len(_CANONICAL_GRAPHS) >= _WORKER_CACHE_LIMIT:
        _CANONICAL_GRAPHS.clear()
    _CANONICAL_GRAPHS[key] = graph
    return graph


@dataclass(frozen=True)
class Stage1Task:
    """One pipelined stage-1 exploration: picklable and explicitly seeded.

    A task is a pure function of its fields — graph, configuration, buffer
    budget and seed — so running it in-process or on any pool worker yields
    the same :class:`LFAStageOutcome` bit for bit.
    """

    accelerator: AcceleratorConfig
    config: SoMaConfig
    graph: WorkloadGraph
    budget: int
    seed: int


def run_stage1_task(task: Stage1Task) -> LFAStageOutcome:
    """Module-level (hence picklable) runner for :class:`Stage1Task`.

    The stage object — and with it the evaluator and the stage-1 cost memo —
    is cached per (accelerator, graph, config), so the speculative budget
    chain of one pipelined schedule reuses one warm stage per process.
    """
    graph = canonical_graph(task.graph)
    key = (task.accelerator, graph.fingerprint(), task.config)
    stage = _STAGE1_STAGES.get(key)
    if stage is None:
        if len(_STAGE1_STAGES) >= _WORKER_CACHE_LIMIT:
            _STAGE1_STAGES.clear()
        stage = LFAStage(graph, ScheduleEvaluator(task.accelerator), task.config)
        _STAGE1_STAGES[key] = stage
    return stage.explore(task.budget, random.Random(task.seed))
