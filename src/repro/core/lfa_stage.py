"""LFA exploration stage (paper Sec. V-C1).

Starting from the no-fusion scheme (every layer its own FLG and LG, Tiling
Number from the core-array parallelism requirement), the stage anneals over
the four LFA operators — change computing order, x/÷2 a Tiling Number,
add/delete an FLC, add/delete a DRAM Cut — while the DLSA is fixed to the
classical double-buffer strategy.  The stage receives a buffer budget from
the Buffer Allocator; schemes exceeding it are penalised.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.core.caching import LRUCache, cache_size
from repro.core.config import SoMaConfig
from repro.core.evaluator import ScheduleEvaluator
from repro.core.result import EvaluationResult, StageResult
from repro.core.sa import SimulatedAnnealing
from repro.errors import EncodingError
from repro.notation.encoding import ScheduleEncoding
from repro.notation.lfa import LFA
from repro.notation.parser import parse_lfa_cached
from repro.tiling.heuristics import kc_parallelism_tiling_number
from repro.workloads.graph import WorkloadGraph

_MAX_TILING_NUMBER = 4096


# --------------------------------------------------------------------- helpers
def initial_lfa(graph: WorkloadGraph, kc_parallel_lanes: int) -> LFA:
    """No-fusion initial solution with parallelism-driven Tiling Numbers."""
    order = tuple(graph.topological_order())
    n = len(order)
    cuts = frozenset(range(1, n))
    tilings = {}
    for start, name in enumerate(order):
        tilings[start] = kc_parallelism_tiling_number(graph, [name], kc_parallel_lanes)
    return LFA(
        computing_order=order,
        flc_set=cuts,
        dram_cut_set=cuts,
        tiling_numbers=tilings,
    )


def _valid_positions(graph: WorkloadGraph, order: list[str], layer: str) -> list[int]:
    """Positions where ``layer`` may be re-inserted without breaking deps."""
    remaining = [name for name in order if name != layer]
    position = {name: i for i, name in enumerate(remaining)}
    lower = 0
    upper = len(remaining)
    for producer in graph.predecessors(layer):
        lower = max(lower, position[producer] + 1)
    for consumer in graph.successors(layer):
        upper = min(upper, position[consumer])
    return list(range(lower, upper + 1))


# ------------------------------------------------------------------- operators
def op_change_computing_order(lfa: LFA, graph: WorkloadGraph, rng: random.Random) -> LFA | None:
    """Move one layer to another dependency-valid position."""
    order = list(lfa.computing_order)
    layer = rng.choice(order)
    positions = _valid_positions(graph, order, layer)
    # Once ``layer`` is removed, re-inserting it at its old index recreates
    # the original order, so that position is the one no-op to exclude.
    current = order.index(layer)
    candidates = [p for p in positions if p != current]
    if not candidates:
        return None
    remaining = [name for name in order if name != layer]
    new_position = rng.choice(candidates)
    remaining.insert(new_position, layer)
    return LFA(
        computing_order=tuple(remaining),
        flc_set=lfa.flc_set,
        dram_cut_set=lfa.dram_cut_set,
        tiling_numbers=dict(lfa.tiling_numbers),
    )


def op_change_tiling_number(lfa: LFA, graph: WorkloadGraph, rng: random.Random) -> LFA | None:
    """Multiply or divide one FLG's Tiling Number by two."""
    start = rng.choice(sorted(lfa.tiling_numbers))
    tilings = dict(lfa.tiling_numbers)
    current = tilings[start]
    if rng.random() < 0.5:
        new_value = min(_MAX_TILING_NUMBER, current * 2)
    else:
        new_value = max(1, current // 2)
    if new_value == current:
        return None
    tilings[start] = new_value
    return LFA(
        computing_order=lfa.computing_order,
        flc_set=lfa.flc_set,
        dram_cut_set=lfa.dram_cut_set,
        tiling_numbers=tilings,
    )


def op_add_flc(lfa: LFA, graph: WorkloadGraph, rng: random.Random) -> LFA | None:
    """Add an FLC, splitting one FLG into two with the same Tiling Number."""
    n = len(lfa.computing_order)
    candidates = [p for p in range(1, n) if p not in lfa.flc_set]
    if not candidates:
        return None
    position = rng.choice(candidates)
    flg_index = lfa.flg_of_position(position)
    start, _ = lfa.flg_ranges()[flg_index]
    tilings = dict(lfa.tiling_numbers)
    tilings[position] = tilings[start]
    return LFA(
        computing_order=lfa.computing_order,
        flc_set=lfa.flc_set | {position},
        dram_cut_set=lfa.dram_cut_set,
        tiling_numbers=tilings,
    )


def op_delete_flc(lfa: LFA, graph: WorkloadGraph, rng: random.Random) -> LFA | None:
    """Remove an FLC (not a DRAM Cut), merging two FLGs.

    The merged FLG inherits one of the two Tiling Numbers with probability
    proportional to the layer count of each side (Sec. V-C1).
    """
    candidates = sorted(lfa.flc_set - lfa.dram_cut_set)
    if not candidates:
        return None
    position = rng.choice(candidates)
    ranges = lfa.flg_ranges()
    flg_index = next(i for i, (start, _end) in enumerate(ranges) if start == position)
    left_start, left_end = ranges[flg_index - 1]
    right_start, right_end = ranges[flg_index]
    left_count = left_end - left_start
    right_count = right_end - right_start
    tilings = dict(lfa.tiling_numbers)
    left_tiling = tilings[left_start]
    right_tiling = tilings.pop(right_start)
    keep_left = rng.random() < left_count / (left_count + right_count)
    tilings[left_start] = left_tiling if keep_left else right_tiling
    return LFA(
        computing_order=lfa.computing_order,
        flc_set=lfa.flc_set - {position},
        dram_cut_set=lfa.dram_cut_set,
        tiling_numbers=tilings,
    )


def op_add_dram_cut(lfa: LFA, graph: WorkloadGraph, rng: random.Random) -> LFA | None:
    """Promote an existing FLC to a DRAM Cut."""
    candidates = sorted(lfa.flc_set - lfa.dram_cut_set)
    if not candidates:
        return None
    position = rng.choice(candidates)
    return LFA(
        computing_order=lfa.computing_order,
        flc_set=lfa.flc_set,
        dram_cut_set=lfa.dram_cut_set | {position},
        tiling_numbers=dict(lfa.tiling_numbers),
    )


def op_delete_dram_cut(lfa: LFA, graph: WorkloadGraph, rng: random.Random) -> LFA | None:
    """Demote a DRAM Cut to a plain FLC (fusing the two LGs)."""
    candidates = sorted(lfa.dram_cut_set)
    if not candidates:
        return None
    position = rng.choice(candidates)
    return LFA(
        computing_order=lfa.computing_order,
        flc_set=lfa.flc_set,
        dram_cut_set=lfa.dram_cut_set - {position},
        tiling_numbers=dict(lfa.tiling_numbers),
    )


LFA_OPERATORS = (
    op_change_computing_order,
    op_change_tiling_number,
    op_add_flc,
    op_delete_flc,
    op_add_dram_cut,
    op_delete_dram_cut,
)

# Relative selection weights for the operators above.  Fusion decisions (DRAM
# cuts) and Tiling Numbers move the cost the most, so they are proposed more
# often; the weights keep every operator reachable.
LFA_OPERATOR_WEIGHTS = (1.0, 2.0, 1.0, 1.5, 1.0, 2.5)


# ----------------------------------------------------------------------- stage
@dataclass(frozen=True)
class LFAStageOutcome:
    """Best LFA scheme of one stage-1 run plus its double-buffer evaluation."""

    stage_result: StageResult
    buffer_peak_bytes: int


class LFAStage:
    """Stage 1 of the SoMa search."""

    def __init__(
        self,
        graph: WorkloadGraph,
        evaluator: ScheduleEvaluator,
        config: SoMaConfig,
    ) -> None:
        self._graph = graph
        self._evaluator = evaluator
        self._config = config
        self._annealer = SimulatedAnnealing(config.lfa_sa)
        # SA cost memo, keyed by (LFA fingerprint, budget): the annealer
        # revisits states whenever a move is rejected and re-proposed, and
        # the allocator restarts from the same initial scheme every round.
        self._cost_memo = LRUCache(cache_size("STAGE1", 4096))

    # ------------------------------------------------------------------ public
    def explore(self, buffer_budget_bytes: int, rng: random.Random) -> LFAStageOutcome:
        """Run stage 1 under the given buffer budget."""
        start_lfa = initial_lfa(self._graph, self._evaluator.accelerator.core_array.kc_parallel_lanes)
        outcome = self._annealer.run(
            initial_state=start_lfa,
            cost_fn=lambda lfa: self.cost(lfa, buffer_budget_bytes),
            neighbor_fn=self._neighbor,
            rng=rng,
            units=len(self._graph),
        )
        evaluation = self.evaluate(outcome.best_state, buffer_budget_bytes)
        stage_result = StageResult(
            encoding=ScheduleEncoding(lfa=outcome.best_state, dlsa=None),
            evaluation=evaluation,
            cost=outcome.best_cost,
            iterations=outcome.iterations,
            accepted_moves=outcome.accepted_moves,
        )
        return LFAStageOutcome(
            stage_result=stage_result,
            buffer_peak_bytes=evaluation.max_buffer_bytes,
        )

    def evaluate(self, lfa: LFA, buffer_budget_bytes: int) -> EvaluationResult:
        """Evaluate one LFA with the double-buffer DLSA."""
        plan = parse_lfa_cached(self._graph, lfa)
        if not plan.feasible:
            return EvaluationResult(feasible=False, reason=plan.infeasibility_reason)
        context = self._evaluator.context(plan)
        return context.evaluate(context.double_buffer, buffer_budget_bytes)

    def cost(self, lfa: LFA, buffer_budget_bytes: int) -> float:
        """Stage-1 cost: the objective, with a soft penalty for buffer overflow."""
        memo_key = (lfa.fingerprint(), buffer_budget_bytes)
        cached = self._cost_memo.get(memo_key)
        if cached is not None:
            return cached
        try:
            result = self.evaluate(lfa, buffer_budget_bytes)
        except EncodingError:
            return math.inf
        cost = self._penalised_cost(result, buffer_budget_bytes)
        self._cost_memo.put(memo_key, cost)
        return cost

    # ---------------------------------------------------------------- internal
    def _penalised_cost(self, result: EvaluationResult, budget: int) -> float:
        if not math.isfinite(result.latency_s) or result.latency_s <= 0:
            return math.inf
        cost = self._config.objective(result.energy_j, result.latency_s)
        if result.max_buffer_bytes > budget:
            excess = (result.max_buffer_bytes - budget) / budget
            cost *= 1.0 + self._config.buffer_overflow_penalty * excess
        return cost

    def _neighbor(self, lfa: LFA, rng: random.Random) -> LFA | None:
        operators = list(LFA_OPERATORS)
        weights = list(LFA_OPERATOR_WEIGHTS)
        while operators:
            index = rng.choices(range(len(operators)), weights=weights, k=1)[0]
            operator = operators.pop(index)
            weights.pop(index)
            candidate = operator(lfa, self._graph, rng)
            if candidate is not None:
                return candidate
        return None
