"""Accurate schedule evaluator (paper Sec. V-D).

The evaluator follows the paper's local-to-global approach: every computing
tile is costed by the Core Array mapper and every DRAM tensor by the DRAM
bandwidth model, then a co-operative simulation of the two in-order engines
(the DRAM channel walking the DRAM Tensor Order, the compute array walking
the tile sequence) derives the overall latency under the start conditions of
Sec. V-D.  Buffer occupancy is accounted per tile from on-chip fmap lifetimes
plus DRAM-tensor Living Durations and checked against the budget.

Since the engine refactor, :meth:`ScheduleEvaluator.evaluate` delegates to a
per-plan :class:`~repro.core.eval_context.PlanEvaluationContext` (cached in a
fingerprint-keyed LRU) that precomputes all DLSA-independent state and
patches the buffer-delta array incrementally across calls.  The original
full-recompute algorithm is kept verbatim as :meth:`evaluate_reference`; the
equivalence of the two paths is asserted by ``tests/test_eval_context.py``.
"""

from __future__ import annotations

import math

from repro.core.caching import LRUCache, cache_size
from repro.core.core_array import CoreArrayMapper
from repro.core.eval_context import PlanEvaluationContext
from repro.core.result import EvaluationResult, TileRecord, TransferRecord
from repro.hardware.accelerator import AcceleratorConfig
from repro.notation.dlsa import DLSA
from repro.notation.plan import ComputePlan


class ScheduleEvaluator:
    """Evaluates parsed schemes on one accelerator configuration."""

    def __init__(self, accelerator: AcceleratorConfig, mapper: CoreArrayMapper | None = None) -> None:
        self._accelerator = accelerator
        self._mapper = mapper if mapper is not None else CoreArrayMapper(accelerator)
        # Per-plan evaluation contexts and DLSA-independent static costs,
        # keyed by the plan's stable fingerprint (the seed code keyed these by
        # ``id(plan)``, which only worked while the plan object was pinned).
        self._contexts = LRUCache(cache_size("PLAN", 16))
        self._static = LRUCache(cache_size("STATIC", 32))
        # Per-segment static costs (tile/tensor seconds, per-tile energies),
        # keyed by segment content: assembled plans share untouched segments,
        # so context construction concatenates cached arrays instead of
        # walking every layer through the mapper again.
        self._segment_static = LRUCache(cache_size("SEGMENT", 4096))

    @property
    def accelerator(self) -> AcceleratorConfig:
        """The accelerator this evaluator models."""
        return self._accelerator

    @property
    def mapper(self) -> CoreArrayMapper:
        """The shared (memoising) intra-tile mapper."""
        return self._mapper

    # ------------------------------------------------------------------ public
    def context(self, plan: ComputePlan) -> PlanEvaluationContext:
        """The (cached) evaluation context for one feasible plan."""
        return self._contexts.get_or_compute(
            plan.fingerprint(),
            lambda: PlanEvaluationContext(
                self._accelerator,
                self._mapper,
                plan,
                segment_static_cache=self._segment_static,
            ),
        )

    def cache_stats(self) -> dict[str, dict]:
        """Statistics of every evaluator-level LRU (see ``--cache-stats``).

        The ``result`` entry aggregates the per-context result memos of the
        contexts currently *resident* in the plan-context LRU; memo activity
        of contexts already evicted (a long stage-1 run builds far more than
        ``REPRO_PLAN_CACHE`` contexts) is not retained, so treat that row as
        a recent-window sample rather than a whole-search total.
        """
        fields = (
            "hits",
            "misses",
            "size",
            "maxsize",
            "evaluations",
            "batch_calls",
            "batch_moves",
            "batch_deadlocks",
            "batch_pruned",
            "batch_sims",
        )
        result = dict.fromkeys(fields, 0)
        for context in self._contexts.values():
            stats = context.cache_stats()
            for field in fields:
                result[field] += stats[field]
        total = result["hits"] + result["misses"]
        result["hit_rate"] = result["hits"] / total if total else 0.0
        return {
            "plan": self._contexts.stats(),
            "plan_static": self._static.stats(),
            "segment_static": self._segment_static.stats(),
            "result": result,
        }

    def evaluate(
        self,
        plan: ComputePlan,
        dlsa: DLSA,
        buffer_budget_bytes: int | None = None,
        include_trace: bool = False,
    ) -> EvaluationResult:
        """Evaluate one (plan, DLSA) pair.

        ``buffer_budget_bytes`` defaults to the full GBUF capacity; schemes
        whose peak occupancy exceeds it are reported as infeasible (the
        search stages decide how to penalise that).
        """
        if not plan.feasible:
            return EvaluationResult(feasible=False, reason=plan.infeasibility_reason)
        return self.context(plan).evaluate(dlsa, buffer_budget_bytes, include_trace)

    def evaluate_reference(
        self,
        plan: ComputePlan,
        dlsa: DLSA,
        buffer_budget_bytes: int | None = None,
        include_trace: bool = False,
    ) -> EvaluationResult:
        """The seed evaluator: full recompute of every DLSA-dependent quantity.

        This is the reference implementation the incremental engine is tested
        against, and the baseline the throughput benchmark measures; search
        code should call :meth:`evaluate` instead.
        """
        if not plan.feasible:
            return EvaluationResult(feasible=False, reason=plan.infeasibility_reason)
        if buffer_budget_bytes is None:
            buffer_budget_bytes = self._accelerator.gbuf_bytes

        tile_seconds, core_energy, tensor_seconds, dram_energy = self._static_costs(plan)

        max_buffer, avg_buffer = self._buffer_occupancy(plan, dlsa, tile_seconds)

        timing = self._simulate(plan, dlsa, tile_seconds, tensor_seconds)
        if timing is None:
            return EvaluationResult(
                feasible=False,
                reason="deadlock between the DRAM Tensor Order and the compute sequence",
                max_buffer_bytes=max_buffer,
                avg_buffer_bytes=avg_buffer,
                num_tiles=plan.num_tiles,
                num_dram_tensors=plan.num_dram_tensors,
                num_lgs=plan.num_lgs,
                num_flgs=plan.num_flgs,
            )
        tile_finish, transfer_times, latency = timing

        feasible = max_buffer <= buffer_budget_bytes
        reason = "" if feasible else (
            f"peak buffer {max_buffer} bytes exceeds budget {buffer_budget_bytes} bytes"
        )

        tile_records: tuple[TileRecord, ...] = ()
        transfer_records: tuple[TransferRecord, ...] = ()
        if include_trace:
            tile_records = tuple(
                TileRecord(index=i, start_s=finish - tile_seconds[i], finish_s=finish)
                for i, finish in enumerate(tile_finish)
            )
            transfer_records = tuple(
                TransferRecord(tid=tid, start_s=start, finish_s=finish)
                for tid, (start, finish) in sorted(transfer_times.items())
            )

        return EvaluationResult(
            feasible=feasible,
            reason=reason,
            latency_s=latency,
            energy_j=core_energy + dram_energy,
            core_energy_j=core_energy,
            dram_energy_j=dram_energy,
            compute_time_sum_s=sum(tile_seconds),
            dram_time_sum_s=sum(tensor_seconds),
            total_ops=plan.total_ops,
            total_dram_bytes=plan.total_dram_bytes,
            max_buffer_bytes=max_buffer,
            avg_buffer_bytes=avg_buffer,
            num_tiles=plan.num_tiles,
            num_dram_tensors=plan.num_dram_tensors,
            num_lgs=plan.num_lgs,
            num_flgs=plan.num_flgs,
            tile_records=tile_records,
            transfer_records=transfer_records,
        )

    # ---------------------------------------------------------------- internal
    def _static_costs(self, plan: ComputePlan) -> tuple[list[float], float, list[float], float]:
        """DLSA-independent costs of a plan, cached by plan fingerprint."""
        key = plan.fingerprint()
        cached = self._static.get(key)
        if cached is not None:
            return cached

        layer_costs = {
            name: self._mapper.evaluate_tile(plan.graph.layer(name), tiling)
            for name, tiling in plan.layer_tilings.items()
        }
        tile_seconds = [layer_costs[tile.layer].seconds for tile in plan.tiles]
        core_energy = sum(layer_costs[tile.layer].energy_j for tile in plan.tiles)

        memory = self._accelerator.memory
        tensor_seconds = [memory.dram_transfer_seconds(t.num_bytes) for t in plan.dram_tensors]
        dram_energy = self._accelerator.energy.dram_energy_j(plan.total_dram_bytes)

        entry = (tile_seconds, core_energy, tensor_seconds, dram_energy)
        self._static.put(key, entry)
        return entry

    def _buffer_occupancy(
        self, plan: ComputePlan, dlsa: DLSA, tile_seconds: list[float]
    ) -> tuple[int, float]:
        """Peak and (compute-time weighted) average buffer usage in bytes."""
        num_tiles = plan.num_tiles
        if num_tiles == 0:
            return 0, 0.0
        deltas = [0] * (num_tiles + 1)

        def add_interval(start: int, end: int, num_bytes: int) -> None:
            start = max(0, min(start, num_tiles - 1))
            end = max(start, min(end, num_tiles - 1))
            deltas[start] += num_bytes
            deltas[end + 1] -= num_bytes

        for interval in plan.onchip_intervals:
            add_interval(interval.start_tile, interval.end_tile, interval.num_bytes)
        for tensor in plan.dram_tensors:
            start, end = dlsa.living[tensor.tid]
            if tensor.is_load:
                add_interval(start, tensor.last_use, tensor.num_bytes)
            else:
                add_interval(tensor.produce_tile, end - 1, tensor.num_bytes)

        usage = 0
        max_usage = 0
        weighted = 0.0
        total_seconds = 0.0
        for index in range(num_tiles):
            usage += deltas[index]
            max_usage = max(max_usage, usage)
            weighted += usage * tile_seconds[index]
            total_seconds += tile_seconds[index]
        avg_usage = weighted / total_seconds if total_seconds > 0 else 0.0
        return max_usage, avg_usage

    def _simulate(
        self,
        plan: ComputePlan,
        dlsa: DLSA,
        tile_seconds: list[float],
        tensor_seconds: list[float],
    ) -> tuple[list[float], dict[int, tuple[float, float]], float] | None:
        """Co-operative simulation of the DRAM channel and the compute array.

        Returns ``None`` on deadlock (some tensor waits on a tile that waits
        on a tensor scheduled later in the DRAM Tensor Order).
        """
        num_tiles = plan.num_tiles
        num_tensors = plan.num_dram_tensors
        tensors = plan.dram_tensors

        stores_of_layer: dict[str, list[int]] = {}
        store_deadline: dict[int, list[int]] = {}
        for tensor in tensors:
            if tensor.is_store:
                stores_of_layer.setdefault(tensor.layer, []).append(tensor.tid)
                end = dlsa.end(tensor.tid)
                if end < num_tiles:
                    store_deadline.setdefault(end, []).append(tensor.tid)

        tile_finish: list[float | None] = [None] * num_tiles
        load_finish: dict[int, float] = {}
        store_finish: dict[int, float] = {}
        transfer_times: dict[int, tuple[float, float]] = {}

        dram_order = dlsa.order
        dram_ptr = 0
        tile_ptr = 0
        dram_free = 0.0
        compute_free = 0.0

        while dram_ptr < num_tensors or tile_ptr < num_tiles:
            progressed = False

            while dram_ptr < num_tensors:
                tensor = tensors[dram_order[dram_ptr]]
                gate = 0.0
                ready = True
                if tensor.is_load:
                    start_tile = dlsa.start(tensor.tid)
                    if start_tile > 0:
                        finish = tile_finish[start_tile - 1]
                        if finish is None:
                            ready = False
                        else:
                            gate = finish
                    if ready and tensor.source_layer is not None:
                        for store_tid in stores_of_layer.get(tensor.source_layer, ()):
                            finish = store_finish.get(store_tid)
                            if finish is None:
                                ready = False
                                break
                            gate = max(gate, finish)
                else:
                    finish = tile_finish[tensor.produce_tile]
                    if finish is None:
                        ready = False
                    else:
                        gate = finish
                if not ready:
                    break
                start = max(dram_free, gate)
                finish_time = start + tensor_seconds[tensor.tid]
                dram_free = finish_time
                transfer_times[tensor.tid] = (start, finish_time)
                if tensor.is_load:
                    load_finish[tensor.tid] = finish_time
                else:
                    store_finish[tensor.tid] = finish_time
                dram_ptr += 1
                progressed = True

            while tile_ptr < num_tiles:
                gate = 0.0
                ready = True
                for tid in plan.tile_required_loads[tile_ptr]:
                    finish = load_finish.get(tid)
                    if finish is None:
                        ready = False
                        break
                    gate = max(gate, finish)
                if ready:
                    for tid in store_deadline.get(tile_ptr, ()):
                        finish = store_finish.get(tid)
                        if finish is None:
                            ready = False
                            break
                        gate = max(gate, finish)
                if not ready:
                    break
                start = max(compute_free, gate)
                finish_time = start + tile_seconds[tile_ptr]
                compute_free = finish_time
                tile_finish[tile_ptr] = finish_time
                tile_ptr += 1
                progressed = True

            if not progressed:
                return None

        latency = max(dram_free, compute_free)
        if not math.isfinite(latency):
            return None
        return [f if f is not None else 0.0 for f in tile_finish], transfer_times, latency
