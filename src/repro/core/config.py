"""Framework configuration: optimisation goal and search hyper-parameters.

The paper's optimisation objective is ``Energy^n x Delay^m`` with adjustable
exponents (Sec. V-A); all reported experiments use n = m = 1.  The SA
hyper-parameters follow Sec. V-C: stage 1 runs ``beta * num_layers``
iterations (beta = 100 in the paper) and stage 2 runs ``beta * num_tensors``
iterations (beta = 1000 in the paper).  Those paper-scale budgets are meant
for a multi-core C++ engine running for hours; the Python defaults here are
smaller so laptop-scale experiments finish quickly, and
:meth:`SoMaConfig.paper` restores the published values.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SAParams:
    """Simulated-annealing hyper-parameters for one exploration stage.

    ``iterations_per_unit`` is the beta of Sec. V-C: the number of iterations
    is ``beta * X`` where X is the number of layers (stage 1) or DRAM tensors
    (stage 2).  ``max_iterations`` caps the product so pathological cases
    cannot run away.
    """

    iterations_per_unit: float
    initial_temperature: float = 0.05
    cooling_alpha: float = 4.0
    max_iterations: int = 20000
    min_iterations: int = 16
    greedy_fraction: float = 0.15
    time_limit_s: float | None = None

    def __post_init__(self) -> None:
        if self.iterations_per_unit <= 0:
            raise ConfigurationError("iterations_per_unit must be positive")
        if self.initial_temperature <= 0:
            raise ConfigurationError("initial_temperature must be positive")
        if self.cooling_alpha < 0:
            raise ConfigurationError("cooling_alpha must be non-negative")
        if self.max_iterations < self.min_iterations:
            raise ConfigurationError("max_iterations must be >= min_iterations")
        if not 0.0 <= self.greedy_fraction <= 1.0:
            raise ConfigurationError("greedy_fraction must lie in [0, 1]")
        if self.time_limit_s is not None and self.time_limit_s <= 0:
            raise ConfigurationError("time_limit_s must be positive when set")

    def num_iterations(self, units: int) -> int:
        """Iteration budget for a problem with ``units`` layers/tensors."""
        budget = int(round(self.iterations_per_unit * max(1, units)))
        return max(self.min_iterations, min(self.max_iterations, budget))

    def num_greedy_iterations(self, units: int) -> int:
        """Extra greedy iterations run after the annealing budget.

        This models the paper's termination behaviour (Sec. V-C): once the
        budget is exhausted the search performs additional iterations that
        accept only improving moves, polishing the best scheme found.
        """
        return int(round(self.greedy_fraction * self.num_iterations(units)))

    def temperature(self, iteration: int, total: int) -> float:
        """Cooling schedule of Sec. V-C: ``Tn = T0 (1 - n/N) / (1 + alpha n/N)``."""
        if total <= 0:
            return 0.0
        progress = min(1.0, iteration / total)
        return self.initial_temperature * (1.0 - progress) / (1.0 + self.cooling_alpha * progress)


@dataclass(frozen=True)
class SoMaConfig:
    """End-to-end configuration of the SoMa framework."""

    energy_exponent: float = 1.0
    delay_exponent: float = 1.0
    lfa_sa: SAParams = field(default_factory=lambda: SAParams(iterations_per_unit=8.0))
    dlsa_sa: SAParams = field(default_factory=lambda: SAParams(iterations_per_unit=4.0))
    buffer_shrink_fraction: float = 0.10
    max_allocator_iterations: int = 6
    allocator_patience: int = 2
    seed: int = 2025
    buffer_overflow_penalty: float = 10.0

    def __post_init__(self) -> None:
        if self.energy_exponent < 0 or self.delay_exponent < 0:
            raise ConfigurationError("objective exponents must be non-negative")
        if self.energy_exponent == 0 and self.delay_exponent == 0:
            raise ConfigurationError("at least one objective exponent must be positive")
        if not 0 < self.buffer_shrink_fraction < 1:
            raise ConfigurationError("buffer_shrink_fraction must lie in (0, 1)")
        if self.max_allocator_iterations < 1:
            raise ConfigurationError("max_allocator_iterations must be >= 1")
        if self.allocator_patience < 1:
            raise ConfigurationError("allocator_patience must be >= 1")
        if self.buffer_overflow_penalty < 0:
            raise ConfigurationError("buffer_overflow_penalty must be non-negative")

    def objective(self, energy_j: float, delay_s: float) -> float:
        """The paper's cost function ``Energy^n x Delay^m``."""
        return (energy_j ** self.energy_exponent) * (delay_s ** self.delay_exponent)

    def with_seed(self, seed: int) -> "SoMaConfig":
        """Return a copy with a different random seed."""
        return replace(self, seed=seed)

    @classmethod
    def paper(cls) -> "SoMaConfig":
        """The hyper-parameters published in Sec. V-C (slow in pure Python)."""
        return cls(
            lfa_sa=SAParams(iterations_per_unit=100.0, max_iterations=1_000_000),
            dlsa_sa=SAParams(iterations_per_unit=1000.0, max_iterations=10_000_000),
            max_allocator_iterations=10,
        )

    @classmethod
    def fast(cls, seed: int = 2025) -> "SoMaConfig":
        """A small search budget for tests and quick demonstrations."""
        return cls(
            lfa_sa=SAParams(iterations_per_unit=2.0, max_iterations=400),
            dlsa_sa=SAParams(iterations_per_unit=1.0, max_iterations=600),
            max_allocator_iterations=2,
            seed=seed,
        )
