"""The end-to-end SoMa scheduling framework (paper Sec. V, Fig. 5).

:class:`SoMaScheduler` wires the pieces together: the model parser (a
:class:`~repro.workloads.graph.WorkloadGraph`), the Buffer Allocator driving
the LFA and DLSA exploration stages, and the evaluator.  Its output — a
:class:`~repro.core.result.SoMaResult` — carries the best encoding, its
evaluation (latency / energy report) and everything the compiler back-end
needs to emit IR and instructions.
"""

from __future__ import annotations

import random

from repro.core.buffer_allocator import BufferAllocator
from repro.core.config import SoMaConfig
from repro.core.core_array import CoreArrayMapper
from repro.core.evaluator import ScheduleEvaluator
from repro.core.result import EvaluationResult, SoMaResult
from repro.hardware.accelerator import AcceleratorConfig
from repro.notation.encoding import ScheduleEncoding
from repro.workloads.graph import WorkloadGraph


class SoMaScheduler:
    """Schedules workloads on one accelerator configuration."""

    def __init__(
        self,
        accelerator: AcceleratorConfig,
        config: SoMaConfig | None = None,
        mapper: CoreArrayMapper | None = None,
    ) -> None:
        self.accelerator = accelerator
        self.config = config if config is not None else SoMaConfig()
        self.evaluator = ScheduleEvaluator(accelerator, mapper=mapper)

    def schedule(
        self,
        graph: WorkloadGraph,
        seed: int | None = None,
        fanout_workers: int | None = None,
    ) -> SoMaResult:
        """Explore the DRAM Communication Scheduling Space for ``graph``.

        ``seed`` overrides the configuration seed so experiment harnesses can
        run several independent trials.  The resolved seed is handed to the
        allocator alongside the serial RNG: with ``REPRO_STAGE_PIPELINE=1``
        it drives the pipelined mode's derived per-stage streams, otherwise
        only the RNG is consumed (the historical serial trajectory).

        ``fanout_workers`` overrides ``REPRO_ALLOC_WORKERS`` for this one
        call — the serving layer's idle-pool grant.  It only moves work
        between processes; the schedule is bit-identical either way.
        """
        resolved_seed = self.config.seed if seed is None else seed
        rng = random.Random(resolved_seed)
        allocator = BufferAllocator(graph, self.evaluator, self.config)
        return allocator.run(rng, seed=resolved_seed, fanout_workers=fanout_workers)

    def evaluate_encoding(
        self,
        graph: WorkloadGraph,
        encoding: ScheduleEncoding,
        include_trace: bool = False,
    ) -> EvaluationResult:
        """Evaluate one explicit encoding (used by reports and the compiler)."""
        plan, dlsa = encoding.parse(graph)
        if not plan.feasible or dlsa is None:
            return EvaluationResult(feasible=False, reason=plan.infeasibility_reason)
        return self.evaluator.evaluate(plan, dlsa, include_trace=include_trace)
