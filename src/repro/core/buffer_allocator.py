"""Buffer Allocator: the outermost iteration of SoMa (paper Sec. V-B).

Both stages trade buffer capacity for DRAM-communication savings, so they
compete for the GBUF.  The allocator runs the complete two-stage exploration
repeatedly: the first iteration gives stage 1 the whole GBUF and records the
peak buffer usage of its best scheme; every later iteration lowers the
stage-1 budget by a fixed fraction of that peak, leaving the freed capacity
to stage 2 (prefetching / delayed storing).  Iteration stops once two
consecutive rounds fail to improve the best overall cost.

Two execution modes share one fold:

* **Serial** (the default): the historical single-RNG loop — stage 1 then
  stage 2 per iteration, one shared ``random.Random`` threaded through both.
  Fixed-seed trajectories are bit-identical to every earlier release.
* **Pipelined** (``REPRO_STAGE_PIPELINE=1``): each (iteration, stage) pair
  becomes a self-contained, explicitly seeded task
  (:class:`~repro.core.lfa_stage.Stage1Task` /
  :class:`~repro.core.dlsa_stage.Stage2Task`).  Stage-1 budgets depend only
  on earlier stage-1 results, so the whole shrink chain is submitted
  speculatively as soon as its budgets are known, and stage 2 refines the
  iteration-``i`` incumbent while stage 1 already explores iteration
  ``i+1``.  With ``REPRO_ALLOC_WORKERS>=2`` the tasks run on a shared
  :class:`~repro.experiments.parallel.PersistentPool` (stage 1 pinned to one
  worker, stage 2 to another); otherwise they run in-process, lazily, in
  fold order.  Because every task is a pure function of (graph, config,
  budget, derived seed), both execution shapes produce bit-identical
  results — asserted by ``tests/test_pipeline.py``.  The pipelined fold also
  applies a branch-and-bound cutoff: once the incumbent cost reaches the
  whole-workload roofline floor (:func:`~repro.core.roofline.schedule_floor`)
  no budget split can improve it, so remaining iterations are skipped.
"""

from __future__ import annotations

import atexit
import math
import random
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.core.caching import parse_env_int
from repro.core.config import SoMaConfig
from repro.core.knobs import read_flag
from repro.core.dlsa_stage import DLSAStage, Stage2Task, run_stage2_task
from repro.core.double_buffer import double_buffer_dlsa
from repro.core.evaluator import ScheduleEvaluator
from repro.core.lfa_stage import LFAStage, Stage1Task, run_stage1_task
from repro.core.result import SoMaResult, StageResult
from repro.core.roofline import schedule_floor
from repro.errors import SchedulingError
from repro.notation.parser import parse_lfa_cached
from repro.workloads.graph import WorkloadGraph

PIPELINE_ENV = "REPRO_STAGE_PIPELINE"
ALLOC_WORKERS_ENV = "REPRO_ALLOC_WORKERS"
POOL_WORKER_ENV = "REPRO_POOL_WORKER"


def stage_pipeline_enabled() -> bool:
    """Whether schedules run the pipelined two-stage search (default: off).

    The pipelined mode uses decorrelated per-(iteration, stage) seed streams
    instead of one RNG threaded through both stages, so enabling it changes
    the search trajectory (deterministically); leaving it off reproduces the
    historical fixed-seed trajectories exactly.
    """
    return read_flag(PIPELINE_ENV, default=False)


def alloc_workers() -> int:
    """Pool width for pipelined allocator tasks (``REPRO_ALLOC_WORKERS``).

    Returns 0 (in-process execution) unless the knob requests at least two
    workers — one worker cannot overlap the stages, so the pool would only
    add pickling overhead.  Inside a :class:`PersistentPool` worker process
    the answer is always 0: a pool task must never spawn a nested pool.
    """
    if read_flag(POOL_WORKER_ENV, default=False):
        return 0
    value = parse_env_int(ALLOC_WORKERS_ENV, "running the stage pipeline in-process")
    if value is None or value < 2:
        return 0
    return value


# One shared pool per worker count, kept warm across schedule calls exactly
# like the serving layer's pool; closed at interpreter exit.
_POOLS: dict[int, Any] = {}


def _allocator_pool(workers: int):
    from repro.experiments.parallel import PersistentPool  # lazy: import cycle

    pool = _POOLS.get(workers)
    if pool is None:
        pool = PersistentPool(workers)
        _POOLS[workers] = pool
    return pool


@atexit.register
def _close_pools() -> None:
    for pool in _POOLS.values():
        pool.close()
    _POOLS.clear()


class _LazyFuture:
    """In-process stand-in for a pool future: runs the task on first result().

    Laziness matters for the branch-and-bound cutoff: a speculative stage-2
    task whose iteration is pruned at fold time is simply never forced, so
    the in-process pipeline skips the work entirely.
    """

    __slots__ = ("_fn", "_task", "_done", "_value")

    def __init__(self, fn: Callable[[Any], Any], task: Any) -> None:
        self._fn = fn
        self._task = task
        self._done = False
        self._value = None

    def result(self) -> Any:
        if not self._done:
            self._value = self._fn(self._task)
            self._done = True
            self._fn = self._task = None
        return self._value


@dataclass
class _IterationOutcome:
    """Result of one full two-stage exploration under one budget split."""

    stage1: StageResult
    stage2: StageResult
    stage1_budget: int
    cost: float


class BufferAllocator:
    """Arbitrates GBUF capacity between the two exploration stages."""

    def __init__(
        self,
        graph: WorkloadGraph,
        evaluator: ScheduleEvaluator,
        config: SoMaConfig,
    ) -> None:
        self._graph = graph
        self._evaluator = evaluator
        self._config = config
        self._lfa_stage = LFAStage(graph, evaluator, config)
        self._dlsa_stage = DLSAStage(evaluator, config)

    def run(self, rng: random.Random, seed: int | None = None) -> SoMaResult:
        """Run the full SoMa exploration and return the best scheme.

        ``seed`` is the resolved base seed of this schedule call; it drives
        the decorrelated per-stage streams of the pipelined mode.  Without a
        seed, or with ``REPRO_STAGE_PIPELINE`` off (the default), the
        exploration runs serially on ``rng`` — bit-identical to the
        historical trajectory.
        """
        if seed is not None and stage_pipeline_enabled():
            return self._run_pipelined(seed)
        return self._run_serial(rng)

    # ----------------------------------------------------------------- serial
    def _run_serial(self, rng: random.Random) -> SoMaResult:
        config = self._config
        gbuf_bytes = self._evaluator.accelerator.gbuf_bytes
        stage1_budget = gbuf_bytes

        best: _IterationOutcome | None = None
        buffer_peak: int | None = None
        non_improving = 0
        history: list[float] = []
        start_time = time.perf_counter()  # repro: lint-ok[determinism] reporting only

        for iteration in range(config.max_allocator_iterations):
            outcome = self._run_iteration(stage1_budget, rng)
            history.append(outcome.cost)

            # The shrink step is a fraction of the best scheme's *observed*
            # peak usage, so the peak must come from a feasible stage-1
            # result: an infeasible evaluation reports max_buffer_bytes=0,
            # and capturing that would pin the step near zero and replay the
            # same full-GBUF budget for every remaining iteration.
            if buffer_peak is None and outcome.stage1.feasible:
                buffer_peak = max(1, outcome.stage1.evaluation.max_buffer_bytes)

            if best is None or outcome.cost < best.cost:
                best = outcome
                non_improving = 0
            else:
                non_improving += 1
            if non_improving >= config.allocator_patience:
                break

            # Until a feasible peak is known, fall back to the full GBUF as
            # the shrink reference so the budget still moves between rounds.
            shrink_reference = buffer_peak if buffer_peak is not None else gbuf_bytes
            stage1_budget = int(stage1_budget - config.buffer_shrink_fraction * shrink_reference)
            if stage1_budget <= 0:
                break

        return self._finish(best, history, start_time)

    # -------------------------------------------------------------- pipelined
    def _run_pipelined(self, seed: int) -> SoMaResult:
        from repro.experiments.parallel import derive_seed  # lazy: import cycle

        config = self._config
        graph = self._graph
        accelerator = self._evaluator.accelerator
        gbuf_bytes = accelerator.gbuf_bytes
        max_iters = config.max_allocator_iterations
        start_time = time.perf_counter()  # repro: lint-ok[determinism] reporting only

        workers = alloc_workers()
        if workers >= 2:
            pool = _allocator_pool(workers)

            # Pinning each stage to its own worker keeps that worker's caches
            # hot for the whole chain *and* guarantees the two stages overlap.
            def submit1(task: Stage1Task):
                return pool.submit(run_stage1_task, task, worker=0)

            def submit2(task: Stage2Task):
                return pool.submit(run_stage2_task, task, worker=1)

        else:

            def submit1(task: Stage1Task):
                return _LazyFuture(run_stage1_task, task)

            def submit2(task: Stage2Task):
                return _LazyFuture(run_stage2_task, task)

        def stage1_task(index: int, budget: int) -> Stage1Task:
            return Stage1Task(
                accelerator=accelerator,
                config=config,
                graph=graph,
                budget=budget,
                seed=derive_seed(seed, "soma-pipe", index, "lfa"),
            )

        floor_cost = schedule_floor(graph, accelerator, config)

        budgets = [gbuf_bytes]
        s1_futures = [submit1(stage1_task(0, gbuf_bytes))]

        best: _IterationOutcome | None = None
        buffer_peak: int | None = None
        non_improving = 0
        history: list[float] = []

        i = 0
        while i < len(budgets):
            stage1 = s1_futures[i].result().stage_result
            if buffer_peak is None and stage1.feasible:
                buffer_peak = max(1, stage1.evaluation.max_buffer_bytes)

            # Extend the shrink chain as far as its budgets are now known and
            # submit the new stage-1 tasks speculatively.  Once a feasible
            # peak is captured the shrink reference is frozen (exactly like
            # the serial loop), so the entire remaining chain unrolls here;
            # before that only the next budget (full-GBUF reference) exists.
            if buffer_peak is not None:
                while len(budgets) < max_iters:
                    next_budget = int(
                        budgets[-1] - config.buffer_shrink_fraction * buffer_peak
                    )
                    if next_budget <= 0:
                        break
                    budgets.append(next_budget)
            elif len(budgets) == i + 1 and len(budgets) < max_iters:
                next_budget = int(
                    budgets[-1] - config.buffer_shrink_fraction * gbuf_bytes
                )
                if next_budget > 0:
                    budgets.append(next_budget)
            while len(s1_futures) < len(budgets):
                index = len(s1_futures)
                s1_futures.append(submit1(stage1_task(index, budgets[index])))

            if not stage1.feasible:
                # Stage 2 cannot improve an unusable stage-1 scheme; report
                # it as-is so the allocator can try a different budget split.
                outcome = _IterationOutcome(
                    stage1=stage1, stage2=stage1, stage1_budget=budgets[i], cost=math.inf
                )
            elif best is not None and floor_cost >= best.cost:
                # Branch-and-bound cutoff: even a roofline-perfect refinement
                # of this budget split cannot beat the incumbent, so the
                # stage-2 task is never forced and the iteration only counts
                # against the patience.
                outcome = _IterationOutcome(
                    stage1=stage1, stage2=stage1, stage1_budget=budgets[i], cost=math.inf
                )
            else:
                stage2_future = submit2(
                    Stage2Task(
                        accelerator=accelerator,
                        config=config,
                        graph=graph,
                        lfa=stage1.encoding.lfa,
                        budget=gbuf_bytes,
                        seed=derive_seed(seed, "soma-pipe", i, "dlsa"),
                    )
                )
                stage2 = stage2_future.result().stage_result
                if stage2.feasible:
                    cost = config.objective(
                        stage2.evaluation.energy_j, stage2.evaluation.latency_s
                    )
                else:
                    stage2 = stage1
                    cost = config.objective(
                        stage1.evaluation.energy_j, stage1.evaluation.latency_s
                    )
                outcome = _IterationOutcome(
                    stage1=stage1, stage2=stage2, stage1_budget=budgets[i], cost=cost
                )

            history.append(outcome.cost)
            if best is None or outcome.cost < best.cost:
                best = outcome
                non_improving = 0
            else:
                non_improving += 1
            if non_improving >= config.allocator_patience:
                break
            i += 1

        return self._finish(best, history, start_time)

    # ---------------------------------------------------------------- internal
    def _finish(
        self,
        best: _IterationOutcome | None,
        history: list[float],
        start_time: float,
    ) -> SoMaResult:
        if best is None or not math.isfinite(best.cost):
            raise SchedulingError(
                f"SoMa found no feasible scheme for workload {self._graph.name!r} "
                f"on {self._evaluator.accelerator.name!r}"
            )

        plan = parse_lfa_cached(self._graph, best.stage2.encoding.lfa)
        dlsa = best.stage2.encoding.dlsa
        if dlsa is None:
            dlsa = double_buffer_dlsa(plan)
        return SoMaResult(
            workload_name=self._graph.name,
            accelerator_name=self._evaluator.accelerator.name,
            stage1=best.stage1,
            stage2=best.stage2,
            allocator_iterations=len(history),
            stage1_buffer_budget_bytes=best.stage1_budget,
            plan=plan,
            dlsa=dlsa,
            search_seconds=time.perf_counter() - start_time,  # repro: lint-ok[determinism] reporting only
            history=tuple(history),
        )

    def _run_iteration(self, stage1_budget: int, rng: random.Random) -> _IterationOutcome:
        gbuf_bytes = self._evaluator.accelerator.gbuf_bytes
        lfa_outcome = self._lfa_stage.explore(stage1_budget, rng)
        stage1 = lfa_outcome.stage_result

        if not stage1.feasible:
            # Stage 2 cannot improve an unusable stage-1 scheme; report it
            # as-is so the allocator can try a different budget split.
            return _IterationOutcome(
                stage1=stage1, stage2=stage1, stage1_budget=stage1_budget, cost=math.inf
            )

        plan = parse_lfa_cached(self._graph, stage1.encoding.lfa)
        initial_dlsa = double_buffer_dlsa(plan)
        dlsa_outcome = self._dlsa_stage.explore(
            lfa=stage1.encoding.lfa,
            plan=plan,
            initial_dlsa=initial_dlsa,
            buffer_budget_bytes=gbuf_bytes,
            rng=rng,
        )
        stage2 = dlsa_outcome.stage_result
        if stage2.feasible:
            cost = self._config.objective(
                stage2.evaluation.energy_j, stage2.evaluation.latency_s
            )
        else:
            stage2 = stage1
            cost = self._config.objective(
                stage1.evaluation.energy_j, stage1.evaluation.latency_s
            )
        return _IterationOutcome(
            stage1=stage1, stage2=stage2, stage1_budget=stage1_budget, cost=cost
        )
