"""Buffer Allocator: the outermost iteration of SoMa (paper Sec. V-B).

Both stages trade buffer capacity for DRAM-communication savings, so they
compete for the GBUF.  The allocator runs the complete two-stage exploration
repeatedly: the first iteration gives stage 1 the whole GBUF and records the
peak buffer usage of its best scheme; every later iteration lowers the
stage-1 budget by a fixed fraction of that peak, leaving the freed capacity
to stage 2 (prefetching / delayed storing).  Iteration stops once two
consecutive rounds fail to improve the best overall cost.

Two execution modes share one fold:

* **Serial** (the default): the historical single-RNG loop — stage 1 then
  stage 2 per iteration, one shared ``random.Random`` threaded through both.
  Fixed-seed trajectories are bit-identical to every earlier release.
* **Pipelined** (``REPRO_STAGE_PIPELINE=1``): each (iteration, stage) pair
  becomes a self-contained, explicitly seeded task
  (:class:`~repro.core.lfa_stage.Stage1Task` /
  :class:`~repro.core.dlsa_stage.Stage2Task`).  Stage-1 budgets depend only
  on earlier stage-1 results, so the whole shrink chain is submitted
  speculatively as soon as its budgets are known, and stage 2 refines the
  iteration-``i`` incumbent while stage 1 already explores iteration
  ``i+1``.  With ``REPRO_ALLOC_WORKERS>=2`` the tasks run on a shared
  :class:`~repro.experiments.parallel.PersistentPool` (stage 1 pinned to one
  worker, stage 2 to another); otherwise they run in-process, lazily, in
  fold order.  Because every task is a pure function of (graph, config,
  budget, derived seed), both execution shapes produce bit-identical
  results — asserted by ``tests/test_pipeline.py``.  The pipelined fold also
  applies three branch-and-bound cutoffs, each against the incumbent cost:
  the whole-workload roofline floor
  (:func:`~repro.core.roofline.schedule_floor`) cuts the remaining shrink
  chain, the *per-budget* floor
  (:func:`~repro.core.roofline.budget_schedule_floor`) prunes a dominated
  shrink iteration before either stage runs, and (speculative mode only)
  the plan-level floor
  (:meth:`~repro.core.eval_context.PlanEvaluationContext.cost_floor`) skips
  a stage-2 refinement that provably cannot win.

With ``REPRO_LFA_BATCH>=1`` on top of the pipeline, stage 1 itself goes
parallel: it runs parent-side and fans each speculative move window across
the pool workers not holding stage 2 (see
:meth:`~repro.core.lfa_stage.LFAStage.explore`).  Trajectories are
bit-identical for any batch size x worker count.
"""

from __future__ import annotations

import atexit
import math
import multiprocessing
import os
import random
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.core.caching import parse_env_int
from repro.core.config import SoMaConfig
from repro.core.knobs import read_flag
from repro.core.dlsa_stage import DLSAStage, Stage2Task, run_stage2_task
from repro.core.double_buffer import double_buffer_dlsa
from repro.core.evaluator import ScheduleEvaluator
from repro.core.lfa_stage import LFAStage, Stage1Task, lfa_batch_size, run_stage1_task
from repro.core.result import SoMaResult, StageResult
from repro.core.roofline import budget_schedule_floor, schedule_floor
from repro.errors import SchedulingError
from repro.notation.parser import parse_lfa_cached
from repro.workloads.graph import WorkloadGraph

PIPELINE_ENV = "REPRO_STAGE_PIPELINE"
ALLOC_WORKERS_ENV = "REPRO_ALLOC_WORKERS"
POOL_WORKER_ENV = "REPRO_POOL_WORKER"


def stage_pipeline_enabled() -> bool:
    """Whether schedules run the pipelined two-stage search (default: off).

    The pipelined mode uses decorrelated per-(iteration, stage) seed streams
    instead of one RNG threaded through both stages, so enabling it changes
    the search trajectory (deterministically); leaving it off reproduces the
    historical fixed-seed trajectories exactly.
    """
    return read_flag(PIPELINE_ENV, default=False)


def alloc_workers() -> int:
    """Pool width for pipelined allocator tasks (``REPRO_ALLOC_WORKERS``).

    Returns 0 (in-process execution) unless the knob requests at least two
    workers — one worker cannot overlap the stages, so the pool would only
    add pickling overhead.  Inside a :class:`PersistentPool` worker process
    the answer is always 0: a pool task must never spawn a nested pool.  The
    same holds for any daemonic child (e.g. a ``multiprocessing.Pool``
    worker running a restart chain): it cannot spawn processes of its own,
    and a pool inherited over ``fork`` shares its pipes with the parent's
    pump threads, so submitting to it from the child cross-wires replies
    between the two processes and deadlocks both.
    """
    if read_flag(POOL_WORKER_ENV, default=False):
        return 0
    if multiprocessing.current_process().daemon:
        return 0
    value = parse_env_int(ALLOC_WORKERS_ENV, "running the stage pipeline in-process")
    if value is None or value < 2:
        return 0
    return value


# One shared pool per worker count, kept warm across schedule calls exactly
# like the serving layer's pool; closed at interpreter exit.  The cache is
# pid-stamped: after a fork the inherited entries wrap pipes owned by the
# parent's pump threads, so the child must never submit to (or close) them.
_POOLS: dict[int, Any] = {}
_POOLS_PID = os.getpid()


def _allocator_pool(workers: int):
    from repro.experiments.parallel import PersistentPool  # lazy: import cycle

    global _POOLS_PID
    if _POOLS_PID != os.getpid():
        _POOLS.clear()  # inherited handles belong to the parent: drop, don't close
        _POOLS_PID = os.getpid()
    pool = _POOLS.get(workers)
    if pool is None:
        pool = PersistentPool(workers)
        _POOLS[workers] = pool
    return pool


@atexit.register
def _close_pools() -> None:
    if _POOLS_PID != os.getpid():
        _POOLS.clear()  # forked child: the parent owns these workers
        return
    for pool in _POOLS.values():
        pool.close()
    _POOLS.clear()


class _LazyFuture:
    """In-process stand-in for a pool future: runs the task on first result().

    Laziness matters for the branch-and-bound cutoff: a speculative stage-2
    task whose iteration is pruned at fold time is simply never forced, so
    the in-process pipeline skips the work entirely.
    """

    __slots__ = ("_fn", "_task", "_done", "_value")

    def __init__(self, fn: Callable[[Any], Any], task: Any) -> None:
        self._fn = fn
        self._task = task
        self._done = False
        self._value = None

    def result(self) -> Any:
        if not self._done:
            self._value = self._fn(self._task)
            self._done = True
            self._fn = self._task = None
        return self._value


@dataclass
class _IterationOutcome:
    """Result of one full two-stage exploration under one budget split."""

    stage1: StageResult
    stage2: StageResult
    stage1_budget: int
    cost: float


class BufferAllocator:
    """Arbitrates GBUF capacity between the two exploration stages."""

    def __init__(
        self,
        graph: WorkloadGraph,
        evaluator: ScheduleEvaluator,
        config: SoMaConfig,
    ) -> None:
        self._graph = graph
        self._evaluator = evaluator
        self._config = config
        self._lfa_stage = LFAStage(graph, evaluator, config)
        self._dlsa_stage = DLSAStage(evaluator, config)

    def run(
        self,
        rng: random.Random,
        seed: int | None = None,
        fanout_workers: int | None = None,
    ) -> SoMaResult:
        """Run the full SoMa exploration and return the best scheme.

        ``seed`` is the resolved base seed of this schedule call; it drives
        the decorrelated per-stage streams of the pipelined mode.  Without a
        seed, or with ``REPRO_STAGE_PIPELINE`` off (the default), the
        exploration runs serially on ``rng`` — bit-identical to the
        historical trajectory.

        ``fanout_workers`` overrides ``REPRO_ALLOC_WORKERS`` for this one
        call (the serving layer grants a cold request the pool's idle
        capacity); it changes only where tasks run, never the placements.
        """
        if seed is not None and stage_pipeline_enabled():
            return self._run_pipelined(seed, fanout_workers)
        return self._run_serial(rng)

    # ----------------------------------------------------------------- serial
    def _run_serial(self, rng: random.Random) -> SoMaResult:
        config = self._config
        gbuf_bytes = self._evaluator.accelerator.gbuf_bytes
        stage1_budget = gbuf_bytes

        best: _IterationOutcome | None = None
        buffer_peak: int | None = None
        non_improving = 0
        history: list[float] = []
        start_time = time.perf_counter()  # repro: lint-ok[determinism] reporting only

        for iteration in range(config.max_allocator_iterations):
            outcome = self._run_iteration(stage1_budget, rng)
            history.append(outcome.cost)

            # The shrink step is a fraction of the best scheme's *observed*
            # peak usage, so the peak must come from a feasible stage-1
            # result: an infeasible evaluation reports max_buffer_bytes=0,
            # and capturing that would pin the step near zero and replay the
            # same full-GBUF budget for every remaining iteration.
            if buffer_peak is None and outcome.stage1.feasible:
                buffer_peak = max(1, outcome.stage1.evaluation.max_buffer_bytes)

            if best is None or outcome.cost < best.cost:
                best = outcome
                non_improving = 0
            else:
                non_improving += 1
            if non_improving >= config.allocator_patience:
                break

            # Until a feasible peak is known, fall back to the full GBUF as
            # the shrink reference so the budget still moves between rounds.
            shrink_reference = buffer_peak if buffer_peak is not None else gbuf_bytes
            stage1_budget = int(stage1_budget - config.buffer_shrink_fraction * shrink_reference)
            if stage1_budget <= 0:
                break

        return self._finish(best, history, start_time)

    # -------------------------------------------------------------- pipelined
    def _run_pipelined(self, seed: int, fanout_workers: int | None = None) -> SoMaResult:
        from repro.experiments.parallel import derive_seed  # lazy: import cycle

        config = self._config
        graph = self._graph
        accelerator = self._evaluator.accelerator
        gbuf_bytes = accelerator.gbuf_bytes
        max_iters = config.max_allocator_iterations
        start_time = time.perf_counter()  # repro: lint-ok[determinism] reporting only

        if fanout_workers is None:
            workers = alloc_workers()
        elif (
            read_flag(POOL_WORKER_ENV, default=False)
            or multiprocessing.current_process().daemon
            or int(fanout_workers) < 2
        ):
            workers = 0
        else:
            workers = int(fanout_workers)
        # Resolved once, parent-side, and carried inside every Stage1Task:
        # a long-lived pool worker's inherited REPRO_LFA_BATCH may be stale,
        # and which stage-1 walk runs changes the trajectory.
        lfa_batch = lfa_batch_size()
        speculative = lfa_batch >= 1
        if workers >= 2:
            pool = _allocator_pool(workers)

            if speculative:
                # Speculative stage 1 runs parent-side and fans each move
                # window across all workers but the last, which holds stage 2
                # (the stage-1 walk dominates the schedule, so intra-stage
                # parallelism beats the two-worker stage overlap).
                eval_workers = tuple(range(workers - 1))

                def submit1(task: Stage1Task):
                    return _LazyFuture(self._speculative_stage1, (task, pool, eval_workers))

                def submit2(task: Stage2Task):
                    return pool.submit(run_stage2_task, task, worker=workers - 1)

            else:
                # Pinning each stage to its own worker keeps that worker's
                # caches hot for the whole chain *and* guarantees the two
                # stages overlap.
                def submit1(task: Stage1Task):
                    return pool.submit(run_stage1_task, task, worker=0)

                def submit2(task: Stage2Task):
                    return pool.submit(run_stage2_task, task, worker=1)

        else:

            def submit1(task: Stage1Task):
                return _LazyFuture(run_stage1_task, task)

            def submit2(task: Stage2Task):
                return _LazyFuture(run_stage2_task, task)

        def stage1_task(index: int, budget: int) -> Stage1Task:
            return Stage1Task(
                accelerator=accelerator,
                config=config,
                graph=graph,
                budget=budget,
                seed=derive_seed(seed, "soma-pipe", index, "lfa"),
                lfa_batch=lfa_batch,
            )

        floor_cost = schedule_floor(graph, accelerator, config)

        def budget_floor(budget: int) -> float:
            return budget_schedule_floor(graph, accelerator, config, budget)

        budgets = [gbuf_bytes]
        floors = [budget_floor(gbuf_bytes)]
        s1_futures = [submit1(stage1_task(0, gbuf_bytes))]

        best: _IterationOutcome | None = None
        buffer_peak: int | None = None
        non_improving = 0
        history: list[float] = []

        i = 0
        while i < len(budgets):
            # Per-budget branch-and-bound: even a roofline-perfect schedule
            # fitting this iteration's budget cannot beat the incumbent, so
            # neither stage runs (the lazy stage-1 future is never forced).
            # A finite incumbent implies a feasible stage 1 has already been
            # folded, so the peak is captured and the chain fully unrolled —
            # pruning never starves the budget extension below.
            if best is not None and math.isfinite(best.cost) and floors[i] >= best.cost:
                history.append(math.inf)
                non_improving += 1
                if non_improving >= config.allocator_patience:
                    break
                i += 1
                continue

            stage1 = s1_futures[i].result().stage_result
            if buffer_peak is None and stage1.feasible:
                buffer_peak = max(1, stage1.evaluation.max_buffer_bytes)

            # Extend the shrink chain as far as its budgets are now known and
            # submit the new stage-1 tasks speculatively.  Once a feasible
            # peak is captured the shrink reference is frozen (exactly like
            # the serial loop), so the entire remaining chain unrolls here;
            # before that only the next budget (full-GBUF reference) exists.
            if buffer_peak is not None:
                while len(budgets) < max_iters:
                    next_budget = int(
                        budgets[-1] - config.buffer_shrink_fraction * buffer_peak
                    )
                    if next_budget <= 0:
                        break
                    budgets.append(next_budget)
                    floors.append(budget_floor(next_budget))
            elif len(budgets) == i + 1 and len(budgets) < max_iters:
                next_budget = int(
                    budgets[-1] - config.buffer_shrink_fraction * gbuf_bytes
                )
                if next_budget > 0:
                    budgets.append(next_budget)
                    floors.append(budget_floor(next_budget))
            while len(s1_futures) < len(budgets):
                index = len(s1_futures)
                s1_futures.append(submit1(stage1_task(index, budgets[index])))

            if not stage1.feasible:
                # Stage 2 cannot improve an unusable stage-1 scheme; report
                # it as-is so the allocator can try a different budget split.
                outcome = _IterationOutcome(
                    stage1=stage1, stage2=stage1, stage1_budget=budgets[i], cost=math.inf
                )
            elif best is not None and floor_cost >= best.cost:
                # Branch-and-bound cutoff: even a roofline-perfect refinement
                # of this budget split cannot beat the incumbent, so the
                # stage-2 task is never forced and the iteration only counts
                # against the patience.
                outcome = _IterationOutcome(
                    stage1=stage1, stage2=stage1, stage1_budget=budgets[i], cost=math.inf
                )
            elif speculative and best is not None and self._plan_floor(
                stage1.encoding.lfa
            ) >= best.cost:
                # Plan-level cutoff (exact): a DLSA only re-times this plan's
                # fixed tiles and tensors, so neither the stage-2 refinement
                # nor the stage-1 fallback evaluation can beat the incumbent.
                # Guarded to speculative mode, where the stage-1 plan is
                # already warm parent-side, so the bound is nearly free.
                outcome = _IterationOutcome(
                    stage1=stage1, stage2=stage1, stage1_budget=budgets[i], cost=math.inf
                )
            else:
                stage2_future = submit2(
                    Stage2Task(
                        accelerator=accelerator,
                        config=config,
                        graph=graph,
                        lfa=stage1.encoding.lfa,
                        budget=gbuf_bytes,
                        seed=derive_seed(seed, "soma-pipe", i, "dlsa"),
                    )
                )
                stage2 = stage2_future.result().stage_result
                if stage2.feasible:
                    cost = config.objective(
                        stage2.evaluation.energy_j, stage2.evaluation.latency_s
                    )
                else:
                    stage2 = stage1
                    cost = config.objective(
                        stage1.evaluation.energy_j, stage1.evaluation.latency_s
                    )
                outcome = _IterationOutcome(
                    stage1=stage1, stage2=stage2, stage1_budget=budgets[i], cost=cost
                )

            history.append(outcome.cost)
            if best is None or outcome.cost < best.cost:
                best = outcome
                non_improving = 0
            else:
                non_improving += 1
            if non_improving >= config.allocator_patience:
                break
            i += 1

        return self._finish(best, history, start_time)

    # ---------------------------------------------------------------- internal
    def _speculative_stage1(self, spec) -> Any:
        """Run one stage-1 task parent-side, fanning move windows to the pool.

        The allocator's own stage keeps its cost memo and evaluation context
        warm across the shrink chain; only the window's memo misses travel
        to the workers.  Pure evaluations — bit-identical to the in-process
        and single-worker shapes.
        """
        task, pool, eval_workers = spec
        return self._lfa_stage.explore(
            task.budget,
            random.Random(task.seed),
            pool=pool,
            pool_workers=eval_workers,
            batch_size=task.lfa_batch,
        )

    def _plan_floor(self, lfa) -> float:
        """Lower bound on any stage-2 refinement of one stage-1 scheme."""
        plan = parse_lfa_cached(self._graph, lfa)
        if not plan.feasible:
            return math.inf
        context = self._evaluator.context(plan)
        return context.cost_floor(self._config.objective)

    def _finish(
        self,
        best: _IterationOutcome | None,
        history: list[float],
        start_time: float,
    ) -> SoMaResult:
        if best is None or not math.isfinite(best.cost):
            raise SchedulingError(
                f"SoMa found no feasible scheme for workload {self._graph.name!r} "
                f"on {self._evaluator.accelerator.name!r}"
            )

        plan = parse_lfa_cached(self._graph, best.stage2.encoding.lfa)
        dlsa = best.stage2.encoding.dlsa
        if dlsa is None:
            dlsa = double_buffer_dlsa(plan)
        return SoMaResult(
            workload_name=self._graph.name,
            accelerator_name=self._evaluator.accelerator.name,
            stage1=best.stage1,
            stage2=best.stage2,
            allocator_iterations=len(history),
            stage1_buffer_budget_bytes=best.stage1_budget,
            plan=plan,
            dlsa=dlsa,
            search_seconds=time.perf_counter() - start_time,  # repro: lint-ok[determinism] reporting only
            history=tuple(history),
        )

    def _run_iteration(self, stage1_budget: int, rng: random.Random) -> _IterationOutcome:
        gbuf_bytes = self._evaluator.accelerator.gbuf_bytes
        lfa_outcome = self._lfa_stage.explore(stage1_budget, rng)
        stage1 = lfa_outcome.stage_result

        if not stage1.feasible:
            # Stage 2 cannot improve an unusable stage-1 scheme; report it
            # as-is so the allocator can try a different budget split.
            return _IterationOutcome(
                stage1=stage1, stage2=stage1, stage1_budget=stage1_budget, cost=math.inf
            )

        plan = parse_lfa_cached(self._graph, stage1.encoding.lfa)
        initial_dlsa = double_buffer_dlsa(plan)
        dlsa_outcome = self._dlsa_stage.explore(
            lfa=stage1.encoding.lfa,
            plan=plan,
            initial_dlsa=initial_dlsa,
            buffer_budget_bytes=gbuf_bytes,
            rng=rng,
        )
        stage2 = dlsa_outcome.stage_result
        if stage2.feasible:
            cost = self._config.objective(
                stage2.evaluation.energy_j, stage2.evaluation.latency_s
            )
        else:
            stage2 = stage1
            cost = self._config.objective(
                stage1.evaluation.energy_j, stage1.evaluation.latency_s
            )
        return _IterationOutcome(
            stage1=stage1, stage2=stage2, stage1_budget=stage1_budget, cost=cost
        )
