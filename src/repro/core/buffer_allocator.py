"""Buffer Allocator: the outermost iteration of SoMa (paper Sec. V-B).

Both stages trade buffer capacity for DRAM-communication savings, so they
compete for the GBUF.  The allocator runs the complete two-stage exploration
repeatedly: the first iteration gives stage 1 the whole GBUF and records the
peak buffer usage of its best scheme; every later iteration lowers the
stage-1 budget by a fixed fraction of that peak, leaving the freed capacity
to stage 2 (prefetching / delayed storing).  Iteration stops once two
consecutive rounds fail to improve the best overall cost.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass

from repro.core.config import SoMaConfig
from repro.core.dlsa_stage import DLSAStage
from repro.core.double_buffer import double_buffer_dlsa
from repro.core.evaluator import ScheduleEvaluator
from repro.core.lfa_stage import LFAStage
from repro.core.result import SoMaResult, StageResult
from repro.errors import SchedulingError
from repro.notation.parser import parse_lfa_cached
from repro.workloads.graph import WorkloadGraph


@dataclass
class _IterationOutcome:
    """Result of one full two-stage exploration under one budget split."""

    stage1: StageResult
    stage2: StageResult
    stage1_budget: int
    cost: float


class BufferAllocator:
    """Arbitrates GBUF capacity between the two exploration stages."""

    def __init__(
        self,
        graph: WorkloadGraph,
        evaluator: ScheduleEvaluator,
        config: SoMaConfig,
    ) -> None:
        self._graph = graph
        self._evaluator = evaluator
        self._config = config
        self._lfa_stage = LFAStage(graph, evaluator, config)
        self._dlsa_stage = DLSAStage(evaluator, config)

    def run(self, rng: random.Random) -> SoMaResult:
        """Run the full SoMa exploration and return the best scheme."""
        config = self._config
        gbuf_bytes = self._evaluator.accelerator.gbuf_bytes
        stage1_budget = gbuf_bytes

        best: _IterationOutcome | None = None
        buffer_peak: int | None = None
        non_improving = 0
        history: list[float] = []
        start_time = time.perf_counter()

        for iteration in range(config.max_allocator_iterations):
            outcome = self._run_iteration(stage1_budget, rng)
            history.append(outcome.cost)

            # The shrink step is a fraction of the best scheme's *observed*
            # peak usage, so the peak must come from a feasible stage-1
            # result: an infeasible evaluation reports max_buffer_bytes=0,
            # and capturing that would pin the step near zero and replay the
            # same full-GBUF budget for every remaining iteration.
            if buffer_peak is None and outcome.stage1.feasible:
                buffer_peak = max(1, outcome.stage1.evaluation.max_buffer_bytes)

            if best is None or outcome.cost < best.cost:
                best = outcome
                non_improving = 0
            else:
                non_improving += 1
            if non_improving >= config.allocator_patience:
                break

            # Until a feasible peak is known, fall back to the full GBUF as
            # the shrink reference so the budget still moves between rounds.
            shrink_reference = buffer_peak if buffer_peak is not None else gbuf_bytes
            stage1_budget = int(stage1_budget - config.buffer_shrink_fraction * shrink_reference)
            if stage1_budget <= 0:
                break

        if best is None or not math.isfinite(best.cost):
            raise SchedulingError(
                f"SoMa found no feasible scheme for workload {self._graph.name!r} "
                f"on {self._evaluator.accelerator.name!r}"
            )

        plan = parse_lfa_cached(self._graph, best.stage2.encoding.lfa)
        dlsa = best.stage2.encoding.dlsa
        if dlsa is None:
            dlsa = double_buffer_dlsa(plan)
        return SoMaResult(
            workload_name=self._graph.name,
            accelerator_name=self._evaluator.accelerator.name,
            stage1=best.stage1,
            stage2=best.stage2,
            allocator_iterations=len(history),
            stage1_buffer_budget_bytes=best.stage1_budget,
            plan=plan,
            dlsa=dlsa,
            search_seconds=time.perf_counter() - start_time,
            history=tuple(history),
        )

    # ---------------------------------------------------------------- internal
    def _run_iteration(self, stage1_budget: int, rng: random.Random) -> _IterationOutcome:
        gbuf_bytes = self._evaluator.accelerator.gbuf_bytes
        lfa_outcome = self._lfa_stage.explore(stage1_budget, rng)
        stage1 = lfa_outcome.stage_result

        if not stage1.feasible:
            # Stage 2 cannot improve an unusable stage-1 scheme; report it
            # as-is so the allocator can try a different budget split.
            return _IterationOutcome(
                stage1=stage1, stage2=stage1, stage1_budget=stage1_budget, cost=math.inf
            )

        plan = parse_lfa_cached(self._graph, stage1.encoding.lfa)
        initial_dlsa = double_buffer_dlsa(plan)
        dlsa_outcome = self._dlsa_stage.explore(
            lfa=stage1.encoding.lfa,
            plan=plan,
            initial_dlsa=initial_dlsa,
            buffer_budget_bytes=gbuf_bytes,
            rng=rng,
        )
        stage2 = dlsa_outcome.stage_result
        if stage2.feasible:
            cost = self._config.objective(
                stage2.evaluation.energy_j, stage2.evaluation.latency_s
            )
        else:
            stage2 = stage1
            cost = self._config.objective(
                stage1.evaluation.energy_j, stage1.evaluation.latency_s
            )
        return _IterationOutcome(
            stage1=stage1, stage2=stage2, stage1_budget=stage1_budget, cost=cost
        )
