"""Cache-aware, incremental evaluation engine for one compute plan.

The two SA stages spend essentially all of their time evaluating (plan,
DLSA) pairs.  Everything that does not depend on the DLSA — tile costs,
tensor transfer times, the store/load dependency structure and the on-chip
buffer-delta baseline — is a pure function of the plan, yet the seed
evaluator re-derived much of it (and rebuilt the full buffer-occupancy scan)
on every one of the DLSA stage's thousands of calls.

:class:`PlanEvaluationContext` is constructed once per
:class:`~repro.notation.plan.ComputePlan` and precomputes all of that state
into flat arrays.  Its :meth:`evaluate` is the hot path of the whole search:

* the buffer-delta array is *patched* incrementally when only a few Living
  Durations changed since the previous call (the two DLSA operators change
  at most one), instead of being rebuilt from every interval;
* the co-operative DRAM/compute simulation runs over precomputed arrays with
  no per-tensor attribute or property lookups;
* results are memoised in a small LRU keyed by the exact DLSA content, the
  engine-level realisation of SA cost memoisation.

The numbers it produces are bit-identical to the seed evaluator's reference
implementation (kept as :meth:`ScheduleEvaluator.evaluate_reference` and
asserted by ``tests/test_eval_context.py``), with the single exception of
``avg_buffer_bytes`` which may differ by float rounding (the engine uses a
vectorised dot product) — that statistic feeds no search decision.

:meth:`evaluate_moves` is the batched complement used by the DLSA stage's
speculative move engine: a whole window of candidate
:class:`~repro.notation.dlsa.DLSAMove`\\ s is screened against the current
base in one pass — an exact structural deadlock criterion (emitting the
same deadlock result the simulator would) plus a conservative roofline
lower bound (:mod:`repro.core.roofline`) that prunes candidates whose bound
already reaches the acceptance threshold, so only the rare survivors pay
for a full co-simulation.  Both screens are gated and counted:
``REPRO_ROOFLINE_PREFILTER`` toggles the pruning and ``cache_stats`` carries
``batch_*`` counters alongside the memo statistics.

Perf knobs (see ROADMAP.md): ``REPRO_RESULT_CACHE`` bounds the per-context
result memo; numpy is used for the occupancy scans when available, with a
pure-Python fallback otherwise.
"""

from __future__ import annotations

import math

try:  # numpy is optional: the engine falls back to pure Python without it.
    import numpy as _np
except ImportError:  # pragma: no cover - the image ships numpy
    _np = None

from repro.core.caching import LRUCache, cache_size
from repro.core.result import EvaluationResult, TileRecord, TransferRecord
from repro.core.roofline import MoveScreen
from repro.hardware.accelerator import AcceleratorConfig
from repro.notation.dlsa import DLSA
from repro.notation.plan import ComputePlan

#: Minimum fraction of the co-sim a candidate must have left (past its
#: checkpoint resume point) before the roofline escalation is attempted:
#: pruning buys nothing on candidates whose resumed simulation is already
#: cheaper than the bound rounds would be.
_PREFILTER_MIN_WORK = 0.25


def _segment_static_costs(accelerator, mapper, graph, segment):
    """Per-segment static costs: (tile seconds, tile energies, tensor seconds).

    Pure functions of the segment content and the accelerator, so the
    evaluator caches them by segment key; lifetimes and indices play no role
    here, which is why no re-basing is needed.
    """
    layer_costs = {
        name: mapper.evaluate_tile(graph.layer(name), tiling)
        for name, tiling in segment.layer_tilings.items()
    }
    tile_seconds = tuple(layer_costs[layer].seconds for layer, *_rest in segment.tiles)
    tile_energies = tuple(layer_costs[layer].energy_j for layer, *_rest in segment.tiles)
    memory = accelerator.memory
    tensor_seconds = tuple(
        memory.dram_transfer_seconds(row[4]) for row in segment.specs
    )
    return tile_seconds, tile_energies, tensor_seconds


class PlanEvaluationContext:
    """Precomputed, DLSA-independent evaluation state for one plan."""

    def __init__(
        self,
        accelerator: AcceleratorConfig,
        mapper,
        plan: ComputePlan,
        result_cache_size: int | None = None,
        segment_static_cache=None,
    ) -> None:
        if not plan.feasible:
            raise ValueError("cannot build an evaluation context for an infeasible plan")
        self.plan = plan
        self.accelerator = accelerator
        self.eval_count = 0

        # ------------------------------------------------- static cost model
        # Assembled plans carry a segment view: the per-tile/per-tensor costs
        # of a segment only depend on its content, so they are concatenated
        # from ``segment_static_cache`` instead of re-walking every layer.
        # The sums below run over the concatenated arrays in tile/tensor
        # order, exactly as the monolithic path, so the floats are
        # bit-identical either way.
        segment_view = plan.segment_view
        if segment_view and segment_static_cache is not None:
            tile_seconds: list[float] = []
            tile_energies: list[float] = []
            tensor_seconds: list[float] = []
            # The cache lives on the evaluator, which outlives any one graph,
            # so the key pairs the segment digest with the graph's content
            # fingerprint: equal layer names with different shapes must not
            # collide (and mutation changes the fingerprint).
            graph_key = plan.graph.fingerprint()
            for segment, _tile_offset, _tid_offset in segment_view:
                cache_key = (graph_key, segment.key)
                entry = segment_static_cache.get(cache_key)
                if entry is None:
                    entry = _segment_static_costs(accelerator, mapper, plan.graph, segment)
                    segment_static_cache.put(cache_key, entry)
                tile_seconds.extend(entry[0])
                tile_energies.extend(entry[1])
                tensor_seconds.extend(entry[2])
            self.tile_seconds = tile_seconds
            self.core_energy_j = sum(tile_energies)
            self.tensor_seconds = tensor_seconds
        else:
            layer_costs = {
                name: mapper.evaluate_tile(plan.graph.layer(name), tiling)
                for name, tiling in plan.layer_tilings.items()
            }
            self.tile_seconds = [layer_costs[t.layer].seconds for t in plan.tiles]
            self.core_energy_j = sum(layer_costs[t.layer].energy_j for t in plan.tiles)
            memory = accelerator.memory
            self.tensor_seconds = [
                memory.dram_transfer_seconds(t.num_bytes) for t in plan.dram_tensors
            ]
        self.dram_energy_j: float = accelerator.energy.dram_energy_j(plan.total_dram_bytes)
        self.compute_time_sum_s: float = sum(self.tile_seconds)
        self.dram_time_sum_s: float = sum(self.tensor_seconds)
        self.total_ops: int = plan.total_ops
        self.total_dram_bytes: int = plan.total_dram_bytes

        # ------------------------------------------- flat dependency arrays
        num_tiles = plan.num_tiles
        self._num_tiles = num_tiles
        self._num_tensors = plan.num_dram_tensors
        self._is_load, self._num_bytes, self._first_use, self._last_use = plan.tensor_arrays
        self._tile_required_loads: list[list[int]] = plan.tile_required_loads
        # Store tids plus, for every load that reads back another LG's stored
        # ofmap, the store tids it must wait for (the seed gate order).
        self._store_tids, self._src_store_tids = plan.store_structure

        # ------------------------------------- buffer-delta baseline (fixed)
        # Deltas live in plain lists: element updates are far cheaper than
        # numpy scalar indexing; numpy builds the baseline in one vectorised
        # pass (integer-exact, same clamping as ``_apply_interval``) and
        # runs the O(num_tiles) scans.
        if _np is not None and num_tiles > 0:
            iv_start, iv_end, iv_bytes = plan.onchip_np
            last = num_tiles - 1
            base = _np.zeros(num_tiles + 1, dtype=_np.int64)
            if iv_start.size:
                iv_s = _np.clip(iv_start, 0, last)
                iv_e = _np.maximum(_np.clip(iv_end, 0, last), iv_s)
                _np.add.at(base, iv_s, iv_bytes)
                _np.subtract.at(base, iv_e + 1, iv_bytes)
            self._base_deltas_np = base
            self._base_deltas: list[int] = base.tolist()
        else:
            self._base_deltas_np = None
            self._base_deltas = [0] * (num_tiles + 1)
            for interval in plan.onchip_intervals:
                self._apply_interval(
                    self._base_deltas, interval.start_tile, interval.end_tile, interval.num_bytes
                )
        if _np is not None:
            self._tile_seconds_arr = _np.asarray(self.tile_seconds, dtype=_np.float64)
        else:
            self._tile_seconds_arr = None

        # --------------------------------------------- incremental occupancy
        self._occ_living: dict[int, tuple[int, int]] | None = None
        self._occ_deltas = None
        self._occ_result: tuple[int, float] | None = None

        # ------------------------------------------------ batched move engine
        self._screen: MoveScreen | None = None
        self._batch_base: DLSA | None = None
        self._batch_occ: tuple[int, float] | None = None
        self._batch_deltas = None
        self._batch_pos: list[int] | None = None
        self._batch_checkpoints = None
        self._batch_latency: float | None = None
        self._batch_store_deadline: dict[int, list[int]] | None = None
        self._batch_stats = {
            "batch_calls": 0,
            "batch_moves": 0,
            "batch_deadlocks": 0,
            "batch_pruned": 0,
            "batch_sims": 0,
        }

        # ------------------------------------------------------- result memo
        if result_cache_size is None:
            result_cache_size = cache_size("RESULT", 512)
        self._results = LRUCache(result_cache_size)
        self._double_buffer: DLSA | None = None

    # ------------------------------------------------------------------ public
    @property
    def double_buffer(self) -> DLSA:
        """The plan's classical double-buffer DLSA (computed once, cached)."""
        if self._double_buffer is None:
            from repro.core.double_buffer import double_buffer_dlsa

            self._double_buffer = double_buffer_dlsa(self.plan)
        return self._double_buffer

    def cost_floor(self, objective) -> float:
        """A lower bound on ``objective`` over every DLSA of this plan.

        A DLSA only re-times the plan's fixed tiles and DRAM tensors, so
        energy is the plan constant ``core_energy_j + dram_energy_j`` and
        latency can never beat either resource's serial sum (the compute
        pipe must run every tile, the DRAM channel must move every tensor).
        The pipelined Buffer Allocator uses this to skip a stage-2
        refinement whose plan provably cannot beat the incumbent.
        """
        return objective(
            self.core_energy_j + self.dram_energy_j,
            max(self.compute_time_sum_s, self.dram_time_sum_s),
        )

    def evaluate(
        self,
        dlsa: DLSA,
        buffer_budget_bytes: int | None = None,
        include_trace: bool = False,
    ) -> EvaluationResult:
        """Evaluate one DLSA against this context's plan.

        Semantics match :meth:`ScheduleEvaluator.evaluate_reference` exactly;
        see the module docstring for the engine's shortcuts.
        """
        if buffer_budget_bytes is None:
            buffer_budget_bytes = self.accelerator.gbuf_bytes
        if not include_trace:
            # The memo key is the exact DLSA content as a raw tuple: tuple
            # hashing is C-speed, whereas a digest fingerprint costs a repr
            # of the whole state per call — far more than the evaluation it
            # would save (fingerprints stay the right key for the coarser,
            # cross-plan caches).  The context's own double-buffer DLSA is
            # immutable and unique, so identity stands in for its content —
            # stage 1 evaluates exactly this DLSA once per candidate plan
            # and skips the O(n) key construction.
            if dlsa is self._double_buffer:
                key = ("__dbuf__", buffer_budget_bytes)
            else:
                key = (dlsa.order, tuple(dlsa.living.items()), buffer_budget_bytes)
            cached = self._results.get(key)
            if cached is not None:
                return cached
        result = self._evaluate_uncached(dlsa, buffer_budget_bytes, include_trace)
        if not include_trace:
            self._results.put(key, result)
        return result

    def evaluate_moves(
        self,
        base: DLSA,
        moves,
        buffer_budget_bytes: int | None = None,
        thresholds=None,
        bound_cost_fn=None,
    ) -> list[EvaluationResult | None]:
        """Evaluate a batch of candidate moves against a common base DLSA.

        For every :class:`~repro.notation.dlsa.DLSAMove` this returns
        exactly what ``evaluate(move.apply(base))`` would — but candidates
        that would deadlock are detected by the exact structural criterion
        (:class:`~repro.core.roofline.MoveScreen`) and get their deadlock
        result without a simulation, and, when ``bound_cost_fn`` is given,
        feasible candidates whose conservative roofline cost bound already
        reaches their entry in ``thresholds`` are *pruned*: their slot holds
        ``None``, which callers treat as an infinite cost.  A pruned
        candidate is guaranteed to have a true cost at or above its
        threshold, so the SA trajectory is unchanged by pruning.

        ``bound_cost_fn(bound_latency_s, max_buffer_bytes)`` must map the
        latency lower bound to a cost lower bound (the caller owns the
        objective and the buffer penalty; occupancy is exact either way).
        """
        if buffer_budget_bytes is None:
            buffer_budget_bytes = self.accelerator.gbuf_bytes
        if self._screen is None:
            self._screen = MoveScreen(self)
        if self._batch_base is not base:
            self._rebase_batch(base)
        stats = self._batch_stats
        stats["batch_calls"] += 1
        moves = list(moves)
        occupancies: list[tuple[int, float]] = []
        resumes: list[tuple[str, int] | None] = []
        prune_checks: list = []
        for index, move in enumerate(moves):
            stats["batch_moves"] += 1
            threshold = math.inf if thresholds is None else thresholds[index]
            occupancy = self._move_occupancy(move)
            resume, remaining = self._resume_info(move)
            prune_check = None
            if (
                bound_cost_fn is not None
                and math.isfinite(threshold)
                and remaining >= _PREFILTER_MIN_WORK
            ):
                prune_check = (
                    lambda bound, _mb=occupancy[0], _t=threshold: bound_cost_fn(bound, _mb) >= _t
                )
            occupancies.append(occupancy)
            resumes.append(resume)
            prune_checks.append(prune_check)
        # The whole window is screened in one batched pass — the deadlock
        # criterion and the bound rounds over all candidates at once — before
        # any surviving candidate pays for a full co-simulation.
        verdicts = self._screen.assess_batch(moves, prune_checks)
        results: list[EvaluationResult | None] = []
        for move, occupancy, resume, (feasible, pruned) in zip(
            moves, occupancies, resumes, verdicts
        ):
            if not feasible:
                stats["batch_deadlocks"] += 1
                results.append(self._deadlock_result(*occupancy))
                continue
            if pruned:
                stats["batch_pruned"] += 1
                results.append(None)
                continue
            stats["batch_sims"] += 1
            results.append(
                self._batch_full_result(move, occupancy, buffer_budget_bytes, resume)
            )
        return results

    def _resume_info(self, move) -> tuple[tuple[str, int] | None, float]:
        """Where a candidate's simulation diverges from the base's.

        Returns ``(resume, remaining)``: ``resume`` is ``None`` (no base
        checkpoints — simulate from scratch), ``("=", 0)`` (the move provably
        changes no simulation input — the base latency is the candidate's),
        or ``("P", p0)`` / ``("T", t0)`` identifying the first order position
        or tile whose inputs the move touches.  ``remaining`` estimates the
        fraction of the co-sim left after the resume point; the roofline
        escalation is only worth buying for candidates with enough remaining
        work (:data:`_PREFILTER_MIN_WORK`), and skipping it for the cheap
        ones cannot change the trajectory — pruning only ever discards
        candidates that are provably rejected anyway.
        """
        if self._batch_checkpoints is None:
            return None, 1.0
        if move.kind == "order":
            p0 = move.source if move.source < move.position else move.position
            return ("P", p0), 1.0 - p0 / (self._num_tensors or 1)
        tid = move.tid
        if self._is_load[tid]:
            if move.span[0] == self._batch_base.living[tid][0]:
                return ("=", 0), 0.0
            p0 = self._batch_pos[tid]
            return ("P", p0), 1.0 - p0 / (self._num_tensors or 1)
        end_old = self._batch_base.living[tid][1]
        end_new = move.span[1]
        t0 = end_old if end_old < end_new else end_new
        if end_old == end_new or t0 >= self._num_tiles:
            return ("=", 0), 0.0
        return ("T", t0), 1.0 - t0 / (self._num_tiles or 1)

    def cache_stats(self) -> dict:
        """Result-memo statistics plus evaluation and batch-screen counters."""
        stats = self._results.stats()
        stats["evaluations"] = self.eval_count
        stats.update(self._batch_stats)
        return stats

    # ---------------------------------------------------------------- internal
    def _evaluate_uncached(
        self, dlsa: DLSA, buffer_budget_bytes: int, include_trace: bool
    ) -> EvaluationResult:
        self.eval_count += 1
        plan = self.plan
        max_buffer, avg_buffer = self._occupancy(dlsa.living)

        timing = self._simulate(dlsa)
        if timing is None:
            return self._deadlock_result(max_buffer, avg_buffer)
        tile_finish, transfer_start, transfer_finish, latency = timing

        feasible = max_buffer <= buffer_budget_bytes
        reason = "" if feasible else (
            f"peak buffer {max_buffer} bytes exceeds budget {buffer_budget_bytes} bytes"
        )

        tile_records: tuple[TileRecord, ...] = ()
        transfer_records: tuple[TransferRecord, ...] = ()
        if include_trace:
            tile_seconds = self.tile_seconds
            tile_records = tuple(
                TileRecord(index=i, start_s=finish - tile_seconds[i], finish_s=finish)
                for i, finish in enumerate(tile_finish)
            )
            transfer_records = tuple(
                TransferRecord(tid=tid, start_s=transfer_start[tid], finish_s=transfer_finish[tid])
                for tid in range(self._num_tensors)
            )

        return EvaluationResult(
            feasible=feasible,
            reason=reason,
            latency_s=latency,
            energy_j=self.core_energy_j + self.dram_energy_j,
            core_energy_j=self.core_energy_j,
            dram_energy_j=self.dram_energy_j,
            compute_time_sum_s=self.compute_time_sum_s,
            dram_time_sum_s=self.dram_time_sum_s,
            total_ops=self.total_ops,
            total_dram_bytes=self.total_dram_bytes,
            max_buffer_bytes=max_buffer,
            avg_buffer_bytes=avg_buffer,
            num_tiles=plan.num_tiles,
            num_dram_tensors=plan.num_dram_tensors,
            num_lgs=plan.num_lgs,
            num_flgs=plan.num_flgs,
            tile_records=tile_records,
            transfer_records=transfer_records,
        )

    def _deadlock_result(self, max_buffer: int, avg_buffer: float) -> EvaluationResult:
        """The deadlock result, shared by the serial and batched paths."""
        plan = self.plan
        return EvaluationResult(
            feasible=False,
            reason="deadlock between the DRAM Tensor Order and the compute sequence",
            max_buffer_bytes=max_buffer,
            avg_buffer_bytes=avg_buffer,
            num_tiles=plan.num_tiles,
            num_dram_tensors=plan.num_dram_tensors,
            num_lgs=plan.num_lgs,
            num_flgs=plan.num_flgs,
        )

    # ------------------------------------------------------ batched move engine
    def _rebase_batch(self, base: DLSA) -> None:
        """Cache the screen arrays and occupancy snapshot of a new batch base."""
        self._batch_base = base
        self._screen.rebase(base)
        # Runs the serial incremental path, so the occupancy cache also lands
        # on the base — the accepted candidate's later evaluation patches
        # from it.  The delta snapshot is copied: ``_occ_deltas`` is mutated
        # in place by the serial path when full evaluations interleave.
        self._batch_occ = self._occupancy(base.living)
        if _np is not None:
            self._batch_deltas = _np.asarray(self._occ_deltas, dtype=_np.int64)
        else:
            self._batch_deltas = list(self._occ_deltas)
        # Base co-sim with per-event checkpoints: every surviving candidate
        # shares a prefix of the base's simulation (a move perturbs one order
        # position, one Living start, or one store deadline), so its own
        # simulation can resume mid-flight from the base's recorded state at
        # the divergence point instead of replaying the common prefix.
        order = self._screen._order_list
        pos = [0] * self._num_tensors
        for p, tid in enumerate(order):
            pos[tid] = p
        self._batch_pos = pos
        self._checkpoint_base(order)

    def _move_occupancy(self, move) -> tuple[int, float]:
        """Occupancy of one candidate move, patched from the base snapshot.

        Order moves keep every Living Duration, so the base scan is reused
        verbatim; a living move shifts one tensor's interval, so the base
        delta snapshot is copied, patched with the two interval updates, and
        rescanned — the same arithmetic as the serial incremental path.
        """
        if self._num_tiles == 0:
            return 0, 0.0
        if move.kind == "order":
            return self._batch_occ
        tid = move.tid
        old_span = self._batch_base.living[tid]
        new_span = move.span
        if new_span == old_span:
            return self._batch_occ
        num_bytes = self._num_bytes[tid]
        if _np is not None:
            deltas = self._batch_deltas.copy()
        else:
            deltas = list(self._batch_deltas)
        span = self._tensor_span(tid, old_span[0], old_span[1])
        self._apply_interval(deltas, span[0], span[1], -num_bytes)
        span = self._tensor_span(tid, new_span[0], new_span[1])
        self._apply_interval(deltas, span[0], span[1], num_bytes)
        return self._scan_occupancy(deltas)

    def _batch_full_result(
        self,
        move,
        occupancy: tuple[int, float],
        buffer_budget_bytes: int,
        resume: tuple[str, int] | None,
    ) -> EvaluationResult:
        """Full co-simulation of a surviving batch candidate.

        The candidate's order/Living-Duration lists are patched from the
        screen's base copies, so the simulation runs without materialising a
        DLSA, re-deriving occupancy, or paying the result-memo bookkeeping —
        the arithmetic is the one from :meth:`_simulate`, float for float.
        """
        self.eval_count += 1
        order, starts, ends = self._screen.candidate_lists(move)
        # Everything the base processed before the resume point is
        # bit-identical for the candidate, so the co-sim restarts from the
        # base checkpoint; moves that provably change no simulation input
        # reuse the base latency outright.  Order and Living-start moves
        # keep every store deadline, so they share the base's table.
        latency: float | None
        if resume is None:
            latency = self._simulate_arrays(order, starts, ends)
        elif resume[0] == "=":
            latency = self._batch_latency
        elif resume[0] == "P":
            latency = self._simulate_arrays(
                order, starts, ends,
                resume=resume,
                store_deadline=self._batch_store_deadline,
            )
        else:
            latency = self._simulate_arrays(order, starts, ends, resume=resume)
        max_buffer, avg_buffer = occupancy
        if latency is None:  # unreachable: the screen's criterion is exact
            return self._deadlock_result(max_buffer, avg_buffer)
        plan = self.plan
        feasible = max_buffer <= buffer_budget_bytes
        reason = "" if feasible else (
            f"peak buffer {max_buffer} bytes exceeds budget {buffer_budget_bytes} bytes"
        )
        return EvaluationResult(
            feasible=feasible,
            reason=reason,
            latency_s=latency,
            energy_j=self.core_energy_j + self.dram_energy_j,
            core_energy_j=self.core_energy_j,
            dram_energy_j=self.dram_energy_j,
            compute_time_sum_s=self.compute_time_sum_s,
            dram_time_sum_s=self.dram_time_sum_s,
            total_ops=self.total_ops,
            total_dram_bytes=self.total_dram_bytes,
            max_buffer_bytes=max_buffer,
            avg_buffer_bytes=avg_buffer,
            num_tiles=plan.num_tiles,
            num_dram_tensors=plan.num_dram_tensors,
            num_lgs=plan.num_lgs,
            num_flgs=plan.num_flgs,
        )

    # ------------------------------------------------------- buffer occupancy
    def _apply_interval(self, deltas: list[int], start: int, end: int, num_bytes: int) -> None:
        """Add one residency interval, with the seed evaluator's clamping."""
        last = self._num_tiles - 1
        if start < 0:
            start = 0
        elif start > last:
            start = last
        if end < start:
            end = start
        elif end > last:
            end = last
        deltas[start] += num_bytes
        deltas[end + 1] -= num_bytes

    def _tensor_span(self, tid: int, start: int, end: int) -> tuple[int, int]:
        """The buffer interval one tensor occupies for a given Living Duration."""
        if self._is_load[tid]:
            return start, self._last_use[tid]
        return self._first_use[tid], end - 1

    def _occupancy(self, living: dict[int, tuple[int, int]]) -> tuple[int, float]:
        """Peak and compute-time-weighted average buffer usage in bytes.

        The delta array is patched from the previously evaluated Living
        Durations when few of them changed (the common case under the DLSA
        operators); a reorder-only move reuses the cached scan entirely.
        """
        if self._num_tiles == 0:
            return 0, 0.0
        cached_living = self._occ_living
        if cached_living is not None and len(living) == len(cached_living):
            if living == cached_living:
                return self._occ_result
            changed: list[tuple[int, tuple[int, int]]] | None = []
            for tid, span in living.items():
                old_span = cached_living.get(tid)
                if old_span != span:
                    if old_span is None:  # foreign DLSA: fall back to a rebuild
                        changed = None
                        break
                    changed.append((tid, old_span))
            if changed is not None and len(changed) <= max(8, self._num_tensors // 8):
                deltas = self._occ_deltas
                for tid, (old_start, old_end) in changed:
                    span = self._tensor_span(tid, old_start, old_end)
                    self._apply_interval(deltas, span[0], span[1], -self._num_bytes[tid])
                    new_start, new_end = living[tid]
                    span = self._tensor_span(tid, new_start, new_end)
                    self._apply_interval(deltas, span[0], span[1], self._num_bytes[tid])
                return self._finish_occupancy(living, deltas)
        # Full rebuild: baseline (on-chip intervals) plus every DRAM tensor.
        # The double-buffer DLSA's Living Durations are an analytic function
        # of the plan arrays (identity-checked: the context's own cached
        # instance), so its rebuild — the one full rebuild stage 1 performs
        # per candidate plan — runs as one vectorised integer pass with the
        # exact ``_apply_interval`` clamping.
        db = self._double_buffer
        if (
            _np is not None
            and self._base_deltas_np is not None
            and db is not None
            and living is db.living
        ):
            il, nb, fu, lu = self.plan.tensor_np
            last = self._num_tiles - 1
            span_s = _np.where(il, _np.maximum(fu - 1, 0), fu)
            span_e = _np.where(il, lu, fu)
            span_s = _np.clip(span_s, 0, last)
            span_e = _np.maximum(_np.clip(span_e, 0, last), span_s)
            deltas_arr = self._base_deltas_np.copy()
            _np.add.at(deltas_arr, span_s, nb)
            _np.subtract.at(deltas_arr, span_e + 1, nb)
            return self._finish_occupancy(living, deltas_arr.tolist())
        deltas = list(self._base_deltas)
        is_load = self._is_load
        num_bytes = self._num_bytes
        first_use = self._first_use
        last_use = self._last_use
        last = self._num_tiles - 1
        for tid in range(self._num_tensors):
            start, end = living[tid]
            if is_load[tid]:
                hi = last_use[tid]
            else:
                start = first_use[tid]
                hi = end - 1
            if start < 0:
                start = 0
            elif start > last:
                start = last
            if hi < start:
                hi = start
            elif hi > last:
                hi = last
            size = num_bytes[tid]
            deltas[start] += size
            deltas[hi + 1] -= size
        return self._finish_occupancy(living, deltas)

    def _finish_occupancy(self, living, deltas) -> tuple[int, float]:
        self._occ_living = dict(living)
        self._occ_deltas = deltas
        self._occ_result = self._scan_occupancy(deltas)
        return self._occ_result

    def _scan_occupancy(self, deltas) -> tuple[int, float]:
        """Peak and weighted-average usage from a fully patched delta array."""
        num_tiles = self._num_tiles
        if _np is not None:
            usage = _np.cumsum(_np.asarray(deltas[:num_tiles], dtype=_np.int64))
            max_usage = int(usage.max())
            total = self.compute_time_sum_s
            avg = float(usage @ self._tile_seconds_arr) / total if total > 0 else 0.0
        else:  # pragma: no cover - exercised only without numpy
            usage = 0
            max_usage = 0
            weighted = 0.0
            tile_seconds = self.tile_seconds
            for index in range(num_tiles):
                usage += deltas[index]
                if usage > max_usage:
                    max_usage = usage
                weighted += usage * tile_seconds[index]
            total = self.compute_time_sum_s
            avg = weighted / total if total > 0 else 0.0
        return max_usage, avg

    # --------------------------------------------------------------- simulate
    def _simulate(
        self, dlsa: DLSA
    ) -> tuple[list[float], list[float], list[float], float] | None:
        """Co-operative simulation of the DRAM channel and the compute array.

        Identical arithmetic to the seed evaluator's ``_simulate`` (so a
        fixed-seed search takes the same trajectory), but running over the
        context's flat arrays.  Returns ``None`` on deadlock.
        """
        num_tiles = self._num_tiles
        num_tensors = self._num_tensors
        living = dlsa.living
        is_load = self._is_load
        first_use = self._first_use
        src_store_tids = self._src_store_tids
        tensor_seconds = self.tensor_seconds
        tile_seconds = self.tile_seconds
        required_loads = self._tile_required_loads

        store_deadline: dict[int, list[int]] = {}
        for tid in self._store_tids:
            end = living[tid][1]
            if end < num_tiles:
                store_deadline.setdefault(end, []).append(tid)

        tile_finish: list[float | None] = [None] * num_tiles
        finish_of: list[float | None] = [None] * num_tensors
        start_of: list[float] = [0.0] * num_tensors

        order = dlsa.order
        dram_ptr = 0
        tile_ptr = 0
        dram_free = 0.0
        compute_free = 0.0

        while dram_ptr < num_tensors or tile_ptr < num_tiles:
            progressed = False

            while dram_ptr < num_tensors:
                tid = order[dram_ptr]
                gate = 0.0
                ready = True
                if is_load[tid]:
                    start_tile = living[tid][0]
                    if start_tile > 0:
                        finish = tile_finish[start_tile - 1]
                        if finish is None:
                            ready = False
                        else:
                            gate = finish
                    if ready:
                        for store_tid in src_store_tids[tid]:
                            finish = finish_of[store_tid]
                            if finish is None:
                                ready = False
                                break
                            if finish > gate:
                                gate = finish
                else:
                    finish = tile_finish[first_use[tid]]
                    if finish is None:
                        ready = False
                    else:
                        gate = finish
                if not ready:
                    break
                start = dram_free if dram_free > gate else gate
                finish_time = start + tensor_seconds[tid]
                dram_free = finish_time
                start_of[tid] = start
                finish_of[tid] = finish_time
                dram_ptr += 1
                progressed = True

            while tile_ptr < num_tiles:
                gate = 0.0
                ready = True
                for tid in required_loads[tile_ptr]:
                    finish = finish_of[tid]
                    if finish is None:
                        ready = False
                        break
                    if finish > gate:
                        gate = finish
                if ready:
                    for tid in store_deadline.get(tile_ptr, ()):
                        finish = finish_of[tid]
                        if finish is None:
                            ready = False
                            break
                        if finish > gate:
                            gate = finish
                if not ready:
                    break
                start = compute_free if compute_free > gate else gate
                finish_time = start + tile_seconds[tile_ptr]
                compute_free = finish_time
                tile_finish[tile_ptr] = finish_time
                tile_ptr += 1
                progressed = True

            if not progressed:
                return None

        latency = dram_free if dram_free > compute_free else compute_free
        if not math.isfinite(latency):
            return None
        return (
            [f if f is not None else 0.0 for f in tile_finish],
            start_of,
            [f if f is not None else 0.0 for f in finish_of],
            latency,
        )

    def _checkpoint_base(self, order: list[int]) -> None:
        """Run the base co-sim once, recording per-event resume checkpoints.

        For every order position ``p`` the recorded state is the simulation
        the instant before position ``p`` transfers (``tile_ptr``, the two
        free times); likewise per tile.  A candidate whose structure first
        diverges from the base at position ``p0`` (or tile ``t0``) computed
        bit-identical values for everything the base processed before that
        event, so its simulation restarts from the checkpoint with the
        base's finish arrays as its prefix.  The traversal's readiness tests
        are purely structural and every value is written once, so resuming
        from a consistent prefix state yields the same floats (and the same
        deadlock verdict) as a from-scratch run.
        """
        screen = self._screen
        starts = screen._starts_list
        ends = screen._ends_list
        num_tiles = self._num_tiles
        num_tensors = self._num_tensors
        is_load = self._is_load
        first_use = self._first_use
        src_store_tids = self._src_store_tids
        tensor_seconds = self.tensor_seconds
        tile_seconds = self.tile_seconds
        required_loads = self._tile_required_loads

        store_deadline: dict[int, list[int]] = {}
        for tid in self._store_tids:
            end = ends[tid]
            if end < num_tiles:
                store_deadline.setdefault(end, []).append(tid)
        self._batch_store_deadline = store_deadline

        tile_finish: list[float | None] = [None] * num_tiles
        finish_of: list[float | None] = [None] * num_tensors
        chk_p_tile = [0] * num_tensors
        chk_p_dfree = [0.0] * num_tensors
        chk_p_cfree = [0.0] * num_tensors
        chk_t_dram = [0] * num_tiles
        chk_t_dfree = [0.0] * num_tiles
        chk_t_cfree = [0.0] * num_tiles

        dram_ptr = 0
        tile_ptr = 0
        dram_free = 0.0
        compute_free = 0.0

        while dram_ptr < num_tensors or tile_ptr < num_tiles:
            progressed = False

            while dram_ptr < num_tensors:
                tid = order[dram_ptr]
                gate = 0.0
                ready = True
                if is_load[tid]:
                    start_tile = starts[tid]
                    if start_tile > 0:
                        finish = tile_finish[start_tile - 1]
                        if finish is None:
                            ready = False
                        else:
                            gate = finish
                    if ready:
                        for store_tid in src_store_tids[tid]:
                            finish = finish_of[store_tid]
                            if finish is None:
                                ready = False
                                break
                            if finish > gate:
                                gate = finish
                else:
                    finish = tile_finish[first_use[tid]]
                    if finish is None:
                        ready = False
                    else:
                        gate = finish
                if not ready:
                    break
                chk_p_tile[dram_ptr] = tile_ptr
                chk_p_dfree[dram_ptr] = dram_free
                chk_p_cfree[dram_ptr] = compute_free
                start = dram_free if dram_free > gate else gate
                finish_time = start + tensor_seconds[tid]
                dram_free = finish_time
                finish_of[tid] = finish_time
                dram_ptr += 1
                progressed = True

            while tile_ptr < num_tiles:
                gate = 0.0
                ready = True
                for tid in required_loads[tile_ptr]:
                    finish = finish_of[tid]
                    if finish is None:
                        ready = False
                        break
                    if finish > gate:
                        gate = finish
                if ready:
                    for tid in store_deadline.get(tile_ptr, ()):
                        finish = finish_of[tid]
                        if finish is None:
                            ready = False
                            break
                        if finish > gate:
                            gate = finish
                if not ready:
                    break
                chk_t_dram[tile_ptr] = dram_ptr
                chk_t_dfree[tile_ptr] = dram_free
                chk_t_cfree[tile_ptr] = compute_free
                start = compute_free if compute_free > gate else gate
                finish_time = start + tile_seconds[tile_ptr]
                compute_free = finish_time
                tile_finish[tile_ptr] = finish_time
                tile_ptr += 1
                progressed = True

            if not progressed:
                # A base that deadlocks (the search never rebases onto one)
                # leaves no checkpoints; candidates simulate from scratch.
                self._batch_checkpoints = None
                self._batch_latency = None
                return

        latency = dram_free if dram_free > compute_free else compute_free
        self._batch_checkpoints = (
            (chk_p_tile, chk_p_dfree, chk_p_cfree),
            (chk_t_dram, chk_t_dfree, chk_t_cfree),
            tile_finish,
            finish_of,
        )
        self._batch_latency = latency if math.isfinite(latency) else None

    def _simulate_arrays(
        self,
        order: list[int],
        starts: list[int],
        ends: list[int],
        resume: tuple[str, int] | None = None,
        store_deadline: dict[int, list[int]] | None = None,
    ) -> float | None:
        """:meth:`_simulate` over flat start/end lists, returning the latency.

        The batched engine's hot path: Living Durations arrive as two plain
        lists instead of a dict, no per-tensor trace is kept beyond the
        finish times the recurrence itself needs, and the float operations
        mirror :meth:`_simulate` exactly so both paths land on bit-identical
        latencies.  ``resume`` — ``("P", p0)`` or ``("T", t0)`` — restarts
        the traversal from the base checkpoint recorded at that order
        position or tile, adopting the base's finish values for the shared
        prefix (see :meth:`_checkpoint_base`); ``store_deadline`` lets the
        caller pass the base's deadline table when the move does not touch
        store ends.
        """
        num_tiles = self._num_tiles
        num_tensors = self._num_tensors
        is_load = self._is_load
        first_use = self._first_use
        src_store_tids = self._src_store_tids
        tensor_seconds = self.tensor_seconds
        tile_seconds = self.tile_seconds
        required_loads = self._tile_required_loads

        if store_deadline is None:
            store_deadline = {}
            for tid in self._store_tids:
                end = ends[tid]
                if end < num_tiles:
                    store_deadline.setdefault(end, []).append(tid)

        if resume is not None:
            chk_p, chk_t, base_tile_finish, base_finish_of = self._batch_checkpoints
            kind, index = resume
            if kind == "P":
                dram_ptr = index
                tile_ptr = chk_p[0][index]
                dram_free = chk_p[1][index]
                compute_free = chk_p[2][index]
            else:
                tile_ptr = index
                dram_ptr = chk_t[0][index]
                dram_free = chk_t[1][index]
                compute_free = chk_t[2][index]
            tile_finish = base_tile_finish[:tile_ptr] + [None] * (num_tiles - tile_ptr)
            finish_of = list(base_finish_of)
            for p in range(dram_ptr, num_tensors):
                finish_of[order[p]] = None
        else:
            tile_finish = [None] * num_tiles
            finish_of = [None] * num_tensors
            dram_ptr = 0
            tile_ptr = 0
            dram_free = 0.0
            compute_free = 0.0

        while dram_ptr < num_tensors or tile_ptr < num_tiles:
            progressed = False

            while dram_ptr < num_tensors:
                tid = order[dram_ptr]
                gate = 0.0
                ready = True
                if is_load[tid]:
                    start_tile = starts[tid]
                    if start_tile > 0:
                        finish = tile_finish[start_tile - 1]
                        if finish is None:
                            ready = False
                        else:
                            gate = finish
                    if ready:
                        for store_tid in src_store_tids[tid]:
                            finish = finish_of[store_tid]
                            if finish is None:
                                ready = False
                                break
                            if finish > gate:
                                gate = finish
                else:
                    finish = tile_finish[first_use[tid]]
                    if finish is None:
                        ready = False
                    else:
                        gate = finish
                if not ready:
                    break
                start = dram_free if dram_free > gate else gate
                finish_time = start + tensor_seconds[tid]
                dram_free = finish_time
                finish_of[tid] = finish_time
                dram_ptr += 1
                progressed = True

            while tile_ptr < num_tiles:
                gate = 0.0
                ready = True
                for tid in required_loads[tile_ptr]:
                    finish = finish_of[tid]
                    if finish is None:
                        ready = False
                        break
                    if finish > gate:
                        gate = finish
                if ready:
                    for tid in store_deadline.get(tile_ptr, ()):
                        finish = finish_of[tid]
                        if finish is None:
                            ready = False
                            break
                        if finish > gate:
                            gate = finish
                if not ready:
                    break
                start = compute_free if compute_free > gate else gate
                finish_time = start + tile_seconds[tile_ptr]
                compute_free = finish_time
                tile_finish[tile_ptr] = finish_time
                tile_ptr += 1
                progressed = True

            if not progressed:
                return None

        latency = dram_free if dram_free > compute_free else compute_free
        if not math.isfinite(latency):
            return None
        return latency
