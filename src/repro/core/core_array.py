"""Core Array Scheduler & Evaluator: intra-tile mapping (paper Sec. V-D).

For every computing tile the ifmaps and weights are already in the GBUF and
the ofmaps go back to the GBUF; the Core Array Scheduler decides how the tile
is divided into sub-tiles across the cores and how the L0 buffers are blocked,
and the evaluator charges the GBUF<->L0 traffic, the PE-array occupancy and a
fixed per-tile overhead.  The paper reuses a classic single-layer mapper
(Timeloop / MAESTRO style); this module implements a compact equivalent: it
enumerates output-channel x spatial blockings that fit the L0 buffers and
keeps the one minimising GBUF traffic.

Results are memoised per (operator signature, tile shape) because the same
tile shape is evaluated millions of times during annealing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.accelerator import AcceleratorConfig
from repro.tiling.tile import LayerTiling
from repro.workloads.layer import Layer, OpType


@dataclass(frozen=True)
class TileCost:
    """Latency, energy and GBUF traffic of one computing tile."""

    seconds: float
    energy_j: float
    gbuf_traffic_bytes: float
    compute_cycles: float
    gbuf_cycles: float

    @property
    def bound(self) -> str:
        """Whether the tile is compute-bound or GBUF-bandwidth-bound."""
        return "compute" if self.compute_cycles >= self.gbuf_cycles else "gbuf"


def _padding_efficiency(extent: int, lanes: int) -> float:
    """Utilisation of ``lanes`` parallel lanes when mapping ``extent`` items."""
    if extent <= 0:
        return 1.0
    rounded = -(-extent // lanes) * lanes
    return extent / rounded


def _candidate_blocks(extent: int) -> list[int]:
    """Power-of-two blocking candidates up to ``extent`` (plus ``extent`` itself)."""
    blocks = []
    block = 1
    while block < extent:
        blocks.append(block)
        block *= 2
    blocks.append(extent)
    return blocks


class CoreArrayMapper:
    """Maps tiles onto the core group and evaluates their cost."""

    def __init__(self, accelerator: AcceleratorConfig) -> None:
        self._accelerator = accelerator
        self._cache: dict[tuple, TileCost] = {}

    # ------------------------------------------------------------------ public
    def evaluate_tile(self, layer: Layer, tiling: LayerTiling) -> TileCost:
        """Cost of one tile of ``layer`` under the given tiling."""
        key = self._cache_key(layer, tiling)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        if layer.op_type.uses_pe_array:
            cost = self._evaluate_pe_tile(layer, tiling)
        else:
            cost = self._evaluate_vector_tile(layer, tiling)
        self._cache[key] = cost
        return cost

    def cache_size(self) -> int:
        """Number of distinct tile shapes evaluated so far."""
        return len(self._cache)

    # ---------------------------------------------------------------- internal
    def _cache_key(self, layer: Layer, tiling: LayerTiling) -> tuple:
        # Every tiling-derived quantity the evaluators read must be part of
        # the key: two tiles with equal output shape can still differ in
        # ifmap bytes (boundary halo clamping depends on where the tile sits
        # in its feature map), and a mapper shared across graphs — the
        # pipelined stage-2 evaluator cache — would otherwise hand one
        # layer's GBUF traffic to the other's identically-shaped tile.
        out = tiling.out_tile
        return (
            layer.op_type,
            layer.in_channels,
            layer.out_channels,
            layer.kernel_h,
            layer.kernel_w,
            layer.stride_h,
            layer.stride_w,
            layer.groups,
            layer.weight_bytes,
            layer.bytes_per_element,
            out.batch,
            out.channels,
            out.height,
            out.width,
            tiling.ifmap_tile_bytes,
            tiling.ofmap_tile_bytes,
            tiling.macs_per_tile,
            tiling.vector_ops_per_tile,
        )

    def _evaluate_pe_tile(self, layer: Layer, tiling: LayerTiling) -> TileCost:
        hw = self._accelerator
        core = hw.core_array
        energy = hw.energy
        out = tiling.out_tile

        macs = tiling.macs_per_tile
        spatial_extent = out.batch * out.height * out.width
        channel_lanes = core.kc_parallel_lanes
        spatial_lanes = max(1, core.total_macs_per_cycle // channel_lanes)
        # Two candidate mappings: the Kernel-Channel-parallel mapping (channels
        # on one lane group, batch/spatial positions on the other) and a
        # flattened mapping that spreads all output elements across every lane
        # (what the Core Array Scheduler falls back to for single-token /
        # single-position tiles, e.g. LLM decode).  The scheduler picks the
        # better of the two.
        kc_efficiency = _padding_efficiency(out.channels, channel_lanes) * _padding_efficiency(
            spatial_extent, spatial_lanes
        )
        flat_efficiency = _padding_efficiency(
            out.channels * spatial_extent, core.total_macs_per_cycle
        )
        effective_macs_per_cycle = core.total_macs_per_cycle * max(kc_efficiency, flat_efficiency)
        compute_cycles = macs / max(1.0, effective_macs_per_cycle)

        gbuf_traffic = self._min_gbuf_traffic(layer, tiling)
        gbuf_cycles = gbuf_traffic / core.gbuf_bytes_per_cycle

        cycles = max(compute_cycles, gbuf_cycles) + core.tile_overhead_cycles
        seconds = hw.cycles_to_seconds(cycles)

        l0_traffic = 2.0 * macs * layer.bytes_per_element
        energy_j = (
            energy.mac_energy_j(macs)
            + energy.gbuf_energy_j(gbuf_traffic)
            + energy.l0_energy_j(l0_traffic)
        )
        return TileCost(
            seconds=seconds,
            energy_j=energy_j,
            gbuf_traffic_bytes=gbuf_traffic,
            compute_cycles=compute_cycles,
            gbuf_cycles=gbuf_cycles,
        )

    def _evaluate_vector_tile(self, layer: Layer, tiling: LayerTiling) -> TileCost:
        hw = self._accelerator
        core = hw.core_array
        energy = hw.energy

        ops = tiling.vector_ops_per_tile
        compute_cycles = ops / core.total_vector_lanes
        gbuf_traffic = float(tiling.ifmap_tile_bytes + tiling.ofmap_tile_bytes)
        gbuf_cycles = gbuf_traffic / core.gbuf_bytes_per_cycle
        cycles = max(compute_cycles, gbuf_cycles) + core.tile_overhead_cycles
        seconds = hw.cycles_to_seconds(cycles)

        l0_traffic = 2.0 * ops * layer.bytes_per_element
        energy_j = (
            energy.vector_energy_j(ops)
            + energy.gbuf_energy_j(gbuf_traffic)
            + energy.l0_energy_j(l0_traffic)
        )
        return TileCost(
            seconds=seconds,
            energy_j=energy_j,
            gbuf_traffic_bytes=gbuf_traffic,
            compute_cycles=compute_cycles,
            gbuf_cycles=gbuf_cycles,
        )

    def _min_gbuf_traffic(self, layer: Layer, tiling: LayerTiling) -> float:
        """Minimum GBUF<->L0 traffic over the enumerated L0 blockings.

        The outer loop iterates output-channel blocks (each re-reads the tile
        ifmap) and spatial blocks (each re-reads the tile weights); blocks
        must fit the aggregate W/A/O L0 capacities.  Depthwise and
        activation-activation matmuls have no weight reuse dimension, so
        their traffic is simply ifmap + weights + ofmap.
        """
        core = self._accelerator.core_array
        ifmap_bytes = float(tiling.ifmap_tile_bytes)
        ofmap_bytes = float(tiling.ofmap_tile_bytes)
        weight_bytes = float(layer.weight_bytes)
        base = ifmap_bytes + ofmap_bytes

        if layer.op_type in (OpType.DWCONV, OpType.MATMUL) or weight_bytes == 0.0:
            return base + weight_bytes

        out = tiling.out_tile
        spatial_extent = max(1, out.batch * out.height * out.width)
        out_channels = max(1, out.channels)
        wl0_total = core.wl0_bytes * core.num_cores
        al0_total = core.al0_bytes * core.num_cores
        ol0_total = core.ol0_bytes * core.num_cores

        weight_bytes_per_channel = weight_bytes / max(1, layer.out_channels)
        ifmap_bytes_per_spatial = ifmap_bytes / spatial_extent
        ofmap_bytes_per_elem = float(layer.bytes_per_element)

        best = base + weight_bytes * spatial_extent  # worst case: reload weights everywhere
        for channel_block in _candidate_blocks(out_channels):
            weight_block = weight_bytes_per_channel * channel_block
            if weight_block > wl0_total:
                continue
            for spatial_block in _candidate_blocks(spatial_extent):
                ifmap_block = ifmap_bytes_per_spatial * spatial_block
                ofmap_block = ofmap_bytes_per_elem * spatial_block * channel_block
                if ifmap_block > al0_total or ofmap_block > ol0_total:
                    continue
                channel_steps = -(-out_channels // channel_block)
                spatial_steps = -(-spatial_extent // spatial_block)
                traffic = (
                    ofmap_bytes
                    + ifmap_bytes * channel_steps
                    + weight_bytes * spatial_steps
                )
                best = min(best, traffic)
        return best
