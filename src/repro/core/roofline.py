"""Roofline-style screening of DLSA move candidates.

The DLSA stage proposes thousands of moves per accepted one, and the full
co-operative simulation is by far the most expensive way to find out that a
candidate was hopeless.  This module provides two much cheaper screens that
the batched move engine (``PlanEvaluationContext.evaluate_moves``) runs over
every candidate before deciding whether to simulate it:

**Structural feasibility** (exact).  The co-sim deadlocks iff the DRAM
Tensor Order demands a tile the compute array cannot have reached yet.  With
``pos[tid]`` the order position of a tensor, the channel can issue the first
``k`` tensors only once the compute array passed tile ``Gm[k-1]``, where the
*structural gate* of a load is ``max(Start, 0)`` (it waits for the tile
before its Living Duration) and of a store is ``first_use + 1`` (it waits
for its producing tile).  Conversely tile ``t`` needs the channel pointer to
have passed ``Rm[t]`` — the running maximum over its required loads and the
stores whose Living Duration *ends* at ``t`` — so the schedule deadlocks iff
some tile requires a channel position whose own gate lies beyond that tile
(``Gm[Rm[t]-1] > t``), or a read-back load precedes one of its source stores
in the order.  This is a pure integer criterion, bit-identical across the
numpy and pure-Python backends, and lets the engine emit the exact deadlock
``EvaluationResult`` the simulator would have produced.

**Latency lower bound** (conservative).  A roofline-flavoured decoupled
relaxation of the co-sim: the DRAM channel is first timed against an
optimistic compute timeline (pure compute prefix sums — the compute
roofline), then the compute timeline against those transfer finishes (the
bandwidth roofline), and so on.  Each pass is the exact single-resource
recurrence ``F_k = P_k + max_j<=k (gate_j - P_{j-1})``, so the rounds climb
monotonically from below towards the co-sim fixpoint and *every* round
yields a valid lower bound on the true latency.  The screen escalates: it
re-checks the caller's prune predicate after each round and stops as soon
as the candidate is proven prunable (or the round cap is reached).  The
bound is deflated by one part in 1e9 so float-rounding differences between
backends can never push it past the simulated latency.  The search uses it
to prune candidates whose bound already reaches the acceptance threshold:
such moves would certainly be rejected, so pruning cannot change the
trajectory (``REPRO_ROOFLINE_PREFILTER`` gates this, default on).
"""

from __future__ import annotations

from typing import Callable

try:  # numpy is optional: the screen falls back to pure Python without it.
    import numpy as _np
except ImportError:  # pragma: no cover - the image ships numpy
    _np = None

from repro.core.knobs import read_flag
from repro.notation.dlsa import DLSA, DLSAMove

_BOUND_MAX_ROUNDS = 4
# Deflation applied to the lower bound: large enough to absorb any
# float-rounding drift versus the simulator's own accumulation order,
# small enough to keep the bound tight (observed tightness 0.75-0.95
# after two rounds, tighter as the escalation converges).
_BOUND_SAFETY = 1.0 - 1e-9

PruneCheck = Callable[[float], bool]


def prefilter_enabled() -> bool:
    """Whether the roofline pre-filter is on (``REPRO_ROOFLINE_PREFILTER``).

    Resolved through the knob registry: an unrecognised spelling warns with
    a ``RuntimeWarning`` and keeps the default (on) instead of the old
    behaviour of treating any unknown string as truthy.
    """
    return read_flag("REPRO_ROOFLINE_PREFILTER", default=True)


class MoveScreen:
    """Per-context candidate screen, rebased onto each batch's base DLSA.

    Built once per :class:`~repro.core.eval_context.PlanEvaluationContext`
    (the constructor captures the plan's static structure), then
    :meth:`rebase` caches the derived arrays of the current base DLSA so
    :meth:`assess` can judge each move from O(n) array patches instead of
    materialising full candidates.
    """

    def __init__(self, ctx) -> None:
        self._n = ctx._num_tensors
        self._T = ctx._num_tiles
        self._is_load = ctx._is_load
        self._first_use = ctx._first_use
        self._tensor_seconds = ctx.tensor_seconds
        self._tile_seconds = ctx.tile_seconds
        self._store_tids = ctx._store_tids
        self._src_store_tids = ctx._src_store_tids
        self._required_loads = ctx._tile_required_loads
        self._use_np = _np is not None
        self._base: DLSA | None = None
        self._lw_pairs: list[tuple[int, tuple[int, ...]]] = [
            (tid, self._src_store_tids[tid])
            for tid in range(self._n)
            if self._src_store_tids[tid]
        ]
        if self._use_np:
            self._init_np()

    # ------------------------------------------------------------------ public
    def rebase(self, dlsa: DLSA) -> None:
        """Cache the derived arrays of ``dlsa``; moves are judged against it."""
        if self._base is dlsa:
            return
        self._base = dlsa
        n = self._n
        living = dlsa.living
        order_list = list(dlsa.order)
        starts_list = [0] * n
        ends_list = [0] * n
        for tid in range(n):
            starts_list[tid], ends_list[tid] = living[tid]
        self._order_list = order_list
        self._starts_list = starts_list
        self._ends_list = ends_list
        if self._use_np:
            self._rebase_np()
        else:
            self._rebase_py()

    def assess(self, move: DLSAMove, prune_check: PruneCheck | None = None) -> tuple[bool, bool]:
        """Judge one move against the current base.

        Returns ``(feasible, pruned)``: ``feasible`` is the *exact* deadlock
        verdict the co-sim would reach; when the move is feasible and
        ``prune_check`` is given, the roofline bound is escalated round by
        round and ``pruned`` reports whether ``prune_check(bound)`` proved
        the candidate rejectable without a simulation.
        """
        if self._base is None:
            raise RuntimeError("MoveScreen.assess called before rebase")
        if self._use_np:
            return self._assess_np(move, prune_check)
        return self._assess_py(move, prune_check)

    def assess_batch(self, moves, prune_checks) -> list[tuple[bool, bool]]:
        """Judge a whole speculation window in shared whole-batch passes.

        Semantically ``[assess(m, c) for m, c in zip(moves, prune_checks)]``
        — and exactly that with the pure-Python backend or on degenerate
        plans — but with numpy the deadlock screen runs as single
        ``(M, n)``/``(M, T)`` matrix passes over *all* candidates at once
        (one fancy-indexed gather, one running-max, one ``reduceat`` per
        quantity instead of one per move), and the roofline bound rounds run
        as a batched Jacobi over the surviving rows with an active mask.
        Every row reproduces the per-move arithmetic op for op, so the
        verdicts are bit-identical to the serial screen.
        """
        moves = list(moves)
        prune_checks = list(prune_checks)
        if self._base is None:
            raise RuntimeError("MoveScreen.assess_batch called before rebase")
        if not self._use_np or self._n == 0 or self._T == 0 or len(moves) < 2:
            return [
                self.assess(move, check) for move, check in zip(moves, prune_checks)
            ]
        return self._assess_batch_np(moves, prune_checks)

    def candidate_lists(self, move: DLSAMove) -> tuple[list[int], list[int], list[int]]:
        """The candidate's ``(order, starts, ends)`` as plain lists.

        Patched from the base lists; unchanged components are shared (the
        simulator only reads them).  Used by the batched engine to run the
        full co-sim of a surviving candidate without materialising a DLSA.
        """
        order = self._order_list
        starts = self._starts_list
        ends = self._ends_list
        if move.kind == "order":
            i, j, tid = move.source, move.position, move.tid
            order2 = list(order)
            if j > i:
                order2[i:j] = order[i + 1 : j + 1]
            else:
                order2[j + 1 : i + 1] = order[j:i]
            order2[j] = tid
            return order2, starts, ends
        if self._is_load[move.tid]:
            starts2 = list(starts)
            starts2[move.tid] = move.span[0]
            return order, starts2, ends
        ends2 = list(ends)
        ends2[move.tid] = move.span[1]
        return order, starts, ends2

    # ------------------------------------------------------------ numpy backend
    def _init_np(self) -> None:
        n, T = self._n, self._T
        self._il = _np.asarray(self._is_load, dtype=bool)
        self._fu = _np.asarray(self._first_use, dtype=_np.int64)
        self._ts = _np.asarray(self._tensor_seconds, dtype=_np.float64)
        self._qs = _np.asarray(self._tile_seconds, dtype=_np.float64)
        self._Cq = _np.cumsum(self._qs)
        self._zero1 = _np.zeros(1, dtype=_np.float64)
        self._Cq_pad = _np.concatenate((self._zero1, self._Cq))
        self._Qshift = self._Cq_pad[:T]
        self._t_arr = _np.arange(T, dtype=_np.int64)
        # Required loads per tile, CSR: values are judged via reduceat with a
        # trailing pad element (reduceat yields the element *at* the offset
        # for empty segments, so those rows are masked out afterwards).
        req_flat: list[int] = []
        req_starts: list[int] = []
        for tids in self._required_loads:
            req_starts.append(len(req_flat))
            req_flat.extend(tids)
        self._req_flat = _np.asarray(req_flat, dtype=_np.int64)
        self._req_starts = _np.asarray(req_starts, dtype=_np.int64)
        self._req_empty = (
            _np.diff(_np.append(self._req_starts, len(req_flat))) == 0
            if T
            else _np.zeros(0, dtype=bool)
        )
        # Loads that read back another LG's stores, CSR (never empty rows).
        lw_starts: list[int] = []
        lw_flat: list[int] = []
        for _tid, src in self._lw_pairs:
            lw_starts.append(len(lw_flat))
            lw_flat.extend(src)
        self._lw_tids = _np.asarray([tid for tid, _src in self._lw_pairs], dtype=_np.int64)
        self._lw_flat = _np.asarray(lw_flat, dtype=_np.int64)
        self._lw_starts = _np.asarray(lw_starts, dtype=_np.int64)
        # Condition-A pairs: (load position, source-store position) checks.
        if self._lw_pairs:
            lengths = _np.diff(_np.append(self._lw_starts, len(lw_flat)))
            self._pa_load = _np.repeat(self._lw_tids, lengths)
        else:
            self._pa_load = _np.zeros(0, dtype=_np.int64)
        self._store_arr = _np.asarray(self._store_tids, dtype=_np.int64)
        self._store_index = _np.full(max(n, 1), -1, dtype=_np.int64)
        if self._store_arr.size:
            self._store_index[self._store_arr] = _np.arange(self._store_arr.size)

    def _tile_max_np(self, values, zero):
        """Per-tile max over CSR ``values`` (aligned with ``req_flat``)."""
        if self._T == 0:
            return values[:0]
        if values.size == 0:
            return _np.full(self._T, zero, dtype=values.dtype)
        padded = _np.append(values, zero)
        seg = _np.maximum.reduceat(padded, self._req_starts)
        seg[self._req_empty] = zero
        return seg

    def _rebase_np(self) -> None:
        n = self._n
        order = _np.asarray(self._order_list, dtype=_np.int64)
        pos = _np.empty(n, dtype=_np.int64)
        pos[order] = _np.arange(n, dtype=_np.int64)
        self._order = order
        self._pos = pos
        self._starts = _np.asarray(self._starts_list, dtype=_np.int64)
        self._ends = _np.asarray(self._ends_list, dtype=_np.int64)
        # Structural gates: per tensor, then laid out in order space.
        self._g_t = _np.where(self._il, _np.maximum(self._starts, 0), self._fu + 1)
        self._g_o = self._g_t[order]
        self._Gm = _np.maximum.accumulate(self._g_o) if n else self._g_o
        self._condA = bool(
            (pos[self._lw_flat] < pos[self._pa_load]).all()
        ) if self._pa_load.size else True
        req_vals = pos[self._req_flat] + 1
        self._R_req = self._tile_max_np(req_vals, _np.int64(0))
        self._s_pos = pos[self._store_arr]
        self._s_end = self._ends[self._store_arr]
        R_full = self._R_req.copy()
        valid = self._s_end < self._T
        if valid.any():
            _np.maximum.at(R_full, self._s_end[valid], self._s_pos[valid] + 1)
        self._Rm = _np.maximum.accumulate(R_full) if self._T else R_full
        mask = self._Rm > 0
        self._chk_idx = self._Rm[mask] - 1
        self._chk_t = self._t_arr[mask]
        # Channel prefix sums of the base order, reused by living-move bounds.
        ts_o = self._ts[order]
        self._P = _np.cumsum(ts_o)
        self._Pshift = _np.concatenate((self._zero1, self._P[:-1])) if n else ts_o

    def _check_np(self, Gm, Rm) -> bool:
        mask = Rm > 0
        if not mask.any():
            return True
        return bool((Gm[Rm[mask] - 1] <= self._t_arr[mask]).all())

    def _assess_np(self, move: DLSAMove, prune_check: PruneCheck | None) -> tuple[bool, bool]:
        n = self._n
        order2, pos2 = self._order, self._pos
        starts2, ends2 = self._starts, self._ends
        P, Pshift = self._P, self._Pshift
        if move.kind == "order":
            i, j, tid = move.source, move.position, move.tid
            order2 = self._order.copy()
            pos2 = self._pos.copy()
            if j > i:
                shifted = self._order[i + 1 : j + 1]
                order2[i:j] = shifted
                pos2[shifted] -= 1
            else:
                shifted = self._order[j:i]
                order2[j + 1 : i + 1] = shifted
                pos2[shifted] += 1
            order2[j] = tid
            pos2[tid] = j
            condA = bool(
                (pos2[self._lw_flat] < pos2[self._pa_load]).all()
            ) if self._pa_load.size else True
            if not condA:
                return False, False
            Gm2 = _np.maximum.accumulate(self._g_t[order2])
            R2 = self._tile_max_np(pos2[self._req_flat] + 1, _np.int64(0))
            valid = self._s_end < self._T
            if valid.any():
                _np.maximum.at(R2, self._s_end[valid], pos2[self._store_arr][valid] + 1)
            Rm2 = _np.maximum.accumulate(R2) if self._T else R2
            if not self._check_np(Gm2, Rm2):
                return False, False
            if prune_check is None:
                return True, False
            ts_o = self._ts[order2]
            P = _np.cumsum(ts_o)
            Pshift = _np.concatenate((self._zero1, P[:-1])) if n else ts_o
        elif self._is_load[move.tid]:
            tid = move.tid
            if not self._condA:
                return False, False
            new_start = move.span[0]
            g_o2 = self._g_o.copy()
            g_o2[self._pos[tid]] = new_start if new_start > 0 else 0
            Gm2 = _np.maximum.accumulate(g_o2)
            if self._chk_idx.size and not (Gm2[self._chk_idx] <= self._chk_t).all():
                return False, False
            if prune_check is None:
                return True, False
            starts2 = self._starts.copy()
            starts2[tid] = new_start
        else:
            tid = move.tid
            if not self._condA:
                return False, False
            new_end = move.span[1]
            s_end2 = self._s_end.copy()
            s_end2[self._store_index[tid]] = new_end
            R2 = self._R_req.copy()
            valid = s_end2 < self._T
            if valid.any():
                _np.maximum.at(R2, s_end2[valid], self._s_pos[valid] + 1)
            Rm2 = _np.maximum.accumulate(R2) if self._T else R2
            if not self._check_np(self._Gm, Rm2):
                return False, False
            if prune_check is None:
                return True, False
            ends2 = self._ends.copy()
            ends2[tid] = new_end
        return True, self._prune_np(order2, pos2, starts2, ends2, P, Pshift, prune_check)

    def _prune_np(self, order2, pos2, starts2, ends2, P, Pshift, prune_check) -> bool:
        n, T = self._n, self._T
        if n == 0 and T == 0:
            return prune_check(0.0)
        C = self._Cq
        Cpad = self._Cq_pad
        F = None
        lw_pos = pos2[self._lw_flat] if self._lw_flat.size else None
        s_end = ends2[self._store_arr]
        valid = s_end < T
        dl_ends = s_end[valid]
        dl_pos = pos2[self._store_arr][valid]
        req_pos = pos2[self._req_flat]
        starts_clipped = _np.maximum(starts2, 0)
        prev_bound = -1.0
        for _ in range(_BOUND_MAX_ROUNDS):
            # Channel pass against the current optimistic compute timeline.
            own = _np.where(self._il, Cpad[starts_clipped], C[self._fu])
            if F is not None and lw_pos is not None:
                srcmax = _np.maximum.reduceat(F[lw_pos], self._lw_starts)
                own[self._lw_tids] = _np.maximum(own[self._lw_tids], srcmax)
            d = own[order2] - Pshift
            m = _np.maximum(_np.maximum.accumulate(d), 0.0)
            F = P + m
            # Tile pass against those transfer finishes.
            h = self._tile_max_np(F[req_pos], 0.0)
            if dl_ends.size:
                _np.maximum.at(h, dl_ends, F[dl_pos])
            d2 = h - self._Qshift
            m2 = _np.maximum(_np.maximum.accumulate(d2), 0.0)
            C = self._Cq + m2
            bound = float(F[n - 1]) if n else 0.0
            if T and float(C[T - 1]) > bound:
                bound = float(C[T - 1])
            if prune_check(bound * _BOUND_SAFETY):
                return True
            if bound == prev_bound:
                # The rounds climb monotonically towards the co-sim fixpoint;
                # a stalled bound has converged and can never prune later.
                return False
            prev_bound = bound
            Cpad = _np.concatenate((self._zero1, C))
        return False

    def _tile_max_batch(self, values, zero):
        """Row-wise per-tile max over CSR ``values`` of shape ``(A, R)``."""
        rows = values.shape[0]
        if values.shape[1] == 0:
            return _np.full((rows, self._T), zero, dtype=values.dtype)
        pad = _np.full((rows, 1), zero, dtype=values.dtype)
        padded = _np.concatenate((values, pad), axis=1)
        seg = _np.maximum.reduceat(padded, self._req_starts, axis=1)
        seg[:, self._req_empty] = zero
        return seg

    def _assess_batch_np(self, moves, prune_checks) -> list[tuple[bool, bool]]:
        n, T = self._n, self._T
        num_moves = len(moves)
        # Patched per-row state.  Only the one touched slice/entry differs
        # per move, so the patch loop is O(move size); all screening math
        # below runs on the full (M, n)/(M, T) matrices in one pass.
        order2 = _np.tile(self._order, (num_moves, 1))
        pos2 = _np.tile(self._pos, (num_moves, 1))
        starts2 = _np.tile(self._starts, (num_moves, 1))
        ends2 = _np.tile(self._ends, (num_moves, 1))
        gates = self._g_t[order2]
        for row, move in enumerate(moves):
            if move.kind == "order":
                i, j, tid = move.source, move.position, move.tid
                if j > i:
                    shifted = self._order[i + 1 : j + 1]
                    order2[row, i:j] = shifted
                    pos2[row, shifted] -= 1
                else:
                    shifted = self._order[j:i]
                    order2[row, j + 1 : i + 1] = shifted
                    pos2[row, shifted] += 1
                order2[row, j] = tid
                pos2[row, tid] = j
                gates[row] = self._g_t[order2[row]]
            elif self._is_load[move.tid]:
                tid = move.tid
                new_start = move.span[0]
                starts2[row, tid] = new_start
                gates[row, self._pos[tid]] = new_start if new_start > 0 else 0
            else:
                ends2[row, move.tid] = move.span[1]
        # Whole-batch deadlock screen: exact structural criterion per row.
        if self._pa_load.size:
            condA = (pos2[:, self._lw_flat] < pos2[:, self._pa_load]).all(axis=1)
        else:
            condA = _np.ones(num_moves, dtype=bool)
        Gm2 = _np.maximum.accumulate(gates, axis=1)
        R2 = self._tile_max_batch(pos2[:, self._req_flat] + 1, _np.int64(0))
        s_end2 = ends2[:, self._store_arr]
        s_pos2 = pos2[:, self._store_arr]
        valid = s_end2 < T
        if valid.any():
            rows = _np.nonzero(valid)[0]
            _np.maximum.at(
                R2.reshape(-1), rows * T + s_end2[valid], s_pos2[valid] + 1
            )
        Rm2 = _np.maximum.accumulate(R2, axis=1)
        mask = Rm2 > 0
        checks = _np.take_along_axis(Gm2, _np.maximum(Rm2 - 1, 0), axis=1)
        ok = _np.where(mask, checks <= self._t_arr[None, :], True).all(axis=1)
        feasible = condA & ok
        pruned = _np.zeros(num_moves, dtype=bool)
        rowsel = [
            row
            for row in range(num_moves)
            if feasible[row] and prune_checks[row] is not None
        ]
        if rowsel:
            selection = _np.asarray(rowsel, dtype=_np.int64)
            pruned[selection] = self._prune_batch_np(
                order2[selection],
                pos2[selection],
                starts2[selection],
                ends2[selection],
                [prune_checks[row] for row in rowsel],
            )
        return [(bool(feasible[row]), bool(pruned[row])) for row in range(num_moves)]

    def _prune_batch_np(self, order2, pos2, starts2, ends2, prune_checks):
        """Batched Jacobi bound rounds over the surviving rows.

        Each round applies the exact per-row op sequence of :meth:`_prune_np`
        as axis-1 matrix passes; the active mask retires a row as soon as it
        is proven prunable or its bound converges, exactly where the serial
        escalation would have stopped calling ``prune_check``.
        """
        n, T = self._n, self._T
        num_rows = order2.shape[0]
        # Channel prefix sums: cumsum over the same values in the same order
        # yields the same floats whether the order is the base's (living
        # moves) or a patched one (order moves), so one uniform pass serves
        # both — matching _prune_np's base-P reuse bit for bit.
        P = _np.cumsum(self._ts[order2], axis=1)
        zeros_col = _np.zeros((num_rows, 1), dtype=_np.float64)
        Pshift = _np.concatenate((zeros_col, P[:, :-1]), axis=1)
        C = _np.tile(self._Cq, (num_rows, 1))
        Cpad = _np.concatenate((zeros_col, C), axis=1)
        F = None
        lw_pos = pos2[:, self._lw_flat] if self._lw_flat.size else None
        s_end = ends2[:, self._store_arr]
        s_pos = pos2[:, self._store_arr]
        valid = s_end < T
        deadline_rows = _np.nonzero(valid)[0]
        req_pos = pos2[:, self._req_flat]
        starts_clipped = _np.maximum(starts2, 0)
        il_row = self._il[None, :]
        pruned = _np.zeros(num_rows, dtype=bool)
        active = _np.ones(num_rows, dtype=bool)
        prev_bound = _np.full(num_rows, -1.0)
        for _ in range(_BOUND_MAX_ROUNDS):
            own = _np.where(
                il_row,
                _np.take_along_axis(Cpad, starts_clipped, axis=1),
                C[:, self._fu],
            )
            if F is not None and lw_pos is not None:
                src = _np.take_along_axis(F, lw_pos, axis=1)
                srcmax = _np.maximum.reduceat(src, self._lw_starts, axis=1)
                own[:, self._lw_tids] = _np.maximum(own[:, self._lw_tids], srcmax)
            d = _np.take_along_axis(own, order2, axis=1) - Pshift
            m = _np.maximum(_np.maximum.accumulate(d, axis=1), 0.0)
            F = P + m
            h = self._tile_max_batch(_np.take_along_axis(F, req_pos, axis=1), 0.0)
            if deadline_rows.size:
                _np.maximum.at(
                    h.reshape(-1),
                    deadline_rows * T + s_end[valid],
                    _np.take_along_axis(F, s_pos, axis=1)[valid],
                )
            d2 = h - self._Qshift[None, :]
            m2 = _np.maximum(_np.maximum.accumulate(d2, axis=1), 0.0)
            C = self._Cq[None, :] + m2
            bound = _np.maximum(F[:, n - 1], C[:, T - 1])
            for row in _np.nonzero(active)[0]:
                value = float(bound[row])
                if prune_checks[row](value * _BOUND_SAFETY):
                    pruned[row] = True
                    active[row] = False
                elif value == prev_bound[row]:
                    active[row] = False
                else:
                    prev_bound[row] = value
            if not active.any():
                break
            Cpad = _np.concatenate((zeros_col, C), axis=1)
        return pruned

    # ------------------------------------------------------ pure-Python backend
    def _rebase_py(self) -> None:
        n = self._n
        order = self._order_list
        pos = [0] * n
        for k, tid in enumerate(order):
            pos[tid] = k
        self._pos = pos
        is_load = self._is_load
        first_use = self._first_use
        starts = self._starts_list
        g_t = [0] * n
        for tid in range(n):
            if is_load[tid]:
                start = starts[tid]
                g_t[tid] = start if start > 0 else 0
            else:
                g_t[tid] = first_use[tid] + 1
        self._g_t = g_t
        self._Gm = self._running_gates_py(order, g_t)
        self._condA = all(
            all(pos[s] < pos[tid] for s in src) for tid, src in self._lw_pairs
        )
        self._R_req = self._required_positions_py(pos)
        self._Rm = self._store_requirements_py(self._R_req, pos, self._ends_list)

    def _running_gates_py(self, order, g_t) -> list[int]:
        gm = 0
        Gm = [0] * self._n
        for k, tid in enumerate(order):
            g = g_t[tid]
            if g > gm:
                gm = g
            Gm[k] = gm
        return Gm

    def _required_positions_py(self, pos) -> list[int]:
        R = [0] * self._T
        for t, tids in enumerate(self._required_loads):
            r = 0
            for tid in tids:
                p = pos[tid] + 1
                if p > r:
                    r = p
            R[t] = r
        return R

    def _store_requirements_py(self, R_req, pos, ends) -> list[int]:
        T = self._T
        R = list(R_req)
        for tid in self._store_tids:
            end = ends[tid]
            if end < T:
                p = pos[tid] + 1
                if p > R[end]:
                    R[end] = p
        rm = 0
        for t in range(T):
            if R[t] > rm:
                rm = R[t]
            R[t] = rm
        return R

    def _check_py(self, Gm, Rm) -> bool:
        for t, rm in enumerate(Rm):
            if rm > 0 and Gm[rm - 1] > t:
                return False
        return True

    def _assess_py(self, move: DLSAMove, prune_check: PruneCheck | None) -> tuple[bool, bool]:
        order2, pos2 = self._order_list, self._pos
        starts2, ends2 = self._starts_list, self._ends_list
        if move.kind == "order":
            i, j, tid = move.source, move.position, move.tid
            base_order = self._order_list
            order2 = list(base_order)
            pos2 = list(self._pos)
            if j > i:
                for k in range(i, j):
                    moved = order2[k] = base_order[k + 1]
                    pos2[moved] = k
            else:
                for k in range(i, j, -1):
                    moved = order2[k] = base_order[k - 1]
                    pos2[moved] = k
            order2[j] = tid
            pos2[tid] = j
            if not all(
                all(pos2[s] < pos2[load] for s in src) for load, src in self._lw_pairs
            ):
                return False, False
            Gm2 = self._running_gates_py(order2, self._g_t)
            R_req2 = self._required_positions_py(pos2)
            Rm2 = self._store_requirements_py(R_req2, pos2, self._ends_list)
            if not self._check_py(Gm2, Rm2):
                return False, False
        elif self._is_load[move.tid]:
            tid = move.tid
            if not self._condA:
                return False, False
            new_start = move.span[0]
            g_t2 = list(self._g_t)
            g_t2[tid] = new_start if new_start > 0 else 0
            Gm2 = self._running_gates_py(self._order_list, g_t2)
            if not self._check_py(Gm2, self._Rm):
                return False, False
            if prune_check is not None:
                starts2 = list(self._starts_list)
                starts2[tid] = new_start
        else:
            tid = move.tid
            if not self._condA:
                return False, False
            ends2 = list(self._ends_list)
            ends2[tid] = move.span[1]
            Rm2 = self._store_requirements_py(self._R_req, self._pos, ends2)
            if not self._check_py(self._Gm, Rm2):
                return False, False
        if prune_check is None:
            return True, False
        return True, self._prune_py(order2, pos2, starts2, ends2, prune_check)

    def _prune_py(self, order2, pos2, starts2, ends2, prune_check) -> bool:
        n, T = self._n, self._T
        if n == 0 and T == 0:
            return prune_check(0.0)
        is_load = self._is_load
        first_use = self._first_use
        ts = self._tensor_seconds
        qs = self._tile_seconds
        C = [0.0] * T
        acc = 0.0
        for t in range(T):
            acc += qs[t]
            C[t] = acc
        dl: dict[int, list[int]] = {}
        for tid in self._store_tids:
            end = ends2[tid]
            if end < T:
                dl.setdefault(end, []).append(tid)
        F = [0.0] * n
        first_round = True
        prev_bound = -1.0
        for _ in range(_BOUND_MAX_ROUNDS):
            F_prev = F
            F = [0.0] * n
            P = 0.0
            m = 0.0
            for k, tid in enumerate(order2):
                if is_load[tid]:
                    s = starts2[tid]
                    g = C[s - 1] if s > 0 else 0.0
                    if not first_round:
                        for store_tid in self._src_store_tids[tid]:
                            fs = F_prev[pos2[store_tid]]
                            if fs > g:
                                g = fs
                else:
                    g = C[first_use[tid]]
                d = g - P
                if d > m:
                    m = d
                P += ts[tid]
                F[k] = P + m
            first_round = False
            C = [0.0] * T
            Q = 0.0
            m = 0.0
            for t in range(T):
                g = 0.0
                for tid in self._required_loads[t]:
                    f = F[pos2[tid]]
                    if f > g:
                        g = f
                for tid in dl.get(t, ()):
                    f = F[pos2[tid]]
                    if f > g:
                        g = f
                d = g - Q
                if d > m:
                    m = d
                Q += qs[t]
                C[t] = Q + m
            bound = F[n - 1] if n else 0.0
            if T and C[T - 1] > bound:
                bound = C[T - 1]
            if prune_check(bound * _BOUND_SAFETY):
                return True
            if bound == prev_bound:
                # Converged (see the numpy backend); later rounds are no-ops.
                return False
            prev_bound = bound
        return False


# ----------------------------------------------------------- whole-schedule floor
def schedule_floor(graph, accelerator, config) -> float:
    """A lower bound on the objective of *any* schedule of ``graph``.

    Roofline argument over the whole workload instead of one DLSA: every
    schedule must execute every MAC (so latency is at least the pure compute
    time at peak throughput) and must move the *compulsory* DRAM traffic —
    all weights in, the ofmaps of the graph's output layers out — through
    the DRAM channel (so latency is at least that transfer time, and DRAM
    energy at least that traffic's energy).  Both resources also bound the
    energy from below.  The pipelined Buffer Allocator uses this as a
    branch-and-bound cutoff: once the incumbent cost is at or below the
    floor, no remaining budget split can improve it and the shrink chain is
    cut short.

    The floor is exact arithmetic on exact integer totals, so it is safe as
    a pruning bound: it never exceeds the cost of a real evaluation.
    """
    total_macs = graph.total_macs
    compute_s = total_macs / accelerator.peak_macs_per_s
    compulsory_bytes = graph.total_weight_bytes + sum(
        graph.layer(name).ofmap_bytes for name in graph.output_layers()
    )
    dram_s = accelerator.memory.dram_transfer_seconds(compulsory_bytes)
    latency_floor = max(compute_s, dram_s)
    energy_floor = accelerator.energy.mac_energy_j(total_macs) + accelerator.energy.dram_energy_j(
        compulsory_bytes
    )
    return config.objective(energy_floor, latency_floor)


def budget_schedule_floor(graph, accelerator, config, budget_bytes: int) -> float:
    """A lower bound on the objective of schedules fitting ``budget_bytes``.

    Extends :func:`schedule_floor` with the *incremental* DRAM traffic a
    tight stage-1 buffer budget forces: every producer of an untiled
    dependency whose ofmap no longer fits the budget must round-trip that
    tensor through DRAM in any schedule whose buffer peak stays within the
    budget (:func:`repro.notation.segments.forced_spill_profile` derives the
    thresholds from the segment parser's feasibility and lifetime rules), so
    those bytes join the compulsory traffic in both the latency and the
    energy floor.  The floor is monotone non-increasing in ``budget_bytes``
    and collapses to :func:`schedule_floor` once the budget covers every
    threshold.  The pipelined Buffer Allocator uses it to prune a shrink
    iteration before *either* stage runs once the floor reaches the
    incumbent cost: the bound is exact for every scheme that respects the
    iteration's budget; stage 1's budget is soft (overflow is penalised,
    not forbidden), so ``tests/test_pipeline.py`` additionally pins that
    pruned iterations are exactly those an un-pruned run discards.
    """
    from repro.notation.segments import forced_spill_profile  # lazy: layering

    total_macs = graph.total_macs
    compute_s = total_macs / accelerator.peak_macs_per_s
    compulsory_bytes = graph.total_weight_bytes + sum(
        graph.layer(name).ofmap_bytes for name in graph.output_layers()
    )
    forced_bytes = sum(
        spill
        for threshold, spill in forced_spill_profile(graph)
        if threshold > budget_bytes
    )
    total_bytes = compulsory_bytes + forced_bytes
    dram_s = accelerator.memory.dram_transfer_seconds(total_bytes)
    latency_floor = max(compute_s, dram_s)
    energy_floor = accelerator.energy.mac_energy_j(total_macs) + accelerator.energy.dram_energy_j(
        total_bytes
    )
    return config.objective(energy_floor, latency_floor)
