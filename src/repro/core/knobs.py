"""The central registry of ``REPRO_*`` environment knobs.

Every behaviour knob this repo reads from the environment is declared here —
name, type, default, validator and a one-line doc — and every read goes
through the typed accessors below (:func:`read_int`, :func:`read_flag`,
:func:`read_str`, :func:`is_set`).  That buys three guarantees:

* **No silent coercion.**  An invalid value (``REPRO_DLSA_BATCH=lots``,
  ``REPRO_ROOFLINE_PREFILTER=banana``) emits a ``RuntimeWarning`` and falls
  back to the documented default instead of quietly becoming a no-op.
* **No shadow knobs.**  Reading an unregistered ``REPRO_*`` name raises
  immediately, and the ``knobs`` lint rule (:mod:`repro.statics`) flags any
  ``os.environ`` / ``os.getenv`` read that bypasses this module, any
  ``REPRO_*`` string in the source tree that is not registered here, and any
  registered knob missing from the README.
* **One authoritative table.**  ``python -m repro lint --knobs`` prints the
  registry, which is what the README's knob section is generated from.

This module is intentionally dependency-free (stdlib only) so any layer —
including :mod:`repro.core.caching`, the lowest one — can import it.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass

__all__ = [
    "Knob",
    "REGISTRY",
    "all_knobs",
    "get_knob",
    "is_set",
    "knobs_table",
    "read_flag",
    "read_int",
    "read_str",
]

#: Spellings accepted by flag knobs.  Anything else warns and uses the
#: default, so a typo can never silently flip a feature.
FLAG_TRUE = frozenset({"1", "true", "on", "yes"})
FLAG_FALSE = frozenset({"", "0", "false", "off", "no"})


@dataclass(frozen=True)
class Knob:
    """One registered environment knob.

    ``kind`` is ``"int"``, ``"flag"`` or ``"str"`` and must match the typed
    accessor used to read it.  ``default`` is documentation (shown in the
    table); the *operative* fallback is supplied by each read site, because
    several knobs fall back to another knob (``REPRO_SERVE_WORKERS`` →
    ``REPRO_WORKERS``) rather than to a literal.
    """

    name: str
    kind: str
    default: str
    doc: str
    internal: bool = False  # set by the system, not the operator


REGISTRY: dict[str, Knob] = {}


def _register(knob: Knob) -> Knob:
    if knob.name in REGISTRY:
        raise ValueError(f"knob {knob.name} is registered twice")
    if not knob.name.startswith("REPRO_"):
        raise ValueError(f"knob {knob.name} must start with REPRO_")
    if knob.kind not in {"int", "flag", "str"}:
        raise ValueError(f"knob {knob.name} has unknown kind {knob.kind!r}")
    REGISTRY[knob.name] = knob
    return knob


# ----------------------------------------------------------------- the knobs
# Parallelism / serving topology.
_register(Knob("REPRO_WORKERS", "int", "1",
               "worker processes for experiment grids and SA chains "
               "(results are bit-identical for any count)"))
_register(Knob("REPRO_SERVE_WORKERS", "int", "REPRO_WORKERS",
               "persistent pool size for `python -m repro serve`"))
_register(Knob("REPRO_SERVE_MEMO_CACHE", "int", "256",
               "cross-request result memo of the serving layer (0 disables)"))
_register(Knob("REPRO_SERVE_QUEUE", "int", "64",
               "bounded admission queue of the serving layer "
               "(0 rejects every cache miss)"))
_register(Knob("REPRO_SERVE_MEMO_PATH", "str", "unset",
               "JSON file the result memo is reloaded from / spilled to "
               "across restarts"))
_register(Knob("REPRO_SERVE_RETRIES", "int", "1",
               "re-dispatch budget after a worker crash (crash failures "
               "only, never past the deadline; 0 fails fast)"))
_register(Knob("REPRO_FAULT_SPEC", "str", "unset",
               "deterministic fault injection in workers, e.g. "
               "`crash:0.1@seed=7` or `delay:500ms:p=0.2`"))
_register(Knob("REPRO_SERVE_GRAPHS_CACHE", "int", "64",
               "per-worker warm workload graphs kept across requests"))
_register(Knob("REPRO_SERVE_SCHEDULERS_CACHE", "int", "32",
               "per-worker warm schedulers kept across requests"))

# Search-engine caches.
_register(Knob("REPRO_PARSE_CACHE", "int", "256",
               "per-graph LFA-fingerprint -> plan LRU "
               "(shared by both construction paths)"))
_register(Knob("REPRO_SEGMENT_CACHE", "int", "4096",
               "per-graph segment LRU / re-based fragment LRU, plus the "
               "evaluator's per-segment static-cost LRU (0 disables)"))
_register(Knob("REPRO_TILING_CACHE", "int", "4096",
               "per-graph (FLG layers, Tiling Number) -> tiling memo"))
_register(Knob("REPRO_PLAN_CACHE", "int", "16",
               "evaluation contexts per evaluator"))
_register(Knob("REPRO_STATIC_CACHE", "int", "32",
               "per-plan static costs (reference evaluator path)"))
_register(Knob("REPRO_RESULT_CACHE", "int", "512",
               "per-context DLSA result memo"))
_register(Knob("REPRO_STAGE1_CACHE", "int", "4096",
               "stage-1 SA cost memo"))

# Search-engine behaviour.
_register(Knob("REPRO_DLSA_BATCH", "int", "32",
               "candidate moves proposed and scored per batched DLSA step "
               "(1 = serial; any value is bit-identical)"))
_register(Knob("REPRO_LFA_BATCH", "int", "0",
               "speculative LFA moves proposed per batched stage-1 step "
               "(unset/0 = the historical serial walk, exactly; enabling "
               "changes the trajectory deterministically, and any batch "
               "size x worker count is bit-identical)"))
_register(Knob("REPRO_ROOFLINE_PREFILTER", "flag", "1",
               "roofline lower-bound pruning of provably-rejected moves "
               "before co-sim (0 disables; trajectories identical either way)"))
_register(Knob("REPRO_STAGE_PIPELINE", "flag", "0",
               "pipelined Buffer Allocator: stage 2 refines iteration i "
               "while stage 1 explores iteration i+1 (off = the historical "
               "serial trajectory, exactly)"))
_register(Knob("REPRO_ALLOC_WORKERS", "int", "0",
               "process-pool size for the pipelined stages (<2 = in-process "
               "lazy futures; placements are bit-identical)"))
_register(Knob("REPRO_POOL_WORKER", "flag", "unset",
               "exported by pool worker processes so task code never spawns "
               "a nested pool (system-managed, do not set by hand)",
               internal=True))

# Benchmark harness.
_register(Knob("REPRO_BENCH_FULL", "flag", "0",
               "benchmarks run the full paper grid instead of the "
               "scaled-down subset"))


# ------------------------------------------------------------------ accessors
def get_knob(name: str) -> Knob:
    """The registered knob, or a loud ``LookupError`` for shadow knobs."""
    try:
        return REGISTRY[name]
    except KeyError:
        raise LookupError(
            f"environment knob {name!r} is not registered in "
            "repro.core.knobs; add a Knob entry (name, kind, default, doc) "
            "before reading it"
        ) from None


def all_knobs() -> list[Knob]:
    """Every registered knob, in registration (documentation) order."""
    return list(REGISTRY.values())


def _raw(name: str, kind: str) -> str | None:
    knob = get_knob(name)
    if knob.kind != kind:
        raise TypeError(
            f"knob {name} is registered as {knob.kind!r}; read it with the "
            f"matching accessor, not read_{kind}"
        )
    return os.environ.get(name)


def read_int(name: str, fallback_note: str) -> int | None:
    """Read an integer knob; ``None`` when unset or invalid.

    An unparsable value degrades to the caller's fallback *loudly* — a typo
    in a sizing or worker-count knob must not silently become a no-op.
    ``fallback_note`` finishes the warning sentence ("using the default
    capacity 256", "running serial", ...).
    """
    raw = _raw(name, "int")
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        warnings.warn(
            f"ignoring invalid {name}={raw!r} (not an integer); {fallback_note}",
            RuntimeWarning,
            stacklevel=3,
        )
        return None


def read_flag(name: str, default: bool) -> bool:
    """Read a boolean knob (spellings: 1/true/on/yes vs 0/false/off/no/'').

    An unrecognised spelling warns and keeps the default — the historical
    behaviour of treating any unknown string as "on" (or "off", depending on
    the knob) silently inverted typos like ``ture``.
    """
    raw = _raw(name, "flag")
    if raw is None:
        return default
    value = raw.strip().lower()
    if value in FLAG_TRUE:
        return True
    if value in FLAG_FALSE:
        return False
    warnings.warn(
        f"ignoring invalid {name}={raw!r} (expected one of "
        f"{sorted(FLAG_TRUE)} / {sorted(FLAG_FALSE)}); "
        f"using the default ({'on' if default else 'off'})",
        RuntimeWarning,
        stacklevel=3,
    )
    return default


def read_str(name: str) -> str | None:
    """Read a free-form string knob; ``None`` when unset or empty."""
    return _raw(name, "str") or None


def is_set(name: str) -> bool:
    """Whether a flag knob is present at all (used for system markers)."""
    return _raw(name, get_knob(name).kind) is not None


# ---------------------------------------------------------------- the table
def knobs_table(markdown: bool = False) -> str:
    """The registry rendered as a table (``python -m repro lint --knobs``).

    With ``markdown=True`` the output is a GitHub table suitable for pasting
    into the README's knob section; the ``knobs`` lint rule keeps the two in
    sync by requiring every registered name to appear in the README.
    """
    rows = [
        (knob.name, knob.kind, knob.default, knob.doc)
        for knob in all_knobs()
    ]
    if markdown:
        lines = ["| knob | kind | default | meaning |", "| --- | --- | --- | --- |"]
        lines += [f"| `{n}` | {k} | {d} | {doc} |" for n, k, d, doc in rows]
        return "\n".join(lines)
    name_w = max(len(n) for n, *_ in rows)
    kind_w = max(len(k) for _, k, *_ in rows)
    default_w = max(len(d) for _, _, d, _ in rows)
    lines = [f"{'knob':{name_w}s} {'kind':{kind_w}s} {'default':{default_w}s} meaning"]
    lines += [
        f"{n:{name_w}s} {k:{kind_w}s} {d:{default_w}s} {doc}" for n, k, d, doc in rows
    ]
    return "\n".join(lines)
