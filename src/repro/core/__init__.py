"""SoMa core: evaluator, search stages, buffer allocator and the framework.

This package implements the paper's primary contribution (Sec. V): the
accurate schedule evaluator, the two simulated-annealing exploration stages
over the LFA and DLSA sub-spaces, the Buffer Allocator that arbitrates GBUF
capacity between them, and the end-to-end :class:`~repro.core.soma.SoMaScheduler`.
"""

from repro.core.config import SAParams, SoMaConfig
from repro.core.core_array import CoreArrayMapper, TileCost
from repro.core.evaluator import ScheduleEvaluator
from repro.core.result import EvaluationResult, SoMaResult, StageResult
from repro.core.soma import SoMaScheduler

__all__ = [
    "CoreArrayMapper",
    "EvaluationResult",
    "SAParams",
    "ScheduleEvaluator",
    "SoMaConfig",
    "SoMaResult",
    "SoMaScheduler",
    "StageResult",
    "TileCost",
]
