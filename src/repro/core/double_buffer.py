"""Classical double-buffer DLSA strategy (paper Sec. III-B).

Traditional accelerators prefetch the data of the next tile while the current
tile computes, and drain the data of the previous tile while the next one
computes.  In the Tensor-centric Notation this corresponds to ``Start`` one
tile before the first use for every load and ``End`` one tile after the
producing tile for every store, with the DRAM Tensor Order following the
compute sequence.  Cocco (the baseline) and the LFA exploration stage of SoMa
both use exactly this strategy.
"""

from __future__ import annotations

from repro.notation.dlsa import DLSA
from repro.notation.plan import ComputePlan


def double_buffer_dlsa(plan: ComputePlan) -> DLSA:
    """Return the double-buffer DLSA for a parsed plan."""
    return DLSA.from_defaults(plan.dram_tensors)
