"""Classical double-buffer DLSA strategy (paper Sec. III-B).

Traditional accelerators prefetch the data of the next tile while the current
tile computes, and drain the data of the previous tile while the next one
computes.  In the Tensor-centric Notation this corresponds to ``Start`` one
tile before the first use for every load and ``End`` one tile after the
producing tile for every store, with the DRAM Tensor Order following the
compute sequence.  Cocco (the baseline) and the LFA exploration stage of SoMa
both use exactly this strategy.
"""

from __future__ import annotations

try:  # numpy is optional: the builder falls back to pure Python without it.
    import numpy as _np
except ImportError:  # pragma: no cover - the image ships numpy
    _np = None

from repro.notation.dlsa import DLSA
from repro.notation.plan import ComputePlan


def double_buffer_dlsa(plan: ComputePlan) -> DLSA:
    """Return the double-buffer DLSA for a parsed plan.

    Equivalent to ``DLSA.from_defaults(plan.dram_tensors)`` (asserted by the
    DLSA tests) but built from the plan's flat tensor arrays: this runs once
    per stage-1 candidate, where per-tensor attribute walks are measurable.
    A load that reads back another LG's stores anchors behind the *latest*
    producing store — the same adjustment ``from_defaults`` derives from its
    per-layer last-store map.

    With numpy the Living Durations and sort keys are computed in whole-array
    passes; ``lexsort`` is stable, so ties on ``(anchor, kind)`` break by
    tensor id exactly like the reference tuple sort, and ``tolist`` yields
    the same Python ints.
    """
    is_load, _num_bytes, first_use, last_use = plan.tensor_arrays
    _store_tids, src_store_tids = plan.store_structure
    if _np is not None and plan.num_dram_tensors > 0:
        il, _nb, fu, lu = plan.tensor_np
        starts = _np.where(il, _np.maximum(fu - 1, 0), fu)
        ends = _np.where(il, lu + 1, fu + 1)
        anchors = starts.tolist()
        for tid, stores in enumerate(src_store_tids):
            if stores:
                produced = max(first_use[store_tid] for store_tid in stores) + 1
                if produced > anchors[tid]:
                    anchors[tid] = produced
        kinds = _np.where(il, 0, 1)
        order = _np.lexsort((kinds, _np.asarray(anchors, dtype=_np.int64)))
        living = dict(enumerate(zip(starts.tolist(), ends.tolist())))
        return DLSA(order=tuple(order.tolist()), living=living)
    keys: list[tuple[int, int, int]] = []
    living = {}
    for tid in range(plan.num_dram_tensors):
        use = first_use[tid]
        if is_load[tid]:
            start = use - 1 if use > 0 else 0
            living[tid] = (start, last_use[tid] + 1)
            anchor = start
            stores = src_store_tids[tid]
            if stores:
                produced = max(first_use[store_tid] for store_tid in stores) + 1
                if produced > anchor:
                    anchor = produced
            keys.append((anchor, 0, tid))  # loads go before drains
        else:
            living[tid] = (use, use + 1)
            keys.append((use, 1, tid))
    keys.sort()
    return DLSA(order=tuple(key[2] for key in keys), living=living)
