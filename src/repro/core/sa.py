"""Generic simulated-annealing engine shared by the two exploration stages.

The acceptance rule and the cooling schedule follow Sec. V-C of the paper:
a worse scheme (cost ``c'`` vs. current ``c``) is accepted with probability
``exp((c - c') / (c * Tn))`` and the temperature follows
``Tn = T0 (1 - n/N) / (1 + alpha n/N)``.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass
from typing import Callable, Generic, TypeVar

from repro.core.config import SAParams

StateT = TypeVar("StateT")


@dataclass(frozen=True)
class SAOutcome(Generic[StateT]):
    """Result of one simulated-annealing run."""

    best_state: StateT
    best_cost: float
    iterations: int
    accepted_moves: int
    improved_moves: int
    cost_trace: tuple[float, ...]


class SimulatedAnnealing:
    """Runs the annealing loop over an arbitrary state space."""

    def __init__(self, params: SAParams) -> None:
        self._params = params

    def run(
        self,
        initial_state: StateT,
        cost_fn: Callable[[StateT], float],
        neighbor_fn: Callable[[StateT, random.Random], StateT | None],
        rng: random.Random,
        units: int,
        trace: bool = False,
    ) -> SAOutcome[StateT]:
        """Anneal from ``initial_state``.

        ``neighbor_fn`` may return ``None`` when no move applies (the
        iteration is skipped); ``cost_fn`` may return ``inf`` for infeasible
        states, which are never accepted unless the current state is itself
        infeasible.
        """
        params = self._params
        total = params.num_iterations(units)
        greedy_total = params.num_greedy_iterations(units)
        deadline = (
            time.perf_counter() + params.time_limit_s
            if params.time_limit_s is not None
            else None
        )

        current_state = initial_state
        current_cost = cost_fn(initial_state)
        best_state = current_state
        best_cost = current_cost
        accepted = 0
        improved = 0
        cost_trace: list[float] = [best_cost] if trace else []

        for iteration in range(total):
            # The paper supports an additional wall-clock termination time;
            # once it is reached the annealing phase stops and only the
            # greedy polishing phase below runs.
            if deadline is not None and time.perf_counter() >= deadline:
                break
            candidate = neighbor_fn(current_state, rng)
            if candidate is None:
                continue
            candidate_cost = cost_fn(candidate)
            if self._accept(current_cost, candidate_cost, iteration, total, rng):
                accepted += 1
                current_state = candidate
                current_cost = candidate_cost
                if candidate_cost < best_cost:
                    improved += 1
                    best_state = candidate
                    best_cost = candidate_cost
            if trace:
                cost_trace.append(best_cost)

        # Greedy polishing phase (Sec. V-C): restart from the best scheme and
        # accept only strictly improving moves.
        current_state = best_state
        current_cost = best_cost
        for _ in range(greedy_total):
            candidate = neighbor_fn(current_state, rng)
            if candidate is None:
                continue
            candidate_cost = cost_fn(candidate)
            if candidate_cost < current_cost:
                accepted += 1
                improved += 1
                current_state = candidate
                current_cost = candidate_cost
                best_state = candidate
                best_cost = candidate_cost
            if trace:
                cost_trace.append(best_cost)

        return SAOutcome(
            best_state=best_state,
            best_cost=best_cost,
            iterations=total + greedy_total,
            accepted_moves=accepted,
            improved_moves=improved,
            cost_trace=tuple(cost_trace),
        )

    # ---------------------------------------------------------------- internal
    def _accept(
        self,
        current_cost: float,
        candidate_cost: float,
        iteration: int,
        total: int,
        rng: random.Random,
    ) -> bool:
        if candidate_cost <= current_cost:
            return True
        if not math.isfinite(candidate_cost):
            return False
        if not math.isfinite(current_cost) or current_cost <= 0:
            return True
        temperature = self._params.temperature(iteration, total)
        if temperature <= 0:
            return False
        probability = math.exp((current_cost - candidate_cost) / (current_cost * temperature))
        return rng.random() < probability
