"""Generic simulated-annealing engine shared by the two exploration stages.

The acceptance rule and the cooling schedule follow Sec. V-C of the paper:
a worse scheme (cost ``c'`` vs. current ``c``) is accepted with probability
``exp((c - c') / (c * Tn))`` and the temperature follows
``Tn = T0 (1 - n/N) / (1 + alpha n/N)``.

:meth:`run` is the classical serial loop (``u`` drawn lazily, only when a
worse finite candidate needs a Metropolis draw — the seed protocol, kept
bit-identical for stage 1).  :meth:`run_batched` implements the same rule
in *threshold form*: after every proposal it draws one uniform ``u`` and
precomputes the acceptance threshold ``theta = c - c * Tn * ln(u)`` — a
candidate is accepted iff ``c' <= c`` or ``c' < theta``, which is exactly
the classical Metropolis test (``u < exp((c - c') / (c * Tn))``
rearranged).  Drawing ``u`` *before* the candidate is evaluated makes the
RNG stream independent of candidate costs, which buys two things:

* a **conservative pre-filter** becomes exact — any lower bound on ``c'``
  that already reaches ``theta`` proves the candidate would be rejected, so
  it can be discarded without a full evaluation and the trajectory is
  bit-identical to a run without the filter;
* **speculative batching** becomes possible — :meth:`run_batched` proposes
  ``K`` moves ahead (snapshotting the RNG after each draw), scores them in
  one batched call, replays the accept/reject decisions in order, and rolls
  the RNG back to the first accepted move's snapshot.  The trajectory is
  invariant in ``K``: ``batch_size=1`` reproduces the serial walk exactly.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass
from typing import Any, Callable, Generic, Sequence, TypeVar

from repro.core.config import SAParams

StateT = TypeVar("StateT")
MoveT = TypeVar("MoveT")


@dataclass(frozen=True)
class SAOutcome(Generic[StateT]):
    """Result of one simulated-annealing run.

    ``speculated_moves`` / ``rolled_back_moves`` describe the batched
    engine's speculation economy: how many candidates were scored ahead of
    the walk, and how many of those were discarded because an earlier move
    of their window was accepted.  Both stay 0 on the serial :meth:`run`
    path (nothing is ever speculative there).
    """

    best_state: StateT
    best_cost: float
    iterations: int
    accepted_moves: int
    improved_moves: int
    cost_trace: tuple[float, ...]
    speculated_moves: int = 0
    rolled_back_moves: int = 0


class SimulatedAnnealing:
    """Runs the annealing loop over an arbitrary state space."""

    def __init__(self, params: SAParams) -> None:
        self._params = params

    def run(
        self,
        initial_state: StateT,
        cost_fn: Callable[[StateT], float],
        neighbor_fn: Callable[[StateT, random.Random], StateT | None],
        rng: random.Random,
        units: int,
        trace: bool = False,
    ) -> SAOutcome[StateT]:
        """Anneal from ``initial_state``.

        ``neighbor_fn`` may return ``None`` when no move applies (the
        iteration is skipped); ``cost_fn`` may return ``inf`` for infeasible
        states, which are never accepted unless the current state is itself
        infeasible.
        """
        params = self._params
        total = params.num_iterations(units)
        greedy_total = params.num_greedy_iterations(units)
        deadline = (
            time.perf_counter() + params.time_limit_s  # repro: lint-ok[determinism] wall-clock budget only caps iterations
            if params.time_limit_s is not None
            else None
        )

        current_state = initial_state
        current_cost = cost_fn(initial_state)
        best_state = current_state
        best_cost = current_cost
        accepted = 0
        improved = 0
        cost_trace: list[float] = [best_cost] if trace else []

        for iteration in range(total):
            # The paper supports an additional wall-clock termination time;
            # once it is reached the annealing phase stops and only the
            # greedy polishing phase below runs.
            if deadline is not None and time.perf_counter() >= deadline:  # repro: lint-ok[determinism]
                break
            candidate = neighbor_fn(current_state, rng)
            if candidate is None:
                continue
            candidate_cost = cost_fn(candidate)
            if self._accept(current_cost, candidate_cost, iteration, total, rng):
                accepted += 1
                current_state = candidate
                current_cost = candidate_cost
                if candidate_cost < best_cost:
                    improved += 1
                    best_state = candidate
                    best_cost = candidate_cost
            if trace:
                cost_trace.append(best_cost)

        # Greedy polishing phase (Sec. V-C): restart from the best scheme and
        # accept only strictly improving moves (no acceptance draws).
        current_state = best_state
        current_cost = best_cost
        for _ in range(greedy_total):
            candidate = neighbor_fn(current_state, rng)
            if candidate is None:
                continue
            candidate_cost = cost_fn(candidate)
            if candidate_cost < current_cost:
                accepted += 1
                improved += 1
                current_state = candidate
                current_cost = candidate_cost
                best_state = candidate
                best_cost = candidate_cost
            if trace:
                cost_trace.append(best_cost)

        return SAOutcome(
            best_state=best_state,
            best_cost=best_cost,
            iterations=total + greedy_total,
            accepted_moves=accepted,
            improved_moves=improved,
            cost_trace=tuple(cost_trace),
        )

    def run_batched(
        self,
        initial_state: StateT,
        cost_fn: Callable[[StateT], float],
        propose_fn: Callable[[StateT, random.Random], MoveT | None],
        apply_fn: Callable[[StateT, MoveT], StateT],
        batch_eval_fn: Callable[[StateT, Sequence[MoveT], Sequence[float]], Sequence[float]],
        rng: random.Random,
        units: int,
        batch_size: int = 1,
        trace: bool = False,
    ) -> SAOutcome[StateT]:
        """Anneal with speculative move batches (trajectory-invariant in K).

        Per batch: up to ``batch_size`` moves are proposed from the current
        state, each followed by its acceptance draw and an RNG snapshot; the
        whole batch is scored by one ``batch_eval_fn(state, moves,
        thresholds)`` call, and the decisions are replayed in order.  The
        first acceptance rebases the walk — the RNG rolls back to that
        move's snapshot, so the not-yet-consumed speculation is discarded
        exactly as if it had never been proposed.

        ``batch_eval_fn`` receives the acceptance threshold per move and may
        return ``inf`` for any candidate whose cost provably reaches it
        (conservative pruning): such candidates are rejected either way, so
        the walk is bit-identical with pruning on or off.

        ``batch_size`` caps the speculation window; the actual window adapts
        to the local acceptance rate (reset to 1 after an acceptance, doubled
        after a fully rejected window) so hot phases waste no speculative
        evaluations while cold phases amortise the batch overhead.  Since the
        trajectory is invariant in the window size, adaptivity cannot change
        the result either.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        params = self._params
        total = params.num_iterations(units)
        greedy_total = params.num_greedy_iterations(units)
        deadline = (
            time.perf_counter() + params.time_limit_s  # repro: lint-ok[determinism] wall-clock budget only caps iterations
            if params.time_limit_s is not None
            else None
        )

        current_state = initial_state
        current_cost = cost_fn(initial_state)
        best_state = current_state
        best_cost = current_cost
        accepted = 0
        improved = 0
        speculated = 0
        rolled_back = 0
        cost_trace: list[float] = [best_cost] if trace else []

        iteration = 0
        speculation = 1
        while iteration < total:
            if deadline is not None and time.perf_counter() >= deadline:  # repro: lint-ok[determinism]
                break
            window = min(speculation, total - iteration)
            specs: list[tuple[Any, float, Any]] = []
            for offset in range(window):
                move = propose_fn(current_state, rng)
                if move is None:
                    specs.append((None, math.inf, None))
                    continue
                threshold = self._threshold(
                    current_cost, iteration + offset, total, rng.random()
                )
                specs.append((move, threshold, rng.getstate()))
            costs = self._score(batch_eval_fn, current_state, specs)
            speculated += len(costs)
            window_accepted = False
            for offset, (move, threshold, snapshot) in enumerate(specs):
                iteration += 1
                if move is None:
                    continue
                candidate_cost = costs[offset]
                if candidate_cost <= current_cost or candidate_cost < threshold:
                    accepted += 1
                    window_accepted = True
                    rolled_back += sum(1 for later in costs if later > offset)
                    rng.setstate(snapshot)
                    current_state = apply_fn(current_state, move)
                    current_cost = candidate_cost
                    if candidate_cost < best_cost:
                        improved += 1
                        best_state = current_state
                        best_cost = candidate_cost
                    if trace:
                        cost_trace.append(best_cost)
                    break
                if trace:
                    cost_trace.append(best_cost)
            speculation = 1 if window_accepted else min(batch_size, speculation * 2)

        # Greedy polishing: strict improvement only, threshold == current
        # cost, no acceptance draws — batched with the same rollback scheme.
        current_state = best_state
        current_cost = best_cost
        done = 0
        speculation = 1
        while done < greedy_total:
            window = min(speculation, greedy_total - done)
            specs = []
            for _ in range(window):
                move = propose_fn(current_state, rng)
                if move is None:
                    specs.append((None, current_cost, None))
                    continue
                specs.append((move, current_cost, rng.getstate()))
            costs = self._score(batch_eval_fn, current_state, specs)
            speculated += len(costs)
            window_accepted = False
            for offset, (move, _threshold, snapshot) in enumerate(specs):
                done += 1
                if move is None:
                    continue
                candidate_cost = costs[offset]
                if candidate_cost < current_cost:
                    accepted += 1
                    improved += 1
                    window_accepted = True
                    rolled_back += sum(1 for later in costs if later > offset)
                    rng.setstate(snapshot)
                    current_state = apply_fn(current_state, move)
                    current_cost = candidate_cost
                    best_state = current_state
                    best_cost = candidate_cost
                    if trace:
                        cost_trace.append(best_cost)
                    break
                if trace:
                    cost_trace.append(best_cost)
            speculation = 1 if window_accepted else min(batch_size, speculation * 2)

        return SAOutcome(
            best_state=best_state,
            best_cost=best_cost,
            iterations=total + greedy_total,
            accepted_moves=accepted,
            improved_moves=improved,
            cost_trace=tuple(cost_trace),
            speculated_moves=speculated,
            rolled_back_moves=rolled_back,
        )

    # ---------------------------------------------------------------- internal
    def _accept(
        self,
        current_cost: float,
        candidate_cost: float,
        iteration: int,
        total: int,
        rng: random.Random,
    ) -> bool:
        if candidate_cost <= current_cost:
            return True
        if not math.isfinite(candidate_cost):
            return False
        if not math.isfinite(current_cost) or current_cost <= 0:
            return True
        temperature = self._params.temperature(iteration, total)
        if temperature <= 0:
            return False
        probability = math.exp((current_cost - candidate_cost) / (current_cost * temperature))
        return rng.random() < probability

    @staticmethod
    def _score(batch_eval_fn, state, specs) -> dict[int, float]:
        """Score a speculation window's live moves in one batched call."""
        live = [
            (offset, move, threshold)
            for offset, (move, threshold, _snapshot) in enumerate(specs)
            if move is not None
        ]
        if not live:
            return {}
        costs = batch_eval_fn(
            state,
            [move for _offset, move, _threshold in live],
            [threshold for _offset, _move, threshold in live],
        )
        return {offset: cost for (offset, _move, _threshold), cost in zip(live, costs)}

    def _threshold(
        self, current_cost: float, iteration: int, total: int, u: float
    ) -> float:
        """The cost below which a worse candidate is accepted this iteration.

        A candidate is accepted iff ``cost <= current`` or ``cost <
        threshold``; with ``theta = c - c * Tn * ln(u)`` this is exactly the
        Metropolis rule ``u < exp((c - c') / (c * Tn))``.  Degenerate cases
        mirror the classical branch structure: an infeasible or non-positive
        current cost accepts any finite candidate (``theta = inf``), a zero
        temperature accepts only non-worsening moves (``theta = c``), and
        ``u == 0`` accepts any finite candidate.
        """
        if not math.isfinite(current_cost) or current_cost <= 0:
            return math.inf
        temperature = self._params.temperature(iteration, total)
        if temperature <= 0:
            return current_cost
        if u <= 0.0:
            return math.inf
        return current_cost - current_cost * temperature * math.log(u)
