"""Result types: evaluation of one scheme and outputs of the SoMa stages."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.hardware.accelerator import AcceleratorConfig
from repro.notation.dlsa import DLSA
from repro.notation.encoding import ScheduleEncoding
from repro.notation.plan import ComputePlan


@dataclass(frozen=True)
class TransferRecord:
    """Timing of one DRAM tensor as simulated by the evaluator."""

    tid: int
    start_s: float
    finish_s: float


@dataclass(frozen=True)
class TileRecord:
    """Timing of one computing tile as simulated by the evaluator."""

    index: int
    start_s: float
    finish_s: float


@dataclass(frozen=True)
class EvaluationResult:
    """Latency / energy / buffer outcome of evaluating one scheme.

    ``feasible`` is False for schemes that deadlock or exceed the buffer
    budget; such results carry infinite latency so any cost function built
    on them pushes the search away.
    """

    feasible: bool
    reason: str = ""
    latency_s: float = math.inf
    energy_j: float = math.inf
    core_energy_j: float = math.inf
    dram_energy_j: float = math.inf
    compute_time_sum_s: float = 0.0
    dram_time_sum_s: float = 0.0
    total_ops: int = 0
    total_dram_bytes: int = 0
    max_buffer_bytes: int = 0
    avg_buffer_bytes: float = 0.0
    num_tiles: int = 0
    num_dram_tensors: int = 0
    num_lgs: int = 0
    num_flgs: int = 0
    tile_records: tuple[TileRecord, ...] = ()
    transfer_records: tuple[TransferRecord, ...] = ()

    def objective(self, energy_exponent: float = 1.0, delay_exponent: float = 1.0) -> float:
        """The paper's cost ``Energy^n x Delay^m`` (infinite when infeasible)."""
        if not self.feasible or not math.isfinite(self.latency_s):
            return math.inf
        return (self.energy_j ** energy_exponent) * (self.latency_s ** delay_exponent)

    def compute_utilization(self, accelerator: AcceleratorConfig) -> float:
        """``Util(latency)`` as defined in the caption of Fig. 6."""
        if not self.feasible or self.latency_s <= 0 or not math.isfinite(self.latency_s):
            return 0.0
        return self.total_ops / (accelerator.peak_ops_per_s * self.latency_s)

    def theoretical_max_utilization(self, accelerator: AcceleratorConfig) -> float:
        """Upper bound on utilisation with perfect DRAM/compute overlap.

        The bound assumes either the compute array or the DRAM channel runs
        without any stall, i.e. latency >= max(sum of tile times, sum of
        DRAM tensor times); the utilisation at that lower-bound latency is
        the best stage 2 could ever reach.
        """
        if not self.feasible:
            return 0.0
        bound_latency = max(self.compute_time_sum_s, self.dram_time_sum_s)
        if bound_latency <= 0:
            return 0.0
        return min(1.0, self.total_ops / (accelerator.peak_ops_per_s * bound_latency))

    def dram_utilization(self) -> float:
        """Fraction of the runtime during which the DRAM channel is busy."""
        if not self.feasible or self.latency_s <= 0 or not math.isfinite(self.latency_s):
            return 0.0
        return min(1.0, self.dram_time_sum_s / self.latency_s)

    def buffer_utilization(self, accelerator: AcceleratorConfig) -> float:
        """Average buffer occupancy relative to the GBUF capacity."""
        if not self.feasible:
            return 0.0
        return self.avg_buffer_bytes / accelerator.gbuf_bytes

    def describe(self) -> str:
        """One-line summary used by examples and reports."""
        if not self.feasible:
            return f"infeasible ({self.reason})"
        return (
            f"latency={self.latency_s * 1e3:.3f} ms energy={self.energy_j * 1e3:.3f} mJ "
            f"(core {self.core_energy_j * 1e3:.3f} / dram {self.dram_energy_j * 1e3:.3f}) "
            f"peak_buffer={self.max_buffer_bytes / 1e6:.2f} MB"
        )


@dataclass(frozen=True)
class StageResult:
    """Best scheme found by one exploration stage."""

    encoding: ScheduleEncoding
    evaluation: EvaluationResult
    cost: float
    iterations: int
    accepted_moves: int

    @property
    def feasible(self) -> bool:
        return self.evaluation.feasible


@dataclass(frozen=True)
class SoMaResult:
    """End-to-end output of the SoMa framework for one workload."""

    workload_name: str
    accelerator_name: str
    stage1: StageResult
    stage2: StageResult
    allocator_iterations: int
    stage1_buffer_budget_bytes: int
    plan: ComputePlan
    dlsa: DLSA
    search_seconds: float = 0.0
    history: tuple[float, ...] = field(default_factory=tuple)

    @property
    def best(self) -> StageResult:
        """The overall best stage result (stage 2 unless it failed)."""
        if self.stage2.feasible and self.stage2.cost <= self.stage1.cost:
            return self.stage2
        return self.stage1

    @property
    def evaluation(self) -> EvaluationResult:
        """Evaluation of the overall best scheme."""
        return self.best.evaluation

    @property
    def encoding(self) -> ScheduleEncoding:
        """Encoding of the overall best scheme."""
        return self.best.encoding

    def speedup_over(self, other_latency_s: float) -> float:
        """Performance ratio relative to another scheme's latency."""
        if self.evaluation.latency_s <= 0:
            return 0.0
        return other_latency_s / self.evaluation.latency_s

    def describe(self) -> str:
        """Multi-line report of the two stages."""
        lines = [
            f"SoMa result for {self.workload_name} on {self.accelerator_name}",
            f"  stage 1: {self.stage1.evaluation.describe()}",
            f"  stage 2: {self.stage2.evaluation.describe()}",
            f"  allocator iterations: {self.allocator_iterations}, "
            f"stage-1 budget {self.stage1_buffer_budget_bytes / 1e6:.2f} MB",
        ]
        return "\n".join(lines)
