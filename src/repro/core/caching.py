"""Search-wide caching primitives for the evaluation engine.

The SoMa search pays for the same derived state over and over: LFA parses
(stage 1 revisits states), FLG tilings (the same (layers, Tiling Number)
pairs recur across parses), per-plan static costs and per-state evaluation
results.  This module provides the shared, bounded LRU cache used at every
one of those levels, keyed by the stable ``fingerprint()`` of the notation
objects (see :mod:`repro.notation`) instead of fragile ``id()`` keys.

Cache sizes are tunable through environment variables named
``REPRO_<NAME>_CACHE`` (e.g. ``REPRO_PARSE_CACHE=512``); a value of ``0``
disables the cache entirely.  See ROADMAP.md for the full list of perf knobs.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Any, Callable, Hashable

_MISSING = object()


def cache_size(name: str, default: int) -> int:
    """Resolve one cache's capacity from ``REPRO_<NAME>_CACHE`` or a default."""
    raw = os.environ.get(f"REPRO_{name.upper()}_CACHE")
    if raw is None:
        return default
    try:
        return max(0, int(raw))
    except ValueError:
        return default


class LRUCache:
    """A small, dependency-free LRU mapping with hit/miss statistics.

    A ``maxsize`` of 0 disables storage (every lookup misses), which keeps
    the call sites free of conditionals when a cache is turned off via the
    environment.
    """

    __slots__ = ("_data", "maxsize", "hits", "misses")

    def __init__(self, maxsize: int) -> None:
        self.maxsize = max(0, maxsize)
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key``, refreshing its recency on a hit."""
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        self.hits += 1
        self._data.move_to_end(key)
        return value

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key`` without touching recency or hit/miss statistics."""
        value = self._data.get(key, _MISSING)
        return default if value is _MISSING else value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert (or refresh) ``key``, evicting the least recent entry."""
        if self.maxsize == 0:
            return
        data = self._data
        if key in data:
            data.move_to_end(key)
        data[key] = value
        if len(data) > self.maxsize:
            data.popitem(last=False)

    def get_or_compute(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        """Return the cached value for ``key`` or compute, store and return it."""
        value = self._data.get(key, _MISSING)
        if value is not _MISSING:
            self.hits += 1
            self._data.move_to_end(key)
            return value
        self.misses += 1
        value = compute()
        self.put(key, value)
        return value

    def values(self) -> list:
        """The cached values, least recent first (no recency update)."""
        return list(self._data.values())

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        self._data.clear()

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """Snapshot of the cache's occupancy and hit statistics."""
        return {
            "size": len(self._data),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
        }


def per_graph_lru(caches, graph, name: str, default_size: int) -> LRUCache:
    """The per-graph LRU out of ``caches``, dropped when the graph mutates.

    ``caches`` is a ``WeakKeyDictionary`` mapping graphs to ``(version,
    LRUCache)`` entries; the cache is recreated whenever the graph's mutation
    version moved, so no caller can ever be served state derived from an
    older graph.  Capacity resolves through :func:`cache_size` with ``name``.
    Every per-graph cache in the search stack (parse, segment, fragment,
    tiling) goes through this one helper so the invalidation rule lives in
    exactly one place.
    """
    entry = caches.get(graph)
    if entry is None or entry[0] != graph.version:
        entry = (graph.version, LRUCache(cache_size(name, default_size)))
        caches[graph] = entry
    return entry[1]


def per_graph_stats(caches, graph) -> dict:
    """Statistics of a :func:`per_graph_lru` cache, without creating it.

    A graph that never touched the cache reports an empty, disabled-looking
    snapshot instead of allocating an LRU just to observe it.
    """
    entry = caches.get(graph)
    return entry[1].stats() if entry is not None else LRUCache(0).stats()


# -------------------------------------------------------------- observability
def collect_search_cache_stats(graph, evaluator=None) -> dict[str, dict]:
    """Statistics of every search-level LRU for one workload graph.

    Gathers the per-graph caches (parse, segment, fragment, tiling) and —
    when an evaluator is provided — the evaluator-level ones (plan contexts,
    per-plan and per-segment static costs, result memos).  Imported lazily so
    this low-level module stays dependency-free.
    """
    from repro.notation.parser import parse_cache_stats
    from repro.notation.segments import fragment_cache_stats, segment_cache_stats
    from repro.tiling.partition import tiling_cache_stats

    stats: dict[str, dict] = {
        "parse": parse_cache_stats(graph),
        "segment": segment_cache_stats(graph),
        "fragment": fragment_cache_stats(graph),
        "tiling": tiling_cache_stats(graph),
    }
    if evaluator is not None:
        stats.update(evaluator.cache_stats())
    return stats


def format_cache_stats(stats: dict[str, dict]) -> str:
    """Render :func:`collect_search_cache_stats` output as an aligned table."""
    lines = [f"{'cache':16s} {'size':>7s} {'max':>7s} {'hits':>10s} {'misses':>10s} {'hit rate':>9s}"]
    for name, entry in stats.items():
        lines.append(
            f"{name:16s} {entry['size']:>7d} {entry['maxsize']:>7d} "
            f"{entry['hits']:>10d} {entry['misses']:>10d} {entry['hit_rate']:>8.1%}"
        )
    return "\n".join(lines)
