"""Search-wide caching primitives for the evaluation engine.

The SoMa search pays for the same derived state over and over: LFA parses
(stage 1 revisits states), FLG tilings (the same (layers, Tiling Number)
pairs recur across parses), per-plan static costs and per-state evaluation
results.  This module provides the shared, bounded LRU cache used at every
one of those levels, keyed by the stable ``fingerprint()`` of the notation
objects (see :mod:`repro.notation`) instead of fragile ``id()`` keys.

Cache sizes are tunable through environment variables named
``REPRO_<NAME>_CACHE`` (e.g. ``REPRO_PARSE_CACHE=512``); a value of ``0``
disables the cache entirely.  See ROADMAP.md for the full list of perf knobs.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import warnings
from collections import OrderedDict
from typing import Any, Callable, Hashable

from repro.core import knobs  # dependency-free; safe at the bottom layer

_MISSING = object()


def parse_env_int(env_name: str, fallback_note: str) -> int | None:
    """Parse an integer environment knob; ``None`` when unset or invalid.

    Every ``REPRO_*`` integer knob resolves through the central registry
    (:mod:`repro.core.knobs`) so invalid values degrade to their fallback
    *loudly* — a typo in a sizing or worker-count knob must not silently
    become a no-op — and unregistered names fail fast.  ``fallback_note``
    finishes the warning sentence ("using the default capacity 256",
    "running serial", ...).
    """
    return knobs.read_int(env_name, fallback_note)


def cache_size(name: str, default: int) -> int:
    """Resolve one cache's capacity from ``REPRO_<NAME>_CACHE`` or a default."""
    value = parse_env_int(
        f"REPRO_{name.upper()}_CACHE", f"using the default capacity {default}"
    )
    return default if value is None else max(0, value)


class LRUCache:
    """A small, dependency-free LRU mapping with hit/miss statistics.

    A ``maxsize`` of 0 disables storage (every lookup misses), which keeps
    the call sites free of conditionals when a cache is turned off via the
    environment.
    """

    __slots__ = ("_data", "maxsize", "hits", "misses")

    def __init__(self, maxsize: int) -> None:
        self.maxsize = max(0, maxsize)
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key``, refreshing its recency on a hit."""
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        self.hits += 1
        self._data.move_to_end(key)
        return value

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key`` without touching recency or hit/miss statistics."""
        value = self._data.get(key, _MISSING)
        return default if value is _MISSING else value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert (or refresh) ``key``, evicting the least recent entry."""
        if self.maxsize == 0:
            return
        data = self._data
        if key in data:
            data.move_to_end(key)
        data[key] = value
        if len(data) > self.maxsize:
            data.popitem(last=False)

    def get_or_compute(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        """Return the cached value for ``key`` or compute, store and return it."""
        value = self._data.get(key, _MISSING)
        if value is not _MISSING:
            self.hits += 1
            self._data.move_to_end(key)
            return value
        self.misses += 1
        value = compute()
        self.put(key, value)
        return value

    def values(self) -> list:
        """The cached values, least recent first (no recency update)."""
        return list(self._data.values())

    def items(self) -> list:
        """The cached (key, value) pairs, least recent first (no recency update).

        Reinserting the pairs in this order into an empty cache reproduces
        the original recency ordering, which is what makes the serving
        layer's memo spill/reload round-trip exact.
        """
        return list(self._data.items())

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        self._data.clear()

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """Snapshot of the cache's occupancy and hit statistics."""
        return {
            "size": len(self._data),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
        }


def per_graph_lru(caches, graph, name: str, default_size: int) -> LRUCache:
    """The per-graph LRU out of ``caches``, dropped when the graph mutates.

    ``caches`` is a ``WeakKeyDictionary`` mapping graphs to ``(version,
    LRUCache)`` entries; the cache is recreated whenever the graph's mutation
    version moved, so no caller can ever be served state derived from an
    older graph.  Capacity resolves through :func:`cache_size` with ``name``.
    Every per-graph cache in the search stack (parse, segment, fragment,
    tiling) goes through this one helper so the invalidation rule lives in
    exactly one place.
    """
    entry = caches.get(graph)
    if entry is None or entry[0] != graph.version:
        entry = (graph.version, LRUCache(cache_size(name, default_size)))
        caches[graph] = entry
    return entry[1]


def per_graph_stats(caches, graph) -> dict:
    """Statistics of a :func:`per_graph_lru` cache, without creating it.

    A graph that never touched the cache reports an empty, disabled-looking
    snapshot instead of allocating an LRU just to observe it.
    """
    entry = caches.get(graph)
    return entry[1].stats() if entry is not None else LRUCache(0).stats()


# ------------------------------------------------------- cross-request memo
#: Default capacity of the serving layer's cross-request result memo
#: (override with ``REPRO_SERVE_MEMO_CACHE``).
SERVE_MEMO_DEFAULT = 256

#: Identifies the key derivation of :func:`schedule_request_key`.  Bump this
#: whenever the hashed tuple (or the fingerprints feeding it) changes shape,
#: so persisted memo files keyed under an older scheme are discarded instead
#: of served wrongly.
SCHEDULE_KEY_SCHEMA = "blake2b16:graph+accelerator+config+seed+restarts:v1"


def schedule_request_key(
    graph_fingerprint: str,
    accelerator,
    config,
    seed: int | None = None,
    restarts: int = 1,
) -> str:
    """Stable memo key for one scheduling request.

    The serving layer memoises finished schedules across requests keyed by
    everything that determines the search outcome: the workload graph's
    content fingerprint, the accelerator and framework configuration (both
    frozen dataclasses whose ``repr`` covers every field) and the explicit
    seed / restart count.  Two requests with equal keys are guaranteed to
    produce bit-identical results, so serving a memoised payload is
    indistinguishable from re-running the search.
    """
    payload = repr(
        ("schedule", graph_fingerprint, repr(accelerator), repr(config), seed, restarts)
    ).encode("utf-8")
    return hashlib.blake2b(payload, digest_size=16).hexdigest()


# ------------------------------------------------------------ LRU persistence
#: Format version of the JSON files written by :func:`spill_lru`.
LRU_SPILL_VERSION = 1

_LRU_SPILL_FORMAT = "repro-lru-spill"


def spill_lru(cache: LRUCache, path: str | os.PathLike, key_schema: str) -> None:
    """Atomically persist an LRU's entries (and their recency order) to JSON.

    Entries are written least recent first, so :func:`reload_lru` restores
    both the contents and the eviction order.  See :func:`spill_items` for
    the file format and atomicity guarantees; callers that must not hold a
    lock during the disk write can snapshot ``cache.items()`` themselves and
    pass the list to :func:`spill_items` directly.
    """
    spill_items(cache.items(), path, key_schema)


def spill_items(items, path: str | os.PathLike, key_schema: str) -> None:
    """Atomically persist (key, value) pairs, preserving their order.

    The file is stamped with the spill format version and the caller's
    ``key_schema`` so a reader can refuse stale files instead of serving
    entries keyed under an old scheme.  Keys and values must be
    JSON-serialisable (the serving memo's hex-digest keys and payload
    dictionaries are).

    The write goes through a same-directory temporary file (unique per
    process *and* thread) and ``os.replace``, so a crash mid-write leaves
    the previous spill intact and a concurrent reader never observes a torn
    file.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    document = {
        "format": _LRU_SPILL_FORMAT,
        "version": LRU_SPILL_VERSION,
        "key_schema": key_schema,
        "entries": [[key, value] for key, value in items],
    }
    tmp_path = f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"
    try:
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
        os.replace(tmp_path, path)
    finally:
        if os.path.exists(tmp_path):  # pragma: no cover - only on a failed dump
            os.unlink(tmp_path)


def reload_lru(cache: LRUCache, path: str | os.PathLike, key_schema: str) -> int:
    """Load a :func:`spill_lru` file into ``cache``; returns entries loaded.

    A missing file is a silent no-op (first boot).  A corrupt file or one
    stamped with a different format/version/``key_schema`` is *ignored with a
    ``RuntimeWarning``* — never partially loaded — because serving entries
    keyed under an older scheme would return wrong results, which is strictly
    worse than a cold start.
    """
    path = os.fspath(path)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except FileNotFoundError:
        return 0
    except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
        warnings.warn(
            f"ignoring unreadable LRU spill {path!r} ({exc}); starting cold",
            RuntimeWarning,
            stacklevel=2,
        )
        return 0
    stamp = (
        document.get("format") if isinstance(document, dict) else None,
        document.get("version") if isinstance(document, dict) else None,
        document.get("key_schema") if isinstance(document, dict) else None,
    )
    if stamp != (_LRU_SPILL_FORMAT, LRU_SPILL_VERSION, key_schema):
        warnings.warn(
            f"ignoring stale LRU spill {path!r} (stamp {stamp!r} does not match "
            f"({_LRU_SPILL_FORMAT!r}, {LRU_SPILL_VERSION!r}, {key_schema!r})); "
            "starting cold",
            RuntimeWarning,
            stacklevel=2,
        )
        return 0
    entries = document.get("entries")
    if not isinstance(entries, list) or not all(
        isinstance(entry, list) and len(entry) == 2 for entry in entries
    ):
        warnings.warn(
            f"ignoring malformed LRU spill {path!r} (bad entries); starting cold",
            RuntimeWarning,
            stacklevel=2,
        )
        return 0
    loaded = 0
    for key, value in entries:
        cache.put(key, value)
        loaded += 1
    return loaded


# -------------------------------------------------------------- observability
def collect_search_cache_stats(graph, evaluator=None) -> dict[str, dict]:
    """Statistics of every search-level LRU for one workload graph.

    Gathers the per-graph caches (parse, segment, fragment, tiling) and —
    when an evaluator is provided — the evaluator-level ones (plan contexts,
    per-plan and per-segment static costs, result memos).  Imported lazily so
    this low-level module stays dependency-free.
    """
    from repro.notation.parser import parse_cache_stats
    from repro.notation.segments import (
        assembler_stats,
        fragment_cache_stats,
        segment_cache_stats,
    )
    from repro.tiling.partition import tiling_cache_stats

    stats: dict[str, dict] = {
        "parse": parse_cache_stats(graph),
        "segment": segment_cache_stats(graph),
        "fragment": fragment_cache_stats(graph),
        "tiling": tiling_cache_stats(graph),
    }
    # The offset-indirect assembler is not an LRU, but its counters fit the
    # same hit/miss shape: a reused position-independent fragment is a hit,
    # a freshly computed one a miss.  The raw counter names ride along for
    # programmatic consumers.
    counters = assembler_stats(graph)
    reuse = counters["rebase_reuse"]
    rebased = counters["rebased_segments"]
    total = reuse + rebased
    stats["rebase"] = {
        "size": 0,
        "maxsize": 0,
        "hits": reuse,
        "misses": rebased,
        "hit_rate": reuse / total if total else 0.0,
        "rebase_reuse": reuse,
        "rebased_segments": rebased,
    }
    # Stage-1 speculation is not an LRU either; in the same spirit a
    # committed speculative move is a hit and a rolled-back one a miss.
    # The raw counters (including where the candidate evaluations ran —
    # pool workers vs in-process) ride along for programmatic consumers.
    from repro.core.lfa_stage import speculation_stats

    spec = speculation_stats(graph)
    committed = spec["committed"]
    rolled_back = spec["rolled_back"]
    decided = committed + rolled_back
    stats["speculation"] = {
        "size": 0,
        "maxsize": 0,
        "hits": committed,
        "misses": rolled_back,
        "hit_rate": committed / decided if decided else 0.0,
        "proposed": spec["proposed"],
        "committed": committed,
        "rolled_back": rolled_back,
        "pool_evaluations": spec["pool_evaluations"],
        "inprocess_evaluations": spec["inprocess_evaluations"],
    }
    if evaluator is not None:
        stats.update(evaluator.cache_stats())
    return stats


def cache_stats_delta(before: dict[str, dict], after: dict[str, dict]) -> dict[str, dict]:
    """Per-cache counter increments between two stats snapshots.

    Hit/miss (and evaluation) counters are monotonic, so the difference is
    exactly the activity that happened between the snapshots even when the
    underlying caches are shared with earlier work (e.g. several restart
    chains reusing one in-process graph).  Occupancy fields (``size`` /
    ``maxsize``) are not counters and keep the ``after`` value.
    """
    delta: dict[str, dict] = {}
    for name, entry in after.items():
        base = before.get(name, {})
        row = dict(entry)
        for field in (
            "hits",
            "misses",
            "evaluations",
            "rebase_reuse",
            "rebased_segments",
            "proposed",
            "committed",
            "rolled_back",
            "pool_evaluations",
            "inprocess_evaluations",
        ):
            if field in row:
                row[field] = row[field] - base.get(field, 0)
        total = row.get("hits", 0) + row.get("misses", 0)
        row["hit_rate"] = row.get("hits", 0) / total if total else 0.0
        delta[name] = row
    return delta


def aggregate_cache_stats(stats_list) -> dict[str, dict]:
    """Sum per-cache statistics gathered from several workers/chains.

    Parent processes never see worker-side LRU activity, so parallel runs
    ship each worker's (delta) snapshot back with its result and this helper
    folds them into one table.  Counters and occupancy are summed per cache
    name; the hit rate is recomputed from the summed counters.
    """
    aggregate: dict[str, dict] = {}
    for stats in stats_list:
        for name, entry in stats.items():
            row = aggregate.setdefault(name, {})
            for field, value in entry.items():
                if field == "hit_rate":
                    continue
                row[field] = row.get(field, 0) + value
    for row in aggregate.values():
        total = row.get("hits", 0) + row.get("misses", 0)
        row["hit_rate"] = row.get("hits", 0) / total if total else 0.0
    return aggregate


def format_cache_stats(stats: dict[str, dict]) -> str:
    """Render :func:`collect_search_cache_stats` output as an aligned table."""
    lines = [f"{'cache':16s} {'size':>7s} {'max':>7s} {'hits':>10s} {'misses':>10s} {'hit rate':>9s}"]
    for name, entry in stats.items():
        lines.append(
            f"{name:16s} {entry['size']:>7d} {entry['maxsize']:>7d} "
            f"{entry['hits']:>10d} {entry['misses']:>10d} {entry['hit_rate']:>8.1%}"
        )
    return "\n".join(lines)
