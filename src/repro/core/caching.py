"""Search-wide caching primitives for the evaluation engine.

The SoMa search pays for the same derived state over and over: LFA parses
(stage 1 revisits states), FLG tilings (the same (layers, Tiling Number)
pairs recur across parses), per-plan static costs and per-state evaluation
results.  This module provides the shared, bounded LRU cache used at every
one of those levels, keyed by the stable ``fingerprint()`` of the notation
objects (see :mod:`repro.notation`) instead of fragile ``id()`` keys.

Cache sizes are tunable through environment variables named
``REPRO_<NAME>_CACHE`` (e.g. ``REPRO_PARSE_CACHE=512``); a value of ``0``
disables the cache entirely.  See ROADMAP.md for the full list of perf knobs.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Any, Callable, Hashable

_MISSING = object()


def cache_size(name: str, default: int) -> int:
    """Resolve one cache's capacity from ``REPRO_<NAME>_CACHE`` or a default."""
    raw = os.environ.get(f"REPRO_{name.upper()}_CACHE")
    if raw is None:
        return default
    try:
        return max(0, int(raw))
    except ValueError:
        return default


class LRUCache:
    """A small, dependency-free LRU mapping with hit/miss statistics.

    A ``maxsize`` of 0 disables storage (every lookup misses), which keeps
    the call sites free of conditionals when a cache is turned off via the
    environment.
    """

    __slots__ = ("_data", "maxsize", "hits", "misses")

    def __init__(self, maxsize: int) -> None:
        self.maxsize = max(0, maxsize)
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key``, refreshing its recency on a hit."""
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        self.hits += 1
        self._data.move_to_end(key)
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert (or refresh) ``key``, evicting the least recent entry."""
        if self.maxsize == 0:
            return
        data = self._data
        if key in data:
            data.move_to_end(key)
        data[key] = value
        if len(data) > self.maxsize:
            data.popitem(last=False)

    def get_or_compute(self, key: Hashable, compute: Callable[[], Any]) -> Any:
        """Return the cached value for ``key`` or compute, store and return it."""
        value = self._data.get(key, _MISSING)
        if value is not _MISSING:
            self.hits += 1
            self._data.move_to_end(key)
            return value
        self.misses += 1
        value = compute()
        self.put(key, value)
        return value

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        self._data.clear()

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """Snapshot of the cache's occupancy and hit statistics."""
        return {
            "size": len(self._data),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
        }
